file(REMOVE_RECURSE
  "CMakeFiles/jst_cfg.dir/cfg.cpp.o"
  "CMakeFiles/jst_cfg.dir/cfg.cpp.o.d"
  "libjst_cfg.a"
  "libjst_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
