// jstraced-server: a long-lived analysis daemon over a Unix domain socket.
//
// The step from "one process, one batch" to "serving" (DESIGN.md §13):
// clients connect to a SOCK_STREAM Unix socket and speak newline-delimited
// JSON in the versioned wire schema (analysis/wire.h) — one AnalyzeRequest
// per line in, one AnalyzeResponse per line out, emitted in completion
// order and correlated by the echoed request id. Each admitted request is
// queued into a support::ThreadPool and served by AnalyzerService under
// its own ResourceLimits deadline (support/budget.h).
//
// Admission control: a request is shed with an explicit kOverloaded
// response — never queued to time out silently — when either
//   * the hard cap trips: in-flight requests >= max_queue_depth, or
//   * the wait estimate exceeds the request's deadline:
//       queue_depth × observed p95 service time / workers > deadline_ms
// (the p95 comes from the server's own jst_server_service_ms histogram,
// so the estimate adapts to the traffic actually being served). A request
// whose deadline has already elapsed while queued is shed at pickup for
// the same reason. The decision logic is a pure function
// (Server::should_shed) so shedding is deterministic and unit-testable.
//
// Also served on the same socket:
//   * {"op":"metrics"} → one JSON line with the obs::MetricsRegistry;
//   * a raw "GET /metrics" line → Prometheus text exposition over a
//     minimal HTTP/1.0 response, then the connection closes (so
//     `curl --unix-socket` scrape configs work unchanged);
//   * {"op":"ping"} → {"status":"ok"} liveness probe.
//
// Shutdown is a graceful drain (SIGTERM in the daemon binary maps to
// Server::shutdown): stop accepting connections, answer every admitted
// request, shed still-arriving ones with kDraining, then close all
// connections and remove the socket file.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/service.h"
#include "support/budget.h"
#include "support/thread_pool.h"

namespace jst::server {

struct ServerConfig {
  // Filesystem path the listening socket binds to; a stale file from a
  // previous run is removed. Must be non-empty.
  std::string socket_path;
  // Analysis worker threads (0 = JST_THREADS / hardware default via
  // support::resolve_threads). Connection readers are separate threads;
  // `workers` bounds concurrent analyses.
  std::size_t workers = 0;
  // Hard admission cap on in-flight (queued + running) requests; 0 means
  // "no cap" and only the deadline-based estimate sheds.
  std::size_t max_queue_depth = 256;
  // Default per-request limits when a request carries no override.
  ResourceLimits default_limits;
  // Artificial floor on per-request service time, in milliseconds. Load
  // and drain tests use it to make queue pressure reproducible on corpora
  // whose real scripts analyze in microseconds; 0 disables.
  double min_service_ms = 0.0;
  // Capacity of the content-hash registry backing source_hash references
  // (entries; insertion stops at the cap). 0 disables resolution.
  std::size_t hash_registry_entries = 4096;
};

// Point-in-time counters for tests and the drain log line.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t requests_shed = 0;      // kOverloaded + kDraining
  std::uint64_t requests_invalid = 0;   // kInvalidRequest + kNotFound
};

class Server {
 public:
  // Binds and listens immediately (throws std::runtime_error on socket
  // errors); serving starts with start().
  Server(const analysis::AnalyzerService& service, ServerConfig config);
  ~Server();  // implies shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Spawns the accept loop. Idempotent.
  void start();

  // Graceful drain: stop accepting, answer every admitted request, shed
  // the rest with kDraining, close every connection, unlink the socket.
  // Safe to call from a signal-driven shutdown path (not the handler
  // itself) and idempotent.
  void shutdown();

  const ServerConfig& config() const { return config_; }
  const std::string& socket_path() const { return config_.socket_path; }
  std::size_t workers() const { return workers_; }
  ServerStats stats() const;

  // The admission-control predicate (DESIGN.md §13), exposed as a pure
  // function: shed when the hard cap trips or when the estimated queue
  // wait (queue_depth × p95 service ms / workers) exceeds the request's
  // deadline. With no deadline only the hard cap sheds — an ungoverned
  // request is allowed to wait arbitrarily long.
  static bool should_shed(std::size_t queue_depth, std::size_t workers,
                          double p95_service_ms, double deadline_ms,
                          std::size_t max_queue_depth);

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(Connection& connection);
  void handle_line(Connection& connection, const std::string& line);
  void handle_request(Connection& connection, analysis::AnalyzeRequest request);
  void process_request(Connection& connection,
                       const analysis::AnalyzeRequest& request,
                       std::chrono::steady_clock::time_point admitted_at,
                       std::size_t depth_at_admission);
  void respond(Connection& connection, const analysis::AnalyzeResponse&);
  void serve_metrics_http(Connection& connection);
  // Registers an inline source under its hash; returns false (registry
  // full / disabled) without error — resolution is best-effort.
  void register_source(const std::string& hash, const std::string& source);
  bool resolve_source(const std::string& hash, std::string& source) const;

  const analysis::AnalyzerService* service_;
  ServerConfig config_;
  std::size_t workers_ = 1;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  // Analysis pool: workers_ real worker threads (the pool counts the
  // caller as a lane, and reader threads never analyze inline).
  std::unique_ptr<support::ThreadPool> pool_;

  // In-flight (admitted, not yet answered) request count; shutdown waits
  // for it to reach zero.
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_zero_;
  std::size_t inflight_ = 0;

  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  mutable std::mutex registry_mutex_;
  std::map<std::string, std::string> sources_by_hash_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace jst::server
