file(REMOVE_RECURSE
  "CMakeFiles/jst_parser.dir/parser.cpp.o"
  "CMakeFiles/jst_parser.dir/parser.cpp.o.d"
  "libjst_parser.a"
  "libjst_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
