#include "ml/multilabel.h"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>

#include "support/error.h"

namespace jst::ml {
namespace {

std::size_t validate(const Matrix& data, const LabelMatrix& labels) {
  if (data.row_count() == 0) throw ModelError("multilabel fit: empty data");
  if (labels.size() != data.row_count()) {
    throw ModelError("multilabel fit: label row mismatch");
  }
  const std::size_t label_count = labels[0].size();
  if (label_count == 0) throw ModelError("multilabel fit: zero labels");
  for (const auto& row : labels) {
    if (row.size() != label_count) {
      throw ModelError("multilabel fit: ragged label matrix");
    }
  }
  return label_count;
}

std::vector<std::uint8_t> label_column(const LabelMatrix& labels,
                                       std::size_t column) {
  std::vector<std::uint8_t> out(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) out[i] = labels[i][column];
  return out;
}

}  // namespace

std::vector<std::size_t> MultiLabelClassifier::predict_set(
    std::span<const float> row, double threshold) const {
  const std::vector<double> probabilities = predict_proba(row);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    if (probabilities[i] >= threshold) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> MultiLabelClassifier::predict_topk(
    std::span<const float> row, std::size_t k) const {
  const std::vector<double> probabilities = predict_proba(row);
  std::vector<std::size_t> order(probabilities.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return probabilities[a] > probabilities[b];
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

std::vector<std::size_t> MultiLabelClassifier::predict_topk_thresholded(
    std::span<const float> row, std::size_t k, double threshold) const {
  const std::vector<double> probabilities = predict_proba(row);
  std::vector<std::size_t> order(probabilities.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return probabilities[a] > probabilities[b];
                   });
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < order.size() && out.size() < k; ++i) {
    if (probabilities[order[i]] >= threshold) out.push_back(order[i]);
  }
  return out;
}

void BinaryRelevance::fit(const Matrix& data, const LabelMatrix& labels,
                          const ForestParams& params, Rng& rng) {
  const std::size_t label_count = validate(data, labels);
  forests_.clear();
  forests_.resize(label_count);
  for (std::size_t j = 0; j < label_count; ++j) {
    const std::vector<std::uint8_t> column = label_column(labels, j);
    forests_[j].fit(data, column, params, rng);
  }
}

std::vector<double> BinaryRelevance::predict_proba(
    std::span<const float> row) const {
  if (forests_.empty()) throw ModelError("BinaryRelevance: predict before fit");
  std::vector<double> out(forests_.size());
  for (std::size_t j = 0; j < forests_.size(); ++j) {
    out[j] = forests_[j].predict_proba(row);
  }
  return out;
}

void ClassifierChain::fit(const Matrix& data, const LabelMatrix& labels,
                          const ForestParams& params, Rng& rng) {
  const std::size_t label_count = validate(data, labels);
  forests_.clear();
  forests_.resize(label_count);

  // Extended copies of the rows: base features plus the ground-truth labels
  // of all previous chain positions (Read et al., 2011).
  std::vector<std::vector<float>> extended(*data.rows);
  for (std::size_t j = 0; j < label_count; ++j) {
    Matrix extended_view{&extended};
    const std::vector<std::uint8_t> column = label_column(labels, j);
    forests_[j].fit(extended_view, column, params, rng);
    if (j + 1 < label_count) {
      for (std::size_t i = 0; i < extended.size(); ++i) {
        extended[i].push_back(static_cast<float>(labels[i][j]));
      }
    }
  }
}

std::vector<double> ClassifierChain::predict_proba(
    std::span<const float> row) const {
  if (forests_.empty()) throw ModelError("ClassifierChain: predict before fit");
  std::vector<double> out(forests_.size());
  std::vector<float> extended(row.begin(), row.end());
  for (std::size_t j = 0; j < forests_.size(); ++j) {
    out[j] = forests_[j].predict_proba(extended);
    if (j + 1 < forests_.size()) {
      extended.push_back(out[j] >= chain_threshold_ ? 1.0f : 0.0f);
    }
  }
  return out;
}

}  // namespace jst::ml

namespace jst::ml {

namespace {

void save_forests(const std::vector<RandomForest>& forests, const char* tag,
                  std::ostream& out, ModelEncoding encoding) {
  out << tag << ' ' << forests.size() << '\n';
  for (const RandomForest& forest : forests) forest.save(out, encoding);
}

void load_forests(std::vector<RandomForest>& forests, const char* tag,
                  std::istream& in) {
  std::string magic;
  std::size_t count = 0;
  if (!(in >> magic >> count) || magic != tag) {
    throw ModelError(std::string("multilabel load: expected ") + tag);
  }
  forests.assign(count, RandomForest{});
  for (RandomForest& forest : forests) forest.load(in);
}

}  // namespace

void BinaryRelevance::save(std::ostream& out, ModelEncoding encoding) const {
  save_forests(forests_, "binary-relevance", out, encoding);
}

void BinaryRelevance::load(std::istream& in) {
  load_forests(forests_, "binary-relevance", in);
}

void ClassifierChain::save(std::ostream& out, ModelEncoding encoding) const {
  save_forests(forests_, "classifier-chain", out, encoding);
}

void ClassifierChain::load(std::istream& in) {
  load_forests(forests_, "classifier-chain", in);
}

}  // namespace jst::ml
