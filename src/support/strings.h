// Small string utilities used throughout jstraced.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jst::strings {

// Splits on a single-character delimiter; keeps empty pieces.
std::vector<std::string> split(std::string_view text, char delimiter);

// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator);

// Removes ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool is_ascii_digit(char c);
bool is_ascii_alpha(char c);
bool is_ascii_alnum(char c);
bool is_hex_digit(char c);

// True if `text` is a valid JavaScript identifier (ASCII subset).
bool is_identifier(std::string_view text);

// Counts '\n' + 1 (an empty string has one line).
std::size_t count_lines(std::string_view text);

// Escapes a string for embedding inside a double-quoted JS string literal.
std::string escape_js_string(std::string_view text);

// Hex-escapes every character as \xHH (for string obfuscation).
std::string hex_escape_all(std::string_view text);

// Unicode-escapes every character as \uHHHH (for string obfuscation).
std::string unicode_escape_all(std::string_view text);

// Formats a double with fixed precision, trimming trailing zeros.
std::string format_double(double value, int max_precision = 6);

// Converts value to base-N using digits 0-9a-zA-Z (Dean Edwards packer style,
// N in [2, 62]).
std::string to_base_n(std::uint64_t value, unsigned base);

// FNV-1a 64-bit hash.
std::uint64_t fnv1a(std::string_view text);

// Ratio of characters that are alphanumeric.
double alnum_ratio(std::string_view text);

}  // namespace jst::strings
