#include <gtest/gtest.h>

#include "ast/walk.h"
#include "codegen/codegen.h"
#include "parser/parser.h"

namespace jst {
namespace {

std::string pretty(std::string_view source) {
  const ParseResult result = parse_program(source);
  return to_source(result.ast.root());
}

std::string minified(std::string_view source) {
  const ParseResult result = parse_program(source);
  return to_minified_source(result.ast.root());
}

// Pre-order kind sequence — the semantic fingerprint we require codegen to
// preserve.
std::vector<NodeKind> kinds_of(std::string_view source) {
  const ParseResult result = parse_program(source);
  return preorder_kinds(result.ast.root());
}

// Codegen must be a fixed point under reparsing: parse(print(ast)) == ast
// structurally.
void expect_roundtrip(std::string_view source) {
  const std::string printed = pretty(source);
  EXPECT_EQ(kinds_of(source), kinds_of(printed)) << "pretty of: " << source
                                                 << "\n got: " << printed;
  const std::string compact = minified(source);
  EXPECT_EQ(kinds_of(source), kinds_of(compact)) << "minified of: " << source
                                                 << "\n got: " << compact;
  // Printing the printed output again must be stable.
  EXPECT_EQ(pretty(printed), printed);
}

TEST(Codegen, SimpleStatements) {
  expect_roundtrip("var a = 1;");
  expect_roundtrip("let b = 'x';");
  expect_roundtrip("const c = [1, 2, 3];");
  expect_roundtrip("a.b.c = d[e];");
  expect_roundtrip("f(1, 'two', g(3));");
}

TEST(Codegen, ControlFlow) {
  expect_roundtrip("if (a) b(); else c();");
  expect_roundtrip("if (a) { b(); } else if (c) { d(); }");
  expect_roundtrip("for (var i = 0; i < 3; i++) use(i);");
  expect_roundtrip("for (var k in o) log(k);");
  expect_roundtrip("for (const x of xs) log(x);");
  expect_roundtrip("while (a) { b(); }");
  expect_roundtrip("do { a(); } while (b);");
  expect_roundtrip("switch (x) { case 1: a(); break; default: b(); }");
  expect_roundtrip("try { a(); } catch (e) { b(); } finally { c(); }");
  expect_roundtrip("outer: for (;;) { break outer; }");
  expect_roundtrip("with (o) { f(); }");
}

TEST(Codegen, Functions) {
  expect_roundtrip("function f(a, b) { return a + b; }");
  expect_roundtrip("var f = function named() { return 1; };");
  expect_roundtrip("var g = (a, b) => a * b;");
  expect_roundtrip("var h = x => ({ value: x });");
  expect_roundtrip("async function r() { await q(); }");
  expect_roundtrip("function* gen() { yield 1; yield* rest(); }");
  expect_roundtrip("(function () { init(); })();");
}

TEST(Codegen, Classes) {
  expect_roundtrip(
      "class A extends B { constructor(x) { this.x = x; } "
      "static make() { return new A(0); } get v() { return this.x; } "
      "set v(n) { this.x = n; } *iter() { yield this.x; } }");
}

TEST(Codegen, Expressions) {
  expect_roundtrip("x = a ? b : c;");
  expect_roundtrip("x = (a, b, c);");
  expect_roundtrip("x = -(-y);");
  expect_roundtrip("x = !!b;");
  expect_roundtrip("x = typeof a === 'string';");
  expect_roundtrip("x = a ** b ** c;");
  expect_roundtrip("x = (a + b) * c;");
  expect_roundtrip("x = a + b * c;");
  expect_roundtrip("delete o.p;");
  expect_roundtrip("x = new Foo(a).bar(b);");
  expect_roundtrip("x = { a: 1, 'b c': 2, [k]: 3, m() {} };");
  expect_roundtrip("x = [1, , 3];");
  expect_roundtrip("x = `a ${b + 1} c`;");
  expect_roundtrip("x = tag`t ${v}`;");
  expect_roundtrip("x = /ab+/gi.test(s);");
  expect_roundtrip("x = a in b;");
  expect_roundtrip("x = a instanceof B;");
}

TEST(Codegen, PrecedenceParenthesization) {
  // (a + b) * c requires parens; a + b * c must not add them.
  EXPECT_EQ(minified("x = (a + b) * c;"), "x=(a+b)*c;");
  EXPECT_EQ(minified("x = a + b * c;"), "x=a+b*c;");
  // Sequence inside a call argument keeps its parens.
  EXPECT_EQ(minified("f((a, b));"), "f((a,b));");
  // Conditional in argument position has no parens.
  EXPECT_EQ(minified("f(a ? b : c);"), "f(a?b:c);");
}

TEST(Codegen, ObjectLiteralStatementParenthesized) {
  // An expression statement may not start with '{' or 'function'.
  expect_roundtrip("({ a: 1 });");
  expect_roundtrip("(function () {})();");
  const std::string out = minified("({ a: 1 });");
  EXPECT_EQ(out.front(), '(');
}

TEST(Codegen, MinifiedHasNoExtraWhitespace) {
  const std::string out =
      minified("function add(first, second) {\n  return first + second;\n}");
  EXPECT_EQ(out.find('\n'), std::string::npos);
  EXPECT_EQ(out, "function add(first,second){return first+second;}");
}

TEST(Codegen, MinifiedKeywordSpacing) {
  EXPECT_EQ(minified("var a = typeof b;"), "var a=typeof b;");
  EXPECT_EQ(minified("return;"), "return;");
  EXPECT_EQ(minified("x = a in b;"), "x=a in b;");
  EXPECT_EQ(minified("x = new F();"), "x=new F();");
}

TEST(Codegen, UnaryPlusMinusNotFused) {
  // -(-x) must not print as --x.
  const std::string out = minified("y = -(-x);");
  EXPECT_EQ(out.find("--"), std::string::npos);
  expect_roundtrip("y = +(+x);");
}

TEST(Codegen, StringQuotingAndEscapes) {
  EXPECT_EQ(minified("s = \"a\\\"b\";"), "s=\"a\\\"b\";");
  EXPECT_EQ(minified("s = 'a\\nb';"), "s=\"a\\nb\";");
  expect_roundtrip("s = '\\x01\\x02';");
}

TEST(Codegen, ForcedEscapeFlags) {
  ParseResult result = parse_program("var s = \"AB\";");
  Node* literal = collect_kind(result.ast.root(), NodeKind::kLiteral)[0];
  literal->flag_a = true;  // hex escape
  EXPECT_EQ(to_minified_source(result.ast.root()), "var s=\"\\x41\\x42\";");
  literal->flag_a = false;
  literal->flag_b = true;  // unicode escape
  EXPECT_EQ(to_minified_source(result.ast.root()), "var s=\"\\u0041\\u0042\";");
}

TEST(Codegen, NumberFormats) {
  expect_roundtrip("n = 0x2a;");
  expect_roundtrip("n = 1e3;");
  expect_roundtrip("n = 3.14;");
  EXPECT_EQ(minified("n = 0x2a;"), "n=0x2a;");  // raw preserved
}

TEST(Codegen, ShorthandExpansionAfterRename) {
  ParseResult result = parse_program("var o = { a };");
  // Rename the shorthand value; codegen must expand to a: newName.
  const auto identifiers =
      collect_kind(result.ast.root(), NodeKind::kIdentifier);
  for (Node* identifier : identifiers) {
    if (identifier->parent != nullptr &&
        identifier->parent->kind == NodeKind::kProperty &&
        identifier->parent->kids[1] == identifier) {
      identifier->str_value = "zz";
    }
  }
  result.ast.finalize();
  const std::string out = to_minified_source(result.ast.root());
  EXPECT_NE(out.find("a:zz"), std::string::npos) << out;
}

TEST(Codegen, MinifiedLineLimitWraps) {
  std::string source;
  for (int i = 0; i < 60; ++i) {
    source += "callSomething(" + std::to_string(i) + ");";
  }
  ParseResult result = parse_program(source);
  CodegenOptions options;
  options.minify = true;
  options.minified_line_limit = 120;
  const std::string out = generate(result.ast.root(), options);
  EXPECT_GT(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(Codegen, DestructuringRoundtrip) {
  expect_roundtrip("var { a, b: c, d = 2 } = o;");
  expect_roundtrip("var [x, , z, ...rest] = arr;");
  expect_roundtrip("function f({ a, b }, [c], d = 1, ...e) { return a; }");
}

TEST(Codegen, EmptyConstructs) {
  expect_roundtrip("function f() {}");
  expect_roundtrip("if (a) {}");
  expect_roundtrip("var o = {};");
  expect_roundtrip("var a = [];");
  expect_roundtrip(";");
  expect_roundtrip("class C {}");
}

TEST(Codegen, GeneratedSubtreePrinting) {
  Ast ast;
  Node* call = ast.make(NodeKind::kCallExpression);
  Node* member = ast.make(NodeKind::kMemberExpression);
  member->kids = {ast.make_identifier("console"), ast.make_identifier("log")};
  call->kids = {member, ast.make_string("hi"), ast.make_number(3.0)};
  ast.set_root(call);
  ast.finalize();
  EXPECT_EQ(to_minified_source(call), "console.log(\"hi\",3)");
}

}  // namespace
}  // namespace jst
