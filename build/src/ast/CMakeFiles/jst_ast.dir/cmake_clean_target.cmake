file(REMOVE_RECURSE
  "libjst_ast.a"
)
