// A miniature of the paper's §IV measurement: simulate the five script
// populations (Alexa, npm, DNC, Hynek, BSI), run the trained detectors
// over each through the batch engine, and print the comparative table —
// benign populations are minification-led while malware favors
// identifier/string obfuscation.
//
//   $ ./wild_study [scripts_per_population]
//   $ ./wild_study 120 --trace-out trace.json --metrics-out metrics.json
//   $ ./wild_study 120 --deadline-ms 120000 --max-ast-nodes 1000000
//         --ndjson-out outcomes.ndjson
//
// --trace-out writes Chrome trace_event JSONL (load in Perfetto or
// chrome://tracing to see per-stage spans across worker threads);
// --metrics-out writes the process metrics registry as JSON (use a
// .prom suffix for Prometheus text exposition format instead);
// --ndjson-out streams one ScriptOutcome::to_json() object per analyzed
// script (NDJSON), the machine-readable twin of the printed table.
//
// Resource governance (DESIGN.md §10): --deadline-ms, --max-source-bytes,
// --max-tokens, --max-ast-nodes, --max-depth, and --max-dataflow-edges
// populate BatchOptions::limits; 0 (the default) disables a ceiling.
// --production-limits applies ResourceLimits::production() first, then
// lets the individual flags override.
//
// Result cache (DESIGN.md §15): --cache-dir / --cache-bytes attach a
// content-addressed ResultCache, so re-running the study over overlapping
// corpora (or with --cache-dir, across process restarts) re-analyzes only
// content-new scripts; --cache-mode refresh recomputes and overwrites.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/pipeline.h"
#include "analysis/result_cache.h"
#include "analysis/service.h"
#include "analysis/wild.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/cache_flags.h"
#include "support/limits_flags.h"
#include "support/strings.h"

namespace {

bool ends_with(const std::string& text, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return text.size() >= n && text.compare(text.size() - n, n, suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jst;
  using transform::Technique;

  std::size_t per_population = 60;
  std::string metrics_out;
  std::string trace_out;
  std::string ndjson_out;
  ResourceLimits limits;
  support::CacheOptions cache_options;
  for (int i = 1; i < argc; ++i) {
    std::string limits_error;
    if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--ndjson-out") == 0 && i + 1 < argc) {
      ndjson_out = argv[++i];
    } else if (support::consume_cache_flag(argc, argv, i, cache_options,
                                           limits_error) ||
               support::consume_limits_flag(argc, argv, i, limits,
                                            limits_error)) {
      if (!limits_error.empty()) {
        std::fprintf(stderr, "wild_study: %s\n", limits_error.c_str());
        return 2;
      }
    } else if (argv[i][0] != '-') {
      per_population = static_cast<std::size_t>(std::atoi(argv[i]));
    } else {
      std::fprintf(stderr,
                   "usage: wild_study [scripts_per_population] "
                   "[--metrics-out FILE] [--trace-out FILE] "
                   "[--ndjson-out FILE] %s %s\n",
                   support::cache_flags_usage(),
                   support::limits_flags_usage());
      return 2;
    }
  }

  // Attach the trace sink before training so the corpus/feature/forest
  // spans land in the file too, not just the batch runs.
  std::ofstream trace_stream;
  std::unique_ptr<obs::TraceSink> trace_sink;
  if (!trace_out.empty()) {
    trace_stream.open(trace_out);
    if (!trace_stream) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 1;
    }
    trace_sink = std::make_unique<obs::TraceSink>(trace_stream);
    obs::set_trace_sink(trace_sink.get());
  }

  analysis::PipelineOptions options;
  options.training_regular_count = 100;
  options.per_technique_count = 20;
  analysis::TransformationAnalyzer analyzer(options);
  std::fprintf(stderr, "[wild] training detectors...\n");
  analyzer.train();

  std::unique_ptr<analysis::ResultCache> cache;
  if (cache_options.enabled() && cache_options.mode != CacheMode::kBypass) {
    analysis::ResultCache::Config cache_config;
    cache_config.dir = cache_options.dir;
    cache_config.max_bytes = cache_options.effective_bytes();
    cache = std::make_unique<analysis::ResultCache>(cache_config);
    if (!cache->load_error().empty()) {
      std::fprintf(stderr, "[wild] cache: %s\n", cache->load_error().c_str());
    }
  }
  const analysis::AnalyzerService service(analyzer, cache.get());

  struct Population {
    const char* name;
    analysis::PopulationSpec spec;
  };
  const Population populations[] = {
      {"Alexa Top 10k", analysis::alexa_spec()},
      {"npm Top 10k", analysis::npm_spec()},
      {"DNC", analysis::dnc_spec()},
      {"Hynek", analysis::hynek_spec()},
      {"BSI", analysis::bsi_spec()},
  };

  std::ofstream ndjson_stream;
  if (!ndjson_out.empty()) {
    ndjson_stream.open(ndjson_out);
    if (!ndjson_stream) {
      std::fprintf(stderr, "cannot open %s\n", ndjson_out.c_str());
      return 1;
    }
  }

  analysis::BatchOptions batch_options;
  batch_options.limits = limits;

  std::size_t quarantined = 0;
  std::printf("%-16s %12s %12s %12s %12s %10s %10s\n", "population",
              "transformed", "id-obf", "str-obf", "minified*", "p50 ms",
              "p99 ms");
  for (const Population& population : populations) {
    const auto samples = analysis::simulate_population(
        population.spec, per_population, strings::fnv1a(population.name));
    std::vector<std::string> sources;
    sources.reserve(samples.size());
    for (const analysis::Sample& sample : samples) {
      sources.push_back(sample.source);
    }
    const std::vector<analysis::AnalyzeRequest> requests =
        analysis::make_source_requests(sources, cache_options.mode);
    const analysis::BatchResponse batch =
        service.analyze_batch(requests, batch_options);
    quarantined += batch.stats.budget_tripped();
    if (ndjson_stream.is_open()) {
      for (const analysis::AnalyzeResponse& response : batch.responses) {
        ndjson_stream << response.outcome.to_json() << '\n';
      }
    }

    std::size_t transformed = 0;
    std::size_t analyzed = 0;
    double id_obf = 0.0;
    double str_obf = 0.0;
    double minified = 0.0;
    for (const analysis::AnalyzeResponse& response : batch.responses) {
      const analysis::ScriptOutcome& outcome = response.outcome;
      // Budget-tripped and parse-failed scripts carry no predictions, so
      // they are excluded from the table (but counted in `quarantined`).
      if (!outcome.has_predictions()) continue;
      const analysis::ScriptReport& report = outcome.report;
      ++analyzed;
      if (!report.level1.transformed()) continue;
      ++transformed;
      id_obf += report.technique_confidence[static_cast<std::size_t>(
          Technique::kIdentifierObfuscation)];
      str_obf += report.technique_confidence[static_cast<std::size_t>(
          Technique::kStringObfuscation)];
      minified += report.technique_confidence[static_cast<std::size_t>(
                      Technique::kMinificationSimple)] +
                  report.technique_confidence[static_cast<std::size_t>(
                      Technique::kMinificationAdvanced)];
    }
    const double divisor =
        transformed > 0 ? static_cast<double>(transformed) : 1.0;
    std::printf("%-16s %11.1f%% %11.1f%% %11.1f%% %11.1f%% %10.2f %10.2f\n",
                population.name,
                100.0 * static_cast<double>(transformed) /
                    static_cast<double>(analyzed > 0 ? analyzed : 1),
                100.0 * id_obf / divisor, 100.0 * str_obf / divisor,
                100.0 * minified / divisor, batch.stats.p50_script_ms,
                batch.stats.p99_script_ms);
  }
  std::printf("\n* summed confidence of the two minification techniques\n");
  std::printf("expected shape: benign rows minification-led; malware rows "
              "identifier/string-obfuscation-led\n");
  if (limits.any_enabled()) {
    std::fprintf(stderr,
                 "[wild] resource governance on: %llu script(s) quarantined "
                 "by budget limits\n",
                 static_cast<unsigned long long>(quarantined));
  }
  if (ndjson_stream.is_open()) {
    std::fprintf(stderr, "[wild] wrote per-script NDJSON to %s\n",
                 ndjson_out.c_str());
  }
  if (cache) {
    const analysis::ResultCache::Counters counters = cache->counters();
    std::fprintf(stderr,
                 "[wild] cache: %llu hits, %llu misses, %llu stores\n",
                 static_cast<unsigned long long>(counters.hits),
                 static_cast<unsigned long long>(counters.misses),
                 static_cast<unsigned long long>(counters.stores));
  }

  if (trace_sink) {
    obs::set_trace_sink(nullptr);
    std::fprintf(stderr, "[wild] wrote %llu trace events to %s\n",
                 static_cast<unsigned long long>(trace_sink->event_count()),
                 trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::ofstream metrics_stream(metrics_out);
    if (!metrics_stream) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    metrics_stream << (ends_with(metrics_out, ".prom")
                           ? obs::MetricsRegistry::global().to_prometheus()
                           : obs::MetricsRegistry::global().to_json());
    std::fprintf(stderr, "[wild] wrote metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}
