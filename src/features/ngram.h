// Hashed AST n-gram features.
//
// The paper extracts 4-grams over "the list of syntactic units" of the AST
// (pre-order node-kind sequence). We hash each n-gram into a fixed number
// of buckets (the vector-space dimensions stay consistent across samples,
// §III-B) and store relative frequencies.
#pragma once

#include <cstddef>
#include <vector>

#include "ast/ast.h"

namespace jst::features {

struct NgramConfig {
  std::size_t n = 4;
  std::size_t hash_dim = 512;
};

// Relative-frequency histogram of hashed n-grams, size = config.hash_dim.
std::vector<float> ngram_features(const Node* root, const NgramConfig& config);

// Raw n-gram window count for a tree (windows = max(0, kinds - n + 1)).
std::size_t ngram_window_count(const Node* root, std::size_t n);

}  // namespace jst::features
