#include "support/arena.h"

#include <cstdlib>
#include <cstring>
#include <new>

namespace jst::support {

namespace {

inline char* align_up(char* ptr, std::size_t align) {
  const auto value = reinterpret_cast<std::uintptr_t>(ptr);
  const std::uintptr_t aligned = (value + align - 1) & ~(align - 1);
  return reinterpret_cast<char*>(aligned);
}

}  // namespace

Arena::~Arena() {
  for (const Chunk& chunk : chunks_) std::free(chunk.data);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  char* start = align_up(cursor_, align);
  if (start + bytes <= limit_) {
    bytes_used_ += static_cast<std::size_t>(start + bytes - cursor_);
    if (bytes_used_ > peak_bytes_) peak_bytes_ = bytes_used_;
    cursor_ = start + bytes;
    return start;
  }
  return allocate_slow(bytes, align);
}

void* Arena::allocate_slow(std::size_t bytes, std::size_t align) {
  // Try the remaining pre-grown chunks first (post-reset they are all
  // rewound but still owned).
  while (active_ + 1 < chunks_.size()) {
    ++active_;
    cursor_ = chunks_[active_].data;
    limit_ = cursor_ + chunks_[active_].size;
    char* start = align_up(cursor_, align);
    if (start + bytes <= limit_) {
      bytes_used_ += static_cast<std::size_t>(start + bytes - cursor_);
      if (bytes_used_ > peak_bytes_) peak_bytes_ = bytes_used_;
      cursor_ = start + bytes;
      return start;
    }
    // Chunk too small for this request; count it as consumed and move on.
    bytes_used_ += chunks_[active_].size;
  }

  // Grow: double the last chunk size (clamped), but never smaller than
  // the request itself (+ worst-case alignment padding).
  std::size_t chunk_size = chunks_.empty()
                               ? kMinChunkBytes
                               : chunks_.back().size * 2;
  if (chunk_size > kMaxChunkBytes) chunk_size = kMaxChunkBytes;
  if (chunk_size < bytes + align) chunk_size = bytes + align;

  char* data = static_cast<char*>(std::malloc(chunk_size));
  if (data == nullptr) throw std::bad_alloc();
  chunks_.push_back(Chunk{data, chunk_size});
  capacity_bytes_ += chunk_size;
  active_ = chunks_.size() - 1;
  cursor_ = data;
  limit_ = data + chunk_size;

  char* start = align_up(cursor_, align);
  bytes_used_ += static_cast<std::size_t>(start + bytes - cursor_);
  if (bytes_used_ > peak_bytes_) peak_bytes_ = bytes_used_;
  cursor_ = start + bytes;
  return start;
}

std::string_view Arena::alloc_string(std::string_view text) {
  if (text.empty()) return std::string_view();
  char* data = alloc_chars(text.size());
  std::memcpy(data, text.data(), text.size());
  return std::string_view(data, text.size());
}

void Arena::reset() {
  active_ = 0;
  if (chunks_.empty()) {
    cursor_ = limit_ = nullptr;
  } else {
    cursor_ = chunks_.front().data;
    limit_ = cursor_ + chunks_.front().size;
  }
  bytes_used_ = 0;
  ++epoch_;
}

}  // namespace jst::support
