// Binding renaming shared by identifier obfuscation and minification.
#pragma once

#include <functional>
#include <string>

#include "ast/ast.h"
#include "support/rng.h"

namespace jst::transform {

// Renames every resolvable binding in the (finalized) AST using `make_name`,
// which receives the binding ordinal and the old name and returns the new
// one. Globals (unresolved identifiers) and property names are untouched.
// Returns the number of renamed bindings. Re-finalizes the AST.
std::size_t rename_bindings(
    Ast& ast,
    const std::function<std::string(std::size_t ordinal,
                                    const std::string& old_name)>& make_name);

// Generates minifier-style short names: a, b, ..., z, aa, ab, ...
// skipping JavaScript keywords.
std::string short_name(std::size_t ordinal);

// Generates obfuscator.io-style hex names: _0x1a2b3c.
std::string hex_name(Rng& rng);

}  // namespace jst::transform
