file(REMOVE_RECURSE
  "../lib/libjst_bench_common.a"
  "../lib/libjst_bench_common.pdb"
  "CMakeFiles/jst_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/jst_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
