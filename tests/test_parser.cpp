#include <gtest/gtest.h>

#include "ast/walk.h"
#include "parser/parser.h"

namespace jst {
namespace {

// Parses and returns the program root.
ParseResult parse(std::string_view source) { return parse_program(source); }

std::size_t count_kind(const ParseResult& result, NodeKind kind) {
  return collect_kind(static_cast<const Node*>(result.ast.root()), kind).size();
}

TEST(Parser, EmptyProgram) {
  const ParseResult result = parse("");
  ASSERT_NE(result.ast.root(), nullptr);
  EXPECT_EQ(result.ast.root()->kind, NodeKind::kProgram);
  EXPECT_TRUE(result.ast.root()->kids.empty());
}

TEST(Parser, VariableDeclarations) {
  const ParseResult result = parse("var a = 1, b; let c = 'x'; const d = [];");
  EXPECT_EQ(count_kind(result, NodeKind::kVariableDeclaration), 3u);
  EXPECT_EQ(count_kind(result, NodeKind::kVariableDeclarator), 4u);
}

TEST(Parser, FunctionDeclaration) {
  const ParseResult result = parse("function add(a, b) { return a + b; }");
  EXPECT_EQ(count_kind(result, NodeKind::kFunctionDeclaration), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kReturnStatement), 1u);
  const Node* function =
      collect_kind(static_cast<const Node*>(result.ast.root()),
                   NodeKind::kFunctionDeclaration)[0];
  EXPECT_EQ(function->kids.size(), 4u);  // id, body, 2 params
}

TEST(Parser, IfElseChain) {
  const ParseResult result =
      parse("if (a) { f(); } else if (b) g(); else { h(); }");
  EXPECT_EQ(count_kind(result, NodeKind::kIfStatement), 2u);
}

TEST(Parser, ForVariants) {
  const ParseResult result = parse(
      "for (var i = 0; i < 10; i++) {}"
      "for (var k in obj) {}"
      "for (const v of list) {}"
      "for (;;) { break; }");
  EXPECT_EQ(count_kind(result, NodeKind::kForStatement), 2u);
  EXPECT_EQ(count_kind(result, NodeKind::kForInStatement), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kForOfStatement), 1u);
}

TEST(Parser, ForInWithExpressionHead) {
  const ParseResult result = parse("for (key in map) { use(key); }");
  EXPECT_EQ(count_kind(result, NodeKind::kForInStatement), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kBinaryExpression), 0u);
}

TEST(Parser, WhileAndDoWhile) {
  const ParseResult result = parse("while (a) b(); do { c(); } while (d);");
  EXPECT_EQ(count_kind(result, NodeKind::kWhileStatement), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kDoWhileStatement), 1u);
}

TEST(Parser, SwitchWithDefault) {
  const ParseResult result = parse(
      "switch (x) { case 1: a(); break; case 2: case 3: b(); break; "
      "default: c(); }");
  EXPECT_EQ(count_kind(result, NodeKind::kSwitchStatement), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kSwitchCase), 4u);
}

TEST(Parser, TryCatchFinally) {
  const ParseResult result =
      parse("try { a(); } catch (e) { b(e); } finally { c(); }");
  EXPECT_EQ(count_kind(result, NodeKind::kTryStatement), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kCatchClause), 1u);
}

TEST(Parser, CatchWithoutParameter) {
  const ParseResult result = parse("try { a(); } catch { b(); }");
  const Node* handler =
      collect_kind(static_cast<const Node*>(result.ast.root()),
                   NodeKind::kCatchClause)[0];
  EXPECT_EQ(handler->kid(0), nullptr);
}

TEST(Parser, TryWithoutHandlerFails) {
  EXPECT_THROW(parse("try { a(); }"), ParseError);
}

TEST(Parser, OperatorPrecedence) {
  const ParseResult result = parse("x = 1 + 2 * 3;");
  const Node* assignment =
      collect_kind(static_cast<const Node*>(result.ast.root()),
                   NodeKind::kAssignmentExpression)[0];
  const Node* plus = assignment->kids[1];
  ASSERT_EQ(plus->kind, NodeKind::kBinaryExpression);
  EXPECT_EQ(plus->str_value, "+");
  EXPECT_EQ(plus->kids[1]->str_value, "*");
}

TEST(Parser, ExponentRightAssociative) {
  const ParseResult result = parse("y = 2 ** 3 ** 2;");
  const Node* assignment =
      collect_kind(static_cast<const Node*>(result.ast.root()),
                   NodeKind::kAssignmentExpression)[0];
  const Node* outer = assignment->kids[1];
  EXPECT_EQ(outer->str_value, "**");
  EXPECT_EQ(outer->kids[1]->str_value, "**");  // right side nests
}

TEST(Parser, LogicalVsBinary) {
  const ParseResult result = parse("r = a && b || c & d;");
  EXPECT_EQ(count_kind(result, NodeKind::kLogicalExpression), 2u);
  EXPECT_EQ(count_kind(result, NodeKind::kBinaryExpression), 1u);
}

TEST(Parser, ConditionalExpression) {
  const ParseResult result = parse("v = a ? b : c ? d : e;");
  EXPECT_EQ(count_kind(result, NodeKind::kConditionalExpression), 2u);
}

TEST(Parser, MemberExpressionFlags) {
  const ParseResult result = parse("a.b.c; a['x']; a[0][i];");
  const auto members = collect_kind(
      static_cast<const Node*>(result.ast.root()), NodeKind::kMemberExpression);
  std::size_t dot = 0;
  std::size_t bracket = 0;
  for (const Node* member : members) {
    if (member->flag_a) {
      ++bracket;
    } else {
      ++dot;
    }
  }
  EXPECT_EQ(dot, 2u);
  EXPECT_EQ(bracket, 3u);
}

TEST(Parser, CallAndNew) {
  const ParseResult result = parse("f(1, 2); new Date(); new Foo.Bar(x);");
  EXPECT_EQ(count_kind(result, NodeKind::kCallExpression), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kNewExpression), 2u);
}

TEST(Parser, ArrowFunctions) {
  const ParseResult result = parse(
      "var f = x => x + 1;"
      "var g = (a, b) => { return a * b; };"
      "var h = () => 0;"
      "var i = async (q) => q;");
  EXPECT_EQ(count_kind(result, NodeKind::kArrowFunctionExpression), 4u);
}

TEST(Parser, ArrowVsParenthesizedExpression) {
  const ParseResult result = parse("var y = (a + b) * 2;");
  EXPECT_EQ(count_kind(result, NodeKind::kArrowFunctionExpression), 0u);
}

TEST(Parser, ObjectLiteralForms) {
  const ParseResult result = parse(
      "var o = { a: 1, 'b': 2, 3: 'c', [k]: v, short, method() {}, "
      "get prop() { return 1; }, set prop(x) {}, ...rest };");
  EXPECT_EQ(count_kind(result, NodeKind::kObjectExpression), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kSpreadElement), 1u);
  const auto properties = collect_kind(
      static_cast<const Node*>(result.ast.root()), NodeKind::kProperty);
  EXPECT_EQ(properties.size(), 8u);
}

TEST(Parser, ArrayWithHoles) {
  const ParseResult result = parse("var a = [1, , 3, ...xs];");
  const Node* array =
      collect_kind(static_cast<const Node*>(result.ast.root()),
                   NodeKind::kArrayExpression)[0];
  EXPECT_EQ(array->kids.size(), 4u);
  EXPECT_EQ(array->kids[1], nullptr);
}

TEST(Parser, ClassDeclaration) {
  const ParseResult result = parse(
      "class Point extends Base {"
      "  constructor(x) { this.x = x; }"
      "  static of(x) { return new Point(x); }"
      "  get norm() { return this.x; }"
      "  move(dx) { this.x += dx; }"
      "}");
  EXPECT_EQ(count_kind(result, NodeKind::kClassDeclaration), 1u);
  const auto methods = collect_kind(
      static_cast<const Node*>(result.ast.root()), NodeKind::kMethodDefinition);
  ASSERT_EQ(methods.size(), 4u);
  EXPECT_EQ(methods[0]->str_value, "constructor");
  EXPECT_TRUE(methods[1]->flag_b);  // static
  EXPECT_EQ(methods[2]->str_value, "get");
}

TEST(Parser, TemplateLiteralAst) {
  const ParseResult result = parse("var s = `a ${x + 1} b`;");
  EXPECT_EQ(count_kind(result, NodeKind::kTemplateLiteral), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kTemplateElement), 2u);
  EXPECT_EQ(count_kind(result, NodeKind::kBinaryExpression), 1u);
}

TEST(Parser, TaggedTemplate) {
  const ParseResult result = parse("tag`x ${y} z`;");
  EXPECT_EQ(count_kind(result, NodeKind::kTaggedTemplateExpression), 1u);
}

TEST(Parser, DestructuringDeclarations) {
  const ParseResult result = parse(
      "var {a, b: c, d = 1} = obj; let [x, , y, ...rest] = arr;");
  EXPECT_EQ(count_kind(result, NodeKind::kObjectPattern), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kArrayPattern), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kRestElement), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kAssignmentPattern), 1u);
}

TEST(Parser, AutomaticSemicolonInsertion) {
  const ParseResult result = parse("var a = 1\nvar b = 2\nreturn_like()");
  EXPECT_EQ(count_kind(result, NodeKind::kVariableDeclaration), 2u);
}

TEST(Parser, MissingSemicolonSameLineFails) {
  EXPECT_THROW(parse("var a = 1 var b = 2"), ParseError);
}

TEST(Parser, RestrictedReturn) {
  const ParseResult result = parse("function f() { return\n42; }");
  const Node* return_statement =
      collect_kind(static_cast<const Node*>(result.ast.root()),
                   NodeKind::kReturnStatement)[0];
  EXPECT_EQ(return_statement->kid(0), nullptr);  // ASI after return
}

TEST(Parser, LabeledStatementAndJumps) {
  const ParseResult result = parse(
      "outer: for (var i = 0; i < 3; i++) {"
      "  for (var j = 0; j < 3; j++) { if (j) continue outer; break; }"
      "}");
  EXPECT_EQ(count_kind(result, NodeKind::kLabeledStatement), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kContinueStatement), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kBreakStatement), 1u);
}

TEST(Parser, SequenceExpression) {
  const ParseResult result = parse("x = (a, b, c);");
  const auto sequences = collect_kind(
      static_cast<const Node*>(result.ast.root()), NodeKind::kSequenceExpression);
  ASSERT_EQ(sequences.size(), 1u);
  EXPECT_EQ(sequences[0]->kids.size(), 3u);
}

TEST(Parser, UnaryAndUpdate) {
  const ParseResult result = parse("!a; typeof b; void 0; delete c.d; ++e; f--;");
  EXPECT_EQ(count_kind(result, NodeKind::kUnaryExpression), 4u);
  const auto updates = collect_kind(
      static_cast<const Node*>(result.ast.root()), NodeKind::kUpdateExpression);
  ASSERT_EQ(updates.size(), 2u);
  EXPECT_TRUE(updates[0]->flag_a);   // prefix
  EXPECT_FALSE(updates[1]->flag_a);  // postfix
}

TEST(Parser, IifePattern) {
  const ParseResult result = parse("(function () { var x = 1; })();");
  EXPECT_EQ(count_kind(result, NodeKind::kFunctionExpression), 1u);
  EXPECT_EQ(count_kind(result, NodeKind::kCallExpression), 1u);
}

TEST(Parser, AsyncAwait) {
  const ParseResult result = parse(
      "async function f() { const r = await fetch(url); return r; }");
  EXPECT_EQ(count_kind(result, NodeKind::kAwaitExpression), 1u);
  const Node* function =
      collect_kind(static_cast<const Node*>(result.ast.root()),
                   NodeKind::kFunctionDeclaration)[0];
  EXPECT_TRUE(function->flag_c);  // async
}

TEST(Parser, GeneratorsAndYield) {
  const ParseResult result =
      parse("function* gen() { yield 1; yield* other(); }");
  const Node* function =
      collect_kind(static_cast<const Node*>(result.ast.root()),
                   NodeKind::kFunctionDeclaration)[0];
  EXPECT_TRUE(function->flag_b);  // generator
  const auto yields = collect_kind(
      static_cast<const Node*>(result.ast.root()), NodeKind::kYieldExpression);
  ASSERT_EQ(yields.size(), 2u);
  EXPECT_FALSE(yields[0]->flag_a);
  EXPECT_TRUE(yields[1]->flag_a);  // delegate
}

TEST(Parser, WithStatement) {
  const ParseResult result = parse("with (obj) { use(x); }");
  EXPECT_EQ(count_kind(result, NodeKind::kWithStatement), 1u);
}

TEST(Parser, DebuggerStatement) {
  const ParseResult result = parse("debugger;");
  EXPECT_EQ(count_kind(result, NodeKind::kDebuggerStatement), 1u);
}

TEST(Parser, RegexLiteral) {
  const ParseResult result = parse("var re = /a[b/]c/g;");
  const auto literals = collect_kind(
      static_cast<const Node*>(result.ast.root()), NodeKind::kLiteral);
  bool found_regex = false;
  for (const Node* literal : literals) {
    if (literal->lit_kind == LiteralKind::kRegExp) {
      found_regex = true;
      EXPECT_EQ(literal->str_value, "a[b/]c");
      EXPECT_EQ(literal->raw, "g");
    }
  }
  EXPECT_TRUE(found_regex);
}

TEST(Parser, OptionalChainingDesugared) {
  const ParseResult result = parse("a?.b; c?.[0]; d?.(1);");
  EXPECT_EQ(count_kind(result, NodeKind::kMemberExpression), 2u);
  EXPECT_EQ(count_kind(result, NodeKind::kCallExpression), 1u);
}

TEST(Parser, FinalizeAssignsIdsAndParents) {
  const ParseResult result = parse("var a = f(1) + 2;");
  const Node* root = result.ast.root();
  EXPECT_EQ(root->id, 0u);
  EXPECT_GT(result.ast.node_count(), 5u);
  walk_preorder(root, [root](const Node& node) {
    if (&node != root) {
      ASSERT_NE(node.parent, nullptr);
    }
  });
}

TEST(Parser, ParseErrorsCarryLocation) {
  try {
    parse("var a = ;");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.line(), 1u);
    EXPECT_GT(error.column(), 0u);
  }
}

TEST(Parser, UnbalancedBraceFails) {
  EXPECT_THROW(parse("function f() { if (a) {"), ParseError);
}

TEST(Parser, ParsesHelper) {
  EXPECT_TRUE(parses("var x = 1;"));
  EXPECT_FALSE(parses("var = ;"));
}

TEST(Parser, TokensExposedInResult) {
  const ParseResult result = parse("var a = 1; // note\n");
  EXPECT_EQ(result.tokens.size(), 5u);
  EXPECT_EQ(result.comment_count, 1u);
  EXPECT_EQ(result.source_lines, 2u);
}

TEST(Parser, DeepNestingSurvives) {
  std::string source = "var x = ";
  for (int i = 0; i < 200; ++i) source += "(";
  source += "1";
  for (int i = 0; i < 200; ++i) source += ")";
  source += ";";
  EXPECT_TRUE(parses(source));
}

TEST(Parser, KeywordPropertyNames) {
  EXPECT_TRUE(parses("var o = { if: 1, for: 2, class: 3 }; o.if; o.class;"));
}

TEST(Parser, GetSetAsPlainNames) {
  EXPECT_TRUE(parses("var o = { get: 1, set: 2 }; o.get;"));
}

}  // namespace
}  // namespace jst
