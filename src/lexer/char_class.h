// 256-entry character-class tables for the table-driven lexer.
//
// Two tables, both generated at compile time in char_class.cpp from the
// same predicates the scalar lexer historically used (DESIGN.md §16):
//
//  * kCharFlags — a bitmask per byte (whitespace, identifier start/part,
//    digit, hex digit, line terminator) that replaces the per-character
//    predicate calls in the scan loops with one indexed load.
//  * kCharClass — the token-start dispatch class consumed by
//    Lexer::next(): one load plus one indexed jump replaces the
//    if/else-if ladder over is_id_start/is_digit/quote/backtick/....
//
// The taxonomy is frozen by the bit-identity contract: a byte's class
// must route it to exactly the scan_* routine the ladder chose, so the
// tables are cross-checked entry-by-entry against the reference
// predicates by static_asserts in char_class.cpp and at runtime by the
// differential suite (test_lexer_diff).
#pragma once

#include <array>
#include <cstdint>

namespace jst::lex {

enum CharFlag : std::uint8_t {
  kFlagWhitespace = 1u << 0,  // ' ' \t \v \f \r — trivia, never a newline
  kFlagIdStart = 1u << 1,     // A-Z a-z _ $
  kFlagIdPart = 1u << 2,      // id start + 0-9 + every byte >= 0x80
  kFlagDigit = 1u << 3,       // 0-9
  kFlagHexDigit = 1u << 4,    // 0-9 a-f A-F
  kFlagLineTerminator = 1u << 5,  // \n \r
};

// Token-start dispatch classes, ordered so the hot identifier/punctuator
// cases sit first in the jump table.
enum class CharClass : std::uint8_t {
  kIdStart,     // A-Z a-z _ $         -> scan_identifier_or_keyword
  kPunct,       // ( ) { } ; , + - ...  -> scan_punctuator
  kDigit,       // 0-9                  -> scan_number
  kQuote,       // " '                  -> scan_string
  kDot,         // .                    -> number if a digit follows
  kSlash,       // /                    -> regex or punctuator
  kBacktick,    // `                    -> scan_template
  kBackslash,   // backslash            -> \uXXXX-escaped identifier
  kWhitespace,  // ' ' \t \v \f \r      -> consumed by skip_trivia
  kNewline,     // \n                   -> trivia + newline_before
  kOther,       // bytes that never start a token -> unexpected-character
};

extern const std::array<std::uint8_t, 256> kCharFlags;
extern const std::array<CharClass, 256> kCharClass;

inline bool has_flag(unsigned char c, CharFlag flag) {
  return (kCharFlags[c] & flag) != 0;
}

inline bool is_id_start_byte(unsigned char c) {
  return has_flag(c, kFlagIdStart);
}
// Identifier continuation as the scalar loop accepted it: ASCII
// alphanumerics, '_', '$', and any byte >= 0x80 (UTF-8 identifiers in
// obfuscated code pass through verbatim).
inline bool is_id_part_byte(unsigned char c) { return has_flag(c, kFlagIdPart); }
inline bool is_digit_byte(unsigned char c) { return has_flag(c, kFlagDigit); }
inline bool is_hex_digit_byte(unsigned char c) {
  return has_flag(c, kFlagHexDigit);
}
inline bool is_line_terminator_byte(unsigned char c) {
  return has_flag(c, kFlagLineTerminator);
}

}  // namespace jst::lex
