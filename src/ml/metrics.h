// Evaluation metrics used throughout the paper's experiments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace jst::ml {

// Exact-match ("subset") accuracy over multi-label predictions: both the
// predicted labels and their number must match the ground truth (§III-E1).
double subset_accuracy(const std::vector<std::vector<std::size_t>>& predicted,
                       const std::vector<std::vector<std::size_t>>& truth);

// Paper's Top-k rule: a Top-k prediction is correct when ALL k most
// probable labels are part of the ground-truth label set.
bool topk_correct(std::span<const std::size_t> topk,
                  std::span<const std::size_t> truth);

// Wrong labels: predictions not in the ground truth. Missing labels:
// ground-truth labels not predicted (Figure 1's secondary axes).
std::size_t wrong_labels(std::span<const std::size_t> predicted,
                         std::span<const std::size_t> truth);
std::size_t missing_labels(std::span<const std::size_t> predicted,
                           std::span<const std::size_t> truth);

struct BinaryConfusion {
  std::size_t true_positive = 0;
  std::size_t false_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_negative = 0;

  void add(bool predicted, bool actual);
  double accuracy() const;
  double precision() const;
  double recall() const;
  double f1() const;
  std::size_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
};

// Simple accuracy of boolean predictions.
double binary_accuracy(std::span<const bool> predicted,
                       std::span<const bool> truth);

}  // namespace jst::ml
