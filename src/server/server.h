// jstraced-server: a long-lived analysis daemon over a Unix domain socket.
//
// The step from "one process, one batch" to "serving" (DESIGN.md §13):
// clients connect to a SOCK_STREAM Unix socket and speak newline-delimited
// JSON in the versioned wire schema (analysis/wire.h) — one AnalyzeRequest
// per line in, one AnalyzeResponse per line out, emitted in completion
// order and correlated by the echoed request id. Each admitted request is
// queued into a support::ThreadPool and served by AnalyzerService under
// its own ResourceLimits deadline (support/budget.h).
//
// Admission control: a request is shed with an explicit kOverloaded
// response — never queued to time out silently — when either
//   * the hard cap trips: in-flight requests >= max_queue_depth, or
//   * the wait estimate exceeds the request's deadline:
//       queue_depth × observed p95 service time / workers > deadline_ms
// (the p95 is the *sliding-window* service-time p95 once the window has
// warmed — admission_p95_ms() — so the estimate tracks the traffic being
// served right now rather than everything since boot). A request whose
// deadline has already elapsed while queued is shed at pickup for the
// same reason. The decision logic is a pure function
// (Server::should_shed) so shedding is deterministic and unit-testable.
//
// Observability (DESIGN.md §14): every request carries a 16-hex
// request_id (client-supplied on wire v2, else minted at admission) that
// flows through obs::RequestScope into every trace span and
// flight-recorder event the request produces; admit/shed verdicts land
// in the flight recorder with the exact inputs they consumed.
//
// Also served on the same socket:
//   * {"op":"metrics"} → one JSON line with the obs::MetricsRegistry;
//   * {"op":"stats"} → the recent-window view (qps, shed rate, service
//     percentiles, slowest-N exemplars) — see Server::stats_json;
//   * {"op":"flight"} → the flight-recorder contents as a JSON array;
//   * a raw "GET /metrics" line → Prometheus text exposition over a
//     minimal HTTP/1.0 response, then the connection closes (so
//     `curl --unix-socket` scrape configs work unchanged);
//   * {"op":"ping"} → {"status":"ok"} liveness probe.
//
// Shutdown is a graceful drain (SIGTERM in the daemon binary maps to
// Server::shutdown): stop accepting connections, answer every admitted
// request, shed still-arriving ones with kDraining, then close all
// connections and remove the socket file.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/service.h"
#include "obs/flight_recorder.h"
#include "obs/window.h"
#include "support/budget.h"
#include "support/thread_pool.h"

namespace jst::server {

struct ServerConfig {
  // Filesystem path the listening socket binds to; a stale file from a
  // previous run is removed. Must be non-empty.
  std::string socket_path;
  // Analysis worker threads (0 = JST_THREADS / hardware default via
  // support::resolve_threads). Connection readers are separate threads;
  // `workers` bounds concurrent analyses.
  std::size_t workers = 0;
  // Hard admission cap on in-flight (queued + running) requests; 0 means
  // "no cap" and only the deadline-based estimate sheds.
  std::size_t max_queue_depth = 256;
  // Default per-request limits when a request carries no override.
  ResourceLimits default_limits;
  // Cache discipline applied to requests that carry no explicit
  // cache_mode (wire v3, DESIGN.md §15): a request arriving with
  // kDefault is rewritten to this before serving, so --cache-mode on the
  // daemon command line governs the whole process. Requests naming
  // bypass/refresh explicitly always win. Meaningless unless the
  // AnalyzerService has a ResultCache attached.
  CacheMode default_cache_mode = CacheMode::kDefault;
  // Artificial floor on per-request service time, in milliseconds. Load
  // and drain tests use it to make queue pressure reproducible on corpora
  // whose real scripts analyze in microseconds; 0 disables.
  double min_service_ms = 0.0;
  // Content-hash registry backing source_hash references: bounded both by
  // entry count and by total stored bytes, evicting least-recently-used
  // entries (a registration or a successful resolution is a use) instead
  // of refusing inserts once full. A source larger than the effective
  // request limits' max_source_bytes is never registered — the registry
  // can't be used to pin sources the pipeline would refuse to analyze.
  // hash_registry_entries = 0 disables resolution entirely.
  std::size_t hash_registry_entries = 4096;
  std::size_t hash_registry_bytes = 64 * 1024 * 1024;
  // Upper bound on any single blocking send to a client, in milliseconds
  // (SO_SNDTIMEO on every accepted fd). A client that stops reading its
  // responses is dropped when a write stalls past this, instead of
  // pinning the writer (a pool worker lane, or the reader answering an
  // op) on a full socket buffer forever. 0 = unbounded.
  std::size_t write_timeout_ms = 10000;
  // Sliding window (seconds) behind the recent-traffic view: the
  // admission p95, {"op":"stats"} rates, and the shed-burst detector all
  // read this window rather than since-boot aggregates.
  std::size_t window_seconds = 60;
  // Warm-up rule: the windowed p95 steers admission only once the window
  // holds at least this many observations; colder than that, admission
  // falls back to the cumulative jst_server_service_ms p95 (which early
  // on *is* recent traffic). Guards the estimate against one or two
  // unlucky samples right after boot or after an idle gap.
  std::size_t window_warm_min_count = 16;
  // Overload forensics: when this many requests were shed within the
  // window, dump the flight recorder to `flight_dump_path` (at most once
  // per window). 0 disables the trigger.
  std::size_t shed_burst_dump_threshold = 32;
  // Destination for automatic flight-recorder dumps (shed bursts, and
  // SIGUSR1 in the daemon binary). Empty disables automatic dumps;
  // {"op":"flight"} works regardless.
  std::string flight_dump_path;
  // Slowest-N exemplar table size (distinct source_hash entries kept).
  std::size_t slow_exemplars = 8;
};

// Point-in-time counters for tests and the drain log line.
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests_admitted = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t requests_shed = 0;      // kOverloaded + kDraining
  std::uint64_t requests_invalid = 0;   // kInvalidRequest + kNotFound
};

class Server {
 public:
  // Binds and listens immediately (throws std::runtime_error on socket
  // errors); serving starts with start().
  Server(const analysis::AnalyzerService& service, ServerConfig config);
  ~Server();  // implies shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Spawns the accept loop. Idempotent.
  void start();

  // Graceful drain: stop accepting, answer every admitted request, shed
  // the rest with kDraining, close every connection, unlink the socket.
  // Safe to call from a signal-driven shutdown path (not the handler
  // itself) and idempotent.
  void shutdown();

  const ServerConfig& config() const { return config_; }
  const std::string& socket_path() const { return config_.socket_path; }
  std::size_t workers() const { return workers_; }
  ServerStats stats() const;

  // The {"op":"stats"} payload: one JSON object with the recent-window
  // view (qps / shed rate / service p50/p95/p99 + warm flag), the
  // cumulative counters, current queue depth, and the slowest-N
  // exemplars. Also reachable in-process for tests and bench capture.
  std::string stats_json() const;

  // The p95 service-time estimate admission control consults: the
  // sliding-window p95 once the window holds at least
  // `window_warm_min_count` samples, else the cumulative histogram's
  // p95 (the stale-admission fix — a slow burst ages out of the window
  // instead of poisoning the estimate for the life of the process).
  double admission_p95_ms() const;

  // The admission-control predicate (DESIGN.md §13), exposed as a pure
  // function: shed when the hard cap trips or when the estimated queue
  // wait (queue_depth × p95 service ms / workers) exceeds the request's
  // deadline. With no deadline only the hard cap sheds — an ungoverned
  // request is allowed to wait arbitrarily long.
  static bool should_shed(std::size_t queue_depth, std::size_t workers,
                          double p95_service_ms, double deadline_ms,
                          std::size_t max_queue_depth);

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(Connection& connection);
  void handle_line(Connection& connection, const std::string& line);
  void handle_request(Connection& connection, analysis::AnalyzeRequest request);
  void process_request(Connection& connection,
                       const analysis::AnalyzeRequest& request,
                       std::chrono::steady_clock::time_point admitted_at,
                       std::size_t depth_at_admission);
  void respond(Connection& connection, const analysis::AnalyzeResponse&);
  // Writes one already-framed line under the connection's write_mutex;
  // a failed write (peer gone, or stalled past write_timeout_ms) drops
  // the connection via ::shutdown so the reader tears it down.
  void write_line(Connection& connection, const std::string& data);
  void serve_metrics_http(Connection& connection);
  // Shed-burst trigger: dumps the flight recorder to
  // config_.flight_dump_path when window-shed crosses the threshold,
  // rate-limited to once per window.
  void maybe_dump_flight_on_shed_burst();
  // Registers an inline source under its hash (LRU-touching it if already
  // present), silently skipping sources above `max_entry_bytes` (0 = no
  // per-entry cap) — registration is best-effort, never an error.
  void register_source(const std::string& hash, const std::string& source,
                       std::size_t max_entry_bytes);
  // Resolves a hash reference, refreshing the entry's LRU position.
  bool resolve_source(const std::string& hash, std::string& source);

  const analysis::AnalyzerService* service_;
  ServerConfig config_;
  std::size_t workers_ = 1;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  // Analysis pool: workers_ real worker threads (the pool counts the
  // caller as a lane, and reader threads never analyze inline).
  std::unique_ptr<support::ThreadPool> pool_;

  // In-flight (admitted, not yet answered) request count; shutdown waits
  // for it to reach zero.
  mutable std::mutex inflight_mutex_;
  std::condition_variable inflight_zero_;
  std::size_t inflight_ = 0;

  mutable std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  // Content-hash registry: LRU list (front = most recently used) plus a
  // hash → list-node index, bounded by config_.hash_registry_entries and
  // config_.hash_registry_bytes (payload bytes; registry_bytes_ tracks
  // the current total).
  mutable std::mutex registry_mutex_;
  std::list<std::pair<std::string, std::string>> registry_lru_;
  std::unordered_map<
      std::string, std::list<std::pair<std::string, std::string>>::iterator>
      registry_index_;
  std::size_t registry_bytes_ = 0;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  // Recent-traffic view (ServerConfig::window_seconds): per-server so
  // tests running several servers in one process don't blend windows the
  // way the process-wide cumulative registry does.
  obs::WindowedHistogram service_window_;
  obs::WindowedCounter requests_window_;
  obs::WindowedCounter shed_window_;
  obs::SlowExemplars slow_exemplars_;
  static constexpr std::uint64_t kNeverDumped = ~std::uint64_t{0};
  std::atomic<std::uint64_t> last_flight_dump_s_{kNeverDumped};
};

}  // namespace jst::server
