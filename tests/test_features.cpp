#include <gtest/gtest.h>

#include <cmath>

#include "corpus/generator.h"
#include "features/feature_extractor.h"
#include "transform/transform.h"

namespace jst {
namespace {

using features::FeatureConfig;

std::size_t name_index(std::string_view name) {
  const auto& names = features::handpicked_feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return i;
  }
  ADD_FAILURE() << "unknown feature " << name;
  return 0;
}

float feature_of(std::string_view source, std::string_view name) {
  const ScriptAnalysis analysis = analyze_script(source);
  const std::vector<float> values = features::handpicked_features(analysis);
  return values[name_index(name)];
}

TEST(AnalysisPipeline, ParsesAndAugments) {
  const ScriptAnalysis analysis =
      analyze_script("var a = 1; if (a) { use(a); } else { other(); }");
  EXPECT_GT(analysis.parse.ast.node_count(), 5u);
  EXPECT_GT(analysis.control_flow.edge_count(), 0u);
  EXPECT_GT(analysis.data_flow.edge_count(), 0u);
}

TEST(AnalysisPipeline, OptionsDisableStages) {
  AnalysisOptions options;
  options.build_cfg = false;
  options.build_dataflow = false;
  const ScriptAnalysis analysis = analyze_script("if (a) b();", options);
  EXPECT_EQ(analysis.control_flow.edge_count(), 0u);
  EXPECT_EQ(analysis.data_flow.edge_count(), 0u);
}

TEST(Eligibility, SizeBounds) {
  EXPECT_FALSE(size_eligible(std::string(100, 'x')));
  EXPECT_TRUE(size_eligible(std::string(1000, 'x')));
  EXPECT_FALSE(size_eligible(std::string(3 * 1024 * 1024, 'x')));
}

TEST(Eligibility, RequiresInterestingNodes) {
  std::string boring = "var filler = 0;\n";
  while (boring.size() < 600) {
    boring += "var x" + std::to_string(boring.size()) + " = 1;\n";
  }
  const ScriptAnalysis boring_analysis = analyze_script(boring);
  EXPECT_FALSE(script_eligible(boring_analysis));

  const std::string interesting = boring + "function f() { return 1; }\n";
  const ScriptAnalysis ok_analysis = analyze_script(interesting);
  EXPECT_TRUE(script_eligible(ok_analysis));
}

TEST(Ngram, DimensionAndNormalization) {
  const ScriptAnalysis analysis =
      analyze_script("function f(a) { return a + 1; } f(2);");
  features::NgramConfig config;
  config.hash_dim = 64;
  const std::vector<float> histogram =
      features::ngram_features(analysis.parse.ast.root(), config);
  ASSERT_EQ(histogram.size(), 64u);
  float total = 0.0f;
  for (float v : histogram) {
    EXPECT_GE(v, 0.0f);
    total += v;
  }
  EXPECT_NEAR(total, 1.0f, 1e-4f);
}

TEST(Ngram, TinyTreeYieldsZeroVector) {
  const ScriptAnalysis analysis = analyze_script("x;");
  features::NgramConfig config;
  config.hash_dim = 32;
  const auto histogram =
      features::ngram_features(analysis.parse.ast.root(), config);
  float total = 0.0f;
  for (float v : histogram) total += v;
  EXPECT_EQ(total, 0.0f);  // fewer than n nodes
}

TEST(Ngram, IdenticalStructureSameHistogram) {
  const ScriptAnalysis a = analyze_script("var a = f(1);");
  const ScriptAnalysis b = analyze_script("var zz = gg(7);");
  features::NgramConfig config;
  EXPECT_EQ(features::ngram_features(a.parse.ast.root(), config),
            features::ngram_features(b.parse.ast.root(), config));
}

TEST(Ngram, DifferentStructureDiffers) {
  const ScriptAnalysis a = analyze_script("var a = f(1); if (a) g();");
  const ScriptAnalysis b = analyze_script("while (x) { y += 1; }");
  features::NgramConfig config;
  EXPECT_NE(features::ngram_features(a.parse.ast.root(), config),
            features::ngram_features(b.parse.ast.root(), config));
}

TEST(Handpicked, NamesMatchVectorSize) {
  const ScriptAnalysis analysis = analyze_script("var a = 1; use(a);");
  const std::vector<float> values = features::handpicked_features(analysis);
  EXPECT_EQ(values.size(), features::handpicked_feature_names().size());
}

TEST(Handpicked, AllFinite) {
  corpus::ProgramGenerator generator(5);
  for (int i = 0; i < 5; ++i) {
    const std::string program = generator.generate();
    const ScriptAnalysis analysis = analyze_script(program);
    for (float value : features::handpicked_features(analysis)) {
      EXPECT_TRUE(std::isfinite(value));
    }
  }
}

TEST(Handpicked, TernaryProportion) {
  EXPECT_GT(feature_of("var v = a ? b : c;", "ternary_proportion"), 0.0f);
  EXPECT_EQ(feature_of("var v = 1;", "ternary_proportion"), 0.0f);
}

TEST(Handpicked, DotVsBracketRatio) {
  const float all_dot = feature_of("a.b; c.d; e.f;", "dot_to_member_ratio");
  const float all_bracket =
      feature_of("a['b']; c['d'];", "dot_to_member_ratio");
  EXPECT_FLOAT_EQ(all_dot, 1.0f);
  EXPECT_FLOAT_EQ(all_bracket, 0.0f);
}

TEST(Handpicked, IdentifierLengthStats) {
  const float long_names = feature_of(
      "var veryLongIdentifierName = anotherExtremelyLongName;",
      "avg_identifier_length");
  const float short_names = feature_of("var a = b;", "avg_identifier_length");
  EXPECT_GT(long_names, short_names);
}

TEST(Handpicked, HexlikeIdentifiers) {
  EXPECT_GT(
      feature_of("var _0x1a2b3c = _0xdeadbe;", "hexlike_identifier_fraction"),
      0.9f);
  EXPECT_EQ(feature_of("var userName = count;", "hexlike_identifier_fraction"),
            0.0f);
}

TEST(Handpicked, BuiltinPresence) {
  EXPECT_EQ(feature_of("eval(code);", "has_eval"), 1.0f);
  EXPECT_EQ(feature_of("run(code);", "has_eval"), 0.0f);
  EXPECT_EQ(feature_of("var d = atob(s);", "has_atob"), 1.0f);
}

TEST(Handpicked, StringOperations) {
  EXPECT_GT(
      feature_of("s.split('').reverse().join('');", "string_ops_per_node"),
      0.0f);
}

TEST(Handpicked, DebuggerDensity) {
  EXPECT_GT(feature_of("while (true) { debugger; }", "debugger_per_node"),
            0.0f);
  EXPECT_GT(
      feature_of("while (true) { debugger; }", "debugger_in_loop_fraction"),
      0.9f);
}

TEST(Handpicked, SwitchInLoopSignature) {
  const std::string flattened =
      "function f() { var s = 0; while (true) { switch (s) { case 0: a(); "
      "continue; } break; } }";
  EXPECT_GT(feature_of(flattened, "switch_in_loop_per_function"), 0.0f);
  EXPECT_EQ(feature_of("function g() { switch (x) { case 1: a(); } }",
                       "switch_in_loop_per_function"),
            0.0f);
}

TEST(Handpicked, CommentRatioReflectsComments) {
  const float commented = feature_of(
      "// a comment about things\n// more commentary here\nvar a = f(1);",
      "comment_byte_ratio");
  const float bare = feature_of("var a = f(1);", "comment_byte_ratio");
  EXPECT_GT(commented, bare);
}

TEST(Handpicked, FetchedFromStructureUsesDataflow) {
  const float fetched = feature_of(
      "var table = ['a', 'b', 'c']; use(table[0]); use(table[1]); use(table);",
      "fetched_from_structure_fraction");
  const float plain = feature_of("var n = 1; use(n); use(n);",
                                 "fetched_from_structure_fraction");
  EXPECT_GT(fetched, plain);
}

TEST(Handpicked, MinifiedVsPrettyCharsPerLine) {
  corpus::ProgramGenerator generator(9);
  const std::string pretty = generator.generate();
  const std::string compact = transform::minify(pretty);
  const ScriptAnalysis pretty_analysis = analyze_script(pretty);
  const ScriptAnalysis compact_analysis = analyze_script(compact);
  const std::size_t index = name_index("avg_chars_per_line");
  EXPECT_GT(features::handpicked_features(compact_analysis)[index],
            features::handpicked_features(pretty_analysis)[index] * 3);
}

TEST(Extractor, DimensionsMatchConfig) {
  FeatureConfig config;
  config.ngram.hash_dim = 128;
  EXPECT_EQ(features::feature_dimension(config),
            features::handpicked_feature_names().size() + 128);
  const std::vector<float> vec =
      features::extract_from_source("var a = f(1); if (a) g();", config);
  EXPECT_EQ(vec.size(), features::feature_dimension(config));
  EXPECT_EQ(features::feature_names(config).size(), vec.size());
}

TEST(Extractor, ConfigSubsets) {
  FeatureConfig ngrams_only;
  ngrams_only.use_handpicked = false;
  EXPECT_EQ(features::feature_dimension(ngrams_only),
            ngrams_only.ngram.hash_dim);
  FeatureConfig handpicked_only;
  handpicked_only.use_ngrams = false;
  EXPECT_EQ(features::feature_dimension(handpicked_only),
            features::handpicked_feature_names().size());
}

TEST(Extractor, DeterministicForSameInput) {
  FeatureConfig config;
  const std::string source = "function q(a) { return a * 2; } q(3);";
  EXPECT_EQ(features::extract_from_source(source, config),
            features::extract_from_source(source, config));
}

TEST(Extractor, SeparatesRegularFromMinified) {
  corpus::ProgramGenerator generator(11);
  const std::string pretty = generator.generate();
  const std::string compact = transform::minify(pretty);
  FeatureConfig config;
  const auto a = features::extract_from_source(pretty, config);
  const auto b = features::extract_from_source(compact, config);
  double distance = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    distance += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  EXPECT_GT(distance, 1.0);
}

}  // namespace
}  // namespace jst
