// Control-flow augmentation of the AST.
//
// Following the paper's JSTAP adjustment (§III-A): "we restrict flows of
// control to nodes having an impact on program execution paths, meaning
// statement nodes, CatchClause, and ConditionalExpression."
//
// The graph is intra-procedural (one sub-graph per function plus the
// top-level program), with edges for sequencing, branching (if/switch/
// conditional expressions), loop back-edges, break/continue (including
// labeled forms), and exception paths into CatchClause.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "ast/ast.h"

namespace jst {

struct ControlFlow {
  // Deduplicated directed edges between node ids (Ast::finalize() order),
  // sorted by (from, to).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;

  std::size_t edge_count() const { return edges.size(); }

  // Number of nodes with out-degree >= 2 (branch points). Computed once
  // from the CSR adjacency while build_control_flow finalizes the edge
  // list (DESIGN.md §17); previously a per-call linear scan, and before
  // that an unordered_map built per call.
  std::size_t branch_node_count() const { return branch_node_count_; }

  // Number of back edges (edge to an id <= own id, i.e., loops; pre-order
  // ids make ancestors smaller). Cached at build like the branch count.
  std::size_t back_edge_count() const { return back_edge_count_; }

 private:
  friend struct CfgBuildAccess;
  std::size_t branch_node_count_ = 0;
  std::size_t back_edge_count_ = 0;
};

// Reusable builder workspace: the raw (unsorted) edge list, the shared
// exits/conditional/breakable stacks the statement walk runs on, and the
// CSR arrays the edge list is finalized through. Capacity survives across
// scripts; steady-state CFG builds allocate only the returned edge
// vector.
struct CfgScratch {
  // One break/continue target on the breakable stack. `label` views the
  // AST arena; `sink_head`/`sink_tail` chain this target's recorded break
  // sites through `break_links`.
  struct Breakable {
    std::string_view label;       // empty for unlabeled targets
    const Node* continue_target;  // nullptr for switch / labeled block
    std::uint32_t sink_head;
    std::uint32_t sink_tail;
  };
  struct BreakLink {
    const Node* site = nullptr;
    std::uint32_t next = 0;
  };

  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;  // raw order
  // Shared exits stack: each statement's fall-through exits are a
  // segment on top; callers mark/consume/truncate.
  std::vector<const Node*> exits;
  // (node, nearest cfg parent) stack for conditional-expression linking.
  std::vector<std::pair<const Node*, const Node*>> cond_stack;
  std::vector<Breakable> breakables;
  std::vector<BreakLink> break_links;
  // Nested-function discovery stack.
  std::vector<const Node*> func_stack;
  // CSR finalization: per-row cursors/offsets and the column array.
  std::vector<std::uint32_t> row_offsets;
  std::vector<std::uint32_t> col;

  std::size_t capacity_bytes() const {
    return edges.capacity() * sizeof(edges[0]) +
           exits.capacity() * sizeof(const Node*) +
           cond_stack.capacity() * sizeof(cond_stack[0]) +
           breakables.capacity() * sizeof(Breakable) +
           break_links.capacity() * sizeof(BreakLink) +
           func_stack.capacity() * sizeof(const Node*) +
           row_offsets.capacity() * sizeof(std::uint32_t) +
           col.capacity() * sizeof(std::uint32_t);
  }
};

// Builds the control-flow edges for a finalized AST. The AST must have had
// Ast::finalize() called (ids and parents assigned). A non-null `budget`
// is polled for the wall-clock deadline while edges are emitted; a passed
// deadline throws BudgetExceeded. `scratch`, when non-null, is the
// reusable workspace above; nullptr allocates per call.
ControlFlow build_control_flow(const Ast& ast, Budget* budget = nullptr,
                               CfgScratch* scratch = nullptr);

}  // namespace jst
