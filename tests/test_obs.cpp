// Observability subsystem tests: metrics-registry concurrency (exact
// counter totals, monotone percentiles), export formats (JSON document,
// Prometheus text), trace-span JSONL validity and nesting, and the
// end-to-end smoke used by the `obs` ctest label — a traced batch run
// whose outcomes must be bit-identical with and without sinks attached.
//
// The concurrency hammers run through support::run_parallel with explicit
// widths *and* under the JST_THREADS=1/4 ctest matrix, so both the pinned
// and the environment-driven pool shapes are exercised.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "analysis/service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/thread_pool.h"

namespace jst {
namespace {

// --- minimal JSON syntax checker (validation only, no DOM) ---

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view text) {
  return JsonChecker(text).valid();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Extracts the numeric value of `"key":` from a single-line JSON event.
double json_field(const std::string& line, const std::string& key) {
  const std::string needle = '"' + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
  if (at == std::string::npos) return 0.0;
  return std::atof(line.c_str() + at + needle.size());
}

std::string json_string_field(const std::string& line,
                              const std::string& key) {
  const std::string needle = '"' + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string();
  const std::size_t start = at + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

// --- MetricsRegistry ---

TEST(Metrics, CounterConcurrentExactTotals) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("jst_test_hits_total");
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 1000;
  support::run_parallel(4, kTasks, [&](std::size_t) {
    for (std::size_t i = 0; i < kPerTask; ++i) counter.add(1);
  });
  EXPECT_EQ(counter.value(), kTasks * kPerTask);
  // Same name resolves to the same instrument.
  registry.counter("jst_test_hits_total").add(1);
  EXPECT_EQ(counter.value(), kTasks * kPerTask + 1);
}

TEST(Metrics, GaugeSetAddSub) {
  obs::MetricsRegistry registry;
  obs::Gauge& gauge = registry.gauge("jst_test_depth");
  gauge.set(5.0);
  gauge.add(2.5);
  gauge.sub(1.5);
  EXPECT_DOUBLE_EQ(gauge.value(), 6.0);
}

TEST(Metrics, HistogramConcurrentTotalsAndMonotonePercentiles) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("jst_test_latency_ms");
  constexpr std::size_t kTasks = 32;
  constexpr std::size_t kPerTask = 500;
  // Deterministic values 0.5 .. 50.0 — exactly representable halves, so
  // the atomic sum is order-independent and comparable exactly.
  support::run_parallel(4, kTasks, [&](std::size_t task) {
    for (std::size_t i = 0; i < kPerTask; ++i) {
      histogram.record(0.5 * static_cast<double>((task * kPerTask + i) % 100) +
                       0.5);
    }
  });
  EXPECT_EQ(histogram.count(), kTasks * kPerTask);
  const double p50 = histogram.p50();
  const double p95 = histogram.p95();
  const double p99 = histogram.p99();
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, histogram.max());
  EXPECT_DOUBLE_EQ(histogram.max(), 50.0);
  // Sum of 16000 values uniformly cycling 0.5..50.0.
  double expected_sum = 0.0;
  for (std::size_t i = 0; i < kTasks * kPerTask; ++i) {
    expected_sum += 0.5 * static_cast<double>(i % 100) + 0.5;
  }
  EXPECT_DOUBLE_EQ(histogram.sum(), expected_sum);
}

TEST(Metrics, HistogramPercentileInterpolationBrackets) {
  obs::Histogram histogram;
  for (int i = 1; i <= 100; ++i) histogram.record(static_cast<double>(i));
  // The median of 1..100 ms sits in the (50, 100] region of the bucket
  // layout; interpolation must keep it inside the data range and ordered.
  EXPECT_GT(histogram.p50(), 1.0);
  EXPECT_LT(histogram.p50(), 100.0);
  EXPECT_LE(histogram.p50(), histogram.p95());
  EXPECT_LE(histogram.p95(), histogram.p99());
  EXPECT_LE(histogram.p99(), 100.0);
  // Overflow bucket: a huge value is clamped to the observed max.
  histogram.record(123456.0);
  EXPECT_DOUBLE_EQ(histogram.max(), 123456.0);
  EXPECT_LE(histogram.percentile(100.0), 123456.0);
}

TEST(Metrics, JsonExportIsValidJson) {
  obs::MetricsRegistry registry;
  registry.counter("jst_a_total").add(3);
  registry.gauge("jst_b").set(1.5);
  registry.histogram("jst_c_ms").record(2.0);
  const std::string json = registry.to_json();
  EXPECT_TRUE(is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"jst_a_total\":3"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
}

TEST(Metrics, PrometheusExportShape) {
  obs::MetricsRegistry registry;
  registry.counter("jst_a_total").add(7);
  registry.gauge("jst_b").set(2.0);
  obs::Histogram& histogram = registry.histogram("jst_c_ms");
  histogram.record(0.3);
  histogram.record(40.0);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE jst_a_total counter\njst_a_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE jst_b gauge\njst_b 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE jst_c_ms histogram\n"), std::string::npos);
  // Cumulative buckets end at the total count, and sum/count lines exist.
  EXPECT_NE(text.find("jst_c_ms_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("jst_c_ms_sum 40.3\n"), std::string::npos);
  EXPECT_NE(text.find("jst_c_ms_count 2\n"), std::string::npos);
  // Every non-comment line is `name[{labels}] value`.
  for (const std::string& line : split_lines(text)) {
    if (line.rfind("# ", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "unparseable value in: " << line;
  }
}

TEST(Metrics, ResetZeroesInstrumentsInPlace) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("jst_r_total");
  obs::Histogram& histogram = registry.histogram("jst_r_ms");
  counter.add(5);
  histogram.record(1.0);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0);
  counter.add(2);  // references stay live after reset
  EXPECT_EQ(counter.value(), 2u);
}

// --- trace spans ---

TEST(Trace, DisabledTracingWritesNothing) {
  ASSERT_EQ(obs::trace_sink(), nullptr);
  { JST_SPAN("inert"); }
  std::ostringstream out;
  obs::TraceSink sink(out);
  EXPECT_EQ(sink.event_count(), 0u);
  EXPECT_TRUE(out.str().empty());
}

TEST(Trace, SpansEmitValidJsonlCompleteEvents) {
  if (!JST_TRACING) GTEST_SKIP() << "trace spans compiled out";
  std::ostringstream out;
  obs::TraceSink sink(out);
  obs::set_trace_sink(&sink);
  {
    JST_SPAN("outer");
    { JST_SPAN("inner"); }
  }
  support::run_parallel(4, 8, [](std::size_t) { JST_SPAN("worker"); });
  obs::set_trace_sink(nullptr);

  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_GE(lines.size(), 10u);  // inner+outer plus 8 worker spans
  EXPECT_EQ(sink.event_count(), lines.size());
  for (const std::string& line : lines) {
    EXPECT_TRUE(is_valid_json(line)) << line;
    EXPECT_EQ(json_string_field(line, "ph"), "X") << line;
    EXPECT_FALSE(json_string_field(line, "name").empty()) << line;
    EXPECT_GE(json_field(line, "ts"), 0.0) << line;
    EXPECT_GE(json_field(line, "dur"), 0.0) << line;
  }
}

TEST(Trace, NestedSpansAreIntervalContained) {
  if (!JST_TRACING) GTEST_SKIP() << "trace spans compiled out";
  std::ostringstream out;
  obs::TraceSink sink(out);
  obs::set_trace_sink(&sink);
  {
    JST_SPAN("parent");
    { JST_SPAN("child"); }
  }
  obs::set_trace_sink(nullptr);

  std::string parent, child;
  for (const std::string& line : split_lines(out.str())) {
    if (json_string_field(line, "name") == "parent") parent = line;
    if (json_string_field(line, "name") == "child") child = line;
  }
  ASSERT_FALSE(parent.empty());
  ASSERT_FALSE(child.empty());
  EXPECT_EQ(json_field(parent, "tid"), json_field(child, "tid"));
  // Child closes first (JSONL order) and nests inside the parent window.
  EXPECT_GE(json_field(child, "ts"), json_field(parent, "ts"));
  EXPECT_LE(json_field(child, "ts") + json_field(child, "dur"),
            json_field(parent, "ts") + json_field(parent, "dur") + 1e-3);
}

// --- end-to-end smoke (ctest label: obs) ---

// Tiny but real analyzer: trains in seconds, exercises every instrumented
// layer (parser, CFG/dataflow, features, forests, thread pool, service).
const analysis::TransformationAnalyzer& smoke_analyzer() {
  static const analysis::TransformationAnalyzer* kAnalyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = 16;
    options.per_technique_count = 4;
    options.seed = 20260806;
    options.detector.forest.tree_count = 4;
    options.detector.features.ngram.hash_dim = 64;
    auto* analyzer = new analysis::TransformationAnalyzer(options);
    analyzer->train();
    return analyzer;
  }();
  return *kAnalyzer;
}

std::vector<std::string> smoke_sources() {
  analysis::CorpusSpec spec;
  spec.regular_count = 6;
  spec.seed = 77;
  std::vector<std::string> sources = analysis::generate_regular_corpus(spec);
  sources.push_back("var broken = ;;; {{{");  // parse error path
  return sources;
}

void expect_outcomes_bit_identical(const analysis::BatchResult& a,
                                   const analysis::BatchResult& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].status, b.outcomes[i].status) << i;
    EXPECT_DOUBLE_EQ(a.outcomes[i].report.level1.p_regular,
                     b.outcomes[i].report.level1.p_regular) << i;
    EXPECT_DOUBLE_EQ(a.outcomes[i].report.level1.p_minified,
                     b.outcomes[i].report.level1.p_minified) << i;
    EXPECT_DOUBLE_EQ(a.outcomes[i].report.level1.p_obfuscated,
                     b.outcomes[i].report.level1.p_obfuscated) << i;
    EXPECT_EQ(a.outcomes[i].report.technique_confidence,
              b.outcomes[i].report.technique_confidence) << i;
    EXPECT_EQ(a.outcomes[i].error_message, b.outcomes[i].error_message) << i;
  }
}

TEST(ObsSmoke, BatchIsBitIdenticalWithAndWithoutSinks) {
  const analysis::AnalyzerService service(smoke_analyzer());
  const std::vector<std::string> sources = smoke_sources();

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    analysis::BatchOptions options;
    options.threads = threads;
    const analysis::BatchResult detached =
        service.analyze_batch(sources, options);

    std::ostringstream trace_out;
    obs::TraceSink sink(trace_out);
    obs::set_trace_sink(&sink);
    const analysis::BatchResult attached =
        service.analyze_batch(sources, options);
    obs::set_trace_sink(nullptr);

    expect_outcomes_bit_identical(detached, attached);
    if (JST_TRACING) {
      EXPECT_GT(sink.event_count(), 0u) << "threads=" << threads;
    }
  }
}

TEST(ObsSmoke, TraceJsonlAndPrometheusParseCleanly) {
  if (!JST_TRACING) GTEST_SKIP() << "trace spans compiled out";
  const analysis::AnalyzerService service(smoke_analyzer());
  const std::vector<std::string> sources = smoke_sources();

  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  obs::set_trace_sink(&sink);
  analysis::BatchOptions options;
  options.threads = 2;
  const analysis::BatchResult result = service.analyze_batch(sources, options);
  obs::set_trace_sink(nullptr);

  // Every trace line is a complete JSON event; the span taxonomy covers
  // the batch plus each pipeline stage.
  const std::vector<std::string> lines = split_lines(trace_out.str());
  ASSERT_FALSE(lines.empty());
  std::size_t batch_spans = 0;
  std::size_t script_spans = 0;
  std::size_t stage_spans = 0;
  for (const std::string& line : lines) {
    ASSERT_TRUE(is_valid_json(line)) << line;
    const std::string name = json_string_field(line, "name");
    if (name == "batch") ++batch_spans;
    if (name == "script") ++script_spans;
    if (name == "static_analysis" || name == "features" ||
        name == "inference" || name == "lex" || name == "parse") {
      ++stage_spans;
    }
  }
  EXPECT_EQ(batch_spans, 1u);
  EXPECT_EQ(script_spans, sources.size());
  EXPECT_GE(stage_spans, 3 * sources.size());

  // Batch stats: percentiles ordered, stage sums partition the totals.
  const analysis::BatchStats& stats = result.stats;
  EXPECT_LE(stats.p50_script_ms, stats.p95_script_ms);
  EXPECT_LE(stats.p95_script_ms, stats.p99_script_ms);
  EXPECT_LE(stats.p99_script_ms, stats.max_script_ms);
  EXPECT_LE(stats.stage_ms_sum(), stats.total_script_ms + 1e-6);
  EXPECT_NEAR(stats.stage_ms_sum(), stats.total_script_ms,
              0.05 * stats.total_script_ms + 0.05 * stats.total);
  EXPECT_TRUE(is_valid_json(stats.to_json())) << stats.to_json();

  // The global registry saw the batch and exports cleanly in both formats.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  EXPECT_GE(registry.counter("jst_scripts_total").value(), sources.size());
  EXPECT_GE(registry.counter("jst_batches_total").value(), 1u);
  EXPECT_TRUE(is_valid_json(registry.to_json()));
  const std::string prometheus = registry.to_prometheus();
  EXPECT_NE(prometheus.find("# TYPE jst_script_total_ms histogram"),
            std::string::npos);
  for (const std::string& line : split_lines(prometheus)) {
    if (line.rfind("# ", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
  }
}

// Trace spans must account for (nearly) all of the batch wall time: the
// top-level "batch" span is openest-to-close of the whole run, so its
// duration must be ≥ 95% of the measured wall_ms.
TEST(ObsSmoke, BatchSpanCoversWallTime) {
  if (!JST_TRACING) GTEST_SKIP() << "trace spans compiled out";
  const analysis::AnalyzerService service(smoke_analyzer());
  const std::vector<std::string> sources = smoke_sources();

  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  obs::set_trace_sink(&sink);
  analysis::BatchOptions options;
  options.threads = 2;
  const analysis::BatchResult result = service.analyze_batch(sources, options);
  obs::set_trace_sink(nullptr);

  double batch_dur_us = 0.0;
  for (const std::string& line : split_lines(trace_out.str())) {
    if (json_string_field(line, "name") == "batch") {
      batch_dur_us = json_field(line, "dur");
    }
  }
  EXPECT_GE(batch_dur_us / 1000.0, 0.95 * result.stats.wall_ms);
}

}  // namespace
}  // namespace jst
