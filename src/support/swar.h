// Portable SWAR (SIMD-within-a-register) byte-scanning primitives.
//
// The lexer's block scanners (lexer/scan.h) process 8 source bytes per
// 64-bit word with the classic zero-/range-detection bit tricks from
// Hacker's Delight: each helper returns a word whose per-byte HIGH BIT is
// set exactly for the bytes matching the predicate, so a scanner ORs the
// masks for its stop set, inverts for "run continues", and converts the
// first marked byte to an index with a single count-trailing-zeros.
//
// Every helper is branch-free and exact (no false positives from borrow
// propagation): correctness is asserted byte-for-byte against the scalar
// predicates by test_lexer_diff and the static_asserts below.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

namespace jst::support::swar {

using Word = std::uint64_t;

inline constexpr Word kOnes = 0x0101010101010101ull;  // 1 in every byte
inline constexpr Word kHigh = 0x8080808080808080ull;  // high bit of every byte

// Unaligned little-endian load of 8 bytes (memcpy compiles to one MOV).
inline Word load(const char* p) {
  Word w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

// Broadcasts one byte to all 8 lanes.
inline constexpr Word broadcast(unsigned char c) {
  return kOnes * static_cast<Word>(c);
}

// High bit set in every byte of `x` that equals zero. This is the EXACT
// form: `(x & 0x7f..) + 0x7f..` sets a byte's high bit iff its low seven
// bits are non-zero, and the sum never carries across lanes, so — unlike
// the cheaper `(x - kOnes) & ~x & kHigh`, whose borrows chain through
// 0x00/0x01 runs and plant false positives in higher lanes — every
// reported lane really is zero. The scanners rely on that: a false match
// here would silently extend an identifier or split a string payload.
inline constexpr Word zero_bytes(Word x) {
  return ~(((x & ~kHigh) + ~kHigh) | x | ~kHigh);
}

// High bit set in every byte of `x` that equals `c`.
inline constexpr Word eq_bytes(Word x, unsigned char c) {
  return zero_bytes(x ^ broadcast(c));
}

// High bit set in every byte whose own high bit is set (>= 0x80).
inline constexpr Word high_bytes(Word x) { return x & kHigh; }

// High bit set in every byte of `x7` lying in [lo, hi]. REQUIRES all
// bytes of `x7` < 0x80 (mask with `x & ~kHigh` first) and lo <= hi < 0x80:
// under those bounds neither addition can carry nor subtraction borrow
// across lanes, so the masks are exact per byte.
inline constexpr Word range7(Word x7, unsigned char lo, unsigned char hi) {
  const Word ge = ((x7 | kHigh) - broadcast(lo)) & kHigh;  // x7 >= lo
  const Word le = ((broadcast(hi) | kHigh) - x7) & kHigh;  // x7 <= hi
  return ge & le;
}

// Index (0-7) of the least-significant marked byte. `mask` must be
// non-zero and only carry per-byte high bits (little-endian byte order:
// byte 0 is the lowest-addressed source byte).
inline int first_marked(Word mask) { return std::countr_zero(mask) >> 3; }

// --- compile-time self-checks on a few adversarial lanes ---
static_assert(zero_bytes(0x0000000000000000ull) == kHigh);
static_assert(zero_bytes(0x0101010101010101ull) == 0);
static_assert(zero_bytes(0xff00810001800100ull) ==
              0x0080008000000080ull);  // 0x00/0x01 runs: no false lanes
static_assert(eq_bytes(0x666564635e5f6261ull /* "ab_^cdef" LE */, '_') ==
              0x0000000000800000ull);  // '^' right after '_' not flagged
static_assert(eq_bytes(broadcast('"'), '"') == kHigh);
static_assert(range7(broadcast('5') & ~kHigh, '0', '9') == kHigh);
static_assert(range7(broadcast('/') & ~kHigh, '0', '9') == 0);
static_assert(range7(broadcast(':') & ~kHigh, '0', '9') == 0);

}  // namespace jst::support::swar
