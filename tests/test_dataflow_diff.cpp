// Differential static-analysis suite (DESIGN.md §17): the observable
// result of the scope/data-flow pass and the control-flow builder —
// every Binding field, edge lists in emission order, scope/unresolved
// counts, and BudgetTrip stage+message — is fingerprinted and pinned to
// oracle constants captured from the pre-flattening implementation
// (scope-chain hash maps, per-binding vectors, sort+unique CFG). The
// flat SoA/CSR rebuild must reproduce every fingerprint bit for bit,
// across scratch reuse, JSFuck-style assignment chains, tens of
// thousands of distinct identifiers, deep let/const shadowing, and
// catch-parameter scopes. The suite carries the `robustness` label so
// the asan/ubsan presets run the open-addressed tables and pooled spans
// under the sanitizers, and it runs in the JST_THREADS 1/4 matrix
// alongside the other bit-identity gates.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cfg/cfg.h"
#include "dataflow/dataflow.h"
#include "parser/parser.h"
#include "support/budget.h"

namespace jst {
namespace {

// FNV-1a 64: cheap, dependency-free, and stable across platforms for the
// byte strings below.
std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// Serializes everything a consumer can observe about one data-flow
// result. Node identity is the stable finalize() id, so the text is
// deterministic for a given source and independent of allocation
// addresses — and of whether sites live in per-binding vectors (old) or
// pooled spans (new).
std::string dataflow_fingerprint_text(const DataFlow& flow) {
  std::string out;
  out.reserve(4096);
  const auto append_u64 = [&out](std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(value));
    out += buffer;
  };
  out += flow.completed ? "completed " : "stopped ";
  out += "scopes=";
  append_u64(flow.scope_count);
  out += " unresolved=";
  append_u64(flow.unresolved_uses);
  out += '\n';
  if (flow.tripped.has_value()) {
    out += "trip ";
    out += flow.tripped->stage;
    out += ' ';
    out += flow.tripped->to_string();
    out += '\n';
  }
  for (const Binding& binding : flow.bindings) {
    out += 'B';
    out.append(binding.name.data(), binding.name.size());
    out += ' ';
    append_u64(binding.declaration != nullptr ? binding.declaration->id
                                              : 0xffffffffu);
    out += binding.is_parameter ? " p" : " -";
    out += binding.is_function_name ? "f " : "- ";
    append_u64(binding.init != nullptr ? binding.init->id : 0xffffffffu);
    out += " a[";
    for (const Node* site : binding.assignments) {
      append_u64(site->id);
      out += ',';
    }
    out += "] u[";
    for (const Node* site : binding.uses) {
      append_u64(site->id);
      out += ',';
    }
    out += "]\n";
  }
  out += 'E';
  for (const auto& [from, to] : flow.edges) {
    append_u64(from);
    out += ':';
    append_u64(to);
    out += ' ';
  }
  out += '\n';
  return out;
}

std::string cfg_fingerprint_text(const ControlFlow& cfg) {
  std::string out;
  out.reserve(1024);
  const auto append_u64 = [&out](std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(value));
    out += buffer;
  };
  out += "branches=";
  append_u64(cfg.branch_node_count());
  out += " back=";
  append_u64(cfg.back_edge_count());
  out += "\nE";
  for (const auto& [from, to] : cfg.edges) {
    append_u64(from);
    out += ':';
    append_u64(to);
    out += ' ';
  }
  out += '\n';
  return out;
}

// Parses `source` and fingerprints data flow + control flow together.
// `limits` attaches a Budget the way the pipeline does (shared across
// both passes, stage labels included in any trip).
std::uint64_t analysis_fingerprint(const std::string& source,
                                   const ResourceLimits& limits = {},
                                   DataFlowScratch* scratch = nullptr,
                                   std::size_t node_budget = 2'000'000) {
  ParseResult parsed = parse_program(source);
  Budget budget(limits);
  Budget* attached = limits.any_enabled() ? &budget : nullptr;
  if (attached != nullptr) attached->set_stage("cfg");
  const ControlFlow cfg = build_control_flow(parsed.ast, attached);
  if (attached != nullptr) attached->set_stage("dataflow");
  DataFlowOptions options;
  options.node_budget = node_budget;
  options.budget = attached;
  options.scratch = scratch;
  const DataFlow flow = build_data_flow(parsed.ast, options);
  return fnv1a(dataflow_fingerprint_text(flow) + cfg_fingerprint_text(cfg));
}

// --- hostile program generators ---------------------------------------

// JSFuck-shaped assignment chain: v0 seeds from coerced empties, each
// following term re-assigns the previous one forward. `terms` variables,
// one def + one use each — the linear-chain shape JSFuck emits.
std::string jsfuck_chain(std::size_t terms) {
  std::string source = "var v0 = +[];\n";
  source.reserve(terms * 32);
  for (std::size_t i = 1; i < terms; ++i) {
    char line[96];
    std::snprintf(line, sizeof(line), "var v%zu = v%zu + (!+[] + []);\n", i,
                  i - 1);
    source += line;
  }
  return source;
}

// One accumulator written and read `writes` times: the def × use product
// path (every write reaches every later-or-equal read in the emission
// rule), quadratic in `writes`.
std::string jsfuck_accumulator(std::size_t writes) {
  std::string source = "var acc = [];\n";
  source.reserve(writes * 24);
  for (std::size_t i = 0; i < writes; ++i) {
    source += "acc = acc + [+[]];\n";
  }
  return source;
}

// `count` distinct identifiers, each declared once and read once —
// stresses the atom table and binding map growth paths.
std::string distinct_identifiers(std::size_t count) {
  std::string source;
  source.reserve(count * 28);
  for (std::size_t i = 0; i < count; ++i) {
    char line[80];
    std::snprintf(line, sizeof(line), "var id%zu = 1; sink(id%zu);\n", i, i);
    source += line;
  }
  return source;
}

// `depth` nested blocks, each re-declaring the same two names with
// let/const and reading the shadowed outer value first.
std::string deep_shadowing(std::size_t depth) {
  std::string source = "let x = 0; const y = 0;\n";
  source.reserve(depth * 48);
  for (std::size_t i = 0; i < depth; ++i) {
    source += "{ let x = y + 1; const y = x + 1; sink(x + y);\n";
  }
  source += "sink(x + y);\n";
  for (std::size_t i = 0; i < depth; ++i) source += "}\n";
  return source;
}

// Nested try/catch with re-used catch-parameter names: catch scopes are
// the one binding form with their own single-purpose scope kind.
std::string catch_scopes(std::size_t depth) {
  std::string source = "var e = 'outer';\n";
  source.reserve(depth * 64);
  for (std::size_t i = 0; i < depth; ++i) {
    source += "try { risky(e); } catch (e) { sink(e); let c = e;\n";
  }
  source += "sink(e);\n";
  for (std::size_t i = 0; i < depth; ++i) source += "}\n";
  return source;
}

// A mixed fixture exercising every scope and site form the builder
// handles: hoisting, function-expression names, parameters and defaults,
// destructuring patterns, for-in/of heads, switch-case lexical scope,
// compound assignment, update expressions, and unresolved globals.
const char* kMixedFixture = R"js(
function outer(a, { b, c: [d = a] }, ...rest) {
  var hoisted = a + b;
  inner(hoisted);
  function inner(x) { return x + d + rest.length; }
  const f = function named(n) { return n > 0 ? named(n - 1) : b; };
  let total = 0;
  for (var i = 0; i < 3; i++) total += f(i);
  for (const key in globalThing) total += key.length;
  for (const item of [a, b, d]) total += item;
  switch (total) {
    case 0: { let scoped = a; sinkA(scoped); break; }
    default: sinkB(total);
  }
  try { risky(); } catch ({ message }) { sinkC(message); }
  label: while (total-- > 0) { if (total === 1) continue label; }
  return (z) => z + total + unresolvedGlobal;
}
outer(1, { b: 2, c: [3] });
)js";

// --- oracle constants ---------------------------------------------------
//
// Captured from the pre-flattening implementation (PR 9 tree) by running
// this suite with JST_PRINT_ORACLES=1; see DESIGN.md §17. A change to any
// constant is a behavior change in the static-analysis stage and needs a
// deliberate re-capture, not a drive-by edit.

constexpr std::uint64_t kOracleMixed = 0x9f2540e8a2837f1e;
constexpr std::uint64_t kOracleJsFuckChain10k = 0x7a2ba0687a0f7efe;
constexpr std::uint64_t kOracleAccumulator300 = 0x46bd7c4045569ee3;
constexpr std::uint64_t kOracleDistinct50k = 0x8a38d916148bfb24;
constexpr std::uint64_t kOracleShadow200 = 0xac4c6c522688ac41;
constexpr std::uint64_t kOracleCatch64 = 0xa87110a83eba2e1d;
constexpr std::uint64_t kOracleEdgeTrip = 0xa0ccdbb7a6287ad9;
constexpr std::uint64_t kOracleNodeBudgetSkip = 0x3d0e921d7e3b4158;

bool print_oracles() {
  static const bool kPrint = std::getenv("JST_PRINT_ORACLES") != nullptr;
  return kPrint;
}

void expect_oracle(const char* label, std::uint64_t expected,
                   std::uint64_t actual) {
  if (print_oracles()) {
    std::printf("constexpr std::uint64_t %s = 0x%llx;\n", label,
                static_cast<unsigned long long>(actual));
    return;
  }
  EXPECT_EQ(expected, actual) << label;
}

// --- tests --------------------------------------------------------------

TEST(DataFlowDiff, MixedFixtureMatchesOracle) {
  expect_oracle("kOracleMixed", kOracleMixed,
                analysis_fingerprint(kMixedFixture));
}

TEST(DataFlowDiff, JsFuckChain10kMatchesOracle) {
  expect_oracle("kOracleJsFuckChain10k", kOracleJsFuckChain10k,
                analysis_fingerprint(jsfuck_chain(10'000)));
}

TEST(DataFlowDiff, Accumulator300MatchesOracle) {
  expect_oracle("kOracleAccumulator300", kOracleAccumulator300,
                analysis_fingerprint(jsfuck_accumulator(300)));
}

TEST(DataFlowDiff, Distinct50kIdentifiersMatchesOracle) {
  expect_oracle("kOracleDistinct50k", kOracleDistinct50k,
                analysis_fingerprint(distinct_identifiers(50'000)));
}

TEST(DataFlowDiff, DeepShadowing200MatchesOracle) {
  expect_oracle("kOracleShadow200", kOracleShadow200,
                analysis_fingerprint(deep_shadowing(200)));
}

TEST(DataFlowDiff, CatchScopes64MatchesOracle) {
  expect_oracle("kOracleCatch64", kOracleCatch64,
                analysis_fingerprint(catch_scopes(64)));
}

// The edge ceiling stops emission mid-binding; the trip (stage, limits,
// observed count) and the truncation point are part of the contract.
TEST(DataFlowDiff, EdgeBudgetTripMatchesOracle) {
  ResourceLimits limits;
  limits.max_dataflow_edges = 100;
  expect_oracle("kOracleEdgeTrip", kOracleEdgeTrip,
                analysis_fingerprint(jsfuck_accumulator(300), limits));
}

// Oversized ASTs skip the pass entirely (completed=false, no bindings).
TEST(DataFlowDiff, NodeBudgetSkipMatchesOracle) {
  expect_oracle("kOracleNodeBudgetSkip", kOracleNodeBudgetSkip,
                analysis_fingerprint(jsfuck_chain(1'000), {}, nullptr,
                                     /*node_budget=*/16));
}

// One scratch reused across the whole hostile corpus must reproduce the
// fresh-scratch fingerprint for every script — twice, so capacity grown
// by the big scripts is replayed over the small ones.
TEST(DataFlowDiff, ScratchReuseIsObservationallyIdentical) {
  const std::vector<std::string> corpus = {
      kMixedFixture,          jsfuck_chain(2'000),  jsfuck_accumulator(120),
      distinct_identifiers(5'000), deep_shadowing(64), catch_scopes(16),
  };
  std::vector<std::uint64_t> fresh;
  fresh.reserve(corpus.size());
  for (const std::string& source : corpus) {
    fresh.push_back(analysis_fingerprint(source));
  }
  DataFlowScratch scratch;
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(fresh[i], analysis_fingerprint(corpus[i], {}, &scratch))
          << "script " << i << " round " << round;
    }
  }
}

// Budgeted and unbudgeted runs agree wherever no ceiling trips: a Budget
// generous enough to never fire must not perturb any observable output.
TEST(DataFlowDiff, GenerousBudgetIsObservationallyIdentical) {
  const std::vector<std::string> corpus = {
      kMixedFixture, jsfuck_accumulator(120), deep_shadowing(64),
      catch_scopes(16)};
  for (const std::string& source : corpus) {
    EXPECT_EQ(analysis_fingerprint(source),
              analysis_fingerprint(source, ResourceLimits::production()));
  }
}

}  // namespace
}  // namespace jst
