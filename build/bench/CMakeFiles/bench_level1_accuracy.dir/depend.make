# Empty dependencies file for bench_level1_accuracy.
# This may be replaced when dependencies are built.
