# Empty dependencies file for jst_cfg.
# This may be replaced when dependencies are built.
