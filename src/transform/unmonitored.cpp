// Unmonitored transformation techniques (§II-A / §II-C).
//
// The paper's level-2 detector names only ten techniques, but §II-C claims
// the level-1 detector "can still recognize techniques, which we do not
// monitor, as transformed ... e.g., obfuscated field reference". These two
// transformers exist to test that claim end-to-end:
//
//  - obfuscated field reference: every dot access a.b becomes a["b"]
//    (bracket notation hides the property name from naive scanners and
//    enables computed construction);
//  - integer obfuscation: numeric literals are rewritten as arithmetic
//    (n -> (a + b), (a * b + c), or hex-split sums).
#include <cmath>

#include "ast/walk.h"
#include "codegen/codegen.h"
#include "support/strings.h"
#include "parser/parser.h"
#include "transform/transform.h"

namespace jst::transform {

std::string obfuscate_field_references(std::string_view source, Rng& rng,
                                       double rewrite_probability) {
  ParseResult parsed = parse_program(source);
  Ast& ast = parsed.ast;
  ast.finalize();
  walk_preorder(ast.root(), [&](Node& node) {
    if (node.kind != NodeKind::kMemberExpression || node.flag_a) return;
    if (!rng.bernoulli(rewrite_probability)) return;
    Node* property = node.kid(1);
    if (property == nullptr || property->kind != NodeKind::kIdentifier) return;
    // a.b -> a["b"]
    Node* key = ast.make_string(property->str_value);
    node.flag_a = true;
    node.kids[1] = key;
  });
  ast.finalize();
  return to_source(ast.root());
}

std::string obfuscate_integers(std::string_view source, Rng& rng,
                               double rewrite_probability) {
  ParseResult parsed = parse_program(source);
  Ast& ast = parsed.ast;
  ast.finalize();

  std::vector<Node*> numbers;
  walk_preorder(ast.root(), [&](Node& node) {
    if (node.kind != NodeKind::kLiteral ||
        node.lit_kind != LiteralKind::kNumber) {
      return;
    }
    // Only plain small integers in expression positions (never property
    // keys, which must stay literal).
    if (node.num_value != static_cast<double>(
                              static_cast<long long>(node.num_value)) ||
        std::abs(node.num_value) > 1e9) {
      return;
    }
    const Node* parent = node.parent;
    if (parent != nullptr &&
        (parent->kind == NodeKind::kProperty ||
         parent->kind == NodeKind::kMethodDefinition) &&
        parent->kid(0) == &node && !parent->flag_a) {
      return;
    }
    numbers.push_back(&node);
  });

  for (Node* literal : numbers) {
    if (!rng.bernoulli(rewrite_probability)) continue;
    const auto value = static_cast<long long>(literal->num_value);
    Node* replacement = nullptr;
    switch (rng.index(3)) {
      case 0: {  // (a + b)
        const long long a = rng.uniform_int(-999, 999);
        Node* sum = ast.make(NodeKind::kBinaryExpression);
        sum->str_value = "+";
        sum->kids = {ast.make_number(static_cast<double>(a)),
                     ast.make_number(static_cast<double>(value - a))};
        replacement = sum;
        break;
      }
      case 1: {  // (a * b + c)
        const long long a = rng.uniform_int(2, 37);
        const long long b = value / a;
        const long long c = value - a * b;
        Node* product = ast.make(NodeKind::kBinaryExpression);
        product->str_value = "*";
        product->kids = {ast.make_number(static_cast<double>(a)),
                         ast.make_number(static_cast<double>(b))};
        Node* sum = ast.make(NodeKind::kBinaryExpression);
        sum->str_value = "+";
        sum->kids = {product, ast.make_number(static_cast<double>(c))};
        replacement = sum;
        break;
      }
      default: {  // hex XOR-split: (mask ^ (mask ^ n))
        const auto mask = static_cast<long long>(rng.uniform_int(0, 0xffff));
        Node* inner = ast.make(NodeKind::kBinaryExpression);
        inner->str_value = "^";
        Node* mask_literal = ast.make_number(static_cast<double>(mask));
        mask_literal->raw = ast.intern(
            "0x" + strings::to_base_n(static_cast<std::uint64_t>(mask), 16));
        // Only non-negative 32-bit values survive ^ faithfully.
        if (value < 0 || value > 0x7fffffff) {
          Node* sum = ast.make(NodeKind::kBinaryExpression);
          sum->str_value = "+";
          sum->kids = {ast.make_number(static_cast<double>(value - 1)),
                       ast.make_number(1.0)};
          replacement = sum;
          break;
        }
        // mask ^ (mask ^ n) == n.
        inner->kids = {mask_literal,
                       ast.make_number(static_cast<double>(mask ^ value))};
        replacement = inner;
        break;
      }
    }
    Node* parent = literal->parent;
    if (parent == nullptr || replacement == nullptr) continue;
    for (Node*& kid : parent->kids) {
      if (kid == literal) kid = replacement;
    }
  }
  ast.finalize();
  return to_source(ast.root());
}

}  // namespace jst::transform
