// Native builtins for the reference interpreter: console, Math, String /
// Array / Number methods, parseInt, String.fromCharCode — the surface the
// transformation tools' output touches.
#pragma once

#include <string>
#include <vector>

#include "interp/value.h"

namespace jst::interp {

class Interpreter;
class Environment;

// Installs console/Math/String/parseInt/... into the global environment.
// `log` collects console.log lines.
void install_builtins(Interpreter& interpreter, Environment& globals,
                      std::vector<std::string>& log);

// Method lookup for primitive receivers (bound natives).
Value string_method(const std::string& receiver, const std::string& name);
Value array_method(const ObjectPtr& receiver, const std::string& name);
Value number_method(double receiver, const std::string& name);
Value function_method(const FunctionPtr& receiver, const std::string& name);

}  // namespace jst::interp
