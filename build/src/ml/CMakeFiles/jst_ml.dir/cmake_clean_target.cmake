file(REMOVE_RECURSE
  "libjst_ml.a"
)
