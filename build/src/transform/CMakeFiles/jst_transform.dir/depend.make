# Empty dependencies file for jst_transform.
# This may be replaced when dependencies are built.
