// Property-based (parameterized) sweeps over seeds: invariants that must
// hold for every generated program and every transformation.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dataset.h"
#include "ast/walk.h"
#include "cfg/cfg.h"
#include "codegen/codegen.h"
#include "corpus/generator.h"
#include "dataflow/dataflow.h"
#include "features/feature_extractor.h"
#include "parser/parser.h"
#include "transform/transform.h"

namespace jst {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::string program() const {
    corpus::ProgramGenerator generator(GetParam());
    corpus::GeneratorOptions options;
    options.min_bytes = 900;
    return generator.generate(options);
  }
};

// Codegen is a structural fixed point: parse(print(parse(s))) preserves the
// pre-order node-kind sequence, in both printing modes.
TEST_P(SeedSweep, CodegenRoundtripPreservesStructure) {
  const std::string source = program();
  const ParseResult first = parse_program(source);
  const std::vector<NodeKind> original = preorder_kinds(first.ast.root());

  const std::string pretty = to_source(first.ast.root());
  const ParseResult second = parse_program(pretty);
  EXPECT_EQ(original, preorder_kinds(second.ast.root()));

  const std::string compact = to_minified_source(first.ast.root());
  const ParseResult third = parse_program(compact);
  EXPECT_EQ(original, preorder_kinds(third.ast.root()));
}

// Minified output is never larger than the original (comments/whitespace
// removal guarantees strict shrinkage for generated programs).
TEST_P(SeedSweep, MinificationShrinks) {
  const std::string source = program();
  EXPECT_LT(transform::minify(source).size(), source.size());
}

// Every technique yields parseable output, and the level-1 family of the
// labels matches the technique's family.
TEST_P(SeedSweep, EveryTechniqueParseable) {
  const std::string source = program();
  for (transform::Technique technique : transform::all_techniques()) {
    Rng rng(GetParam() ^ static_cast<std::uint64_t>(technique));
    const std::string out =
        transform::apply_technique(technique, source, rng);
    EXPECT_TRUE(parses(out)) << transform::technique_name(technique);
  }
}

// CFG invariants: edges reference valid pre-order ids; no self-loops from
// sequencing (a node never flows to itself).
TEST_P(SeedSweep, CfgEdgesWellFormed) {
  const std::string source = program();
  ParseResult parsed = parse_program(source);
  const ControlFlow flow = build_control_flow(parsed.ast);
  const std::size_t node_count = parsed.ast.node_count();
  for (const auto& [from, to] : flow.edges) {
    EXPECT_LT(from, node_count);
    EXPECT_LT(to, node_count);
    EXPECT_NE(from, to);
  }
}

// Data-flow invariants: every edge links two Identifier nodes, the source
// being a declaration or write of the same name as the destination.
TEST_P(SeedSweep, DataFlowEdgesLinkIdentifiers) {
  const std::string source = program();
  ParseResult parsed = parse_program(source);
  const DataFlow flow = build_data_flow(parsed.ast);

  std::vector<const Node*> by_id(parsed.ast.node_count(), nullptr);
  walk_preorder(static_cast<const Node*>(parsed.ast.root()),
                [&by_id](const Node& node) { by_id[node.id] = &node; });
  for (const auto& [from, to] : flow.edges) {
    ASSERT_LT(from, by_id.size());
    ASSERT_LT(to, by_id.size());
    const Node* def = by_id[from];
    const Node* use = by_id[to];
    ASSERT_NE(def, nullptr);
    ASSERT_NE(use, nullptr);
    EXPECT_EQ(def->kind, NodeKind::kIdentifier);
    EXPECT_EQ(use->kind, NodeKind::kIdentifier);
    EXPECT_EQ(def->str_value, use->str_value);
  }
}

// Feature extraction yields finite values of stable dimensionality for
// regular and transformed variants alike.
TEST_P(SeedSweep, FeaturesFiniteForAllVariants) {
  const std::string source = program();
  features::FeatureConfig config;
  config.ngram.hash_dim = 64;

  std::vector<std::string> variants = {source};
  Rng rng(GetParam() * 31 + 7);
  variants.push_back(transform::minify(source));
  variants.push_back(transform::obfuscate_identifiers(source, rng));
  variants.push_back(transform::inject_dead_code(source, rng));

  for (const std::string& variant : variants) {
    const auto vec = features::extract_from_source(variant, config);
    ASSERT_EQ(vec.size(), features::feature_dimension(config));
    for (float value : vec) EXPECT_TRUE(std::isfinite(value));
  }
}

// Identifier obfuscation keeps the node-kind structure identical.
TEST_P(SeedSweep, IdentifierObfuscationStructurePreserving) {
  const std::string source = program();
  Rng rng(GetParam() + 17);
  const std::string out = transform::obfuscate_identifiers(source, rng);
  const ParseResult a = parse_program(source);
  const ParseResult b = parse_program(out);
  EXPECT_EQ(preorder_kinds(a.ast.root()).size(),
            preorder_kinds(b.ast.root()).size());
}

// Transformations are deterministic given the same seed.
TEST_P(SeedSweep, TransformsDeterministic) {
  const std::string source = program();
  Rng rng1(42);
  Rng rng2(42);
  EXPECT_EQ(transform::obfuscate_strings(source, rng1),
            transform::obfuscate_strings(source, rng2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

// --- no-alphanumeric sweep over small payloads -----------------------------

class JsFuckSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(JsFuckSweep, EncodesToSixCharAlphabet) {
  const std::string out = transform::no_alnum_transform(GetParam());
  for (char c : out) {
    ASSERT_TRUE(c == '[' || c == ']' || c == '(' || c == ')' || c == '!' ||
                c == '+')
        << "char '" << c << "' in encoding of " << GetParam();
  }
  EXPECT_TRUE(parses(out));
}

INSTANTIATE_TEST_SUITE_P(
    Payloads, JsFuckSweep,
    ::testing::Values("x(1);", "alert('hi');", "var a = \"B\";",
                      "if (x) { y(); }", "console.log(2 + 2);",
                      "var Z = '~!@#$%^&*';", "f(`tpl ${x}`);"));

// --- mixed-technique sweep ---------------------------------------------------

class MixSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MixSweep, MixedSamplesParseAndCarryLabels) {
  corpus::ProgramGenerator generator(777);
  corpus::GeneratorOptions options;
  options.min_bytes = 900;
  const std::string source = generator.generate(options);
  Rng rng(GetParam() * 1000 + 1);
  const analysis::Sample sample =
      analysis::make_mixed_sample(source, GetParam(), rng);
  EXPECT_TRUE(parses(sample.source));
  EXPECT_GE(sample.techniques.size(), GetParam());
  EXPECT_TRUE(sample.level1.transformed());
}

INSTANTIATE_TEST_SUITE_P(TechniqueCounts, MixSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace jst
