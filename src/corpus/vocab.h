// Vocabulary pools for realistic synthetic JavaScript.
#pragma once

#include <span>
#include <string>
#include <string_view>

#include "support/rng.h"

namespace jst::corpus {

std::span<const std::string_view> noun_words();
std::span<const std::string_view> verb_words();
std::span<const std::string_view> adjective_words();
std::span<const std::string_view> property_names();   // obj.<prop>
std::span<const std::string_view> method_names();     // obj.<method>()
std::span<const std::string_view> global_names();     // console, Math, ...
std::span<const std::string_view> string_pool();      // literal contents
std::span<const std::string_view> comment_pool();     // line comments
std::span<const std::string_view> url_pool();

// camelCase identifier like `userName`, `fetchItemsFromCache`.
std::string camel_identifier(Rng& rng, std::size_t words = 2);
// PascalCase class-like name.
std::string pascal_identifier(Rng& rng, std::size_t words = 2);

}  // namespace jst::corpus
