// §III-E1 — level-2 detector on single-configuration samples: subset
// accuracy (paper: 86.95%) and Top-k accuracy (Top-1 99.63%, Top-2 90.85%,
// Top-3 98.95%; higher k impossible since ground truths have <= 3 labels).
#include <cstdio>

#include "analysis/dataset.h"
#include "bench_common.h"
#include "ml/metrics.h"

int main() {
  using namespace jst;
  using namespace jst::bench;

  const auto& model = analyzer();
  const std::size_t per_technique = scaled(24);
  const auto bases = held_out_regular(scaled(60), 0x1ef2);
  Rng rng(0x1ef2c0de);

  std::vector<std::vector<std::size_t>> predicted_sets;
  std::vector<std::vector<std::size_t>> truth_sets;
  std::size_t topk_hits[4] = {0, 0, 0, 0};
  std::size_t total = 0;

  for (transform::Technique technique : transform::all_techniques()) {
    for (std::size_t i = 0; i < per_technique; ++i) {
      const std::string& base = bases[rng.index(bases.size())];
      const auto sample = analysis::make_transformed_sample(base, technique, rng);
      const auto row = features::extract_from_source(
          sample.source, model.options().detector.features);
      const auto truth = analysis::indices_from_techniques(sample.techniques);

      // Subset prediction: labels over 50% confidence (count must match).
      const auto probabilities = model.level2().predict_proba(row);
      std::vector<std::size_t> subset;
      for (std::size_t j = 0; j < probabilities.size(); ++j) {
        if (probabilities[j] >= 0.5) subset.push_back(j);
      }
      predicted_sets.push_back(subset);
      truth_sets.push_back(truth);

      for (std::size_t k = 1; k <= 3; ++k) {
        const auto topk = analysis::indices_from_techniques(
            model.level2().predict_topk(row, k));
        if (ml::topk_correct(topk, truth)) ++topk_hits[k];
      }
      ++total;
    }
  }

  // Top-k can only be correct when the ground truth has >= k labels; the
  // attainable ceiling depends on the tool stand-ins' label cardinality.
  std::size_t at_least[4] = {0, 0, 0, 0};
  for (const auto& truth : truth_sets) {
    for (std::size_t k = 1; k <= 3; ++k) {
      if (truth.size() >= k) ++at_least[k];
    }
  }

  print_header("Level-2 detector accuracy (test set 1)", "section III-E1");
  print_row("subset (exact set) accuracy", 86.95,
            100.0 * ml::subset_accuracy(predicted_sets, truth_sets));
  const auto pct = [total](std::size_t count) {
    return 100.0 * static_cast<double>(count) / static_cast<double>(total);
  };
  print_row("Top-1 accuracy", 99.63, pct(topk_hits[1]));
  print_row("Top-2 accuracy", 90.85, pct(topk_hits[2]));
  print_row("Top-3 accuracy", 98.95, pct(topk_hits[3]));
  std::printf("%-44s %10s %8.2f%% %8.2f%% %8.2f%%\n",
              "attainable ceiling (truth >= k labels)", "k=1..3:",
              pct(at_least[1]), pct(at_least[2]), pct(at_least[3]));
  print_note("1,023 possible predictions; ground truths carry 1-3 labels. "
             "Our tool stand-ins' label cardinality differs from the "
             "paper's tools, bounding Top-2/Top-3 (see EXPERIMENTS.md; the "
             "paper's Top-2 < Top-3 is itself non-monotonic)");
  print_footer();
  return 0;
}
