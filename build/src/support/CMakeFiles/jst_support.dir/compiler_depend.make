# Empty compiler generated dependencies file for jst_support.
# This may be replaced when dependencies are built.
