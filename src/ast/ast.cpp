#include "ast/ast.h"

#include <new>
#include <type_traits>

namespace jst {

std::string_view node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kProgram: return "Program";
    case NodeKind::kExpressionStatement: return "ExpressionStatement";
    case NodeKind::kBlockStatement: return "BlockStatement";
    case NodeKind::kVariableDeclaration: return "VariableDeclaration";
    case NodeKind::kVariableDeclarator: return "VariableDeclarator";
    case NodeKind::kFunctionDeclaration: return "FunctionDeclaration";
    case NodeKind::kClassDeclaration: return "ClassDeclaration";
    case NodeKind::kReturnStatement: return "ReturnStatement";
    case NodeKind::kIfStatement: return "IfStatement";
    case NodeKind::kForStatement: return "ForStatement";
    case NodeKind::kForInStatement: return "ForInStatement";
    case NodeKind::kForOfStatement: return "ForOfStatement";
    case NodeKind::kWhileStatement: return "WhileStatement";
    case NodeKind::kDoWhileStatement: return "DoWhileStatement";
    case NodeKind::kSwitchStatement: return "SwitchStatement";
    case NodeKind::kSwitchCase: return "SwitchCase";
    case NodeKind::kBreakStatement: return "BreakStatement";
    case NodeKind::kContinueStatement: return "ContinueStatement";
    case NodeKind::kThrowStatement: return "ThrowStatement";
    case NodeKind::kTryStatement: return "TryStatement";
    case NodeKind::kCatchClause: return "CatchClause";
    case NodeKind::kLabeledStatement: return "LabeledStatement";
    case NodeKind::kEmptyStatement: return "EmptyStatement";
    case NodeKind::kDebuggerStatement: return "DebuggerStatement";
    case NodeKind::kWithStatement: return "WithStatement";
    case NodeKind::kIdentifier: return "Identifier";
    case NodeKind::kLiteral: return "Literal";
    case NodeKind::kTemplateLiteral: return "TemplateLiteral";
    case NodeKind::kTemplateElement: return "TemplateElement";
    case NodeKind::kTaggedTemplateExpression: return "TaggedTemplateExpression";
    case NodeKind::kThisExpression: return "ThisExpression";
    case NodeKind::kSuper: return "Super";
    case NodeKind::kArrayExpression: return "ArrayExpression";
    case NodeKind::kObjectExpression: return "ObjectExpression";
    case NodeKind::kProperty: return "Property";
    case NodeKind::kFunctionExpression: return "FunctionExpression";
    case NodeKind::kArrowFunctionExpression: return "ArrowFunctionExpression";
    case NodeKind::kClassExpression: return "ClassExpression";
    case NodeKind::kClassBody: return "ClassBody";
    case NodeKind::kMethodDefinition: return "MethodDefinition";
    case NodeKind::kSequenceExpression: return "SequenceExpression";
    case NodeKind::kUnaryExpression: return "UnaryExpression";
    case NodeKind::kBinaryExpression: return "BinaryExpression";
    case NodeKind::kLogicalExpression: return "LogicalExpression";
    case NodeKind::kAssignmentExpression: return "AssignmentExpression";
    case NodeKind::kUpdateExpression: return "UpdateExpression";
    case NodeKind::kConditionalExpression: return "ConditionalExpression";
    case NodeKind::kCallExpression: return "CallExpression";
    case NodeKind::kNewExpression: return "NewExpression";
    case NodeKind::kMemberExpression: return "MemberExpression";
    case NodeKind::kSpreadElement: return "SpreadElement";
    case NodeKind::kRestElement: return "RestElement";
    case NodeKind::kYieldExpression: return "YieldExpression";
    case NodeKind::kAwaitExpression: return "AwaitExpression";
    case NodeKind::kAssignmentPattern: return "AssignmentPattern";
    case NodeKind::kArrayPattern: return "ArrayPattern";
    case NodeKind::kObjectPattern: return "ObjectPattern";
  }
  return "Unknown";
}

bool Node::is_statement() const {
  switch (kind) {
    case NodeKind::kExpressionStatement:
    case NodeKind::kBlockStatement:
    case NodeKind::kVariableDeclaration:
    case NodeKind::kFunctionDeclaration:
    case NodeKind::kClassDeclaration:
    case NodeKind::kReturnStatement:
    case NodeKind::kIfStatement:
    case NodeKind::kForStatement:
    case NodeKind::kForInStatement:
    case NodeKind::kForOfStatement:
    case NodeKind::kWhileStatement:
    case NodeKind::kDoWhileStatement:
    case NodeKind::kSwitchStatement:
    case NodeKind::kBreakStatement:
    case NodeKind::kContinueStatement:
    case NodeKind::kThrowStatement:
    case NodeKind::kTryStatement:
    case NodeKind::kLabeledStatement:
    case NodeKind::kEmptyStatement:
    case NodeKind::kDebuggerStatement:
    case NodeKind::kWithStatement:
      return true;
    default:
      return false;
  }
}

bool Node::is_expression() const {
  switch (kind) {
    case NodeKind::kIdentifier:
    case NodeKind::kLiteral:
    case NodeKind::kTemplateLiteral:
    case NodeKind::kTaggedTemplateExpression:
    case NodeKind::kThisExpression:
    case NodeKind::kSuper:
    case NodeKind::kArrayExpression:
    case NodeKind::kObjectExpression:
    case NodeKind::kFunctionExpression:
    case NodeKind::kArrowFunctionExpression:
    case NodeKind::kClassExpression:
    case NodeKind::kSequenceExpression:
    case NodeKind::kUnaryExpression:
    case NodeKind::kBinaryExpression:
    case NodeKind::kLogicalExpression:
    case NodeKind::kAssignmentExpression:
    case NodeKind::kUpdateExpression:
    case NodeKind::kConditionalExpression:
    case NodeKind::kCallExpression:
    case NodeKind::kNewExpression:
    case NodeKind::kMemberExpression:
    case NodeKind::kYieldExpression:
    case NodeKind::kAwaitExpression:
      return true;
    default:
      return false;
  }
}

bool Node::is_function() const {
  return kind == NodeKind::kFunctionDeclaration ||
         kind == NodeKind::kFunctionExpression ||
         kind == NodeKind::kArrowFunctionExpression;
}

bool Node::is_loop() const {
  switch (kind) {
    case NodeKind::kForStatement:
    case NodeKind::kForInStatement:
    case NodeKind::kForOfStatement:
    case NodeKind::kWhileStatement:
    case NodeKind::kDoWhileStatement:
      return true;
    default:
      return false;
  }
}

// reset() reclaims node storage without running destructors, so the
// whole Node (including its NodeList and payload views) must be trivial
// to destroy.
static_assert(std::is_trivially_destructible_v<Node>);

void NodeList::grow(std::size_t at_least) {
  std::size_t next = capacity_ == 0 ? 4 : static_cast<std::size_t>(capacity_) * 2;
  while (next < at_least) next *= 2;
  Node** grown = arena_->alloc_array<Node*>(next);
  for (std::size_t i = 0; i < size_; ++i) grown[i] = data_[i];
  data_ = grown;
  capacity_ = static_cast<std::uint32_t>(next);
}

Node* Ast::make(NodeKind kind) {
  if (budget_ != nullptr) budget_->charge_ast_nodes();
  Node* node = new (arena_->allocate(sizeof(Node), alignof(Node))) Node();
  node->kind = kind;
  node->kids.set_arena(arena_);
  ++allocated_;
  return node;
}

Node* Ast::make_identifier(std::string_view name) {
  Node* node = make(NodeKind::kIdentifier);
  node->str_value = intern(name);
  node->atom = atoms_->intern(node->str_value);
  return node;
}

Node* Ast::make_string(std::string_view value) {
  Node* node = make(NodeKind::kLiteral);
  node->lit_kind = LiteralKind::kString;
  node->str_value = intern(value);
  return node;
}

Node* Ast::make_number(double value) {
  Node* node = make(NodeKind::kLiteral);
  node->lit_kind = LiteralKind::kNumber;
  node->num_value = value;
  return node;
}

Node* Ast::make_bool(bool value) {
  Node* node = make(NodeKind::kLiteral);
  node->lit_kind = LiteralKind::kBoolean;
  node->num_value = value ? 1.0 : 0.0;
  return node;
}

Node* Ast::make_null() {
  Node* node = make(NodeKind::kLiteral);
  node->lit_kind = LiteralKind::kNull;
  return node;
}

Node* Ast::make_regex(std::string_view pattern, std::string_view flags) {
  Node* node = make(NodeKind::kLiteral);
  node->lit_kind = LiteralKind::kRegExp;
  node->str_value = intern(pattern);
  node->raw = intern(flags);
  return node;
}

Node* Ast::clone(const Node* node) {
  if (node == nullptr) return nullptr;
  Node* copy = make(node->kind);
  // Payload text is re-interned so a clone into a fresh Ast (different
  // arena) owns its bytes and survives the source tree's arena reset.
  // Identifier atoms likewise: the source node's atom indexes the source
  // tree's table, so the spelling is re-interned into this tree's.
  copy->str_value = intern(node->str_value);
  copy->raw = intern(node->raw);
  if (node->kind == NodeKind::kIdentifier) {
    copy->atom = atoms_->intern(copy->str_value);
  }
  copy->num_value = node->num_value;
  copy->lit_kind = node->lit_kind;
  copy->flag_a = node->flag_a;
  copy->flag_b = node->flag_b;
  copy->flag_c = node->flag_c;
  copy->line = node->line;
  copy->kids.reserve(node->kids.size());
  for (const Node* kid : node->kids) copy->kids.push_back(clone(kid));
  return copy;
}

std::size_t Ast::finalize() {
  node_count_ = 0;
  if (root_ == nullptr) return 0;
  // Iterative pre-order traversal assigning ids and parents. The stack is
  // arena-allocated (each node is pushed at most once, so allocated_
  // bounds its growth); the transient block is reclaimed at the next
  // arena reset, keeping finalize() heap-allocation-free.
  Node** stack = arena_->alloc_array<Node*>(allocated_ + 1);
  std::size_t depth = 0;
  stack[depth++] = root_;
  root_->parent = nullptr;
  while (depth > 0) {
    Node* node = stack[--depth];
    node->id = static_cast<std::uint32_t>(node_count_++);
    for (auto it = node->kids.rbegin(); it != node->kids.rend(); ++it) {
      if (*it != nullptr) {
        (*it)->parent = node;
        stack[depth++] = *it;
      }
    }
  }
  return node_count_;
}

}  // namespace jst
