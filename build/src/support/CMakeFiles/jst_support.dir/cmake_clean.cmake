file(REMOVE_RECURSE
  "CMakeFiles/jst_support.dir/json_writer.cpp.o"
  "CMakeFiles/jst_support.dir/json_writer.cpp.o.d"
  "CMakeFiles/jst_support.dir/rng.cpp.o"
  "CMakeFiles/jst_support.dir/rng.cpp.o.d"
  "CMakeFiles/jst_support.dir/stats.cpp.o"
  "CMakeFiles/jst_support.dir/stats.cpp.o.d"
  "CMakeFiles/jst_support.dir/strings.cpp.o"
  "CMakeFiles/jst_support.dir/strings.cpp.o.d"
  "libjst_support.a"
  "libjst_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
