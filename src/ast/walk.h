// Tree traversal utilities.
#pragma once

#include <functional>
#include <vector>

#include "ast/ast.h"

namespace jst {

// Pre-order visit of all non-null nodes. The callback may not mutate the
// tree structure above the visited node.
void walk_preorder(Node* root, const std::function<void(Node&)>& visit);
void walk_preorder(const Node* root,
                   const std::function<void(const Node&)>& visit);

// Post-order visit (children before parent).
void walk_postorder(Node* root, const std::function<void(Node&)>& visit);

// Pre-order sequence of node kinds — the "list of syntactic units" the
// paper slides a 4-gram window over (§III-B).
std::vector<NodeKind> preorder_kinds(const Node* root);

// Maximum depth of the tree (root = depth 1; empty tree = 0).
std::size_t tree_depth(const Node* root);

// Maximum number of nodes at any single depth level ("breadth").
std::size_t tree_breadth(const Node* root);

// Total number of non-null nodes.
std::size_t count_nodes(const Node* root);

// Collects every node of the given kind (pre-order).
std::vector<Node*> collect_kind(Node* root, NodeKind kind);
std::vector<const Node*> collect_kind(const Node* root, NodeKind kind);

}  // namespace jst
