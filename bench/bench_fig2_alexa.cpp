// §IV-B1 / Figure 2 — Alexa Top 10k: share of transformed scripts (68.60%,
// of which 68.20% minified / 0.40% obfuscated) and the per-technique usage
// probability among transformed scripts (minification simple 45.96%,
// advanced 40.24%, identifier obfuscation 5.72%, others < 1.94%).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jst;
  using namespace jst::bench;

  const auto spec = analysis::alexa_spec();
  const auto measurement = measure_population(spec, scaled(220), 0xa1e8a);

  print_header("Alexa Top 10k websites", "section IV-B1, Figure 2");
  print_row("scripts transformed", 68.60, 100.0 * measurement.transformed_rate);
  print_row("scripts minified", 68.20, 100.0 * measurement.minified_rate);
  print_row("scripts obfuscated", 0.40, 100.0 * measurement.obfuscated_rate);

  std::printf("\nFigure 2: technique probability in transformed scripts\n");
  const double paper_values[transform::kTechniqueCount] = {
      5.72,   // identifier obfuscation
      1.94,   // string obfuscation (upper bound "below 1.94")
      1.0,    // global array
      0.2,    // no alphanumeric
      1.0,    // dead code injection
      0.5,    // control-flow flattening
      0.3,    // self-defending
      0.3,    // debug protection
      45.96,  // minification simple
      40.24,  // minification advanced
  };
  std::printf("%-28s %10s %10s\n", "technique", "paper", "measured");
  for (transform::Technique technique : transform::all_techniques()) {
    const auto index = static_cast<std::size_t>(technique);
    std::printf("%-28s %9.2f%% %9.2f%%\n",
                std::string(transform::technique_name(technique)).c_str(),
                paper_values[index],
                100.0 * measurement.technique_confidence[index]);
  }
  print_note("measured = average level-2 confidence over scripts the "
             "level-1 detector flags as transformed");
  print_footer();
  return 0;
}
