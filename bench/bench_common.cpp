#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/json_writer.h"

namespace jst::bench {

double scale() {
  static const double kScale = [] {
    const char* env = std::getenv("JSTRACED_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double value = std::atof(env);
    return value > 0.0 ? value : 1.0;
  }();
  return kScale;
}

std::size_t scaled(std::size_t base) {
  const auto value = static_cast<std::size_t>(
      static_cast<double>(base) * scale());
  return value > 0 ? value : 1;
}

const analysis::TransformationAnalyzer& analyzer() {
  static const analysis::TransformationAnalyzer* kAnalyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = scaled(160);
    options.per_technique_count = scaled(32);
    options.seed = 0xbadc0ffee;
    options.detector.forest.tree_count = 32;
    options.detector.features.ngram.hash_dim = 384;
    std::fprintf(stderr,
                 "[bench] training detectors (regular=%zu, per-technique=%zu, "
                 "trees=%zu)...\n",
                 options.training_regular_count, options.per_technique_count,
                 options.detector.forest.tree_count);
    auto* instance = new analysis::TransformationAnalyzer(options);
    instance->train();
    std::fprintf(stderr, "[bench] training done\n");
    return instance;
  }();
  return *kAnalyzer;
}

std::vector<std::string> held_out_regular(std::size_t count,
                                          std::uint64_t seed) {
  analysis::CorpusSpec spec;
  spec.regular_count = count;
  spec.seed = seed ^ 0x5eedc0de12345ULL;
  return analysis::generate_regular_corpus(spec);
}

std::string write_bench_json(std::string_view bench,
                             std::span<const BenchRecord> records) {
  std::string path;
  if (const char* dir = std::getenv("JSTRACED_BENCH_OUT")) {
    path = dir;
    if (!path.empty() && path.back() != '/') path += '/';
  }
  path += "BENCH_" + std::string(bench) + ".json";

  JsonWriter writer;
  writer.begin_object();
  writer.key("bench"); writer.value(bench);
  writer.key("scale"); writer.value(scale());
  writer.key("results");
  writer.begin_array();
  for (const BenchRecord& record : records) {
    writer.begin_object();
    writer.key("config"); writer.value(record.config);
    writer.key("threads"); writer.value(record.threads);
    writer.key("scripts"); writer.value(record.scripts);
    writer.key("wall_ms"); writer.value(record.wall_ms);
    writer.key("scripts_per_second"); writer.value(record.scripts_per_second);
    if (record.lex_ms > 0.0 || record.parse_ms > 0.0) {
      writer.key("lex_ms"); writer.value(record.lex_ms);
      writer.key("parse_ms"); writer.value(record.parse_ms);
      writer.key("frontend_ms"); writer.value(record.lex_ms + record.parse_ms);
      writer.key("postparse_ms"); writer.value(record.postparse_ms);
      if (record.static_ms > 0.0 || record.features_ms > 0.0 ||
          record.inference_ms > 0.0) {
        writer.key("static_ms"); writer.value(record.static_ms);
        writer.key("features_ms"); writer.value(record.features_ms);
        writer.key("inference_ms"); writer.value(record.inference_ms);
      }
    }
    if (record.cache_hit_rate >= 0.0) {
      writer.key("cache_hit_rate"); writer.value(record.cache_hit_rate);
    }
    if (record.bytes > 0) {
      writer.key("bytes"); writer.value(record.bytes);
      writer.key("mb_per_second"); writer.value(record.mb_per_second);
    }
    if (record.latency_p50_ms > 0.0) {
      writer.key("latency_p50_ms"); writer.value(record.latency_p50_ms);
      writer.key("latency_p95_ms"); writer.value(record.latency_p95_ms);
      writer.key("latency_p99_ms"); writer.value(record.latency_p99_ms);
      writer.key("shed_rate"); writer.value(record.shed_rate);
      writer.key("offered_qps"); writer.value(record.offered_qps);
    }
    if (!record.stats_json.empty()) {
      writer.key("stats"); writer.raw(record.stats_json);
    }
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return std::string();
  }
  out << writer.str() << '\n';
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  return path;
}

void print_header(std::string_view title, std::string_view paper_ref) {
  std::printf("\n=============================================================\n");
  std::printf("%.*s\n", static_cast<int>(title.size()), title.data());
  std::printf("reproduces: %.*s   [scale=%.1f]\n",
              static_cast<int>(paper_ref.size()), paper_ref.data(), scale());
  std::printf("-------------------------------------------------------------\n");
  std::printf("%-44s %10s %10s\n", "metric", "paper", "measured");
}

void print_row(std::string_view metric, double paper_value,
               double measured_value, std::string_view unit) {
  std::printf("%-44.*s %9.2f%.*s %9.2f%.*s\n",
              static_cast<int>(metric.size()), metric.data(), paper_value,
              static_cast<int>(unit.size()), unit.data(), measured_value,
              static_cast<int>(unit.size()), unit.data());
}

void print_note(std::string_view text) {
  std::printf("  note: %.*s\n", static_cast<int>(text.size()), text.data());
}

void print_series_header(std::string_view x_label,
                         std::string_view series_names) {
  std::printf("%-12.*s %s\n", static_cast<int>(x_label.size()), x_label.data(),
              std::string(series_names).c_str());
}

void print_footer() {
  std::printf("-------------------------------------------------------------\n");
}

PopulationMeasurement measure_population(const analysis::PopulationSpec& spec,
                                         std::size_t count,
                                         std::uint64_t seed) {
  const analysis::AnalyzerService service(analyzer());
  const auto samples = analysis::simulate_population(spec, count, seed);
  std::vector<std::string> sources;
  sources.reserve(samples.size());
  for (const analysis::Sample& sample : samples) {
    sources.push_back(sample.source);
  }
  const analysis::BatchResponse batch =
      service.analyze_batch(analysis::make_source_requests(sources));

  PopulationMeasurement out;
  out.technique_confidence.assign(transform::kTechniqueCount, 0.0);
  std::size_t transformed = 0;
  for (const analysis::AnalyzeResponse& response : batch.responses) {
    const analysis::ScriptOutcome& outcome = response.outcome;
    if (outcome.parse_failed()) continue;
    const analysis::ScriptReport& report = outcome.report;
    ++out.script_count;
    if (report.level1.transformed()) {
      ++transformed;
      for (std::size_t i = 0; i < report.technique_confidence.size(); ++i) {
        out.technique_confidence[i] += report.technique_confidence[i];
      }
    }
    if (report.level1.minified()) out.minified_rate += 1.0;
    if (report.level1.obfuscated()) out.obfuscated_rate += 1.0;
  }
  if (out.script_count > 0) {
    out.transformed_rate =
        static_cast<double>(transformed) / static_cast<double>(out.script_count);
    out.minified_rate /= static_cast<double>(out.script_count);
    out.obfuscated_rate /= static_cast<double>(out.script_count);
  }
  if (transformed > 0) {
    for (double& confidence : out.technique_confidence) {
      confidence /= static_cast<double>(transformed);
    }
  }
  return out;
}

}  // namespace jst::bench
