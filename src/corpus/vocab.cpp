#include "corpus/vocab.h"

#include <array>

#include "lexer/lexer.h"

namespace jst::corpus {
namespace {

constexpr std::array<std::string_view, 72> kNouns = {
    "user",    "item",    "data",    "value",   "result",  "config",
    "option",  "element", "node",    "list",    "index",   "count",
    "name",    "key",     "entry",   "cache",   "buffer",  "stream",
    "event",   "handler", "callback","request", "response","error",
    "status",  "message", "payload", "token",   "session", "client",
    "server",  "model",   "view",    "state",   "store",   "action",
    "record",  "field",   "column",  "row",     "table",   "query",
    "filter",  "sorter",  "mapper",  "reducer", "widget",  "panel",
    "button",  "input",   "form",    "page",    "route",   "path",
    "file",    "folder",  "image",   "color",   "style",   "theme",
    "layout",  "grid",    "chart",   "graph",   "timer",   "queue",
    "stack",   "pool",    "worker",  "task",    "job",     "batch",
};

constexpr std::array<std::string_view, 48> kVerbs = {
    "get",     "set",     "fetch",   "load",    "save",    "update",
    "delete",  "remove",  "add",     "insert",  "create",  "build",
    "make",    "init",    "start",   "stop",    "run",     "execute",
    "process", "handle",  "parse",   "format",  "render",  "draw",
    "compute", "calculate","validate","check",  "verify",  "test",
    "find",    "search",  "filter",  "sort",    "map",     "reduce",
    "merge",   "split",   "join",    "copy",    "clone",   "reset",
    "clear",   "flush",   "send",    "receive", "open",    "close",
};

constexpr std::array<std::string_view, 24> kAdjectives = {
    "new",    "old",     "current", "next",   "prev",    "last",
    "first",  "active",  "pending", "cached", "dirty",   "valid",
    "max",    "min",     "total",   "base",   "default", "temp",
    "local",  "remote",  "global",  "inner",  "outer",   "raw",
};

constexpr std::array<std::string_view, 40> kProperties = {
    "length",   "name",     "id",        "type",     "value",
    "data",     "children", "parent",    "style",    "className",
    "innerHTML","textContent","options", "config",   "status",
    "message",  "code",     "body",      "headers",  "url",
    "method",   "params",   "state",     "props",    "target",
    "current",  "next",     "prev",      "items",    "keys",
    "values",   "entries",  "size",      "count",    "index",
    "offset",   "width",    "height",    "left",     "top",
};

constexpr std::array<std::string_view, 40> kMethods = {
    "push",        "pop",          "shift",       "slice",
    "splice",      "concat",       "join",        "split",
    "indexOf",     "includes",     "map",         "filter",
    "forEach",     "reduce",       "find",        "some",
    "every",       "sort",         "reverse",     "keys",
    "toString",    "toLowerCase",  "toUpperCase", "trim",
    "replace",     "charAt",       "substring",   "apply",
    "call",        "bind",         "then",        "catch",
    "addEventListener", "removeEventListener",    "querySelector",
    "getElementById",   "setAttribute",           "getAttribute",
    "appendChild", "hasOwnProperty",
};

constexpr std::array<std::string_view, 16> kGlobals = {
    "console", "Math",    "JSON",     "Object",  "Array",   "String",
    "Number",  "Date",    "Promise",  "RegExp",  "window",  "document",
    "module",  "exports", "process",  "Error",
};

constexpr std::array<std::string_view, 36> kStrings = {
    "ok",            "error",            "success",
    "failed",        "loading",          "complete",
    "click",         "change",           "submit",
    "keydown",       "mouseover",        "resize",
    "GET",           "POST",             "PUT",
    "DELETE",        "application/json", "text/html",
    "utf-8",         "active",           "disabled",
    "hidden",        "visible",          "container",
    "wrapper",       "content",          "header",
    "footer",        "main",             "button",
    "invalid input", "not found",        "timeout",
    "unauthorized",  "missing parameter","unexpected state",
};

constexpr std::array<std::string_view, 20> kComments = {
    "TODO: handle the edge case where the list is empty",
    "initialize the default configuration",
    "make sure the handler runs only once",
    "fall back to the cached value when offline",
    "see RFC 2616 section 14.9 for details",
    "this is a workaround for an old browser bug",
    "keep this in sync with the server-side validation",
    "note: the order of these checks matters",
    "lazily create the instance on first use",
    "avoid reflowing the layout more than once",
    "the timeout value was tuned empirically",
    "FIXME: remove once the legacy API is gone",
    "normalize the input before comparing",
    "guard against concurrent modification",
    "prefer the explicit option when provided",
    "convert to milliseconds",
    "the result is memoized below",
    "chain the promise so errors propagate",
    "strip the trailing slash",
    "update the UI after the data settles",
};

constexpr std::array<std::string_view, 12> kUrls = {
    "/api/v1/users",      "/api/v1/items",     "/api/session",
    "/assets/main.css",   "/images/logo.png",  "https://example.com/api",
    "https://cdn.example.com/lib.js",          "/search?q=",
    "/account/settings",  "/static/app.js",    "/data.json",
    "/health",
};

}  // namespace

std::span<const std::string_view> noun_words() { return kNouns; }
std::span<const std::string_view> verb_words() { return kVerbs; }
std::span<const std::string_view> adjective_words() { return kAdjectives; }
std::span<const std::string_view> property_names() { return kProperties; }
std::span<const std::string_view> method_names() { return kMethods; }
std::span<const std::string_view> global_names() { return kGlobals; }
std::span<const std::string_view> string_pool() { return kStrings; }
std::span<const std::string_view> comment_pool() { return kComments; }
std::span<const std::string_view> url_pool() { return kUrls; }

namespace {

std::string capitalize(std::string_view word) {
  std::string out(word);
  if (!out.empty() && out[0] >= 'a' && out[0] <= 'z') {
    out[0] = static_cast<char>(out[0] - 'a' + 'A');
  }
  return out;
}

std::string_view random_word(Rng& rng, std::size_t position) {
  switch (position == 0 ? rng.index(3) : rng.index(2)) {
    case 0: return rng.choice(noun_words());
    case 1: return position == 0 ? rng.choice(verb_words())
                                 : rng.choice(noun_words());
    default: return rng.choice(adjective_words());
  }
}

}  // namespace

std::string camel_identifier(Rng& rng, std::size_t words) {
  std::string out(random_word(rng, 0));
  for (std::size_t i = 1; i < words; ++i) {
    out += capitalize(random_word(rng, i));
  }
  // Single vocabulary words can collide with reserved words ("new",
  // "delete", "default"); extend those into two-word identifiers.
  if (is_js_keyword(out) || out == "true" || out == "false" ||
      out == "null") {
    out += capitalize(random_word(rng, 1));
  }
  return out;
}

std::string pascal_identifier(Rng& rng, std::size_t words) {
  std::string out = capitalize(random_word(rng, 0));
  for (std::size_t i = 1; i < words; ++i) {
    out += capitalize(random_word(rng, i));
  }
  return out;
}

}  // namespace jst::corpus
