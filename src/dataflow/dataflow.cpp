#include "dataflow/dataflow.h"

#include <span>
#include <string_view>
#include <utility>

namespace jst {
namespace {

constexpr std::uint32_t kNone = 0xffffffffu;

// Flat scope/data-flow builder (DESIGN.md §17).
//
// The previous implementation kept one heap-allocated Scope per lexical
// scope, each holding an unordered_map<std::string, index>, and resolved
// every reference by materializing a std::string key and walking the
// parent chain of maps. This builder exploits two structural facts the
// traversal already guarantees:
//
//  1. Scopes open and close in strict LIFO order (every scope-opening
//     helper drains its subtree before returning), so the set of live
//     scopes is a stack and "innermost" is a single index.
//  2. Every bind targets the scope being opened (hoisting, lexical
//     collection, parameters, catch params and for-heads all run at
//     scope-open time), so a per-atom stack of live bindings — indexed
//     by the parse-time atom id — resolves any reference in O(1): the
//     top of the atom's stack IS the innermost binding.
//
// Bindings therefore carry `prev_top` (the shadowed stack entry) and the
// bind log records which atoms a scope pushed, so closing a scope pops
// its bindings in O(bindings). No hashing, no string compares, no
// per-scope allocation; every table lives in the DataFlowScratch.
class DataFlowBuilder {
 public:
  DataFlowBuilder(const Ast& ast, DataFlow& out, Budget* budget,
                  DataFlowScratch& ws)
      : ast_(ast), out_(out), budget_(budget), ws_(ws) {}

  void run(const Node* root) {
    if (root == nullptr) return;
    ws_.scopes.clear();
    ws_.aux.clear();
    ws_.bind_log.clear();
    ws_.site_links.clear();
    ws_.spine.clear();
    ws_.hoist_stack.clear();
    ws_.atom_tops.assign(ast_.atoms().size(), kNone);

    open_scope();  // global
    hoist_into_function_scope(root);
    collect_lexical(root->kids);
    for (const Node* statement : root->kids) {
      visit(statement);
      if (aborted_) break;  // deadline noticed mid-resolution
    }
    // Pack the chained sites into contiguous spans before (possibly
    // budget-truncated) edge emission, so the bindings are fully formed
    // even when a ceiling stops the pass mid-product.
    pack_sites();
    if (aborted_) return;
    emit_edges();
  }

 private:
  // --- scope stack -------------------------------------------------------

  void open_scope() {
    DataFlowScratch::ScopeRec scope;
    scope.parent = current_;
    scope.log_mark = static_cast<std::uint32_t>(ws_.bind_log.size());
    current_ = static_cast<std::uint32_t>(ws_.scopes.size());
    ws_.scopes.push_back(scope);
    ++out_.scope_count;
  }

  void close_scope() {
    const DataFlowScratch::ScopeRec& scope = ws_.scopes[current_];
    while (ws_.bind_log.size() > scope.log_mark) {
      const std::uint32_t atom = ws_.bind_log.back();
      ws_.bind_log.pop_back();
      ws_.atom_tops[atom] = ws_.aux[ws_.atom_tops[atom]].prev_top;
    }
    current_ = scope.parent;
  }

  // --- atoms -------------------------------------------------------------

  // Every parser-made identifier carries its atom; transformer-created
  // stragglers (atom-less nodes analyzed before the next re-parse) are
  // interned on first sight so they join the same id space.
  std::uint32_t atom_of(const Node* identifier) {
    const std::uint32_t atom = identifier->atom;
    if (atom != support::AtomTable::kNoAtom) return atom;
    const std::uint32_t interned =
        ast_.atoms().intern(identifier->str_value);
    if (interned >= ws_.atom_tops.size()) {
      ws_.atom_tops.resize(interned + 1, kNone);
    }
    return interned;
  }

  // --- binding table -----------------------------------------------------

  std::size_t bind(const Node* declaration) {
    const std::uint32_t atom = atom_of(declaration);
    const std::uint32_t top = ws_.atom_tops[atom];
    if (top != kNone && ws_.aux[top].scope == current_) {
      // Redeclaration (var x twice, or function overriding var): keep the
      // first binding, update the declaration node if missing.
      Binding& binding = out_.bindings[top];
      if (binding.declaration == nullptr) binding.declaration = declaration;
      return top;
    }
    Binding binding;
    binding.name = declaration->str_value;
    binding.declaration = declaration;
    out_.bindings.push_back(binding);
    DataFlowScratch::BindingAux aux;
    aux.scope = current_;
    aux.prev_top = top;
    aux.use_head = aux.use_tail = aux.asg_head = aux.asg_tail = kNone;
    ws_.aux.push_back(aux);
    const std::uint32_t index =
        static_cast<std::uint32_t>(out_.bindings.size() - 1);
    ws_.atom_tops[atom] = index;
    ws_.bind_log.push_back(atom);
    return index;
  }

  // Innermost live binding for the identifier, or kNone (unresolved).
  std::uint32_t resolve(const Node* identifier) {
    return ws_.atom_tops[atom_of(identifier)];
  }

  void append_site(std::uint32_t& head, std::uint32_t& tail,
                   std::uint32_t& count, const Node* site) {
    const std::uint32_t link =
        static_cast<std::uint32_t>(ws_.site_links.size());
    ws_.site_links.push_back({site, kNone});
    if (tail == kNone) {
      head = link;
    } else {
      ws_.site_links[tail].next = link;
    }
    tail = link;
    ++count;
  }

  // --- declaration collection ---

  // Binds all identifiers in a binding pattern into the current scope.
  void bind_pattern(const Node* pattern, bool is_parameter) {
    if (pattern == nullptr) return;
    switch (pattern->kind) {
      case NodeKind::kIdentifier: {
        const std::size_t index = bind(pattern);
        out_.bindings[index].is_parameter = is_parameter;
        break;
      }
      case NodeKind::kArrayPattern:
        for (const Node* element : pattern->kids) {
          bind_pattern(element, is_parameter);
        }
        break;
      case NodeKind::kObjectPattern:
        for (const Node* property : pattern->kids) {
          if (property == nullptr) continue;
          if (property->kind == NodeKind::kRestElement) {
            bind_pattern(property->kid(0), is_parameter);
          } else {
            bind_pattern(property->kid(1), is_parameter);
          }
        }
        break;
      case NodeKind::kAssignmentPattern:
        bind_pattern(pattern->kid(0), is_parameter);
        // The default value is an expression, resolved during visit().
        break;
      case NodeKind::kRestElement:
        bind_pattern(pattern->kid(0), is_parameter);
        break;
      default:
        break;  // member-expression targets bind nothing
    }
  }

  // Hoists `var` declarators and function declarations from the subtree
  // into the (currently innermost) function scope, without descending
  // into nested functions. Iterative pre-order with pruning: deep
  // expression chains make the subtree arbitrarily deep (the parser's
  // recursion guard only bounds nested statements), so per-node recursion
  // would overflow the native stack on hostile inputs. The explicit stack
  // visits every descendant in exactly the order the recursive version
  // did, so bindings are created in the same order and get the same
  // indices.
  void hoist_into_function_scope(const Node* node) {
    if (node == nullptr) return;
    std::vector<const Node*>& stack = ws_.hoist_stack;
    const std::size_t base = stack.size();  // re-entered via visit_function
    for (std::size_t i = node->kids.size(); i > 0; --i) {
      if (node->kids[i - 1] != nullptr) stack.push_back(node->kids[i - 1]);
    }
    while (stack.size() > base) {
      const Node* kid = stack.back();
      stack.pop_back();
      if (kid->kind == NodeKind::kFunctionDeclaration) {
        if (kid->kid(0) != nullptr) {
          const std::size_t index = bind(kid->kids[0]);
          out_.bindings[index].is_function_name = true;
          out_.bindings[index].init = kid;
        }
        continue;  // do not hoist through the nested function
      }
      if (kid->is_function()) continue;
      if (kid->kind == NodeKind::kVariableDeclaration &&
          kid->str_value == "var") {
        for (const Node* declarator : kid->kids) {
          bind_pattern(declarator->kid(0), false);
        }
        // Initializers may contain more nested statements (rare); fall
        // through to descend into the declarators.
      }
      for (std::size_t i = kid->kids.size(); i > 0; --i) {
        if (kid->kids[i - 1] != nullptr) stack.push_back(kid->kids[i - 1]);
      }
    }
  }

  // Binds let/const/class declared directly in this statement list into
  // the current scope. Templated over the list type: callers pass the
  // arena-backed NodeList or (for switch cases) a span over a kid-list
  // tail.
  template <typename StatementList>
  void collect_lexical(const StatementList& statements) {
    for (const Node* statement : statements) {
      if (statement == nullptr) continue;
      if (statement->kind == NodeKind::kVariableDeclaration &&
          statement->str_value != "var") {
        for (const Node* declarator : statement->kids) {
          bind_pattern(declarator->kid(0), false);
        }
      } else if (statement->kind == NodeKind::kClassDeclaration &&
                 statement->kid(0) != nullptr) {
        bind(statement->kids[0]);
      }
    }
  }

  // --- reference resolution ---

  void record_use(const Node* identifier) {
    const std::uint32_t index = resolve(identifier);
    if (index == kNone) {
      ++out_.unresolved_uses;
      return;
    }
    DataFlowScratch::BindingAux& aux = ws_.aux[index];
    append_site(aux.use_head, aux.use_tail, aux.use_count, identifier);
  }

  void record_write(const Node* identifier) {
    const std::uint32_t index = resolve(identifier);
    if (index == kNone) {
      ++out_.unresolved_uses;
      return;
    }
    DataFlowScratch::BindingAux& aux = ws_.aux[index];
    append_site(aux.asg_head, aux.asg_tail, aux.asg_count, identifier);
  }

  // Visits write targets (assignment LHS / for-in heads): identifiers are
  // writes; member expressions read their object; patterns recurse.
  void visit_target(const Node* target) {
    if (target == nullptr) return;
    switch (target->kind) {
      case NodeKind::kIdentifier:
        record_write(target);
        break;
      case NodeKind::kMemberExpression:
        visit(target->kid(0));
        if (target->flag_a) visit(target->kid(1));
        break;
      case NodeKind::kArrayPattern:
        for (const Node* element : target->kids) visit_target(element);
        break;
      case NodeKind::kObjectPattern:
        for (const Node* property : target->kids) {
          if (property == nullptr) continue;
          if (property->kind == NodeKind::kRestElement) {
            visit_target(property->kid(0));
          } else {
            if (property->flag_a) visit(property->kid(0));
            visit_target(property->kid(1));
          }
        }
        break;
      case NodeKind::kAssignmentPattern:
        visit_target(target->kid(0));
        visit(target->kid(1));
        break;
      case NodeKind::kRestElement:
        visit_target(target->kid(0));
        break;
      default:
        visit(target);
    }
  }

  void visit_function(const Node* function) {
    open_scope();
    const bool is_arrow = function->kind == NodeKind::kArrowFunctionExpression;
    const std::size_t first_param = is_arrow ? 1 : 2;
    const Node* body = is_arrow ? function->kid(0) : function->kid(1);
    // Function-expression names are visible inside the function.
    if (!is_arrow && function->kind == NodeKind::kFunctionExpression &&
        function->kid(0) != nullptr) {
      const std::size_t index = bind(function->kids[0]);
      out_.bindings[index].is_function_name = true;
      out_.bindings[index].init = function;
    }
    for (std::size_t i = first_param; i < function->kids.size(); ++i) {
      bind_pattern(function->kids[i], /*is_parameter=*/true);
    }
    if (body != nullptr && body->kind == NodeKind::kBlockStatement) {
      hoist_into_function_scope(body);
      collect_lexical(body->kids);
      // Parameter defaults are expressions in the function scope.
      for (std::size_t i = first_param; i < function->kids.size(); ++i) {
        visit_pattern_defaults(function->kids[i]);
      }
      for (const Node* statement : body->kids) visit(statement);
    } else if (body != nullptr) {
      for (std::size_t i = first_param; i < function->kids.size(); ++i) {
        visit_pattern_defaults(function->kids[i]);
      }
      visit(body);  // expression-bodied arrow
    }
    close_scope();
  }

  void visit_pattern_defaults(const Node* pattern) {
    if (pattern == nullptr) return;
    if (pattern->kind == NodeKind::kAssignmentPattern) {
      visit(pattern->kid(1));
      visit_pattern_defaults(pattern->kid(0));
      return;
    }
    for (const Node* kid : pattern->kids) visit_pattern_defaults(kid);
  }

  void visit_block_like(const Node* node) {
    open_scope();
    collect_lexical(node->kids);
    for (const Node* statement : node->kids) visit(statement);
    close_scope();
  }

  void push_kid(const Node* node) {
    if (node != nullptr) ws_.spine.push_back(node);
  }

  // Pushes `node`'s kids so they pop in source order.
  void push_kids_of(const Node* node) {
    for (std::size_t i = node->kids.size(); i > 0; --i) {
      push_kid(node->kids[i - 1]);
    }
  }

  // Iterative driver: expression chains (binary, call/member, sequence)
  // are parsed iteratively, so their AST depth is NOT bounded by the
  // parser's nesting recursion guard — a hostile 10k-term `[]+[]+...`
  // blob must not overflow the native stack here. Same-scope descent
  // therefore goes through an explicit spine stack; only scope-opening
  // and binding constructs (functions, blocks, loops, catch, switch —
  // forms the parser can only nest through its depth-guarded recursion)
  // re-enter visit() and consume native frames. A re-entrant call drains
  // its own segment of the shared stack (everything above `base`), which
  // preserves the exact pre-order visitation — and budget-poll order —
  // of the recursive implementation it replaced. Spine entries need no
  // scope tag: a deferred node is popped only after every scope opened
  // since it was pushed has closed again, so the current scope at pop
  // time is exactly the scope it was pushed under.
  void visit(const Node* node) {
    const std::size_t base = ws_.spine.size();
    push_kid(node);
    while (ws_.spine.size() > base) {
      if (aborted_) {
        ws_.spine.resize(base);
        return;
      }
      const Node* next = ws_.spine.back();
      ws_.spine.pop_back();
      step(next);
    }
  }

  // Handles one node; same-scope subtrees are pushed, not recursed.
  void step(const Node* node) {
    if (budget_ != nullptr &&
        ++visits_ % Budget::kDeadlinePollStride == 0 &&
        budget_->deadline_expired()) {
      abort_with(ResourceKind::kDeadline);
      return;
    }
    switch (node->kind) {
      case NodeKind::kIdentifier:
        record_use(node);
        break;

      case NodeKind::kBlockStatement:
        visit_block_like(node);
        break;

      case NodeKind::kVariableDeclaration:
        for (const Node* declarator : node->kids) {
          // Binding was established during hoisting/lexical collection;
          // here we attach the initializer and resolve it.
          const Node* id = declarator->kid(0);
          const Node* init = declarator->kid(1);
          if (id != nullptr && id->kind == NodeKind::kIdentifier) {
            const std::uint32_t index = resolve(id);
            if (index != kNone) {
              Binding& binding = out_.bindings[index];
              if (binding.init == nullptr) binding.init = init;
              // Redeclarations (`var x` appearing twice) share one binding;
              // record the extra declarator identifiers as write sites so
              // renaming and def-use edges cover them.
              if (binding.declaration != id) {
                DataFlowScratch::BindingAux& aux = ws_.aux[index];
                append_site(aux.asg_head, aux.asg_tail, aux.asg_count, id);
              }
            }
          } else {
            visit_pattern_defaults(id);
          }
          visit(init);
        }
        break;

      case NodeKind::kFunctionDeclaration:
      case NodeKind::kFunctionExpression:
      case NodeKind::kArrowFunctionExpression:
        visit_function(node);
        break;

      case NodeKind::kClassDeclaration:
      case NodeKind::kClassExpression: {
        visit(node->kid(1));  // superclass expression
        const Node* body = node->kid(2);
        if (body != nullptr) {
          for (const Node* method : body->kids) {
            if (method->flag_a) visit(method->kid(0));  // computed key
            visit_function(method->kid(1));
          }
        }
        break;
      }

      case NodeKind::kCatchClause: {
        open_scope();  // catch-parameter scope
        if (node->kid(0) != nullptr) {
          bind_pattern(node->kids[0], false);
        }
        // The catch body is a block; give it its own lexical scope under
        // the catch scope.
        visit_block_like(node->kid(1));
        close_scope();
        break;
      }

      case NodeKind::kTryStatement:
        push_kid(node->kid(2));
        push_kid(node->kid(1));  // CatchClause handled above
        push_kid(node->kid(0));
        break;

      case NodeKind::kForStatement: {
        open_scope();
        const Node* init = node->kid(0);
        if (init != nullptr &&
            init->kind == NodeKind::kVariableDeclaration &&
            init->str_value != "var") {
          for (const Node* declarator : init->kids) {
            bind_pattern(declarator->kid(0), false);
          }
        }
        visit(init);
        visit(node->kid(1));
        visit(node->kid(2));
        visit(node->kid(3));
        close_scope();
        break;
      }

      case NodeKind::kForInStatement:
      case NodeKind::kForOfStatement: {
        open_scope();
        const Node* left = node->kid(0);
        if (left != nullptr && left->kind == NodeKind::kVariableDeclaration) {
          if (left->str_value != "var") {
            for (const Node* declarator : left->kids) {
              bind_pattern(declarator->kid(0), false);
            }
          }
          // Loop variable is written each iteration.
          const Node* id = left->kid(0) != nullptr ? left->kids[0]->kid(0)
                                                   : nullptr;
          if (id != nullptr && id->kind == NodeKind::kIdentifier) {
            record_write(id);
          }
        } else {
          visit_target(left);
        }
        visit(node->kid(1));
        visit(node->kid(2));
        close_scope();
        break;
      }

      case NodeKind::kAssignmentExpression: {
        const Node* target = node->kid(0);
        visit_target(target);
        if (node->str_value != "=" && target != nullptr &&
            target->kind == NodeKind::kIdentifier) {
          record_use(target);  // compound assignment also reads
        }
        push_kid(node->kid(1));
        break;
      }

      case NodeKind::kUpdateExpression: {
        const Node* argument = node->kid(0);
        if (argument != nullptr && argument->kind == NodeKind::kIdentifier) {
          record_use(argument);
          record_write(argument);
        } else {
          push_kid(argument);
        }
        break;
      }

      case NodeKind::kMemberExpression:
        if (node->flag_a) push_kid(node->kid(1));  // computed only
        push_kid(node->kid(0));
        break;

      case NodeKind::kProperty:
        push_kid(node->kid(1));
        if (node->flag_a) push_kid(node->kid(0));  // computed key
        break;

      case NodeKind::kMethodDefinition:
        if (node->flag_a) visit(node->kid(0));
        visit_function(node->kid(1));
        break;

      case NodeKind::kLabeledStatement:
        push_kid(node->kid(1));  // label identifier is not a reference
        break;

      case NodeKind::kBreakStatement:
      case NodeKind::kContinueStatement:
        break;  // label identifier is not a reference

      case NodeKind::kSwitchStatement: {
        visit(node->kid(0));
        open_scope();  // one lexical scope for the whole case list
        for (std::size_t i = 1; i < node->kids.size(); ++i) {
          const Node* switch_case = node->kids[i];
          collect_lexical(std::span<Node* const>(
              switch_case->kids.begin() + 1, switch_case->kids.end()));
        }
        for (std::size_t i = 1; i < node->kids.size(); ++i) {
          const Node* switch_case = node->kids[i];
          visit(switch_case->kid(0));
          for (std::size_t j = 1; j < switch_case->kids.size(); ++j) {
            visit(switch_case->kids[j]);
          }
        }
        close_scope();
        break;
      }

      default:
        push_kids_of(node);
    }
  }

  // --- results -----------------------------------------------------------

  // Copies each binding's chained sites into one contiguous pool —
  // [assignments][uses] per binding — and points the public spans at it.
  // The pool is reserved to exact size first so data() is stable while
  // the spans are formed.
  void pack_sites() {
    std::vector<const Node*>& pool = site_pool();
    pool.clear();
    std::size_t total = 0;
    for (const DataFlowScratch::BindingAux& aux : ws_.aux) {
      total += aux.asg_count + aux.use_count;
    }
    pool.reserve(total);
    for (std::size_t i = 0; i < out_.bindings.size(); ++i) {
      const DataFlowScratch::BindingAux& aux = ws_.aux[i];
      Binding& binding = out_.bindings[i];
      const std::size_t asg_offset = pool.size();
      for (std::uint32_t link = aux.asg_head; link != kNone;
           link = ws_.site_links[link].next) {
        pool.push_back(ws_.site_links[link].site);
      }
      const std::size_t use_offset = pool.size();
      for (std::uint32_t link = aux.use_head; link != kNone;
           link = ws_.site_links[link].next) {
        pool.push_back(ws_.site_links[link].site);
      }
      binding.assignments = std::span<const Node* const>(
          pool.data() + asg_offset, aux.asg_count);
      binding.uses = std::span<const Node* const>(pool.data() + use_offset,
                                                  aux.use_count);
    }
  }

  // Emits def -> use edges: the declaration and every assignment site are
  // definition sources; every read is a destination. This product is the
  // quadratic blow-up on adversarial inputs (one binding, thousands of
  // writes × thousands of reads), so the edge ceiling and deadline are
  // checked per edge; a trip truncates the edge list and records itself
  // instead of throwing — the pipeline degrades around it.
  void emit_edges() {
    for (const Binding& binding : out_.bindings) {
      if (binding.declaration != nullptr) {
        if (!emit_edges_from(binding.declaration, binding.uses)) return;
      }
      for (const Node* def : binding.assignments) {
        if (!emit_edges_from(def, binding.uses)) return;
      }
    }
  }

  bool emit_edges_from(const Node* def, std::span<const Node* const> uses) {
    for (const Node* use : uses) {
      if (def == use) continue;
      if (budget_ != nullptr) {
        if (!budget_->try_charge_dataflow_edges()) {
          abort_with(ResourceKind::kDataflowEdges);
          return false;
        }
        if (budget_->dataflow_edges_charged() % Budget::kDeadlinePollStride ==
                0 &&
            budget_->deadline_expired()) {
          abort_with(ResourceKind::kDeadline);
          return false;
        }
      }
      out_.edges.emplace_back(def->id, use->id);
    }
    return true;
  }

  // Owned pool for scratchless calls; the caller's scratch otherwise.
  std::vector<const Node*>& site_pool() {
    return owns_sites_ ? out_.site_pool : ws_.sites;
  }

  void abort_with(ResourceKind kind) {
    out_.tripped = budget_->make_trip(kind);
    out_.completed = false;
    aborted_ = true;
  }

 public:
  void set_owns_sites(bool owns) { owns_sites_ = owns; }

 private:
  const Ast& ast_;
  DataFlow& out_;
  Budget* budget_ = nullptr;
  DataFlowScratch& ws_;
  std::size_t visits_ = 0;
  std::uint32_t current_ = kNone;  // innermost open scope
  bool aborted_ = false;
  bool owns_sites_ = false;
};

}  // namespace

DataFlow build_data_flow(const Ast& ast, const DataFlowOptions& options) {
  DataFlow flow;
  if (ast.node_count() > options.node_budget) {
    flow.completed = false;
    return flow;
  }
  DataFlowScratch local_scratch;
  DataFlowScratch& workspace =
      options.scratch != nullptr ? *options.scratch : local_scratch;
  DataFlowBuilder builder(ast, flow, options.budget, workspace);
  builder.set_owns_sites(options.scratch == nullptr);
  builder.run(ast.root());
  return flow;
}

}  // namespace jst
