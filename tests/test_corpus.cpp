#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/snippets.h"
#include "corpus/vocab.h"
#include "features/analysis_pipeline.h"
#include "parser/parser.h"
#include "support/strings.h"

namespace jst {
namespace {

TEST(Vocab, PoolsNonEmpty) {
  EXPECT_FALSE(corpus::noun_words().empty());
  EXPECT_FALSE(corpus::verb_words().empty());
  EXPECT_FALSE(corpus::property_names().empty());
  EXPECT_FALSE(corpus::method_names().empty());
  EXPECT_FALSE(corpus::string_pool().empty());
  EXPECT_FALSE(corpus::comment_pool().empty());
}

TEST(Vocab, CamelIdentifierIsValid) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const std::string name = corpus::camel_identifier(rng, 1 + rng.index(3));
    EXPECT_TRUE(strings::is_identifier(name)) << name;
  }
}

TEST(Vocab, PascalIdentifierStartsUppercase) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const std::string name = corpus::pascal_identifier(rng, 2);
    EXPECT_TRUE(name[0] >= 'A' && name[0] <= 'Z') << name;
  }
}

TEST(Snippets, AllSnippetsParse) {
  for (std::string_view snippet : corpus::seed_snippets()) {
    EXPECT_TRUE(parses(snippet)) << snippet.substr(0, 80);
  }
}

TEST(Snippets, AllSnippetsSubstantial) {
  for (std::string_view snippet : corpus::seed_snippets()) {
    const ScriptAnalysis analysis = analyze_script(snippet);
    EXPECT_GT(analysis.parse.ast.node_count(), 30u);
  }
}

TEST(Generator, OutputParses) {
  corpus::ProgramGenerator generator(99);
  for (int i = 0; i < 20; ++i) {
    const std::string program = generator.generate();
    EXPECT_TRUE(parses(program)) << program.substr(0, 200);
  }
}

TEST(Generator, RespectsMinBytes) {
  corpus::ProgramGenerator generator(100);
  corpus::GeneratorOptions options;
  options.min_bytes = 2000;
  for (int i = 0; i < 5; ++i) {
    EXPECT_GE(generator.generate(options).size(), 2000u);
  }
}

TEST(Generator, DeterministicForSeed) {
  corpus::ProgramGenerator a(123);
  corpus::ProgramGenerator b(123);
  EXPECT_EQ(a.generate(), b.generate());
}

TEST(Generator, DifferentSeedsDiffer) {
  corpus::ProgramGenerator a(1);
  corpus::ProgramGenerator b(2);
  EXPECT_NE(a.generate(), b.generate());
}

TEST(Generator, ContainsComments) {
  corpus::ProgramGenerator generator(7);
  corpus::GeneratorOptions options;
  options.min_bytes = 3000;
  options.comment_line_probability = 0.3;
  const std::string program = generator.generate(options);
  EXPECT_NE(program.find("//"), std::string::npos);
}

TEST(Generator, EligiblePerPaperFilter) {
  corpus::ProgramGenerator generator(8);
  corpus::GeneratorOptions options;
  options.min_bytes = 1024;
  for (int i = 0; i < 10; ++i) {
    const std::string program = generator.generate(options);
    const ScriptAnalysis analysis = analyze_script(program);
    EXPECT_TRUE(script_eligible(analysis));
  }
}

TEST(Generator, NodeFlavorEmitsRequire) {
  corpus::ProgramGenerator generator(9);
  corpus::GeneratorOptions options;
  options.flavor = 2;
  options.min_bytes = 6000;
  bool saw_require = false;
  for (int i = 0; i < 10 && !saw_require; ++i) {
    saw_require =
        generator.generate(options).find("require(") != std::string::npos;
  }
  EXPECT_TRUE(saw_require);
}

TEST(Generator, ScopedReferencesResolve) {
  corpus::ProgramGenerator generator(10);
  corpus::GeneratorOptions options;
  options.min_bytes = 3000;
  const std::string program = generator.generate(options);
  const ScriptAnalysis analysis = analyze_script(program);
  std::size_t resolved = 0;
  for (const Binding& binding : analysis.data_flow.bindings) {
    resolved += binding.uses.size();
  }
  EXPECT_GT(resolved, 5u);
}

}  // namespace
}  // namespace jst
