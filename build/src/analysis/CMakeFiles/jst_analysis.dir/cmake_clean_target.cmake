file(REMOVE_RECURSE
  "libjst_analysis.a"
)
