# Empty compiler generated dependencies file for jst_dataflow.
# This may be replaced when dependencies are built.
