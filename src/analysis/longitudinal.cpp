#include "analysis/longitudinal.h"

#include <algorithm>
#include <cstdio>

#include "support/strings.h"

namespace jst::analysis {
namespace {

using transform::Technique;

double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace

std::string month_label(std::size_t month_index) {
  const std::size_t absolute = 2015 * 12 + 4 + month_index;  // 2015-05
  const std::size_t year = absolute / 12;
  const std::size_t month = absolute % 12 + 1;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04zu-%02zu", year, month);
  return buf;
}

PopulationSpec alexa_month_spec(std::size_t month_index) {
  const double t =
      static_cast<double>(month_index) / static_cast<double>(kMonthCount - 1);
  PopulationSpec spec = alexa_spec();
  spec.name = "Alexa Top 2k " + month_label(month_index);
  // Figure 6: steady rise of the transformed share (Top 2k).
  spec.transformed_rate = lerp(0.56, 0.70, t);
  // Figure 7 drifts.
  const double simple = lerp(0.3874, 0.4702, t);
  const double advanced = lerp(0.4377, 0.40, t);
  const double id_obf = lerp(0.0823, 0.0621, t);
  const double other = std::max(1.0 - simple - advanced - id_obf, 0.02);
  spec.configs = {
      {{Technique::kMinificationSimple}, simple},
      {{Technique::kMinificationAdvanced}, advanced},
      {{Technique::kMinificationSimple, Technique::kIdentifierObfuscation},
       id_obf},
      {{Technique::kStringObfuscation, Technique::kMinificationSimple},
       other * 0.5},
      {{Technique::kGlobalArray, Technique::kIdentifierObfuscation},
       other * 0.25},
      {{Technique::kDeadCodeInjection, Technique::kMinificationSimple},
       other * 0.25},
  };
  return spec;
}

PopulationSpec npm_month_spec(std::size_t month_index) {
  PopulationSpec spec = npm_spec();
  spec.name = "npm Top 2k " + month_label(month_index);
  // Deterministic per-month jitter standing in for package churn.
  Rng jitter(0x6e706dULL * 1315423911ULL + month_index);
  double base_rate = 0.0;
  double relative_noise = 0.0;
  if (month_index < 12) {
    base_rate = 0.074;       // 2015-05 .. 2016-04
    relative_noise = 0.2422;  // only ~76.7% of packages persist month-on-month
  } else if (month_index < 49) {
    base_rate = 0.1795;      // 2016-05 .. 2019-05
    relative_noise = 0.059;   // ~93% common packages
  } else {
    base_rate = 0.1517;      // 2019-06 .. 2020-09
    relative_noise = 0.08;    // 87.48% common packages
  }
  const double noisy =
      base_rate * (1.0 + relative_noise * jitter.normal(0.0, 1.0));
  spec.transformed_rate = std::clamp(noisy, 0.01, 0.5);
  // Figure 8: mix roughly constant (58.62 / 34.28 / 9.71).
  spec.configs = {
      {{Technique::kMinificationSimple}, 0.5862},
      {{Technique::kMinificationAdvanced}, 0.3428},
      {{Technique::kMinificationSimple, Technique::kIdentifierObfuscation},
       0.0971 * 0.7},
      {{Technique::kIdentifierObfuscation}, 0.0971 * 0.3},
      {{Technique::kStringObfuscation, Technique::kMinificationSimple}, 0.02},
  };
  return spec;
}

PopulationSpec malware_month_spec(const PopulationSpec& base,
                                  std::size_t month_index) {
  PopulationSpec spec = base;
  spec.name = base.name + " " + month_label(month_index);
  Rng wave(strings::fnv1a(base.name) ^ (month_index * 0x9e3779b9ULL));
  // A monthly wave: the transformed rate swings, and one configuration
  // dominates (syntactically identical instances broadcast per victim).
  spec.transformed_rate =
      std::clamp(base.transformed_rate * wave.uniform(0.55, 1.35), 0.05, 0.98);
  if (!spec.configs.empty()) {
    const std::size_t dominant = wave.index(spec.configs.size());
    for (std::size_t i = 0; i < spec.configs.size(); ++i) {
      spec.configs[i].weight *= wave.uniform(0.4, 1.2);
    }
    spec.configs[dominant].weight += wave.uniform(1.0, 2.5);
  }
  return spec;
}

std::vector<std::string> evolve_snapshot(
    const std::vector<std::string>& previous, const PopulationSpec& spec,
    double persistence, std::uint64_t seed) {
  // Draw a full replacement set up front so slot i's refresh script does
  // not depend on which other slots persisted — the diff between two
  // persistence values touches only the slots whose coin flip changed.
  const std::vector<Sample> fresh =
      simulate_population(spec, previous.size(), seed);
  Rng churn(seed ^ strings::fnv1a(spec.name) ^ 0x5eedf00dULL);
  std::vector<std::string> next;
  next.reserve(previous.size());
  for (std::size_t i = 0; i < previous.size(); ++i) {
    if (churn.bernoulli(persistence)) {
      next.push_back(previous[i]);
    } else {
      next.push_back(fresh[i].source);
    }
  }
  return next;
}

}  // namespace jst::analysis
