#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/multilabel.h"
#include "ml/random_forest.h"
#include "support/strings.h"

namespace jst::ml {
namespace {

// Synthetic binary task: positive iff feature0 + feature1 > 1.
struct BinaryTask {
  std::vector<std::vector<float>> rows;
  std::vector<std::uint8_t> labels;
};

BinaryTask make_binary_task(std::size_t n, Rng& rng, double noise = 0.0) {
  BinaryTask task;
  for (std::size_t i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.uniform());
    const float b = static_cast<float>(rng.uniform());
    const float distractor = static_cast<float>(rng.uniform());
    task.rows.push_back({a, b, distractor});
    bool positive = a + b > 1.0f;
    if (noise > 0.0 && rng.bernoulli(noise)) positive = !positive;
    task.labels.push_back(positive ? 1 : 0);
  }
  return task;
}

TEST(DecisionTree, LearnsSeparableTask) {
  Rng rng(1);
  const BinaryTask task = make_binary_task(600, rng);
  DecisionTree tree;
  std::vector<std::size_t> all(task.rows.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  TreeParams params;
  params.max_features = 3;
  tree.fit(Matrix{&task.rows}, task.labels, all, params, rng);

  const BinaryTask test = make_binary_task(200, rng);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.rows.size(); ++i) {
    const bool predicted = tree.predict(test.rows[i]) >= 0.5;
    if (predicted == (test.labels[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, 180u);
}

TEST(DecisionTree, PureLeafProbabilities) {
  Rng rng(2);
  std::vector<std::vector<float>> rows = {{0.f}, {0.1f}, {0.9f}, {1.f}};
  std::vector<std::uint8_t> labels = {0, 0, 1, 1};
  std::vector<std::size_t> all = {0, 1, 2, 3};
  DecisionTree tree;
  TreeParams params;
  params.min_samples_split = 2;
  params.min_samples_leaf = 1;
  params.max_features = 1;
  tree.fit(Matrix{&rows}, labels, all, params, rng);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<float>{0.0f}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<float>{1.0f}), 1.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
  Rng rng(3);
  const BinaryTask task = make_binary_task(500, rng);
  std::vector<std::size_t> all(task.rows.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  DecisionTree tree;
  TreeParams params;
  params.max_depth = 3;
  tree.fit(Matrix{&task.rows}, task.labels, all, params, rng);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, ThrowsOnEmptyFit) {
  DecisionTree tree;
  std::vector<std::vector<float>> rows;
  std::vector<std::uint8_t> labels;
  Rng rng(4);
  EXPECT_THROW(
      tree.fit(Matrix{&rows}, labels, std::vector<std::size_t>{}, {}, rng),
      ModelError);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<float>{1.0f}), ModelError);
}

TEST(DecisionTree, FeatureImportanceFindsSignal) {
  Rng rng(5);
  const BinaryTask task = make_binary_task(800, rng);
  std::vector<std::size_t> all(task.rows.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  DecisionTree tree;
  TreeParams params;
  params.max_features = 3;
  tree.fit(Matrix{&task.rows}, task.labels, all, params, rng);
  std::vector<double> importance;
  tree.add_feature_importance(importance);
  ASSERT_EQ(importance.size(), 3u);
  // The distractor must matter less than the true signal features.
  EXPECT_GT(importance[0] + importance[1], importance[2]);
}

TEST(DecisionTree, SplitFinderModesAreBitIdentical) {
  // The presorted-column split finder must reproduce the gather+sort
  // finder's trees byte for byte: both consume the same sorted
  // (value, label) sequence per candidate feature, so every split,
  // threshold, importance, and leaf probability is identical. Exercised
  // on a bootstrap-style index multiset (duplicate rows) because the
  // presorted filter tracks membership by multiplicity.
  Rng data_rng(7);
  const BinaryTask task = make_binary_task(400, data_rng, 0.1);
  Rng bootstrap_rng(11);
  std::vector<std::size_t> bootstrap;
  for (std::size_t i = 0; i < task.rows.size(); ++i) {
    bootstrap.push_back(static_cast<std::size_t>(bootstrap_rng.uniform_int(
        0, static_cast<std::int64_t>(task.rows.size()) - 1)));
  }

  const auto fit_with = [&](SplitFinder finder) {
    DecisionTree tree;
    TreeParams params;
    params.max_features = 2;
    params.split_finder = finder;
    Rng fit_rng(1234);
    tree.fit(Matrix{&task.rows}, task.labels, bootstrap, params, fit_rng);
    std::ostringstream bytes;
    tree.save(bytes);
    return bytes.str();
  };

  const std::string gathered = fit_with(SplitFinder::kGather);
  const std::string presorted = fit_with(SplitFinder::kPresorted);
  const std::string automatic = fit_with(SplitFinder::kAuto);
  EXPECT_FALSE(gathered.empty());
  EXPECT_EQ(strings::fnv1a(presorted), strings::fnv1a(gathered));
  EXPECT_EQ(presorted, gathered);
  EXPECT_EQ(automatic, gathered);
}

TEST(RandomForest, SplitFinderModesAreBitIdentical) {
  // Same invariant end to end: a whole forest (bootstrap sampling, per-
  // tree RNG streams, parallel fit) serializes identically under every
  // split-finder policy.
  Rng data_rng(42);
  const BinaryTask task = make_binary_task(500, data_rng, 0.05);

  const auto fit_with = [&task](SplitFinder finder) {
    RandomForest forest;
    ForestParams params;
    params.tree_count = 8;
    params.tree.split_finder = finder;
    Rng fit_rng(777);
    forest.fit(Matrix{&task.rows}, task.labels, params, fit_rng);
    std::ostringstream bytes;
    forest.save(bytes);
    return bytes.str();
  };

  const std::string gathered = fit_with(SplitFinder::kGather);
  EXPECT_EQ(strings::fnv1a(fit_with(SplitFinder::kPresorted)),
            strings::fnv1a(gathered));
  EXPECT_EQ(fit_with(SplitFinder::kAuto), gathered);
}

TEST(RandomForest, BeatsNoiseOnNoisyTask) {
  Rng rng(6);
  const BinaryTask task = make_binary_task(800, rng, /*noise=*/0.1);
  RandomForest forest;
  ForestParams params;
  params.tree_count = 16;
  forest.fit(Matrix{&task.rows}, task.labels, params, rng);

  const BinaryTask test = make_binary_task(300, rng);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.rows.size(); ++i) {
    if (forest.predict(test.rows[i]) == (test.labels[i] == 1)) ++correct;
  }
  EXPECT_GT(correct, 260u);
}

TEST(RandomForest, ProbabilitiesInRange) {
  Rng rng(7);
  const BinaryTask task = make_binary_task(300, rng, 0.2);
  RandomForest forest;
  ForestParams params;
  params.tree_count = 8;
  forest.fit(Matrix{&task.rows}, task.labels, params, rng);
  for (int i = 0; i < 50; ++i) {
    std::vector<float> row = {static_cast<float>(rng.uniform()),
                              static_cast<float>(rng.uniform()),
                              static_cast<float>(rng.uniform())};
    const double p = forest.predict_proba(row);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForest, ImportancesNormalized) {
  Rng rng(8);
  const BinaryTask task = make_binary_task(400, rng);
  RandomForest forest;
  ForestParams params;
  params.tree_count = 8;
  forest.fit(Matrix{&task.rows}, task.labels, params, rng);
  const std::vector<double> importance = forest.feature_importance();
  double total = 0.0;
  for (double v : importance) total += v;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RandomForest, ParallelFitIsBitIdentical) {
  // Per-tree seeds are drawn serially before the fan-out, so the trained
  // forest must not depend on the thread count. Compare the serialized
  // models byte for byte and the probabilities exactly.
  Rng data_rng(42);
  const BinaryTask task = make_binary_task(500, data_rng, 0.05);
  const BinaryTask probes = make_binary_task(60, data_rng);

  const auto fit_with_threads = [&task](std::size_t threads) {
    RandomForest forest;
    ForestParams params;
    params.tree_count = 12;
    params.threads = threads;
    Rng fit_rng(777);
    forest.fit(Matrix{&task.rows}, task.labels, params, fit_rng);
    return forest;
  };

  const RandomForest serial = fit_with_threads(1);
  std::ostringstream serial_bytes;
  serial.save(serial_bytes);

  for (std::size_t threads : {2u, 4u, 8u}) {
    const RandomForest parallel = fit_with_threads(threads);
    std::ostringstream parallel_bytes;
    parallel.save(parallel_bytes);
    EXPECT_EQ(parallel_bytes.str(), serial_bytes.str())
        << "threads=" << threads;
    for (std::size_t i = 0; i < probes.rows.size(); ++i) {
      EXPECT_DOUBLE_EQ(parallel.predict_proba(probes.rows[i]),
                       serial.predict_proba(probes.rows[i]))
          << "threads=" << threads << " probe=" << i;
    }
  }
}

TEST(RandomForest, TrainedFlag) {
  RandomForest forest;
  EXPECT_FALSE(forest.trained());
  EXPECT_THROW(forest.predict_proba(std::vector<float>{0.f}), ModelError);
}

// Multi-label task with correlated labels: label0 = f0 > 0.5,
// label1 = label0 (perfect correlation), label2 = f1 > 0.5.
struct MultiTask {
  std::vector<std::vector<float>> rows;
  LabelMatrix labels;
};

MultiTask make_multi_task(std::size_t n, Rng& rng) {
  MultiTask task;
  for (std::size_t i = 0; i < n; ++i) {
    const float f0 = static_cast<float>(rng.uniform());
    const float f1 = static_cast<float>(rng.uniform());
    task.rows.push_back({f0, f1});
    const std::uint8_t l0 = f0 > 0.5f;
    const std::uint8_t l2 = f1 > 0.5f;
    task.labels.push_back({l0, l0, l2});
  }
  return task;
}

TEST(BinaryRelevance, LearnsIndependentLabels) {
  Rng rng(9);
  const MultiTask task = make_multi_task(500, rng);
  BinaryRelevance classifier;
  ForestParams params;
  params.tree_count = 8;
  classifier.fit(Matrix{&task.rows}, task.labels, params, rng);
  EXPECT_EQ(classifier.label_count(), 3u);

  const std::vector<float> clearly_positive = {0.9f, 0.1f};
  const auto probabilities = classifier.predict_proba(clearly_positive);
  EXPECT_GT(probabilities[0], 0.7);
  EXPECT_GT(probabilities[1], 0.7);
  EXPECT_LT(probabilities[2], 0.3);
}

TEST(ClassifierChain, LearnsCorrelatedLabels) {
  Rng rng(10);
  const MultiTask task = make_multi_task(500, rng);
  ClassifierChain classifier;
  ForestParams params;
  params.tree_count = 8;
  classifier.fit(Matrix{&task.rows}, task.labels, params, rng);

  const std::vector<float> clearly_positive = {0.95f, 0.05f};
  const auto probabilities = classifier.predict_proba(clearly_positive);
  EXPECT_GT(probabilities[0], 0.7);
  EXPECT_GT(probabilities[1], 0.7);  // follows the chain
  EXPECT_LT(probabilities[2], 0.3);
}

TEST(MultiLabel, PredictSetThreshold) {
  Rng rng(11);
  const MultiTask task = make_multi_task(400, rng);
  ClassifierChain classifier;
  ForestParams params;
  params.tree_count = 8;
  classifier.fit(Matrix{&task.rows}, task.labels, params, rng);
  const std::vector<float> row = {0.9f, 0.9f};
  const auto set = classifier.predict_set(row, 0.5);
  EXPECT_EQ(set.size(), 3u);
}

TEST(MultiLabel, TopkOrdering) {
  Rng rng(12);
  const MultiTask task = make_multi_task(400, rng);
  ClassifierChain classifier;
  ForestParams params;
  params.tree_count = 8;
  classifier.fit(Matrix{&task.rows}, task.labels, params, rng);
  const std::vector<float> row = {0.9f, 0.1f};
  const auto top2 = classifier.predict_topk(row, 2);
  ASSERT_EQ(top2.size(), 2u);
  // Labels 0 and 1 are the confident ones.
  EXPECT_TRUE((top2[0] == 0 || top2[0] == 1));
  EXPECT_TRUE((top2[1] == 0 || top2[1] == 1));
}

TEST(MultiLabel, TopkThresholded) {
  Rng rng(13);
  const MultiTask task = make_multi_task(400, rng);
  ClassifierChain classifier;
  ForestParams params;
  params.tree_count = 8;
  classifier.fit(Matrix{&task.rows}, task.labels, params, rng);
  const std::vector<float> row = {0.9f, 0.1f};
  // With a high threshold only the confident labels remain, regardless of k.
  const auto picked = classifier.predict_topk_thresholded(row, 3, 0.6);
  EXPECT_LE(picked.size(), 2u);
  EXPECT_FALSE(picked.empty());
}

TEST(MultiLabel, RaggedLabelsRejected) {
  std::vector<std::vector<float>> rows = {{0.f}, {1.f}};
  LabelMatrix labels = {{1, 0}, {1}};
  BinaryRelevance classifier;
  Rng rng(14);
  EXPECT_THROW(classifier.fit(Matrix{&rows}, labels, {}, rng), ModelError);
}

// --- metrics ---------------------------------------------------------------

TEST(Metrics, SubsetAccuracy) {
  const std::vector<std::vector<std::size_t>> predicted = {{0, 1}, {2}, {}};
  const std::vector<std::vector<std::size_t>> truth = {{1, 0}, {2, 3}, {}};
  EXPECT_NEAR(subset_accuracy(predicted, truth), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, SubsetAccuracySizeMismatch) {
  EXPECT_THROW(subset_accuracy({{0}}, {{0}, {1}}), InvalidArgument);
}

TEST(Metrics, TopkCorrectness) {
  // Paper's example: truth {A,B,C}; Top-1 {B} correct, Top-2 {B,C} correct,
  // Top-3 {B,C,D} wrong.
  const std::vector<std::size_t> truth = {0, 1, 2};
  EXPECT_TRUE(topk_correct(std::vector<std::size_t>{1}, truth));
  EXPECT_TRUE(topk_correct(std::vector<std::size_t>{1, 2}, truth));
  EXPECT_FALSE(topk_correct(std::vector<std::size_t>{1, 2, 3}, truth));
  EXPECT_FALSE(topk_correct(std::vector<std::size_t>{}, truth));
}

TEST(Metrics, WrongAndMissingLabels) {
  const std::vector<std::size_t> predicted = {0, 3};
  const std::vector<std::size_t> truth = {0, 1, 2};
  EXPECT_EQ(wrong_labels(predicted, truth), 1u);
  EXPECT_EQ(missing_labels(predicted, truth), 2u);
}

TEST(Metrics, ConfusionMatrix) {
  BinaryConfusion confusion;
  confusion.add(true, true);
  confusion.add(true, false);
  confusion.add(false, true);
  confusion.add(false, false);
  EXPECT_DOUBLE_EQ(confusion.accuracy(), 0.5);
  EXPECT_DOUBLE_EQ(confusion.precision(), 0.5);
  EXPECT_DOUBLE_EQ(confusion.recall(), 0.5);
  EXPECT_DOUBLE_EQ(confusion.f1(), 0.5);
  EXPECT_EQ(confusion.total(), 4u);
}

TEST(Metrics, ConfusionEdgeCases) {
  BinaryConfusion confusion;
  EXPECT_DOUBLE_EQ(confusion.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(confusion.precision(), 0.0);
  EXPECT_DOUBLE_EQ(confusion.f1(), 0.0);
}

TEST(Metrics, BinaryAccuracy) {
  const bool predicted[] = {true, false, true};
  const bool truth[] = {true, true, true};
  EXPECT_NEAR(binary_accuracy(predicted, truth), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace jst::ml
