// Dean Edwards p.a.c.k.e.r (the engine behind the Daft Logic obfuscator,
// §III-E3's "unseen tool").
//
// The source is minified, its repeated words are replaced by base-62
// tokens, and the payload is wrapped in the classic bootstrap:
//
//   eval(function(p,a,c,k,e,d){e=function(c){return(c<a?'':e(parseInt(c/a)))
//   +((c=c%a)>35?String.fromCharCode(c+29):c.toString(36))};if(!''.replace(
//   /^/,String)){while(c--){d[e(c)]=k[c]||e(c)}k=[function(e){return d[e]}];
//   e=function(){return'\\w+'};c=1};while(c--){if(k[c]){p=p.replace(new
//   RegExp('\\b'+e(c)+'\\b','g'),k[c])}}return p}('<payload>',62,N,'<words>'
//   .split('|'),0,{}))
#include <algorithm>
#include <map>
#include <vector>

#include "lexer/lexer.h"
#include "support/strings.h"
#include "transform/transform.h"

namespace jst::transform {
namespace {

// Base-62 token in p.a.c.k.e.r's encoding order (0-9, a-z, A-Z).
std::string packer_token(std::size_t index) {
  static constexpr char kDigits[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  if (index == 0) return "0";
  std::string out;
  while (index > 0) {
    out.insert(out.begin(), kDigits[index % 62]);
    index /= 62;
  }
  return out;
}

bool is_word_char(char c) {
  return strings::is_ascii_alnum(c) || c == '_' || c == '$';
}

}  // namespace

std::string pack(std::string_view source, Rng& rng) {
  // Stage 1: minify (the packer always runs on compacted source; this is
  // why the paper's level-2 detector reports minification for packed
  // files).
  MinifyOptions minify_options;
  minify_options.rename_locals = true;
  minify_options.advanced = true;
  minify_options.line_limit = 0;  // single line
  const std::string minified = minify(source, minify_options);

  // Stage 2: find repeated words (identifier-like runs) worth replacing.
  std::map<std::string, std::size_t> word_counts;
  std::size_t i = 0;
  while (i < minified.size()) {
    if (is_word_char(minified[i])) {
      std::size_t j = i;
      while (j < minified.size() && is_word_char(minified[j])) ++j;
      ++word_counts[minified.substr(i, j - i)];
      i = j;
    } else {
      ++i;
    }
  }
  std::vector<std::string> words;
  for (const auto& [word, count] : word_counts) {
    // Replacing pays off when the word repeats and is longer than its
    // token; numeric literal pieces are left alone.
    if (count >= 2 && word.size() >= 2 &&
        !strings::is_ascii_digit(word[0])) {
      words.push_back(word);
    }
  }
  // Deterministic but shuffled dictionary order, like repacked samples in
  // the wild.
  rng.shuffle(words);
  if (words.size() > 600) words.resize(600);

  std::map<std::string, std::string> token_of;
  for (std::size_t index = 0; index < words.size(); ++index) {
    token_of[words[index]] = packer_token(index);
  }

  // Stage 3: rewrite payload word-by-word.
  std::string payload;
  payload.reserve(minified.size());
  i = 0;
  while (i < minified.size()) {
    if (is_word_char(minified[i])) {
      std::size_t j = i;
      while (j < minified.size() && is_word_char(minified[j])) ++j;
      const std::string word = minified.substr(i, j - i);
      const auto it = token_of.find(word);
      payload += (it != token_of.end()) ? it->second : word;
      i = j;
    } else {
      payload += minified[i++];
    }
  }

  // Stage 4: escape payload and dictionary for single-quoted embedding.
  const auto escape_single = [](const std::string& text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
      if (c == '\\') out += "\\\\";
      else if (c == '\'') out += "\\'";
      else if (c == '\n') out += "\\n";
      else out += c;
    }
    return out;
  };

  std::string dictionary;
  for (std::size_t index = 0; index < words.size(); ++index) {
    if (index > 0) dictionary += '|';
    dictionary += words[index];
  }

  std::string out;
  out.reserve(payload.size() + dictionary.size() + 512);
  out +=
      "eval(function(p,a,c,k,e,d){e=function(c){return(c<a?'':e(parseInt(c/a)))"
      "+((c=c%a)>35?String.fromCharCode(c+29):c.toString(36))};"
      "if(!''.replace(/^/,String)){while(c--){d[e(c)]=k[c]||e(c)}"
      "k=[function(e){return d[e]}];e=function(){return'\\\\w+'};c=1};"
      "while(c--){if(k[c]){p=p.replace(new RegExp('\\\\b'+e(c)+'\\\\b','g'),"
      "k[c])}}return p}('";
  out += escape_single(payload);
  out += "',62,";
  out += std::to_string(words.size());
  out += ",'";
  out += escape_single(dictionary);
  out += "'.split('|'),0,{}))";
  return out;
}

std::vector<Technique> packer_labels() {
  return {Technique::kMinificationAdvanced, Technique::kMinificationSimple,
          Technique::kIdentifierObfuscation, Technique::kStringObfuscation};
}

}  // namespace jst::transform
