#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace jst::obs {
namespace {

// Escapes a metric name for embedding in a JSON string. Names are plain
// [a-z0-9_] by convention; the escape keeps the export well-formed even
// for unconventional names.
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_double(double value) {
  if (std::isinf(value)) return value > 0 ? "1e999" : "-1e999";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void atomic_fetch_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

const std::array<double, Histogram::kBucketCount>& Histogram::layout_bounds(
    HistogramLayout layout) {
  static const std::array<double, kBucketCount> kLatencyBounds = {
      0.01, 0.025, 0.05,  0.1,   0.25,   0.5,    1.0,
      2.5,  5.0,   10.0,  25.0,  50.0,   100.0,  250.0,
      500.0, 1000.0, 2500.0, 5000.0, 10000.0,
      std::numeric_limits<double>::infinity()};
  // 19 linear steps of 0.05 across [0, 0.95]; scores land one per 5%.
  static const std::array<double, kBucketCount> kUnitBounds = {
      0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50,
      0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95,
      std::numeric_limits<double>::infinity()};
  return layout == HistogramLayout::kUnit ? kUnitBounds : kLatencyBounds;
}

void Histogram::record(double value) {
  const auto& bucket_bounds = bounds();
  std::size_t bucket = 0;
  while (bucket + 1 < kBucketCount && value > bucket_bounds[bucket]) ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_fetch_max(max_, value);
}

double percentile_from_buckets(
    const std::array<double, Histogram::kBucketCount>& bounds,
    const std::array<std::uint64_t, Histogram::kBucketCount>& buckets,
    std::uint64_t total, double observed_max, double p) {
  if (total == 0) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= target) {
      const double lower = i == 0 ? 0.0 : bounds[i - 1];
      double upper = bounds[i];
      // The overflow bucket has no finite upper bound; the observed max
      // is the tightest honest estimate.
      if (std::isinf(upper)) upper = std::max(observed_max, lower);
      const double fraction =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return std::min(lower + fraction * (upper - lower), observed_max);
    }
    cumulative += in_bucket;
  }
  return observed_max;
}

double Histogram::percentile(double p) const {
  std::array<std::uint64_t, kBucketCount> counts;
  for (std::size_t i = 0; i < kBucketCount; ++i) counts[i] = bucket_count(i);
  return percentile_from_buckets(bounds(), counts, count(), max(), p);
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      HistogramLayout layout) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(layout))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::set_help(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  help_[std::string(name)] = std::string(help);
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + format_double(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{";
    out += "\"count\":" + std::to_string(histogram->count());
    out += ",\"sum\":" + format_double(histogram->sum());
    out += ",\"max\":" + format_double(histogram->max());
    out += ",\"p50\":" + format_double(histogram->p50());
    out += ",\"p95\":" + format_double(histogram->p95());
    out += ",\"p99\":" + format_double(histogram->p99());
    out += ",\"buckets\":[";
    const auto& bounds = histogram->bounds();
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (i > 0) out += ',';
      out += '[' + format_double(bounds[i]) + ',' +
             std::to_string(histogram->bucket_count(i)) + ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  // HELP precedes TYPE for every family, per the exposition-format spec;
  // \ and newline are the only characters HELP text must escape.
  const auto append_header = [&](const std::string& name,
                                 const char* type) {
    out += "# HELP " + name + ' ';
    const auto it = help_.find(name);
    const std::string_view help =
        it != help_.end() ? std::string_view(it->second)
                          : std::string_view("jst metric (no help set)");
    for (char c : help) {
      if (c == '\\') out += "\\\\";
      else if (c == '\n') out += "\\n";
      else out += c;
    }
    out += '\n';
    out += "# TYPE " + name + ' ' + type + '\n';
  };
  for (const auto& [name, counter] : counters_) {
    append_header(name, "counter");
    out += name + ' ' + std::to_string(counter->value()) + '\n';
  }
  for (const auto& [name, gauge] : gauges_) {
    append_header(name, "gauge");
    out += name + ' ' + format_double(gauge->value()) + '\n';
  }
  for (const auto& [name, histogram] : histograms_) {
    append_header(name, "histogram");
    const auto& bounds = histogram->bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      cumulative += histogram->bucket_count(i);
      const std::string le =
          std::isinf(bounds[i]) ? "+Inf" : format_double(bounds[i]);
      out += name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    out += name + "_sum " + format_double(histogram->sum()) + '\n';
    out += name + "_count " + std::to_string(histogram->count()) + '\n';
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

}  // namespace jst::obs
