# Empty dependencies file for jst_bench_common.
# This may be replaced when dependencies are built.
