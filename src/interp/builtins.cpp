#include "interp/builtins.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "interp/interpreter.h"

namespace jst::interp {
namespace {

using Native =
    std::function<Value(Interpreter&, const Value&, const std::vector<Value>&)>;

FunctionPtr native(std::string name, Native body) {
  auto function = std::make_shared<JsFunction>();
  function->name = std::move(name);
  function->native = std::move(body);
  return function;
}

Value arg_or_undefined(const std::vector<Value>& args, std::size_t index) {
  return index < args.size() ? args[index] : Value(Undefined{});
}

// --- string helpers -----------------------------------------------------

Value string_split(const std::string& text, const std::vector<Value>& args) {
  std::vector<Value> parts;
  if (args.empty() || std::holds_alternative<Undefined>(args[0])) {
    parts.emplace_back(text);
    return make_array(std::move(parts));
  }
  const std::string separator = to_string_value(args[0]);
  if (separator.empty()) {
    for (char c : text) parts.emplace_back(std::string(1, c));
    return make_array(std::move(parts));
  }
  std::size_t start = 0;
  while (true) {
    const std::size_t position = text.find(separator, start);
    if (position == std::string::npos) {
      parts.emplace_back(text.substr(start));
      break;
    }
    parts.emplace_back(text.substr(start, position - start));
    start = position + separator.size();
  }
  return make_array(std::move(parts));
}

}  // namespace

Value string_method(const std::string& receiver, const std::string& name) {
  const std::string text = receiver;
  if (name == "split") {
    return native("split", [text](Interpreter&, const Value&,
                                  const std::vector<Value>& args) {
      return string_split(text, args);
    });
  }
  if (name == "charAt") {
    return native("charAt", [text](Interpreter&, const Value&,
                                   const std::vector<Value>& args) -> Value {
      const auto index = static_cast<std::size_t>(
          std::max(0.0, to_number(arg_or_undefined(args, 0))));
      return index < text.size() ? std::string(1, text[index]) : std::string();
    });
  }
  if (name == "charCodeAt") {
    return native("charCodeAt", [text](Interpreter&, const Value&,
                                       const std::vector<Value>& args) -> Value {
      const double raw = args.empty() ? 0.0 : to_number(args[0]);
      const auto index = static_cast<std::size_t>(std::max(0.0, raw));
      if (index >= text.size()) return std::nan("");
      return static_cast<double>(static_cast<unsigned char>(text[index]));
    });
  }
  if (name == "indexOf") {
    return native("indexOf", [text](Interpreter&, const Value&,
                                    const std::vector<Value>& args) -> Value {
      const std::string needle = to_string_value(arg_or_undefined(args, 0));
      const std::size_t position = text.find(needle);
      return position == std::string::npos ? -1.0
                                           : static_cast<double>(position);
    });
  }
  if (name == "includes") {
    return native("includes", [text](Interpreter&, const Value&,
                                     const std::vector<Value>& args) -> Value {
      return text.find(to_string_value(arg_or_undefined(args, 0))) !=
             std::string::npos;
    });
  }
  if (name == "slice" || name == "substring") {
    const bool is_slice = name == "slice";
    return native(name, [text, is_slice](Interpreter&, const Value&,
                                         const std::vector<Value>& args) -> Value {
      const auto size = static_cast<double>(text.size());
      double start = args.empty() ? 0.0 : to_number(args[0]);
      double end = args.size() > 1 && !std::holds_alternative<Undefined>(args[1])
                       ? to_number(args[1])
                       : size;
      if (is_slice) {
        if (start < 0) start += size;
        if (end < 0) end += size;
      }
      start = std::clamp(start, 0.0, size);
      end = std::clamp(end, 0.0, size);
      if (!is_slice && start > end) std::swap(start, end);
      if (start >= end) return std::string();
      return text.substr(static_cast<std::size_t>(start),
                         static_cast<std::size_t>(end - start));
    });
  }
  if (name == "substr") {
    return native("substr", [text](Interpreter&, const Value&,
                                   const std::vector<Value>& args) -> Value {
      const auto size = static_cast<double>(text.size());
      double start = args.empty() ? 0.0 : to_number(args[0]);
      if (start < 0) start = std::max(size + start, 0.0);
      start = std::min(start, size);
      const double count =
          args.size() > 1 ? to_number(args[1]) : size - start;
      if (count <= 0) return std::string();
      return text.substr(static_cast<std::size_t>(start),
                         static_cast<std::size_t>(
                             std::min(count, size - start)));
    });
  }
  if (name == "toUpperCase" || name == "toLowerCase") {
    const bool upper = name == "toUpperCase";
    return native(name, [text, upper](Interpreter&, const Value&,
                                      const std::vector<Value>&) -> Value {
      std::string out = text;
      for (char& c : out) {
        c = upper ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                  : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      return out;
    });
  }
  if (name == "trim") {
    return native("trim", [text](Interpreter&, const Value&,
                                 const std::vector<Value>&) -> Value {
      std::size_t begin = 0;
      std::size_t end = text.size();
      while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
        ++begin;
      }
      while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
        --end;
      }
      return text.substr(begin, end - begin);
    });
  }
  if (name == "replace") {
    // String-pattern replace only (first occurrence), per spec.
    return native("replace", [text](Interpreter&, const Value&,
                                    const std::vector<Value>& args) -> Value {
      const std::string pattern = to_string_value(arg_or_undefined(args, 0));
      const std::string replacement = to_string_value(arg_or_undefined(args, 1));
      const std::size_t position = text.find(pattern);
      if (position == std::string::npos || pattern.empty()) return text;
      std::string out = text;
      out.replace(position, pattern.size(), replacement);
      return out;
    });
  }
  if (name == "concat") {
    return native("concat", [text](Interpreter&, const Value&,
                                   const std::vector<Value>& args) -> Value {
      std::string out = text;
      for (const Value& argument : args) out += to_string_value(argument);
      return out;
    });
  }
  if (name == "repeat") {
    return native("repeat", [text](Interpreter&, const Value&,
                                   const std::vector<Value>& args) -> Value {
      const auto count = static_cast<std::size_t>(
          std::max(0.0, to_number(arg_or_undefined(args, 0))));
      std::string out;
      for (std::size_t i = 0; i < count; ++i) out += text;
      return out;
    });
  }
  if (name == "padStart") {
    return native("padStart", [text](Interpreter&, const Value&,
                                     const std::vector<Value>& args) -> Value {
      const auto width = static_cast<std::size_t>(
          std::max(0.0, to_number(arg_or_undefined(args, 0))));
      std::string pad = args.size() > 1 ? to_string_value(args[1]) : " ";
      if (pad.empty()) pad = " ";
      std::string out = text;
      while (out.size() < width) {
        out.insert(0, pad.substr(0, std::min(pad.size(), width - out.size())));
      }
      return out;
    });
  }
  if (name == "toString") {
    return native("toString", [text](Interpreter&, const Value&,
                                     const std::vector<Value>&) -> Value {
      return text;
    });
  }
  return Undefined{};
}

Value array_method(const ObjectPtr& receiver, const std::string& name) {
  if (name == "push") {
    return native("push", [receiver](Interpreter&, const Value&,
                                     const std::vector<Value>& args) -> Value {
      for (const Value& argument : args) receiver->elements.push_back(argument);
      return static_cast<double>(receiver->elements.size());
    });
  }
  if (name == "pop") {
    return native("pop", [receiver](Interpreter&, const Value&,
                                    const std::vector<Value>&) -> Value {
      if (receiver->elements.empty()) return Undefined{};
      Value last = receiver->elements.back();
      receiver->elements.pop_back();
      return last;
    });
  }
  if (name == "shift") {
    return native("shift", [receiver](Interpreter&, const Value&,
                                      const std::vector<Value>&) -> Value {
      if (receiver->elements.empty()) return Undefined{};
      Value first = receiver->elements.front();
      receiver->elements.erase(receiver->elements.begin());
      return first;
    });
  }
  if (name == "join") {
    return native("join", [receiver](Interpreter&, const Value&,
                                     const std::vector<Value>& args) -> Value {
      const std::string separator =
          args.empty() || std::holds_alternative<Undefined>(args[0])
              ? ","
              : to_string_value(args[0]);
      std::string out;
      for (std::size_t i = 0; i < receiver->elements.size(); ++i) {
        if (i > 0) out += separator;
        const Value& element = receiver->elements[i];
        if (!std::holds_alternative<Undefined>(element) &&
            !std::holds_alternative<Null>(element)) {
          out += to_string_value(element);
        }
      }
      return out;
    });
  }
  if (name == "reverse") {
    return native("reverse", [receiver](Interpreter&, const Value&,
                                        const std::vector<Value>&) -> Value {
      std::reverse(receiver->elements.begin(), receiver->elements.end());
      return receiver;
    });
  }
  if (name == "slice") {
    return native("slice", [receiver](Interpreter&, const Value&,
                                      const std::vector<Value>& args) -> Value {
      const auto size = static_cast<double>(receiver->elements.size());
      double start = args.empty() ? 0.0 : to_number(args[0]);
      double end = args.size() > 1 && !std::holds_alternative<Undefined>(args[1])
                       ? to_number(args[1])
                       : size;
      if (start < 0) start += size;
      if (end < 0) end += size;
      start = std::clamp(start, 0.0, size);
      end = std::clamp(end, 0.0, size);
      std::vector<Value> out;
      for (auto i = static_cast<std::size_t>(start);
           i < static_cast<std::size_t>(end); ++i) {
        out.push_back(receiver->elements[i]);
      }
      return make_array(std::move(out));
    });
  }
  if (name == "indexOf") {
    return native("indexOf", [receiver](Interpreter&, const Value&,
                                        const std::vector<Value>& args) -> Value {
      const Value needle = arg_or_undefined(args, 0);
      for (std::size_t i = 0; i < receiver->elements.size(); ++i) {
        if (strict_equals(receiver->elements[i], needle)) {
          return static_cast<double>(i);
        }
      }
      return -1.0;
    });
  }
  if (name == "includes") {
    return native("includes", [receiver](Interpreter&, const Value&,
                                         const std::vector<Value>& args) -> Value {
      const Value needle = arg_or_undefined(args, 0);
      for (const Value& element : receiver->elements) {
        if (strict_equals(element, needle)) return true;
      }
      return false;
    });
  }
  if (name == "concat") {
    return native("concat", [receiver](Interpreter&, const Value&,
                                       const std::vector<Value>& args) -> Value {
      std::vector<Value> out = receiver->elements;
      for (const Value& argument : args) {
        if (const ObjectPtr* array = std::get_if<ObjectPtr>(&argument);
            array != nullptr && (*array)->is_array) {
          out.insert(out.end(), (*array)->elements.begin(),
                     (*array)->elements.end());
        } else {
          out.push_back(argument);
        }
      }
      return make_array(std::move(out));
    });
  }
  if (name == "map" || name == "filter" || name == "forEach") {
    const int mode = name == "map" ? 0 : (name == "filter" ? 1 : 2);
    return native(name, [receiver, mode](Interpreter& interpreter, const Value&,
                                         const std::vector<Value>& args) -> Value {
      const Value callback = arg_or_undefined(args, 0);
      std::vector<Value> out;
      for (std::size_t i = 0; i < receiver->elements.size(); ++i) {
        const Value result = interpreter.call_function(
            callback, Undefined{},
            {receiver->elements[i], static_cast<double>(i), Value(receiver)});
        if (mode == 0) out.push_back(result);
        if (mode == 1 && to_boolean(result)) {
          out.push_back(receiver->elements[i]);
        }
      }
      if (mode == 2) return Undefined{};
      return make_array(std::move(out));
    });
  }
  if (name == "reduce") {
    return native("reduce", [receiver](Interpreter& interpreter, const Value&,
                                       const std::vector<Value>& args) -> Value {
      const Value callback = arg_or_undefined(args, 0);
      std::size_t start = 0;
      Value accumulator;
      if (args.size() > 1) {
        accumulator = args[1];
      } else {
        if (receiver->elements.empty()) {
          throw ThrownValue{Value(std::string(
              "TypeError: reduce of empty array with no initial value"))};
        }
        accumulator = receiver->elements[0];
        start = 1;
      }
      for (std::size_t i = start; i < receiver->elements.size(); ++i) {
        accumulator = interpreter.call_function(
            callback, Undefined{},
            {accumulator, receiver->elements[i], static_cast<double>(i)});
      }
      return accumulator;
    });
  }
  if (name == "some" || name == "every" || name == "find") {
    const int mode = name == "some" ? 0 : (name == "every" ? 1 : 2);
    return native(name, [receiver, mode](Interpreter& interpreter, const Value&,
                                         const std::vector<Value>& args) -> Value {
      const Value callback = arg_or_undefined(args, 0);
      for (std::size_t i = 0; i < receiver->elements.size(); ++i) {
        const bool hit = to_boolean(interpreter.call_function(
            callback, Undefined{},
            {receiver->elements[i], static_cast<double>(i)}));
        if (mode == 0 && hit) return true;
        if (mode == 1 && !hit) return false;
        if (mode == 2 && hit) return receiver->elements[i];
      }
      if (mode == 0) return false;
      if (mode == 1) return true;
      return Undefined{};
    });
  }
  if (name == "sort") {
    return native("sort", [receiver](Interpreter& interpreter, const Value&,
                                     const std::vector<Value>& args) -> Value {
      const Value comparator = arg_or_undefined(args, 0);
      std::stable_sort(
          receiver->elements.begin(), receiver->elements.end(),
          [&](const Value& a, const Value& b) {
            if (std::holds_alternative<FunctionPtr>(comparator)) {
              return to_number(interpreter.call_function(comparator,
                                                         Undefined{}, {a, b})) <
                     0.0;
            }
            return to_string_value(a) < to_string_value(b);
          });
      return receiver;
    });
  }
  if (name == "splice") {
    return native("splice", [receiver](Interpreter&, const Value&,
                                       const std::vector<Value>& args) -> Value {
      const auto size = static_cast<double>(receiver->elements.size());
      double start = args.empty() ? 0.0 : to_number(args[0]);
      if (start < 0) start += size;
      start = std::clamp(start, 0.0, size);
      double remove = args.size() > 1 ? to_number(args[1]) : size - start;
      remove = std::clamp(remove, 0.0, size - start);
      const auto begin =
          receiver->elements.begin() + static_cast<std::ptrdiff_t>(start);
      std::vector<Value> removed(begin,
                                 begin + static_cast<std::ptrdiff_t>(remove));
      auto tail =
          receiver->elements.erase(begin, begin + static_cast<std::ptrdiff_t>(remove));
      for (std::size_t i = 2; i < args.size(); ++i) {
        tail = receiver->elements.insert(tail, args[i]) + 1;
      }
      return make_array(std::move(removed));
    });
  }
  if (name == "toString") {
    return native("toString", [receiver](Interpreter&, const Value&,
                                         const std::vector<Value>&) -> Value {
      return to_string_value(Value(receiver));
    });
  }
  return Undefined{};
}

Value number_method(double receiver, const std::string& name) {
  if (name == "toString") {
    return native("toString", [receiver](Interpreter&, const Value&,
                                         const std::vector<Value>& args) -> Value {
      const int base =
          args.empty() ? 10 : static_cast<int>(to_number(args[0]));
      if (base == 10 || receiver != std::floor(receiver)) {
        return to_string_value(Value(receiver));
      }
      // Integer in base 2..36.
      static constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
      auto value = static_cast<long long>(receiver);
      const bool negative = value < 0;
      if (negative) value = -value;
      std::string out;
      do {
        out.insert(out.begin(), kDigits[value % base]);
        value /= base;
      } while (value > 0);
      if (negative) out.insert(out.begin(), '-');
      return out;
    });
  }
  if (name == "toFixed") {
    return native("toFixed", [receiver](Interpreter&, const Value&,
                                        const std::vector<Value>& args) -> Value {
      const int digits = args.empty() ? 0 : static_cast<int>(to_number(args[0]));
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.*f", digits, receiver);
      return std::string(buf);
    });
  }
  return Undefined{};
}

Value function_method(const FunctionPtr& receiver, const std::string& name) {
  if (name == "call") {
    return native("call", [receiver](Interpreter& interpreter, const Value&,
                                     const std::vector<Value>& args) -> Value {
      const Value this_value = arg_or_undefined(args, 0);
      std::vector<Value> rest(args.begin() + (args.empty() ? 0 : 1), args.end());
      return interpreter.call_function(Value(receiver), this_value, rest);
    });
  }
  if (name == "apply") {
    return native("apply", [receiver](Interpreter& interpreter, const Value&,
                                      const std::vector<Value>& args) -> Value {
      const Value this_value = arg_or_undefined(args, 0);
      std::vector<Value> forwarded;
      if (args.size() > 1) {
        if (const ObjectPtr* array = std::get_if<ObjectPtr>(&args[1]);
            array != nullptr && (*array)->is_array) {
          forwarded = (*array)->elements;
        }
      }
      return interpreter.call_function(Value(receiver), this_value, forwarded);
    });
  }
  if (name == "bind") {
    return native("bind", [receiver](Interpreter&, const Value&,
                                     const std::vector<Value>& args) -> Value {
      const Value bound_this = arg_or_undefined(args, 0);
      std::vector<Value> bound_args(args.begin() + (args.empty() ? 0 : 1),
                                    args.end());
      return native("bound " + receiver->name,
                    [receiver, bound_this, bound_args](
                        Interpreter& interpreter, const Value&,
                        const std::vector<Value>& call_args) -> Value {
                      std::vector<Value> all = bound_args;
                      all.insert(all.end(), call_args.begin(), call_args.end());
                      return interpreter.call_function(Value(receiver),
                                                       bound_this, all);
                    });
    });
  }
  return Undefined{};
}

void install_builtins(Interpreter& interpreter, Environment& globals,
                      std::vector<std::string>& log) {
  (void)interpreter;

  // console.log / console.error
  auto console = std::make_shared<JsObject>();
  const auto log_fn = [&log](Interpreter&, const Value&,
                             const std::vector<Value>& args) -> Value {
    std::ostringstream line;
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (i > 0) line << " ";
      line << to_string_value(args[i]);
    }
    log.push_back(line.str());
    return Undefined{};
  };
  console->properties["log"] = native("log", log_fn);
  console->properties["error"] = native("error", log_fn);
  console->properties["warn"] = native("warn", log_fn);
  globals.declare("console", Value(console));

  // Math
  auto math = std::make_shared<JsObject>();
  const auto unary_math = [](const char* name, double (*fn)(double)) {
    return native(name, [fn](Interpreter&, const Value&,
                             const std::vector<Value>& args) -> Value {
      return fn(args.empty() ? std::nan("") : to_number(args[0]));
    });
  };
  math->properties["floor"] = unary_math("floor", std::floor);
  math->properties["ceil"] = unary_math("ceil", std::ceil);
  math->properties["round"] = unary_math("round", std::round);
  math->properties["abs"] = unary_math("abs", std::fabs);
  math->properties["sqrt"] = unary_math("sqrt", std::sqrt);
  math->properties["max"] =
      native("max", [](Interpreter&, const Value&,
                       const std::vector<Value>& args) -> Value {
        double best = -HUGE_VAL;
        for (const Value& argument : args) {
          best = std::max(best, to_number(argument));
        }
        return args.empty() ? -HUGE_VAL : best;
      });
  math->properties["min"] =
      native("min", [](Interpreter&, const Value&,
                       const std::vector<Value>& args) -> Value {
        double best = HUGE_VAL;
        for (const Value& argument : args) {
          best = std::min(best, to_number(argument));
        }
        return args.empty() ? HUGE_VAL : best;
      });
  math->properties["pow"] =
      native("pow", [](Interpreter&, const Value&,
                       const std::vector<Value>& args) -> Value {
        return std::pow(to_number(arg_or_undefined(args, 0)),
                        to_number(arg_or_undefined(args, 1)));
      });
  math->properties["PI"] = 3.141592653589793;
  globals.declare("Math", Value(math));

  // String namespace (fromCharCode).
  auto string_ns = std::make_shared<JsObject>();
  string_ns->properties["fromCharCode"] =
      native("fromCharCode", [](Interpreter&, const Value&,
                                const std::vector<Value>& args) -> Value {
        std::string out;
        for (const Value& argument : args) {
          out += static_cast<char>(
              static_cast<unsigned char>(to_number(argument)));
        }
        return out;
      });
  globals.declare("String", Value(string_ns));

  // JSON.stringify (subset: primitives + arrays + plain objects).
  auto json = std::make_shared<JsObject>();
  json->properties["stringify"] = native(
      "stringify",
      [](Interpreter&, const Value&, const std::vector<Value>& args) -> Value {
        std::function<std::string(const Value&)> encode =
            [&encode](const Value& value) -> std::string {
          if (std::holds_alternative<Undefined>(value)) return "null";
          if (std::holds_alternative<Null>(value)) return "null";
          if (const bool* b = std::get_if<bool>(&value)) {
            return *b ? "true" : "false";
          }
          if (std::holds_alternative<double>(value)) {
            return to_string_value(value);
          }
          if (const std::string* s = std::get_if<std::string>(&value)) {
            std::string out = "\"";
            for (char c : *s) {
              if (c == '"' || c == '\\') out += '\\';
              out += c;
            }
            return out + "\"";
          }
          if (const ObjectPtr* obj = std::get_if<ObjectPtr>(&value)) {
            std::string out;
            if ((*obj)->is_array) {
              out = "[";
              for (std::size_t i = 0; i < (*obj)->elements.size(); ++i) {
                if (i > 0) out += ",";
                out += encode((*obj)->elements[i]);
              }
              return out + "]";
            }
            out = "{";
            bool first = true;
            for (const auto& [key, property] : (*obj)->properties) {
              if (!first) out += ",";
              first = false;
              out += "\"" + key + "\":" + encode(property);
            }
            return out + "}";
          }
          return "null";
        };
        return encode(arg_or_undefined(args, 0));
      });
  globals.declare("JSON", Value(json));

  // parseInt / parseFloat / isNaN
  globals.declare(
      "parseInt",
      Value(native("parseInt", [](Interpreter&, const Value&,
                                  const std::vector<Value>& args) -> Value {
        const std::string text = to_string_value(arg_or_undefined(args, 0));
        const int base =
            args.size() > 1 && !std::holds_alternative<Undefined>(args[1])
                ? static_cast<int>(to_number(args[1]))
                : 10;
        try {
          std::size_t consumed = 0;
          const long long value = std::stoll(text, &consumed, base);
          return consumed > 0 ? Value(static_cast<double>(value))
                              : Value(std::nan(""));
        } catch (...) {
          return std::nan("");
        }
      })));
  globals.declare(
      "parseFloat",
      Value(native("parseFloat", [](Interpreter&, const Value&,
                                    const std::vector<Value>& args) -> Value {
        try {
          return std::stod(to_string_value(arg_or_undefined(args, 0)));
        } catch (...) {
          return std::nan("");
        }
      })));
  globals.declare(
      "isNaN", Value(native("isNaN", [](Interpreter&, const Value&,
                                        const std::vector<Value>& args) -> Value {
        return std::isnan(to_number(arg_or_undefined(args, 0)));
      })));

  // Array namespace (isArray).
  auto array_ns = std::make_shared<JsObject>();
  array_ns->properties["isArray"] =
      native("isArray", [](Interpreter&, const Value&,
                           const std::vector<Value>& args) -> Value {
        const Value value = arg_or_undefined(args, 0);
        const ObjectPtr* object = std::get_if<ObjectPtr>(&value);
        return object != nullptr && (*object)->is_array;
      });
  globals.declare("Array", Value(array_ns));

  // Object namespace (keys, values).
  auto object_ns = std::make_shared<JsObject>();
  object_ns->properties["keys"] =
      native("keys", [](Interpreter&, const Value&,
                        const std::vector<Value>& args) -> Value {
        std::vector<Value> keys;
        const Value value = arg_or_undefined(args, 0);
        if (const ObjectPtr* object = std::get_if<ObjectPtr>(&value)) {
          for (const auto& [key, property] : (*object)->properties) {
            (void)property;
            keys.emplace_back(key);
          }
        }
        return make_array(std::move(keys));
      });
  globals.declare("Object", Value(object_ns));

  // Error constructor: returns an object with a message property.
  globals.declare(
      "Error", Value(native("Error", [](Interpreter&, const Value&,
                                        const std::vector<Value>& args) -> Value {
        auto error = std::make_shared<JsObject>();
        error->properties["message"] =
            to_string_value(arg_or_undefined(args, 0));
        return error;
      })));
}

}  // namespace jst::interp
