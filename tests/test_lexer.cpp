#include <gtest/gtest.h>

#include "lexer/lexer.h"

namespace jst {
namespace {

std::vector<Token> lex(std::string_view source) {
  // Token payload views must outlive the returned vector, so the cooked
  // storage lives in a test-lifetime arena. Source text is a string
  // literal (static storage), so slice-backed payloads are always safe.
  static support::Arena arena;
  return Lexer::tokenize(source, arena);
}

TEST(Lexer, EmptyInput) {
  EXPECT_TRUE(lex("").empty());
  EXPECT_TRUE(lex("   \n\t ").empty());
}

TEST(Lexer, Identifiers) {
  const auto tokens = lex("foo _bar $baz x1");
  ASSERT_EQ(tokens.size(), 4u);
  for (const Token& token : tokens) {
    EXPECT_EQ(token.type, TokenType::kIdentifier);
  }
  EXPECT_EQ(tokens[0].value, "foo");
  EXPECT_EQ(tokens[1].value, "_bar");
  EXPECT_EQ(tokens[2].value, "$baz");
}

TEST(Lexer, KeywordsAndLiteralWords) {
  const auto tokens = lex("if function true false null let async");
  EXPECT_EQ(tokens[0].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[1].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[2].type, TokenType::kBooleanLiteral);
  EXPECT_EQ(tokens[3].type, TokenType::kBooleanLiteral);
  EXPECT_EQ(tokens[4].type, TokenType::kNullLiteral);
  // Contextual keywords stay identifiers.
  EXPECT_EQ(tokens[5].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[6].type, TokenType::kIdentifier);
}

TEST(Lexer, DecimalNumbers) {
  const auto tokens = lex("0 42 3.14 .5 1e3 2.5e-2");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_DOUBLE_EQ(tokens[0].number, 0.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 42.0);
  EXPECT_DOUBLE_EQ(tokens[2].number, 3.14);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.5);
  EXPECT_DOUBLE_EQ(tokens[4].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[5].number, 0.025);
}

TEST(Lexer, RadixNumbers) {
  const auto tokens = lex("0x2a 0b101 0o17 017");
  EXPECT_DOUBLE_EQ(tokens[0].number, 42.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 5.0);
  EXPECT_DOUBLE_EQ(tokens[2].number, 15.0);
  EXPECT_DOUBLE_EQ(tokens[3].number, 15.0);  // legacy octal
}

TEST(Lexer, NumberFollowedByIdentifierFails) {
  EXPECT_THROW(lex("3foo"), ParseError);
}

TEST(Lexer, StringEscapes) {
  const auto tokens = lex(R"JS("a\nb" 'c\x41d' "B" "q\\")JS");
  EXPECT_EQ(tokens[0].value, "a\nb");
  EXPECT_EQ(tokens[1].value, "cAd");
  EXPECT_EQ(tokens[2].value, "B");
  EXPECT_EQ(tokens[3].value, "q\\");
}

TEST(Lexer, UnterminatedStringFails) {
  EXPECT_THROW(lex("\"abc"), ParseError);
  EXPECT_THROW(lex("\"abc\n\""), ParseError);
}

TEST(Lexer, TemplateLiteralSimple) {
  const auto tokens = lex("`hello`");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kTemplate);
  ASSERT_EQ(tokens[0].template_quasis.size(), 1u);
  EXPECT_EQ(tokens[0].template_quasis[0], "hello");
  EXPECT_TRUE(tokens[0].template_expressions.empty());
}

TEST(Lexer, TemplateLiteralWithSubstitutions) {
  const auto tokens = lex("`a ${x + 1} b ${y} c`");
  ASSERT_EQ(tokens.size(), 1u);
  ASSERT_EQ(tokens[0].template_quasis.size(), 3u);
  ASSERT_EQ(tokens[0].template_expressions.size(), 2u);
  EXPECT_EQ(tokens[0].template_quasis[0], "a ");
  EXPECT_EQ(tokens[0].template_expressions[0], "x + 1");
  EXPECT_EQ(tokens[0].template_expressions[1], "y");
}

TEST(Lexer, TemplateWithNestedBraces) {
  const auto tokens = lex("`v: ${ {a: {b: 1}}.a.b }`");
  ASSERT_EQ(tokens.size(), 1u);
  ASSERT_EQ(tokens[0].template_expressions.size(), 1u);
  EXPECT_EQ(tokens[0].template_expressions[0], " {a: {b: 1}}.a.b ");
}

TEST(Lexer, TemplateWithStringContainingBrace) {
  const auto tokens = lex("`x ${ f(\"}\") } y`");
  ASSERT_EQ(tokens.size(), 1u);
  ASSERT_EQ(tokens[0].template_expressions.size(), 1u);
  EXPECT_EQ(tokens[0].template_expressions[0], " f(\"}\") ");
}

TEST(Lexer, RegexAfterOperator) {
  const auto tokens = lex("x = /ab+c/gi;");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].type, TokenType::kRegularExpression);
  EXPECT_EQ(tokens[2].value, "ab+c");
  EXPECT_EQ(tokens[2].regex_flags, "gi");
}

TEST(Lexer, DivisionAfterIdentifier) {
  const auto tokens = lex("a / b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kPunctuator);
  EXPECT_EQ(tokens[1].value, "/");
}

TEST(Lexer, RegexWithCharacterClassSlash) {
  const auto tokens = lex("var re = /[/]/;");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].type, TokenType::kRegularExpression);
  EXPECT_EQ(tokens[3].value, "[/]");
}

TEST(Lexer, CommentsAreCounted) {
  support::Arena arena;
  Lexer lexer("// line\nx /* block\ncomment */ y", arena);
  std::vector<Token> tokens;
  while (true) {
    Token token = lexer.next();
    if (token.type == TokenType::kEndOfFile) break;
    tokens.push_back(token);
  }
  EXPECT_EQ(tokens.size(), 2u);
  EXPECT_EQ(lexer.comment_count(), 2u);
  EXPECT_GT(lexer.comment_bytes(), 10u);
}

TEST(Lexer, HtmlOpenCommentSkipped) {
  const auto tokens = lex("<!-- legacy\nx");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].value, "x");
}

TEST(Lexer, MultiCharPunctuators) {
  const auto tokens = lex("a === b !== c >>> d ** e => f ?. g ?? h");
  std::vector<std::string> punctuators;
  for (const Token& token : tokens) {
    if (token.type == TokenType::kPunctuator) {
      punctuators.emplace_back(token.value);
    }
  }
  const std::vector<std::string> expected = {"===", "!==", ">>>", "**",
                                             "=>",  "?.",  "??"};
  EXPECT_EQ(punctuators, expected);
}

TEST(Lexer, CompoundAssignments) {
  const auto tokens = lex("a += 1; b <<= 2; c >>>= 3; d **= 4;");
  std::vector<std::string> ops;
  for (const Token& token : tokens) {
    if (token.type == TokenType::kPunctuator && token.value != ";") {
      ops.emplace_back(token.value);
    }
  }
  const std::vector<std::string> expected = {"+=", "<<=", ">>>=", "**="};
  EXPECT_EQ(ops, expected);
}

TEST(Lexer, NewlineBeforeTracked) {
  const auto tokens = lex("a\nb c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_FALSE(tokens[0].newline_before);
  EXPECT_TRUE(tokens[1].newline_before);
  EXPECT_FALSE(tokens[2].newline_before);
}

TEST(Lexer, LineAndColumnTracking) {
  const auto tokens = lex("a\n  bb");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 2u);
}

TEST(Lexer, UnicodeEscapeInIdentifier) {
  const auto tokens = lex("\\u0061bc");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].value, "abc");
}

TEST(Lexer, RawSlicePreserved) {
  const auto tokens = lex("  0x2A  ");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].raw, "0x2A");
  EXPECT_EQ(tokens[0].offset, 2u);
}

TEST(Lexer, UnexpectedCharacterFails) {
  EXPECT_THROW(lex("a # b"), ParseError);
}

TEST(Lexer, RegexAfterKeywordReturn) {
  const auto tokens = lex("return /x/;");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kRegularExpression);
}

TEST(Lexer, DivisionAfterCloseParen) {
  const auto tokens = lex("(a) / 2");
  bool has_division = false;
  for (const Token& token : tokens) {
    if (token.type == TokenType::kPunctuator && token.value == "/") {
      has_division = true;
    }
  }
  EXPECT_TRUE(has_division);
}

}  // namespace
}  // namespace jst
