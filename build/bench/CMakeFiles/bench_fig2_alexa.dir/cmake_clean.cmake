file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_alexa.dir/bench_fig2_alexa.cpp.o"
  "CMakeFiles/bench_fig2_alexa.dir/bench_fig2_alexa.cpp.o.d"
  "bench_fig2_alexa"
  "bench_fig2_alexa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_alexa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
