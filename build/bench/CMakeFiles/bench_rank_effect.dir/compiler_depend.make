# Empty compiler generated dependencies file for bench_rank_effect.
# This may be replaced when dependencies are built.
