// Batch-analysis service facade over a trained TransformationAnalyzer.
//
// The paper's wild study (§IV) classifies hundreds of thousands of scripts;
// this is the production-shaped entry point for that workload: a span of
// sources fans out over the thread pool, every script yields a structured
// ScriptOutcome (status + report + diagnostics + timings), and the batch
// returns aggregate observability counters (scripts/sec, parse-failure
// rate, per-stage wall time). Outcomes are positionally aligned with the
// input and independent of the thread count.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/pipeline.h"

namespace jst::analysis {

struct BatchOptions {
  // Parallelism for the batch (0 = JST_THREADS / hardware default,
  // 1 = serial). Results are identical for every value.
  std::size_t threads = 0;
  // Per-script resource ceilings (support/budget.h). Every script in the
  // batch is analyzed under its own Budget built from these limits; tripped
  // ceilings surface as budget statuses / degraded outcomes and are tallied
  // in BatchStats, never thrown. The default governs nothing. This
  // supersedes the old max_bytes field: set limits.max_source_bytes for the
  // former behavior (see DESIGN.md §10).
  ResourceLimits limits;
};

// Aggregate counters over one analyze_batch call.
//
// Stage accounting invariant: the per-stage sums partition the per-script
// totals — static_analysis_ms + features_ms + inference_ms ≈
// total_script_ms, where static analysis covers lex + parse + CFG + data
// flow + the §III-D1 eligibility walk. The residue is only the clock
// reads between stage boundaries (microseconds per script); analyze_batch
// asserts the invariant in debug builds.
struct BatchStats {
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t parse_errors = 0;
  std::size_t ineligible_size = 0;
  std::size_t ineligible_ast = 0;
  // Budget quarantine counters (DESIGN.md §10), one per budget status.
  std::size_t budget_tokens = 0;      // kBudgetTokens
  std::size_t budget_ast_nodes = 0;   // kBudgetAstNodes
  std::size_t budget_depth = 0;       // kBudgetDepth
  std::size_t budget_dataflow = 0;    // kBudgetDataflow (degraded)
  std::size_t deadline_exceeded = 0;  // kDeadlineExceeded (hard stage)
  std::size_t degraded = 0;           // kDegraded (soft-checkpoint deadline)
  std::size_t threads = 1;            // parallelism actually used
  // Batch wall-clock time. For an empty batch every rate/percentile field
  // below is a well-defined 0.0 (no division happens on total == 0).
  double wall_ms = 0.0;
  double scripts_per_second = 0.0;  // total / wall time; 0 when total == 0
  // Per-stage time summed across scripts (≈ wall_ms × threads when the
  // pool is saturated); see the invariant above.
  double static_analysis_ms = 0.0;
  double features_ms = 0.0;
  double inference_ms = 0.0;
  // Per-script latency distribution (total_ms over all scripts in the
  // batch). Percentiles are exact — computed from the full sample, not
  // histogram buckets — so they are deterministic for any thread count.
  double total_script_ms = 0.0;  // Σ per-script total_ms
  double p50_script_ms = 0.0;
  double p95_script_ms = 0.0;
  double p99_script_ms = 0.0;
  double max_script_ms = 0.0;  // slowest single script

  // Scripts quarantined by any ResourceLimits ceiling (hard or degraded).
  std::size_t budget_tripped() const {
    return budget_tokens + budget_ast_nodes + budget_depth + budget_dataflow +
           deadline_exceeded + degraded;
  }
  double parse_failure_rate() const {
    return total == 0 ? 0.0
                      : static_cast<double>(parse_errors) /
                            static_cast<double>(total);
  }
  // Sum of the three per-stage aggregates (lhs of the invariant above).
  double stage_ms_sum() const {
    return static_analysis_ms + features_ms + inference_ms;
  }

  // One self-contained JSON object with every field above, for perf
  // dashboards and the BENCH_*.json exports.
  std::string to_json() const;
};

struct BatchResult {
  std::vector<ScriptOutcome> outcomes;  // aligned with the input span
  BatchStats stats;
};

class AnalyzerService {
 public:
  // The analyzer must already be trained (or loaded); throws ModelError
  // otherwise. The service borrows the analyzer, which must outlive it.
  explicit AnalyzerService(const TransformationAnalyzer& analyzer);

  // Analyzes one script under the given resource ceilings (the default
  // governs nothing). Tripped limits surface as statuses, never throws.
  ScriptOutcome analyze_one(std::string_view source,
                            const ResourceLimits& limits = {}) const;

  // Analyzes every source concurrently; never throws on per-script
  // failures (they surface as ScriptOutcome statuses).
  BatchResult analyze_batch(std::span<const std::string> sources,
                            const BatchOptions& options = {}) const;

  const TransformationAnalyzer& analyzer() const { return *analyzer_; }

 private:
  const TransformationAnalyzer* analyzer_;
};

}  // namespace jst::analysis
