// Analysis-as-a-service (DESIGN.md §13): the AnalyzeRequest/AnalyzeResponse
// API, its versioned NDJSON wire schema, and the jstraced daemon.
//
//  * Wire round-trips: request and response lines survive
//    serialize → parse with every field intact; unknown fields, bad
//    types, and newer format versions are rejected with diagnostics.
//  * Admission control: Server::should_shed is a pure function — the
//    hard cap and the queue-wait estimate shed deterministically.
//  * Socket integration: a live daemon serves concurrent bursts with
//    zero dropped connections, resolves content-hash references,
//    answers metrics/ping ops and HTTP-style scrapes, sheds overload
//    with explicit kOverloaded responses, and drains on shutdown
//    without abandoning admitted requests.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/service.h"
#include "analysis/wild.h"
#include "analysis/wire.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "server/client.h"
#include "server/server.h"
#include "support/json_reader.h"
#include "support/rng.h"
#include "transform/transform.h"

namespace jst {
namespace {

// Same corpus as test_frontend/test_compiled: 16 deterministic regular
// scripts plus one transformed variant per technique.
std::vector<std::string> seed_corpus() {
  analysis::CorpusSpec spec;
  spec.regular_count = 16;
  spec.seed = 424242;
  std::vector<std::string> corpus = analysis::generate_regular_corpus(spec);
  Rng rng(99);
  std::size_t base = 0;
  for (const transform::Technique technique : transform::all_techniques()) {
    corpus.push_back(
        analysis::make_transformed_sample(corpus[base % 16], technique, rng)
            .source);
    ++base;
  }
  return corpus;
}

const analysis::TransformationAnalyzer& shared_analyzer() {
  static analysis::TransformationAnalyzer* analyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = 32;
    options.per_technique_count = 6;
    options.detector.forest.tree_count = 6;
    options.detector.features.ngram.hash_dim = 64;
    options.seed = 20260806;
    auto* built = new analysis::TransformationAnalyzer(options);
    built->train();
    return built;
  }();
  return *analyzer;
}

// Wall-clock timings differ run to run; everything else must not.
std::string strip_timing(const std::string& outcome_json) {
  static const std::regex kTiming("\"timing\":\\{[^}]*\\},");
  return std::regex_replace(outcome_json, kTiming, "");
}

// A unique-per-test socket path under /tmp (sun_path is length-limited,
// so the build tree is not a safe prefix).
std::string test_socket_path(const char* tag) {
  return "/tmp/jstraced_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

// Splits NDJSON / JSONL into non-empty lines.
std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Extracts `"key":"..."` from a single-line JSON event ("" when absent).
std::string json_string_field(const std::string& line,
                              const std::string& key) {
  const std::string needle = '"' + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::string();
  const std::size_t start = at + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

// Extracts the numeric `"key":` value from a single-line JSON event.
double json_number_field(const std::string& line, const std::string& key) {
  const std::string needle = '"' + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
  if (at == std::string::npos) return 0.0;
  return std::atof(line.c_str() + at + needle.size());
}

// --- wire schema: requests -------------------------------------------------

TEST(WireSchema, RequestRoundTripInlineSource) {
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source("var x = 1;", "req-7");
  request.detail = analysis::OutputDetail::kSummary;
  ResourceLimits limits;
  limits.deadline_ms = 250.0;
  limits.max_tokens = 5000;
  request.limits = limits;

  const std::string line = analysis::wire::analyze_request_json(request);
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_request(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->id, "req-7");
  EXPECT_TRUE(parsed->has_source);
  EXPECT_EQ(parsed->source, "var x = 1;");
  EXPECT_EQ(parsed->detail, analysis::OutputDetail::kSummary);
  ASSERT_TRUE(parsed->limits.has_value());
  EXPECT_DOUBLE_EQ(parsed->limits->deadline_ms, 250.0);
  EXPECT_EQ(parsed->limits->max_tokens, 5000u);
  EXPECT_EQ(parsed->limits->max_ast_nodes, 0u);
}

TEST(WireSchema, RequestRoundTripHashReference) {
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_hash("00112233aabbccdd", "ref-1");
  const std::string line = analysis::wire::analyze_request_json(request);
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_request(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_FALSE(parsed->has_source);
  EXPECT_EQ(parsed->source_hash, "00112233aabbccdd");
  EXPECT_EQ(parsed->detail, analysis::OutputDetail::kFull);
}

TEST(WireSchema, RequestRejectsUnknownFieldAndNewerVersion) {
  std::string error;
  EXPECT_FALSE(analysis::wire::parse_analyze_request(
                   R"({"v":1,"source":"x","bogus":true})", &error)
                   .has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
  EXPECT_FALSE(analysis::wire::parse_analyze_request(
                   R"({"v":999,"source":"x"})", &error)
                   .has_value());
  EXPECT_FALSE(
      analysis::wire::parse_analyze_request("not json at all", &error)
          .has_value());
}

TEST(WireSchema, RequestLimitsProductionThenOverride) {
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_request(
      R"({"source":"x","limits":{"production":true,"max_tokens":7}})",
      &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_TRUE(parsed->limits.has_value());
  const ResourceLimits production = ResourceLimits::production();
  EXPECT_EQ(parsed->limits->max_tokens, 7u);  // override wins
  EXPECT_EQ(parsed->limits->max_source_bytes, production.max_source_bytes);
  EXPECT_DOUBLE_EQ(parsed->limits->deadline_ms, production.deadline_ms);
}

// --- wire schema: request_id (v2) ------------------------------------------

TEST(WireSchema, RequestIdRoundTripsOnV2) {
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source("var x = 1;", "rid-1");
  request.request_id = "0123456789abcdef";
  const std::string line = analysis::wire::analyze_request_json(request);
  EXPECT_NE(line.find("\"request_id\":\"0123456789abcdef\""),
            std::string::npos)
      << line;

  std::string error;
  const auto parsed = analysis::wire::parse_analyze_request(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->request_id, "0123456789abcdef");
  EXPECT_EQ(parsed->id, "rid-1");

  // Absent request_id parses as empty (the daemon mints one later).
  const auto bare = analysis::wire::parse_analyze_request(
      R"({"source":"x"})", &error);
  ASSERT_TRUE(bare.has_value()) << error;
  EXPECT_TRUE(bare->request_id.empty());
}

TEST(WireSchema, RequestIdRejectedUnderPinnedV1) {
  std::string error;
  EXPECT_FALSE(analysis::wire::parse_analyze_request(
                   R"({"v":1,"source":"x","request_id":"0123456789abcdef"})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("wire v2"), std::string::npos) << error;
  // An explicit v:2 pin accepts it.
  const auto parsed = analysis::wire::parse_analyze_request(
      R"({"v":2,"source":"x","request_id":"0123456789abcdef"})", &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->request_id, "0123456789abcdef");
}

TEST(WireSchema, RequestIdRejectsMalformedShapes) {
  std::string error;
  for (const char* bad :
       {R"({"source":"x","request_id":""})",
        R"({"source":"x","request_id":"short"})",
        R"({"source":"x","request_id":"0123456789ABCDEF"})",
        R"({"source":"x","request_id":"0123456789abcdef0"})"}) {
    EXPECT_FALSE(
        analysis::wire::parse_analyze_request(bad, &error).has_value())
        << bad;
    EXPECT_NE(error.find("request_id"), std::string::npos) << error;
  }
}

TEST(WireSchema, ResponseCarriesRequestIdThroughService) {
  const analysis::AnalyzerService service(shared_analyzer());
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source(seed_corpus()[0], "echo-1");
  request.request_id = "feedfacefeedface";
  const analysis::AnalyzeResponse response = service.analyze(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.request_id, "feedfacefeedface");

  std::string error;
  const auto parsed = analysis::wire::parse_analyze_response(
      response.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->request_id, "feedfacefeedface");
}

// --- wire schema: responses ------------------------------------------------

TEST(WireSchema, ResponseRoundTripOk) {
  const analysis::AnalyzerService service(shared_analyzer());
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source(seed_corpus()[0], "ok-1");
  analysis::AnalyzeResponse response = service.analyze(request);
  ASSERT_TRUE(response.ok());
  response.queue_ms = 1.5;
  response.queue_depth = 3;

  std::string error;
  const auto parsed = analysis::wire::parse_analyze_response(
      response.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->version, analysis::wire::kWireFormatVersion);
  EXPECT_TRUE(parsed->ok());
  EXPECT_EQ(parsed->id, "ok-1");
  EXPECT_EQ(parsed->source_hash, analysis::content_hash(seed_corpus()[0]));
  EXPECT_DOUBLE_EQ(parsed->queue_ms, 1.5);
  EXPECT_EQ(parsed->queue_depth, 3u);
  EXPECT_EQ(parsed->outcome_status, to_string(response.outcome.status));
  ASSERT_TRUE(parsed->outcome.is_object());
  // The embedded outcome is the same bytes ScriptOutcome::to_json emits.
  const support::JsonValue* status = parsed->outcome.find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->as_string(), to_string(response.outcome.status));
}

TEST(WireSchema, ResponseDetailLevels) {
  const analysis::AnalyzerService service(shared_analyzer());
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source(seed_corpus()[0]);

  request.detail = analysis::OutputDetail::kStatus;
  analysis::AnalyzeResponse status_response = service.analyze(request);
  const std::string status_line = status_response.to_json();
  EXPECT_EQ(status_line.find("\"outcome\":"), std::string::npos);
  EXPECT_NE(status_line.find("\"outcome_status\":"), std::string::npos);

  request.detail = analysis::OutputDetail::kSummary;
  const std::string summary_line = service.analyze(request).to_json();
  EXPECT_NE(summary_line.find("\"outcome\":"), std::string::npos);
  EXPECT_EQ(summary_line.find("\"report\":"), std::string::npos);

  request.detail = analysis::OutputDetail::kFull;
  const std::string full_line = service.analyze(request).to_json();
  EXPECT_NE(full_line.find("\"report\":"), std::string::npos);
}

TEST(WireSchema, ResponseErrorRoundTrip) {
  analysis::AnalyzeResponse response;
  response.status = analysis::ResponseStatus::kOverloaded;
  response.id = "shed-1";
  response.error = "overloaded: 9 in flight";
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_response(
      response.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->status, analysis::ResponseStatus::kOverloaded);
  EXPECT_EQ(parsed->error, "overloaded: 9 in flight");
  EXPECT_TRUE(parsed->outcome.is_null());
}

// The member to_json surfaces route through the wire schema — same
// bytes, one serializer.
TEST(WireSchema, ToJsonRoutesThroughWire) {
  const analysis::AnalyzerService service(shared_analyzer());
  const analysis::BatchResponse batch = service.analyze_batch(
      analysis::make_source_requests(seed_corpus()));
  for (const analysis::AnalyzeResponse& response : batch.responses) {
    EXPECT_EQ(response.outcome.to_json(),
              analysis::wire::script_outcome_json(response.outcome));
  }
  EXPECT_EQ(batch.stats.to_json(),
            analysis::wire::batch_stats_json(batch.stats));
}

// --- content hashing -------------------------------------------------------

TEST(ContentHash, StableFormat) {
  const std::string hash = analysis::content_hash("var x = 1;");
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(hash, analysis::content_hash("var x = 1;"));
  EXPECT_NE(hash, analysis::content_hash("var x = 2;"));
}

// --- JSON DOM serializer ---------------------------------------------------

// support::to_json is what Client::metrics_json/stats_json use to lift an
// embedded payload out of the op envelope — it must reproduce the parsed
// document (including the ±1e999 infinity idiom the metrics registry
// emits) and be its own fixpoint.
TEST(JsonRoundTrip, SerializerReproducesDocument) {
  const std::string text =
      R"({"b":true,"inf":1e999,"neg":-1e999,)"
      R"("list":[1,2.5,-0.1,"x\ny",null],)"
      R"("nested":{"count":12345,"frac":0.1}})";
  std::string error;
  const auto parsed = support::parse_json(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const std::string serialized = support::to_json(*parsed);

  const auto reparsed = support::parse_json(serialized, &error);
  ASSERT_TRUE(reparsed.has_value()) << error << ": " << serialized;
  EXPECT_EQ(support::to_json(*reparsed), serialized);  // fixpoint

  EXPECT_TRUE(std::isinf(reparsed->find("inf")->as_number()));
  EXPECT_GT(reparsed->find("inf")->as_number(), 0.0);
  EXPECT_TRUE(std::isinf(reparsed->find("neg")->as_number()));
  EXPECT_LT(reparsed->find("neg")->as_number(), 0.0);
  EXPECT_NE(serialized.find("1e999"), std::string::npos) << serialized;
  EXPECT_DOUBLE_EQ(reparsed->find("nested")->find("frac")->as_number(), 0.1);
  EXPECT_NE(serialized.find("\"frac\":0.1"), std::string::npos) << serialized;
  EXPECT_EQ(reparsed->find("nested")->find("count")->as_number(), 12345.0);
  EXPECT_NE(serialized.find("\"count\":12345"), std::string::npos)
      << serialized;
  EXPECT_EQ(reparsed->find("list")->as_array()[3].as_string(), "x\ny");
}

// --- admission control (pure function) ------------------------------------

TEST(AdmissionControl, HardCapSheds) {
  EXPECT_TRUE(server::Server::should_shed(4, 2, 0.0, 0.0, 4));
  EXPECT_TRUE(server::Server::should_shed(9, 2, 1.0, 1e9, 4));
  EXPECT_FALSE(server::Server::should_shed(3, 2, 0.0, 0.0, 4));
}

TEST(AdmissionControl, DeadlineEstimateSheds) {
  // 8 queued × 100 ms p95 / 2 workers = 400 ms estimated wait.
  EXPECT_TRUE(server::Server::should_shed(8, 2, 100.0, 399.0, 0));
  EXPECT_FALSE(server::Server::should_shed(8, 2, 100.0, 401.0, 0));
  // More workers absorb the same queue.
  EXPECT_FALSE(server::Server::should_shed(8, 8, 100.0, 399.0, 0));
}

TEST(AdmissionControl, NoDeadlineNeverShedsWithoutCap) {
  EXPECT_FALSE(server::Server::should_shed(100000, 1, 5000.0, 0.0, 0));
  EXPECT_FALSE(server::Server::should_shed(0, 1, 5000.0, 1.0, 0));
}

// Regression for stale admission (PR 7): before the windowed p95, one
// early slow burst poisoned the cumulative p95 for the life of the
// process, so should_shed kept rejecting fast traffic minutes later. The
// windowed estimate forgets the burst once it ages out of the window.
TEST(AdmissionControl, WindowedP95RecoversFromEarlySlowBurst) {
  obs::Histogram cumulative;          // the since-boot view (old behavior)
  obs::WindowedHistogram windowed(60);  // what admission_p95_ms consults

  // Second 0: a 200-request burst at 500 ms service time.
  for (int i = 0; i < 200; ++i) {
    cumulative.record(500.0);
    windowed.record_at(0, 500.0);
  }
  // Ten minutes later: the same count of 1 ms requests.
  for (int i = 0; i < 200; ++i) {
    cumulative.record(1.0);
    windowed.record_at(600, 1.0);
  }

  const double cumulative_p95 = cumulative.p95();
  const double windowed_p95 = windowed.snapshot_at(600).p95;
  EXPECT_GT(cumulative_p95, 100.0);  // still dominated by the burst
  EXPECT_LT(windowed_p95, 10.0);     // burst aged out of the window

  // 4 queued, 2 workers, 250 ms deadline: the cumulative estimate sheds
  // traffic the server could easily serve; the windowed one admits it.
  EXPECT_TRUE(server::Server::should_shed(4, 2, cumulative_p95, 250.0, 0));
  EXPECT_FALSE(server::Server::should_shed(4, 2, windowed_p95, 250.0, 0));
}

// --- socket integration ----------------------------------------------------

class ServerFixture : public ::testing::Test {
 protected:
  void StartServer(const char* tag, server::ServerConfig config) {
    config.socket_path = test_socket_path(tag);
    service_ = std::make_unique<analysis::AnalyzerService>(shared_analyzer());
    daemon_ = std::make_unique<server::Server>(*service_, std::move(config));
    daemon_->start();
  }

  // Postmortem artifact: when a serving test fails, dump the flight
  // recorder next to the test binary so CI can upload it (the workflow
  // attaches test_server_flight.ndjson on failure).
  void TearDown() override {
    if (::testing::Test::HasFailure()) {
      const char* path = std::getenv("JST_FLIGHT_ARTIFACT");
      obs::FlightRecorder::global().dump_to_file(
          path != nullptr ? path : "test_server_flight.ndjson");
    }
  }

  std::unique_ptr<analysis::AnalyzerService> service_;
  std::unique_ptr<server::Server> daemon_;
};

TEST_F(ServerFixture, BurstZeroDroppedConnections) {
  server::ServerConfig config;
  config.workers = 2;
  StartServer("burst", config);

  server::LoadOptions load;
  load.connections = 8;
  load.requests_per_connection = 8;
  load.detail = analysis::OutputDetail::kStatus;
  load.sources = seed_corpus();
  const server::LoadReport report =
      server::run_load(daemon_->socket_path(), load);

  EXPECT_EQ(report.transport_errors, 0u);
  EXPECT_EQ(report.sent, 64u);
  EXPECT_EQ(report.ok, 64u);
  EXPECT_EQ(report.shed, 0u);
  const server::ServerStats stats = daemon_->stats();
  EXPECT_EQ(stats.requests_served, 64u);
  EXPECT_EQ(stats.requests_shed, 0u);
}

TEST_F(ServerFixture, HashReferenceResolvesAfterInlineSubmission) {
  StartServer("hash", server::ServerConfig{});
  server::Client client(daemon_->socket_path());
  const std::string source = seed_corpus()[0];

  // Unknown hash first: explicit not_found, connection stays usable.
  const auto miss = client.call(
      analysis::AnalyzeRequest::for_hash(analysis::content_hash(source)));
  EXPECT_EQ(miss.status, analysis::ResponseStatus::kNotFound);

  const auto inline_response =
      client.call(analysis::AnalyzeRequest::for_source(source, "a"));
  ASSERT_TRUE(inline_response.ok());
  EXPECT_EQ(inline_response.source_hash, analysis::content_hash(source));

  const auto by_hash = client.call(
      analysis::AnalyzeRequest::for_hash(inline_response.source_hash, "b"));
  ASSERT_TRUE(by_hash.ok());
  EXPECT_EQ(by_hash.outcome_status, inline_response.outcome_status);
  EXPECT_EQ(by_hash.source_hash, inline_response.source_hash);
}

// A parseable script of exactly `size` bytes whose tail is comment
// padding — distinct tags give distinct content hashes.
std::string padded_source(char tag, std::size_t size) {
  std::string source = "var v = 1; //";
  source.resize(size, tag);
  return source;
}

// The registry is a byte-budgeted LRU: once the budget is exceeded the
// least-recently-used source is evicted (references miss with not_found),
// and resolving a reference refreshes the entry it hit.
TEST_F(ServerFixture, HashRegistryEvictsLeastRecentlyUsed) {
  server::ServerConfig config;
  config.hash_registry_bytes = 700;  // fits two 320-byte sources, not three
  StartServer("lru", config);
  server::Client client(daemon_->socket_path());

  const std::string a = padded_source('a', 320);
  const std::string b = padded_source('b', 320);
  const std::string c = padded_source('c', 320);

  ASSERT_TRUE(client.call(analysis::AnalyzeRequest::for_source(a, "a")).ok());
  ASSERT_TRUE(client.call(analysis::AnalyzeRequest::for_source(b, "b")).ok());

  // Touch A: it becomes most-recently-used, so registering C evicts B.
  ASSERT_TRUE(
      client
          .call(analysis::AnalyzeRequest::for_hash(analysis::content_hash(a)))
          .ok());
  ASSERT_TRUE(client.call(analysis::AnalyzeRequest::for_source(c, "c")).ok());

  EXPECT_EQ(client
                .call(analysis::AnalyzeRequest::for_hash(
                    analysis::content_hash(b)))
                .status,
            analysis::ResponseStatus::kNotFound);
  EXPECT_TRUE(
      client
          .call(analysis::AnalyzeRequest::for_hash(analysis::content_hash(a)))
          .ok());
  EXPECT_TRUE(
      client
          .call(analysis::AnalyzeRequest::for_hash(analysis::content_hash(c)))
          .ok());
}

// A source bigger than the request's effective max_source_bytes is never
// registered: the registry cannot pin memory the pipeline would refuse
// to analyze.
TEST_F(ServerFixture, HashRegistrySkipsSourcesOverLimit) {
  server::ServerConfig config;
  config.default_limits.max_source_bytes = 128;
  StartServer("regcap", config);
  server::Client client(daemon_->socket_path());

  const std::string big = padded_source('g', 320);
  ASSERT_TRUE(
      client.call(analysis::AnalyzeRequest::for_source(big, "big")).ok());
  EXPECT_EQ(client
                .call(analysis::AnalyzeRequest::for_hash(
                    analysis::content_hash(big)))
                .status,
            analysis::ResponseStatus::kNotFound);

  const std::string small = padded_source('s', 64);
  ASSERT_TRUE(
      client.call(analysis::AnalyzeRequest::for_source(small, "small")).ok());
  EXPECT_TRUE(client
                  .call(analysis::AnalyzeRequest::for_hash(
                      analysis::content_hash(small)))
                  .ok());
}

TEST_F(ServerFixture, PingMetricsAndHttpScrape) {
  StartServer("ops", server::ServerConfig{});
  server::Client client(daemon_->socket_path());
  EXPECT_TRUE(client.ping());

  // A served request so the counters are non-trivial.
  ASSERT_TRUE(
      client.call(analysis::AnalyzeRequest::for_source(seed_corpus()[0]))
          .ok());
  const std::string metrics = client.metrics_json();
  EXPECT_NE(metrics.find("jst_server_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("jst_server_service_ms"), std::string::npos);

  // HTTP-style scrape on a fresh connection (the exchange closes it).
  server::Client scraper(daemon_->socket_path());
  const std::string head = scraper.call_raw("GET /metrics HTTP/1.0");
  EXPECT_NE(head.find("HTTP/1.0 200 OK"), std::string::npos);
}

TEST_F(ServerFixture, MalformedLineAnswersInvalidRequest) {
  StartServer("bad", server::ServerConfig{});
  server::Client client(daemon_->socket_path());
  std::string error;
  const auto parsed = analysis::wire::parse_analyze_response(
      client.call_raw("this is not json"), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->status, analysis::ResponseStatus::kInvalidRequest);
  // The connection survives the bad line.
  EXPECT_TRUE(client.ping());
}

// Deterministic overload: one worker with a 150 ms service floor and a
// hard cap of 2. Six requests fired from pre-connected clients: exactly
// two are admitted (the cap), four are answered kOverloaded immediately —
// the shed responses arrive long before the 150 ms floor can retire the
// admitted pair, so the split cannot race.
TEST_F(ServerFixture, OverloadShedsDeterministically) {
  server::ServerConfig config;
  config.workers = 1;
  config.max_queue_depth = 2;
  config.min_service_ms = 150.0;
  // Shed-burst forensics: the four sheds below cross this threshold, so
  // the server must auto-dump the flight recorder to this path.
  const std::string dump_path =
      "/tmp/jstraced_test_" + std::to_string(::getpid()) + "_burst.ndjson";
  config.shed_burst_dump_threshold = 2;
  config.flight_dump_path = dump_path;
  StartServer("overload", config);

  constexpr std::size_t kClients = 6;
  std::vector<std::unique_ptr<server::Client>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(
        std::make_unique<server::Client>(daemon_->socket_path()));
  }

  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> overloaded{0};
  std::vector<std::thread> threads;
  const std::string source = seed_corpus()[0];
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      const auto response = clients[i]->call(
          analysis::AnalyzeRequest::for_source(source, std::to_string(i)));
      if (response.ok()) ++ok;
      if (response.status == analysis::ResponseStatus::kOverloaded) {
        ++overloaded;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(ok.load(), 2u);
  EXPECT_EQ(overloaded.load(), 4u);
  const server::ServerStats stats = daemon_->stats();
  EXPECT_EQ(stats.requests_admitted, 2u);
  EXPECT_EQ(stats.requests_shed, 4u);

  // The shed burst crossed the threshold: the flight recorder was dumped
  // automatically, and the dump names the overload verdicts.
  std::ifstream dump(dump_path);
  ASSERT_TRUE(dump.good()) << dump_path;
  std::stringstream contents;
  contents << dump.rdbuf();
  EXPECT_NE(contents.str().find("\"kind\":\"shed\""), std::string::npos);
  EXPECT_NE(contents.str().find("\"label\":\"overloaded\""),
            std::string::npos);
  std::remove(dump_path.c_str());
}

// Requests whose queue wait consumed the whole deadline are shed at
// pickup instead of analyzed late: with one worker, a 200 ms floor, and
// 100 ms deadlines, the first request (admitted into an idle server)
// completes and every queued follower is answered kOverloaded.
TEST_F(ServerFixture, DeadlineElapsedInQueueShedsAtPickup) {
  server::ServerConfig config;
  config.workers = 1;
  config.min_service_ms = 200.0;
  StartServer("latedl", config);

  constexpr std::size_t kClients = 3;
  std::vector<std::unique_ptr<server::Client>> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.push_back(
        std::make_unique<server::Client>(daemon_->socket_path()));
  }
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> overloaded{0};
  std::vector<std::thread> threads;
  const std::string source = seed_corpus()[0];
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      analysis::AnalyzeRequest request =
          analysis::AnalyzeRequest::for_source(source, std::to_string(i));
      ResourceLimits limits;
      limits.deadline_ms = 100.0;
      request.limits = limits;
      const auto response = clients[i]->call(request);
      if (response.ok()) ++ok;
      if (response.status == analysis::ResponseStatus::kOverloaded) {
        ++overloaded;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Exactly one request rode the idle lane; the rest waited ≥ 200 ms
  // against a 100 ms deadline and were shed (at admission by the wait
  // estimate once a p95 exists, or at pickup) — never analyzed late.
  EXPECT_EQ(ok.load(), 1u);
  EXPECT_EQ(overloaded.load(), kClients - 1);
}

// --- observability ops and request-id plumbing (DESIGN.md §14) -------------

TEST_F(ServerFixture, ServerMintsOrEchoesRequestId) {
  StartServer("rid", server::ServerConfig{});
  server::Client client(daemon_->socket_path());
  const std::string source = seed_corpus()[0];

  // No client-supplied id: the daemon mints a valid one.
  const auto minted =
      client.call(analysis::AnalyzeRequest::for_source(source, "m-1"));
  ASSERT_TRUE(minted.ok());
  EXPECT_TRUE(obs::is_valid_request_id(minted.request_id))
      << minted.request_id;

  // Client-supplied id (wire v2): echoed verbatim.
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source(source, "m-2");
  request.request_id = "00c0ffee00c0ffee";
  const auto echoed = client.call(request);
  ASSERT_TRUE(echoed.ok());
  EXPECT_EQ(echoed.request_id, "00c0ffee00c0ffee");

  // Two mints never collide.
  const auto second =
      client.call(analysis::AnalyzeRequest::for_source(source, "m-3"));
  EXPECT_NE(second.request_id, minted.request_id);
}

TEST_F(ServerFixture, StatsOpReportsRecentWindow) {
  server::ServerConfig config;
  config.workers = 2;
  StartServer("statsop", config);
  server::Client client(daemon_->socket_path());
  const std::vector<std::string> corpus = seed_corpus();
  constexpr std::size_t kRequests = 20;  // past the default warm-up of 16
  for (std::size_t i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client
                    .call(analysis::AnalyzeRequest::for_source(
                        corpus[i % corpus.size()], std::to_string(i)))
                    .ok());
  }

  const std::string stats = client.stats_json();
  std::string error;
  const auto document = support::parse_json(stats, &error);
  ASSERT_TRUE(document.has_value()) << error << ": " << stats;

  EXPECT_EQ(document->find("window_seconds")->as_number(), 60.0);
  EXPECT_TRUE(document->find("warm")->as_bool()) << stats;
  EXPECT_EQ(document->find("workers")->as_number(), 2.0);
  EXPECT_GE(document->find("admission_p95_ms")->as_number(), 0.0);

  const support::JsonValue* recent = document->find("recent");
  ASSERT_NE(recent, nullptr);
  EXPECT_EQ(recent->find("requests")->as_number(),
            static_cast<double>(kRequests));
  EXPECT_EQ(recent->find("served")->as_number(),
            static_cast<double>(kRequests));
  EXPECT_EQ(recent->find("shed")->as_number(), 0.0);
  EXPECT_GT(recent->find("qps")->as_number(), 0.0);
  EXPECT_LE(recent->find("service_p50_ms")->as_number(),
            recent->find("service_p95_ms")->as_number());
  EXPECT_LE(recent->find("service_p95_ms")->as_number(),
            recent->find("service_p99_ms")->as_number());

  // Cumulative section and the slowest-exemplar table exist; exemplars
  // reference real source hashes with valid request ids.
  ASSERT_NE(document->find("cumulative"), nullptr);
  const support::JsonValue* slowest = document->find("slowest");
  ASSERT_NE(slowest, nullptr);
  ASSERT_TRUE(slowest->is_array());
  EXPECT_FALSE(slowest->as_array().empty());
  // In-process accessor matches the wire surface's shape.
  EXPECT_NE(daemon_->stats_json().find("\"recent\":"), std::string::npos);
}

TEST_F(ServerFixture, FlightOpReturnsEventArray) {
  obs::FlightRecorder::global().clear();
  StartServer("flightop", server::ServerConfig{});
  server::Client client(daemon_->socket_path());
  ASSERT_TRUE(
      client.call(analysis::AnalyzeRequest::for_source(seed_corpus()[0]))
          .ok());

  const std::string line = client.call_raw("{\"op\":\"flight\"}");
  std::string error;
  const auto document = support::parse_json(line, &error);
  ASSERT_TRUE(document.has_value()) << error << ": " << line;
  EXPECT_EQ(document->find("status")->as_string(), "ok");
  const support::JsonValue* events = document->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_FALSE(events->as_array().empty());
  // The served request left its admit and respond breadcrumbs.
  EXPECT_NE(line.find("\"kind\":\"admit\""), std::string::npos);
  EXPECT_NE(line.find("\"kind\":\"respond\""), std::string::npos);
}

// The PR-7 acceptance criterion: one request's full lifecycle — admission
// verdict, queue pickup, pipeline stages, respond — reconstructs from the
// trace JSONL and the flight-recorder dump joined on request_id.
TEST_F(ServerFixture, LifecycleReconstructsFromTraceAndFlightJoin) {
  obs::FlightRecorder::global().clear();
  server::ServerConfig config;
  config.workers = 1;
  StartServer("lifecycle", config);

  std::ostringstream trace_out;
  obs::TraceSink sink(trace_out);
  if (JST_TRACING) obs::set_trace_sink(&sink);

  const std::string rid = "abcdef0123456789";
  server::Client client(daemon_->socket_path());
  analysis::AnalyzeRequest request =
      analysis::AnalyzeRequest::for_source(seed_corpus()[0], "lc-1");
  request.request_id = rid;
  const auto response = client.call(request);
  // Drain before detaching the sink so no server-side span is mid-write.
  daemon_->shutdown();
  obs::set_trace_sink(nullptr);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.request_id, rid);

  // Flight side of the join: admit → pickup → stages → respond, in
  // timestamp order, all carrying the request id.
  double admit_ts = -1.0, pickup_ts = -1.0, respond_ts = -1.0;
  std::size_t stage_events = 0;
  for (const std::string& line :
       split_lines(obs::FlightRecorder::global().dump_ndjson())) {
    if (json_string_field(line, "rid") != rid) continue;
    const std::string kind = json_string_field(line, "kind");
    const double ts = json_number_field(line, "ts_us");
    if (kind == "admit") admit_ts = ts;
    if (kind == "pickup") pickup_ts = ts;
    if (kind == "respond") respond_ts = ts;
    if (kind == "stage") ++stage_events;
  }
  ASSERT_GE(admit_ts, 0.0) << "no admit event for " << rid;
  ASSERT_GE(pickup_ts, 0.0) << "no pickup event for " << rid;
  ASSERT_GE(respond_ts, 0.0) << "no respond event for " << rid;
  EXPECT_LE(admit_ts, pickup_ts);
  EXPECT_LE(pickup_ts, respond_ts);
  EXPECT_GE(stage_events, 3u);  // static_analysis, features, inference

  // Trace side of the join: the pipeline spans carry the same rid.
  if (JST_TRACING) {
    std::size_t rid_spans = 0;
    bool saw_script = false, saw_inference = false;
    for (const std::string& line : split_lines(trace_out.str())) {
      if (json_string_field(line, "rid") != rid) continue;
      ++rid_spans;
      const std::string name = json_string_field(line, "name");
      if (name == "script") saw_script = true;
      if (name == "inference") saw_inference = true;
    }
    EXPECT_GE(rid_spans, 4u);
    EXPECT_TRUE(saw_script);
    EXPECT_TRUE(saw_inference);
  }
}

TEST_F(ServerFixture, DrainAnswersAdmittedRequests) {
  server::ServerConfig config;
  config.workers = 1;
  config.min_service_ms = 150.0;
  StartServer("drain", config);

  server::Client client(daemon_->socket_path());
  std::atomic<bool> answered{false};
  std::thread caller([&] {
    const auto response =
        client.call(analysis::AnalyzeRequest::for_source(seed_corpus()[0]));
    EXPECT_TRUE(response.ok());
    answered = true;
  });
  // Give the request time to be admitted, then drain mid-service.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  daemon_->shutdown();
  caller.join();
  EXPECT_TRUE(answered.load());

  // The socket file is gone and new connections are refused.
  EXPECT_THROW(server::Client{daemon_->socket_path()}, std::runtime_error);
}

}  // namespace
}  // namespace jst
