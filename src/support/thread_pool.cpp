#include "support/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <utility>

namespace jst::support {
namespace {

// Shared state of one parallel_for invocation. Owned via shared_ptr so a
// helper task scheduled after the caller already drained every index can
// still run (and immediately exit) safely.
struct ForState {
  ForState(std::size_t count, std::function<void(std::size_t)> body)
      : count(count), body(std::move(body)) {}

  const std::size_t count;
  const std::function<void(std::size_t)> body;
  std::atomic<std::size_t> next{0};
  std::mutex mutex;
  std::condition_variable done;
  std::size_t active = 0;              // lanes currently inside drain()
  std::exception_ptr error;            // first failure wins

  // Claims indices until none remain. Every claimed index is executed by
  // the claiming thread, so waiting for active == 0 && next >= count is a
  // complete-work barrier.
  void drain() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ++active;
    }
    for (;;) {
      const std::size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= count) break;
      try {
        body(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!error) error = std::current_exception();
        next.store(count, std::memory_order_relaxed);  // abandon the rest
      }
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (--active == 0) done.notify_all();
  }
};

}  // namespace

ThreadPool::ThreadPool(std::size_t parallelism) {
  if (parallelism == 0) parallelism = default_parallelism();
  workers_.reserve(parallelism - 1);
  for (std::size_t i = 0; i + 1 < parallelism; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  auto state = std::make_shared<ForState>(count, body);
  const std::size_t helpers = std::min(workers_.size(), count - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([state] { state->drain(); });
  }
  state->drain();
  std::unique_lock<std::mutex> lock(state->mutex);
  state->done.wait(lock, [&] {
    return state->active == 0 &&
           state->next.load(std::memory_order_relaxed) >= state->count;
  });
  if (state->error) std::rethrow_exception(state->error);
}

std::size_t ThreadPool::default_parallelism() {
  if (const char* env = std::getenv("JST_THREADS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value > 0) return static_cast<std::size_t>(value);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_parallelism());
  return pool;
}

void run_parallel(std::size_t threads, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (threads == 0) threads = ThreadPool::default_parallelism();
  if (threads <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool& shared = ThreadPool::global();
  if (threads == shared.parallelism()) {
    shared.parallel_for(count, body);
    return;
  }
  ThreadPool scoped(threads);
  scoped.parallel_for(count, body);
}

}  // namespace jst::support
