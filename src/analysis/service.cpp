#include "analysis/service.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/json_writer.h"
#include "support/stats.h"
#include "support/thread_pool.h"

namespace jst::analysis {
namespace {

// Batch-level telemetry (DESIGN.md §9); per-script stage histograms are
// recorded inside analyze_outcome.
struct BatchMetrics {
  obs::Counter& batches =
      obs::MetricsRegistry::global().counter("jst_batches_total");
  obs::Counter& scripts =
      obs::MetricsRegistry::global().counter("jst_batch_scripts_total");
  obs::Histogram& wall_ms =
      obs::MetricsRegistry::global().histogram("jst_batch_wall_ms");
};

BatchMetrics& batch_metrics() {
  static BatchMetrics* metrics = new BatchMetrics();  // outlives statics
  return *metrics;
}

}  // namespace

std::string BatchStats::to_json() const {
  JsonWriter writer;
  writer.begin_object();
  writer.key("total"); writer.value(total);
  writer.key("ok"); writer.value(ok);
  writer.key("parse_errors"); writer.value(parse_errors);
  writer.key("ineligible_size"); writer.value(ineligible_size);
  writer.key("ineligible_ast"); writer.value(ineligible_ast);
  writer.key("budget_tokens"); writer.value(budget_tokens);
  writer.key("budget_ast_nodes"); writer.value(budget_ast_nodes);
  writer.key("budget_depth"); writer.value(budget_depth);
  writer.key("budget_dataflow"); writer.value(budget_dataflow);
  writer.key("deadline_exceeded"); writer.value(deadline_exceeded);
  writer.key("degraded"); writer.value(degraded);
  writer.key("budget_tripped"); writer.value(budget_tripped());
  writer.key("threads"); writer.value(threads);
  writer.key("wall_ms"); writer.value(wall_ms);
  writer.key("scripts_per_second"); writer.value(scripts_per_second);
  writer.key("parse_failure_rate"); writer.value(parse_failure_rate());
  writer.key("static_analysis_ms"); writer.value(static_analysis_ms);
  writer.key("features_ms"); writer.value(features_ms);
  writer.key("inference_ms"); writer.value(inference_ms);
  writer.key("total_script_ms"); writer.value(total_script_ms);
  writer.key("p50_script_ms"); writer.value(p50_script_ms);
  writer.key("p95_script_ms"); writer.value(p95_script_ms);
  writer.key("p99_script_ms"); writer.value(p99_script_ms);
  writer.key("max_script_ms"); writer.value(max_script_ms);
  writer.end_object();
  return writer.str();
}

AnalyzerService::AnalyzerService(const TransformationAnalyzer& analyzer)
    : analyzer_(&analyzer) {
  if (!analyzer.trained()) {
    throw ModelError("AnalyzerService: analyzer is not trained");
  }
}

ScriptOutcome AnalyzerService::analyze_one(
    std::string_view source, const ResourceLimits& limits) const {
  return analyzer_->analyze_outcome(source, limits);
}

BatchResult AnalyzerService::analyze_batch(
    std::span<const std::string> sources, const BatchOptions& options) const {
  BatchResult result;
  result.outcomes.resize(sources.size());
  const std::size_t threads = options.threads == 0
                                  ? support::ThreadPool::default_parallelism()
                                  : options.threads;
  result.stats.threads = std::max<std::size_t>(threads, 1);

  JST_SPAN("batch");
  const auto start = std::chrono::steady_clock::now();
  support::run_parallel(threads, sources.size(), [&](std::size_t i) {
    // One scratch per worker thread, reused for every script the worker
    // analyzes (in this batch and all later ones): feature extraction and
    // inference run allocation-free once the buffers have warmed up.
    static thread_local ScriptScratch scratch;
    result.outcomes[i] =
        analyzer_->analyze_outcome(sources[i], options.limits, scratch);
  });
  result.stats.wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  BatchStats& stats = result.stats;
  stats.total = result.outcomes.size();
  std::vector<double> script_ms;
  script_ms.reserve(result.outcomes.size());
  for (const ScriptOutcome& outcome : result.outcomes) {
    switch (outcome.status) {
      case ScriptStatus::kOk: ++stats.ok; break;
      case ScriptStatus::kParseError: ++stats.parse_errors; break;
      case ScriptStatus::kIneligibleSize: ++stats.ineligible_size; break;
      case ScriptStatus::kIneligibleAst: ++stats.ineligible_ast; break;
      case ScriptStatus::kBudgetTokens: ++stats.budget_tokens; break;
      case ScriptStatus::kBudgetAstNodes: ++stats.budget_ast_nodes; break;
      case ScriptStatus::kBudgetDepth: ++stats.budget_depth; break;
      case ScriptStatus::kBudgetDataflow: ++stats.budget_dataflow; break;
      case ScriptStatus::kDeadlineExceeded: ++stats.deadline_exceeded; break;
      case ScriptStatus::kDegraded: ++stats.degraded; break;
    }
    stats.static_analysis_ms += outcome.timing.static_analysis_ms;
    stats.features_ms += outcome.timing.features_ms;
    stats.inference_ms += outcome.timing.inference_ms;
    stats.total_script_ms += outcome.timing.total_ms;
    script_ms.push_back(outcome.timing.total_ms);
  }
  stats.p50_script_ms = stats::percentile(script_ms, 50.0);
  stats.p95_script_ms = stats::percentile(script_ms, 95.0);
  stats.p99_script_ms = stats::percentile(script_ms, 99.0);
  stats.max_script_ms = stats::max(script_ms);
  if (stats.wall_ms > 0.0) {
    stats.scripts_per_second =
        1000.0 * static_cast<double>(stats.total) / stats.wall_ms;
  }
  // Stage accounting invariant (see BatchStats): the stages partition each
  // script's total up to the clock reads between stage boundaries. Allow
  // 50 µs of residue per script plus 5% slack before declaring drift.
  assert(stats.stage_ms_sum() <=
             stats.total_script_ms + 1e-6 * static_cast<double>(stats.total) &&
         stats.total_script_ms - stats.stage_ms_sum() <=
             0.05 * stats.total_script_ms +
                 0.05 * static_cast<double>(stats.total));

  BatchMetrics& metrics = batch_metrics();
  metrics.batches.add(1);
  metrics.scripts.add(stats.total);
  metrics.wall_ms.record(stats.wall_ms);
  return result;
}

}  // namespace jst::analysis
