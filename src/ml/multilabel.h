// Multi-task (multi-label) classification wrappers.
//
// The paper (§III-C/D3) compares two scikit-learn strategies over random
// forests and selects the second:
//  - binary relevance ("classifiers independence assumption"): one
//    independent binary classifier per label;
//  - classifier chain: classifier at position P additionally receives the
//    labels of positions [0, P-1] as features (ground truth at training
//    time, thresholded predictions at inference time).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "ml/random_forest.h"

namespace jst::ml {

// Binary label matrix: labels[i][j] == 1 iff sample i carries label j.
using LabelMatrix = std::vector<std::vector<std::uint8_t>>;

class MultiLabelClassifier {
 public:
  virtual ~MultiLabelClassifier() = default;

  virtual void fit(const Matrix& data, const LabelMatrix& labels,
                   const ForestParams& params, Rng& rng) = 0;

  // Per-label positive probability (independent scores; they do not sum
  // to 1 — the paper leans on this for its confidence-threshold analysis).
  virtual std::vector<double> predict_proba(
      std::span<const float> row) const = 0;

  virtual std::size_t label_count() const = 0;

  // Introspection for the compiled inference fast path
  // (ml/compiled_forest.h): the fitted per-label forests and the chain
  // rule parameters. `chained()` is true when position P's forest expects
  // the thresholded predictions of positions [0, P-1] appended to the row.
  virtual std::span<const RandomForest> forests() const = 0;
  virtual bool chained() const = 0;
  virtual double chain_threshold() const { return 0.5; }

  // Serialization of the trained per-label forests; the encoding picks
  // text (historical, human-readable) or binary per-forest payloads.
  // load() auto-detects, so files written by either encoding read back.
  virtual void save(std::ostream& out,
                    ModelEncoding encoding = ModelEncoding::kText) const = 0;
  virtual void load(std::istream& in) = 0;

  // Labels with probability >= threshold.
  std::vector<std::size_t> predict_set(std::span<const float> row,
                                       double threshold = 0.5) const;

  // Indices of the k most probable labels, most probable first.
  std::vector<std::size_t> predict_topk(std::span<const float> row,
                                        std::size_t k) const;

  // Top-k restricted to labels whose probability clears `threshold`
  // (the paper's final level-2 decision rule, threshold = 0.10).
  std::vector<std::size_t> predict_topk_thresholded(std::span<const float> row,
                                                    std::size_t k,
                                                    double threshold) const;
};

class BinaryRelevance final : public MultiLabelClassifier {
 public:
  void fit(const Matrix& data, const LabelMatrix& labels,
           const ForestParams& params, Rng& rng) override;
  std::vector<double> predict_proba(std::span<const float> row) const override;
  std::size_t label_count() const override { return forests_.size(); }
  std::span<const RandomForest> forests() const override { return forests_; }
  bool chained() const override { return false; }
  void save(std::ostream& out,
            ModelEncoding encoding = ModelEncoding::kText) const override;
  void load(std::istream& in) override;

 private:
  std::vector<RandomForest> forests_;
};

class ClassifierChain final : public MultiLabelClassifier {
 public:
  void fit(const Matrix& data, const LabelMatrix& labels,
           const ForestParams& params, Rng& rng) override;
  std::vector<double> predict_proba(std::span<const float> row) const override;
  std::size_t label_count() const override { return forests_.size(); }
  std::span<const RandomForest> forests() const override { return forests_; }
  bool chained() const override { return true; }
  double chain_threshold() const override { return chain_threshold_; }
  void save(std::ostream& out,
            ModelEncoding encoding = ModelEncoding::kText) const override;
  void load(std::istream& in) override;

 private:
  std::vector<RandomForest> forests_;
  double chain_threshold_ = 0.5;
};

}  // namespace jst::ml
