#include "analysis/pipeline.h"

#include <istream>
#include <ostream>
#include <string>

#include "support/error.h"

namespace jst::analysis {

TransformationAnalyzer::TransformationAnalyzer(PipelineOptions options)
    : options_(std::move(options)),
      level1_(options_.detector),
      level2_(options_.detector) {}

void TransformationAnalyzer::train() {
  CorpusSpec spec;
  spec.regular_count = options_.training_regular_count;
  spec.seed = options_.seed;
  train_on(generate_regular_corpus(spec));
}

void TransformationAnalyzer::train_on(
    const std::vector<std::string>& regular_sources) {
  if (regular_sources.empty()) {
    throw InvalidArgument("train_on: empty regular corpus");
  }
  Rng rng(options_.seed ^ 0x5eedf00dULL);

  // Build pools: regular + per-technique transformed.
  std::vector<Sample> samples;
  samples.reserve(regular_sources.size() +
                  options_.per_technique_count * transform::kTechniqueCount);
  for (const std::string& source : regular_sources) {
    samples.push_back(make_regular_sample(source));
  }
  for (transform::Technique technique : transform::all_techniques()) {
    for (std::size_t i = 0; i < options_.per_technique_count; ++i) {
      const std::string& base = regular_sources[rng.index(regular_sources.size())];
      samples.push_back(make_transformed_sample(base, technique, rng));
    }
  }

  FeatureTable table =
      extract_features(std::move(samples), options_.detector.features);
  const ml::LabelMatrix level1_matrix = level1_labels(table.samples);
  const ml::LabelMatrix level2_matrix = level2_labels(table.samples);

  Rng level1_rng = rng.split();
  level1_.fit(table.matrix(), level1_matrix, level1_rng);

  // Level 2 trains on transformed samples only.
  std::vector<std::vector<float>> transformed_rows;
  ml::LabelMatrix transformed_labels;
  for (std::size_t i = 0; i < table.samples.size(); ++i) {
    if (!table.samples[i].techniques.empty()) {
      transformed_rows.push_back(table.rows[i]);
      transformed_labels.push_back(level2_matrix[i]);
    }
  }
  Rng level2_rng = rng.split();
  level2_.fit(ml::Matrix{&transformed_rows}, transformed_labels, level2_rng);
  trained_ = true;
}

void TransformationAnalyzer::save(std::ostream& out) const {
  if (!trained_) throw ModelError("save: detector not trained");
  out << "jstraced-analyzer-v1 "
      << features::feature_dimension(options_.detector.features) << '\n';
  level1_.save(out);
  level2_.save(out);
}

void TransformationAnalyzer::load(std::istream& in) {
  std::string magic;
  std::size_t dimension = 0;
  if (!(in >> magic >> dimension) || magic != "jstraced-analyzer-v1") {
    throw ModelError("load: unrecognized analyzer format");
  }
  if (dimension != features::feature_dimension(options_.detector.features)) {
    throw ModelError("load: feature dimension mismatch with configuration");
  }
  level1_.load(in);
  level2_.load(in);
  trained_ = true;
}

ScriptReport TransformationAnalyzer::analyze(std::string_view source) const {
  if (!trained_) throw ModelError("analyze: detector not trained");
  ScriptReport report;
  ScriptAnalysis analysis;
  try {
    analysis = analyze_script(source, options_.detector.features.analysis);
  } catch (const ParseError&) {
    return report;
  }
  report.parsed = true;
  report.eligible = script_eligible(analysis);
  const std::vector<float> row =
      features::extract(analysis, options_.detector.features);
  report.level1 = level1_.predict(row);
  report.technique_confidence = level2_.predict_proba(row);
  if (report.level1.transformed()) {
    report.techniques = level2_.predict_techniques(row);
  }
  return report;
}

}  // namespace jst::analysis
