// Random forest (bagged CART trees) for binary classification, mirroring
// the scikit-learn estimator the paper uses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/decision_tree.h"
#include "support/rng.h"

namespace jst::ml {

struct ForestParams {
  std::size_t tree_count = 48;
  TreeParams tree;
  // Bootstrap sample fraction (with replacement).
  double bootstrap_fraction = 1.0;
  // Training parallelism (0 = JST_THREADS / hardware default, 1 = serial).
  // Runtime knob only — not part of the serialized model, and the trained
  // forest is bit-identical for every value (each tree trains from its own
  // deterministic RNG stream).
  std::size_t threads = 0;
};

class RandomForest {
 public:
  void fit(const Matrix& data, std::span<const std::uint8_t> labels,
           const ForestParams& params, Rng& rng);

  // Averaged positive-class probability across trees.
  double predict_proba(std::span<const float> row) const;

  bool predict(std::span<const float> row, double threshold = 0.5) const {
    return predict_proba(row) >= threshold;
  }

  bool trained() const { return !trees_.empty(); }
  std::size_t tree_count() const { return trees_.size(); }
  std::size_t feature_count() const { return feature_count_; }

  // Fitted trees, read-only — consumed by CompiledForest::compile.
  std::span<const DecisionTree> trees() const { return trees_; }

  // Normalized Gini feature importances (sums to 1 unless all zero).
  std::vector<double> feature_importance() const;

  // Serialization: save a trained forest, load it back without
  // retraining. The encoding picks the on-disk format (text = the
  // historical v1 human-readable form; binary = fixed-width node records,
  // much faster for large models). load() auto-detects from the magic, so
  // old text files keep loading. Throws ModelError on format mismatch.
  void save(std::ostream& out, ModelEncoding encoding = ModelEncoding::kText)
      const;
  void load(std::istream& in);

 private:
  std::vector<DecisionTree> trees_;
  std::size_t feature_count_ = 0;
};

}  // namespace jst::ml
