// §II-C generalization claim: "we can still recognize techniques, which we
// do not monitor, as transformed, even though we do not name the specific
// technique, e.g., obfuscated field reference."
//
// Two techniques outside the level-2 label set — obfuscated field
// reference and integer obfuscation — are applied to held-out regular
// scripts; the level-1 detector should flag the results as transformed
// while the same scripts untransformed stay regular.
#include <cstdio>

#include "bench_common.h"
#include "transform/transform.h"

int main() {
  using namespace jst;
  using namespace jst::bench;

  const auto& model = analyzer();
  const std::size_t sample_count = scaled(60);
  const auto bases = held_out_regular(sample_count, 0xf1e1d);
  Rng rng(0xf1e1d0);

  std::size_t regular_as_regular = 0;
  std::size_t field_ref_flagged = 0;
  std::size_t integer_flagged = 0;
  std::size_t both_flagged = 0;
  for (const std::string& base : bases) {
    if (model.analyze(base).level1.regular()) ++regular_as_regular;

    const std::string field_ref =
        transform::obfuscate_field_references(base, rng);
    if (model.analyze(field_ref).level1.transformed()) ++field_ref_flagged;

    const std::string integers = transform::obfuscate_integers(base, rng);
    if (model.analyze(integers).level1.transformed()) ++integer_flagged;

    Rng combo_rng(rng.next());
    const std::string both = transform::obfuscate_integers(
        transform::obfuscate_field_references(base, combo_rng), combo_rng);
    if (model.analyze(both).level1.transformed()) ++both_flagged;
  }

  const auto pct = [&](std::size_t count) {
    return 100.0 * static_cast<double>(count) /
           static_cast<double>(bases.size());
  };
  print_header("Unmonitored techniques still flagged transformed",
               "section II-C (generalization beyond the 10 classes)");
  print_row("untransformed bases kept regular", 98.65,
            pct(regular_as_regular));
  print_row("obfuscated field reference -> transformed", 99.0,
            pct(field_ref_flagged));
  print_row("integer obfuscation -> transformed", 99.0,
            pct(integer_flagged));
  print_row("both combined -> transformed", 99.0, pct(both_flagged));
  print_note("paper gives no exact number for unmonitored techniques; the "
             "claim is qualitative (level 1 flags them, level 2 does not "
             "name them)");
  print_footer();
  return 0;
}
