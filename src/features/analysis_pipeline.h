// One-stop static analysis of a JavaScript source: AST construction plus
// control-flow and data-flow augmentation (the paper's §III-A pipeline).
#pragma once

#include <string_view>

#include "cfg/cfg.h"
#include "dataflow/dataflow.h"
#include "parser/parser.h"

namespace jst {

struct AnalysisOptions {
  // Node budget standing in for the paper's 2-minute data-flow timeout.
  std::size_t dataflow_node_budget = 2'000'000;
  bool build_cfg = true;
  bool build_dataflow = true;
  // Non-owning per-script resource budget (support/budget.h), threaded
  // into the lexer, parser, CFG builder, and data-flow pass. Trips in the
  // hard stages (lex/parse/CFG) throw BudgetExceeded out of
  // analyze_script; a data-flow trip is soft — it is recorded in
  // DataFlow::tripped and the analysis returns with truncated edges.
  Budget* budget = nullptr;
  // Non-owning reusable data-flow builder workspace (capacity survives
  // across scripts); nullptr allocates per call. With a scratch, the
  // returned bindings' site spans alias it and follow the same pooling
  // contract as the arena below.
  DataFlowScratch* dataflow_scratch = nullptr;
  // Non-owning reusable CFG builder workspace; nullptr allocates per call.
  CfgScratch* cfg_scratch = nullptr;
  // Non-owning pooled front-end arena (support/arena.h). When set, the
  // lexer, token stream, and AST all live in it and parse_program resets
  // it first — the per-script pooling contract: the returned
  // ScriptAnalysis is valid only until the arena's next reset. nullptr
  // gives the Ast a private arena (fully self-contained result).
  support::Arena* arena = nullptr;
  // Non-owning pooled identifier atom table, cleared per script in
  // lockstep with the arena (parse_program). nullptr gives the Ast a
  // private table.
  support::AtomTable* atoms = nullptr;
};

struct ScriptAnalysis {
  ParseResult parse;
  ControlFlow control_flow;
  DataFlow data_flow;
};

// Throws ParseError on malformed input.
ScriptAnalysis analyze_script(std::string_view source,
                              const AnalysisOptions& options = {});

// The paper's script-eligibility filter (§III-D1): between 512 bytes and
// 2 MB, and the AST contains at least one conditional control-flow node,
// function node, or CallExpression. `ast_eligible` checks only the AST
// half so callers can report *which* criterion failed. The walk stops at
// the first qualifying node; `walk_stack`, when non-null, is a reusable
// traversal stack (batch callers hand one from their scratch so the
// check allocates nothing).
bool script_eligible(const ScriptAnalysis& analysis,
                     std::vector<const Node*>* walk_stack = nullptr);
bool size_eligible(std::string_view source);
bool ast_eligible(const ScriptAnalysis& analysis,
                  std::vector<const Node*>* walk_stack = nullptr);

}  // namespace jst
