// Versioned NDJSON wire schema for the service API (DESIGN.md §13).
//
// Every serialized service artifact — ScriptOutcome, BatchStats,
// AnalyzeRequest, AnalyzeResponse — goes through this module, so the
// daemon, the batch CLI shims, wild_study --ndjson-out, and the golden
// frontend fixture all emit identical bytes for identical values. The
// schema is versioned alongside the model format (analysis/model_io.h):
// kWireFormatVersion is bumped on any field addition, removal, or
// reordering, requests carry an optional "v" checked on parse, and
// responses echo the version so clients can pin what they expect.
//
// Version history:
//   v1 — initial schema. ScriptOutcome and BatchStats objects keep the
//        exact field order of the pre-schema to_json() methods (the
//        frontend golden fixture was captured against it).
//   v2 — optional "request_id" (16 lowercase hex) on requests and
//        responses: the observability correlation token joining a
//        response to its trace spans and flight-recorder events.
//        Parsers accept any version ≤ current; a request that pins
//        "v":1 while carrying request_id is rejected, and v1 documents
//        without the field parse exactly as before. ScriptOutcome /
//        BatchStats bytes are unchanged (the golden fixture still
//        matches).
//   v3 — result-cache metadata (DESIGN.md §15): requests gain an
//        optional "cache_mode" ("default" | "bypass" | "refresh",
//        emitted only when not default), responses gain "cache"
//        ("hit" | "miss" | "bypass" | "stale") and "cache_lookup_ms" —
//        emitted only when the serving service actually consulted a
//        cache, so a cacheless daemon's responses differ from v2 in
//        the version number alone. Same pinning rule as v2: a request
//        that pins "v":1 or "v":2 while carrying cache_mode is
//        rejected; v1/v2 documents without the field parse exactly as
//        before. ScriptOutcome / BatchStats bytes are unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/service.h"
#include "support/json_reader.h"
#include "support/json_writer.h"

namespace jst::analysis::wire {

inline constexpr std::uint32_t kWireFormatVersion = 3;

// First version that understands the optional "request_id" field.
inline constexpr std::uint32_t kWireRequestIdVersion = 2;

// First version that understands the cache fields ("cache_mode" on
// requests; "cache" / "cache_lookup_ms" on responses).
inline constexpr std::uint32_t kWireCacheVersion = 3;

// --- serialization -------------------------------------------------------

// Writes one ScriptOutcome object in value position. kFull emits every
// field (byte-identical to the pre-schema ScriptOutcome::to_json);
// kSummary drops the report and partial_features; kStatus callers should
// not emit an object at all (write_analyze_response handles that level).
void write_script_outcome(JsonWriter& writer, const ScriptOutcome& outcome,
                          OutputDetail detail = OutputDetail::kFull);

// Writes one BatchStats object in value position (byte-identical to the
// pre-schema BatchStats::to_json).
void write_batch_stats(JsonWriter& writer, const BatchStats& stats);

// Writes a ResourceLimits object in value position; only enabled ceilings
// are emitted, so the default limits serialize as {}.
void write_resource_limits(JsonWriter& writer, const ResourceLimits& limits);

// One-line NDJSON helpers over the writers above.
std::string script_outcome_json(const ScriptOutcome& outcome,
                                OutputDetail detail = OutputDetail::kFull);
std::string batch_stats_json(const BatchStats& stats);
std::string analyze_request_json(const AnalyzeRequest& request);
std::string analyze_response_json(const AnalyzeResponse& response);

// --- parsing -------------------------------------------------------------

// Parses one request line. Accepts an optional "v" (defaults to the
// current version; any version ≤ current is accepted, newer versions
// are rejected), "id", "request_id" (v2+, 16 lowercase hex), "source",
// "source_hash", "detail" ("status" | "summary" | "full"), and "limits"
// ({"production":true} merges the production defaults, then the
// individual ceiling fields override). Returns std::nullopt and fills
// `error` on malformed JSON, unknown keys, or bad field types — the
// daemon turns that into a kInvalidRequest response.
std::optional<AnalyzeRequest> parse_analyze_request(std::string_view line,
                                                    std::string* error);

// Same, from an already-parsed DOM — the daemon parses each line once to
// route ops vs. requests and hands the document here.
std::optional<AnalyzeRequest> parse_analyze_request(
    const support::JsonValue& document, std::string* error);

// Client-side view of a response line: the envelope decoded into fields,
// the outcome left as a JSON DOM (clients rarely need more than its
// status, and the full ScriptOutcome is not reconstructible from
// reduced-detail responses anyway).
struct ParsedResponse {
  std::uint32_t version = kWireFormatVersion;
  ResponseStatus status = ResponseStatus::kInvalidRequest;
  std::string id;
  std::string request_id;
  std::string source_hash;
  std::string error;
  double queue_ms = 0.0;
  double service_ms = 0.0;
  std::size_t queue_depth = 0;
  std::string outcome_status;       // set at every detail level when kOk
  support::JsonValue outcome;       // object at kSummary/kFull, else null
  // Cache metadata (v3): "hit" | "miss" | "bypass" | "stale", or empty
  // when the serving daemon consulted no cache (including every pre-v3
  // response line).
  std::string cache;
  double cache_lookup_ms = 0.0;

  bool ok() const { return status == ResponseStatus::kOk; }
  // Typed view of the cache field, for callers branching on reuse.
  bool cache_hit() const { return cache == "hit"; }
  bool cached() const { return !cache.empty(); }
};

std::optional<ParsedResponse> parse_analyze_response(std::string_view line,
                                                     std::string* error);

// Parses a limits object (the "limits" member of a request). Exposed for
// the daemon's config path and tests.
bool parse_resource_limits(const support::JsonValue& value,
                           ResourceLimits& limits, std::string* error);

}  // namespace jst::analysis::wire
