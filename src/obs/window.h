// Sliding-window telemetry: ring-of-epoch-slots counters and histograms.
//
// The cumulative instruments in metrics.h answer "since boot"; these
// answer "over the last N seconds", which is what live admission control
// and a `{"op":"stats"}` probe actually need (a slow burst ten minutes
// ago must not poison the p95 the shed decision consults now — see
// Server::should_shed).
//
// Design: a ring of (window_seconds + slack) one-second slots, each
// tagged with the epoch second it covers. An observation hashes to
// `now_s % ring_size`; the first writer to land in a new second CASes the
// slot's epoch forward and zeroes it, so writes are lock-free (a handful
// of relaxed atomics) and there is no reaper thread. Readers aggregate
// every slot whose epoch lies inside [now_s - window + 1, now_s].
//
// Approximation contract: a writer descheduled for longer than the slack
// (ring_size - window seconds) can land one observation in a recycled
// slot, and a reader racing a slot rotation can see a second's counts
// while they are still accumulating. Both errors are bounded by one
// slot's worth of data — fine for telemetry, never consulted by the
// analysis pipeline itself (bit-identity is preserved by construction).
//
// Deterministic tests inject the clock through the `*_at(now_s)`
// overloads; production callers use the steady-clock default.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace jst::obs {

// Seconds since the process-wide window epoch (steady clock, first use).
std::uint64_t window_now_s();

// Event counter over a sliding window: total adds in the last
// `window_seconds()` seconds. rate() divides by the window, i.e. QPS.
class WindowedCounter {
 public:
  explicit WindowedCounter(std::size_t window_seconds = 60);

  void add(std::uint64_t delta = 1) { add_at(window_now_s(), delta); }
  void add_at(std::uint64_t now_s, std::uint64_t delta = 1);

  std::uint64_t sum() const { return sum_at(window_now_s()); }
  std::uint64_t sum_at(std::uint64_t now_s) const;

  double rate_at(std::uint64_t now_s) const {
    return static_cast<double>(sum_at(now_s)) /
           static_cast<double>(window_seconds_);
  }

  std::size_t window_seconds() const { return window_seconds_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> epoch{kEmptyEpoch};
    std::atomic<std::uint64_t> count{0};
  };
  static constexpr std::uint64_t kEmptyEpoch = ~0ULL;

  Slot& rotate(std::uint64_t now_s);

  std::size_t window_seconds_;
  std::vector<Slot> slots_;
};

// Aggregated view of a WindowedHistogram at one instant.
struct WindowSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Latency histogram over a sliding window: same bucket layouts as the
// cumulative Histogram, same interpolation rule for percentiles, but the
// counts cover only the last `window_seconds()` seconds.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(std::size_t window_seconds = 60,
                             HistogramLayout layout =
                                 HistogramLayout::kLatencyMs);

  void record(double value) { record_at(window_now_s(), value); }
  void record_at(std::uint64_t now_s, double value);

  WindowSnapshot snapshot() const { return snapshot_at(window_now_s()); }
  WindowSnapshot snapshot_at(std::uint64_t now_s) const;

  std::size_t window_seconds() const { return window_seconds_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> epoch{kEmptyEpoch};
    std::array<std::atomic<std::uint64_t>, Histogram::kBucketCount>
        buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };
  static constexpr std::uint64_t kEmptyEpoch = ~0ULL;

  Slot& rotate(std::uint64_t now_s);

  std::size_t window_seconds_;
  HistogramLayout layout_;
  std::vector<Slot> slots_;
};

}  // namespace jst::obs
