# Empty compiler generated dependencies file for wild_study.
# This may be replaced when dependencies are built.
