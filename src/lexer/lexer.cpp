#include "lexer/lexer.h"

#include <cstdlib>

#include "lexer/char_class.h"
#include "lexer/scan.h"

namespace jst {
namespace {

using lex::CharClass;
using lex::kCharClass;

inline unsigned char uc(char c) { return static_cast<unsigned char>(c); }

unsigned hex_value(char c) {
  if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
  return static_cast<unsigned>(c - 'A' + 10);
}

std::string_view view_of(const support::ArenaVec<char>& cooked) {
  return std::string_view(cooked.data(), cooked.size());
}

}  // namespace

// Length-bucketed keyword membership: a switch on the word length plus
// direct comparisons replaces the historical unordered_set probe (same
// 33-word set, no hashing, no cold table walk).
bool is_js_keyword(std::string_view w) {
  switch (w.size()) {
    case 2:
      return w == "do" || w == "if" || w == "in";
    case 3:
      return w == "for" || w == "new" || w == "try" || w == "var";
    case 4:
      return w == "case" || w == "else" || w == "this" || w == "void" ||
             w == "with";
    case 5:
      return w == "break" || w == "catch" || w == "class" || w == "const" ||
             w == "super" || w == "throw" || w == "while" || w == "yield";
    case 6:
      return w == "delete" || w == "export" || w == "import" ||
             w == "return" || w == "switch" || w == "typeof";
    case 7:
      return w == "default" || w == "extends" || w == "finally";
    case 8:
      return w == "continue" || w == "debugger" || w == "function";
    case 10:
      return w == "instanceof";
    default:
      return false;
  }
}

Lexer::Lexer(std::string_view source, support::Arena& arena, Budget* budget)
    : source_(source), arena_(&arena), budget_(budget) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

bool Lexer::eof(std::size_t ahead) const {
  return pos_ + ahead >= source_.size();
}

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 0;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (eof() || peek() != expected) return false;
  advance();
  return true;
}

void Lexer::skip_run(std::size_t count) {
  pos_ += count;
  column_ += count;
}

void Lexer::fail(const std::string& message) const {
  throw ParseError(message, line_, column_);
}

std::string_view Lexer::slice(std::size_t begin, std::size_t end) const {
  return source_.substr(begin, end - begin);
}

void Lexer::skip_trivia() {
  const char* data = source_.data();
  const std::size_t size = source_.size();
  while (pos_ < size) {
    const char c = data[pos_];
    switch (kCharClass[uc(c)]) {
      case CharClass::kWhitespace:
        // Inline whitespace run (never contains '\n').
        skip_run(lex::find_ws_end(data, size, pos_ + 1) - pos_);
        break;
      case CharClass::kNewline:
        newline_pending_ = true;
        advance();
        break;
      case CharClass::kSlash:
        if (peek(1) == '/') {
          // Line comment: everything up to (not including) the next
          // line terminator, counted toward comment volume.
          const std::size_t start = pos_;
          skip_run(lex::find_line_end(data, size, pos_ + 2) - pos_);
          ++comment_count_;
          comment_bytes_ += pos_ - start;
          break;
        }
        if (peek(1) == '*') {
          const std::size_t start = pos_;
          advance();
          advance();
          bool closed = false;
          while (pos_ < size) {
            // Skip the escape-free body to the next '*' or newline.
            skip_run(lex::find_block_comment_end(data, size, pos_) - pos_);
            if (pos_ >= size) break;
            if (data[pos_] == '\n') {
              newline_pending_ = true;
              advance();
              continue;
            }
            if (pos_ + 1 < size && data[pos_ + 1] == '/') {
              skip_run(2);
              closed = true;
              break;
            }
            skip_run(1);  // lone '*'
          }
          if (!closed) fail("unterminated block comment");
          ++comment_count_;
          comment_bytes_ += pos_ - start;
          break;
        }
        return;
      case CharClass::kPunct:
        if (c == '<' && peek(1) == '!' && peek(2) == '-' && peek(3) == '-') {
          // HTML-style open comment: skip to end of line (legacy web JS).
          const std::size_t start = pos_;
          skip_run(lex::find_line_end(data, size, pos_ + 4) - pos_);
          ++comment_count_;
          comment_bytes_ += pos_ - start;
          break;
        }
        return;
      default:
        return;
    }
  }
}

Token Lexer::make_token(TokenType type, std::size_t start_offset,
                        std::size_t start_line, std::size_t start_column) {
  Token token;
  token.type = type;
  token.offset = start_offset;
  token.line = start_line;
  token.column = start_column;
  token.raw = slice(start_offset, pos_);
  token.newline_before = newline_pending_;
  return token;
}

bool Lexer::regex_allowed() const {
  if (!has_previous_) return true;
  switch (previous_type_) {
    case TokenType::kIdentifier:
    case TokenType::kNumericLiteral:
    case TokenType::kStringLiteral:
    case TokenType::kTemplate:
    case TokenType::kRegularExpression:
    case TokenType::kBooleanLiteral:
    case TokenType::kNullLiteral:
      return false;
    case TokenType::kKeyword:
      // `this` and `super` end an expression; everything else (return,
      // typeof, in, case, ...) is followed by an expression position.
      return previous_value_ != "this" && previous_value_ != "super";
    case TokenType::kPunctuator:
      // After a closing bracket of an expression, '/' is division. After
      // ')' it is ambiguous (if/for/while conditions end with ')'), and
      // Esprima resolves this with parser feedback; our tokenizer-level
      // heuristic treats ')' and ']' as expression ends, '}' as a block
      // end (regex allowed), matching typical minified code.
      return previous_value_ != ")" && previous_value_ != "]" &&
             previous_value_ != "++" && previous_value_ != "--";
    default:
      return true;
  }
}

Token Lexer::next() {
  if (budget_ != nullptr) budget_->charge_tokens();
  newline_pending_ = false;
  skip_trivia();
  const std::size_t start_offset = pos_;
  const std::size_t start_line = line_;
  const std::size_t start_column = column_;
  if (eof()) {
    Token token = make_token(TokenType::kEndOfFile, start_offset, start_line,
                             start_column);
    return token;
  }

  // One table load + indexed jump routes the leading byte to its scanner.
  const char c = source_[pos_];
  Token token;
  switch (kCharClass[uc(c)]) {
    case CharClass::kIdStart:
    case CharClass::kBackslash:
      token = scan_identifier_or_keyword();
      break;
    case CharClass::kDigit:
      token = scan_number();
      break;
    case CharClass::kDot:
      token = lex::is_digit_byte(uc(peek(1))) ? scan_number()
                                              : scan_punctuator();
      break;
    case CharClass::kQuote:
      token = scan_string(c);
      break;
    case CharClass::kBacktick:
      token = scan_template();
      break;
    case CharClass::kSlash:
      token = regex_allowed() ? scan_regex() : scan_punctuator();
      break;
    default:
      token = scan_punctuator();
      break;
  }
  has_previous_ = true;
  previous_type_ = token.type;
  previous_value_ = token.value;
  return token;
}

Token Lexer::scan_identifier_or_keyword() {
  const char* data = source_.data();
  const std::size_t size = source_.size();
  const std::size_t start_offset = pos_;
  const std::size_t start_line = line_;
  const std::size_t start_column = column_;
  // Zero-copy fast path: the name is the source slice until a \uXXXX
  // escape makes the cooked name differ, at which point the prefix is
  // copied into the arena and cooking continues there. Identifier
  // continuation bytes (ASCII id-part plus >= 0x80 UTF-8 passthrough)
  // are consumed as block-scanned runs.
  support::ArenaVec<char> cooked(*arena_);
  bool dirty = false;
  while (true) {
    const std::size_t run_end = lex::find_id_end(data, size, pos_);
    if (dirty && run_end > pos_) cooked.append(data + pos_, run_end - pos_);
    skip_run(run_end - pos_);
    if (pos_ >= size || data[pos_] != '\\' || peek(1) != 'u') break;
    // \uXXXX identifier escape: decode the hex, keep the low byte as the
    // cooked character (sufficient for the ASCII identifiers we target).
    if (!dirty) {
      cooked.append(data + start_offset, pos_ - start_offset);
      dirty = true;
    }
    advance();
    advance();
    unsigned code = 0;
    if (peek() == '{') {
      advance();
      while (!eof() && peek() != '}') {
        if (!lex::is_hex_digit_byte(uc(peek()))) fail("bad unicode escape");
        code = code * 16 + hex_value(advance());
      }
      if (!match('}')) fail("unterminated unicode escape");
    } else {
      for (int i = 0; i < 4; ++i) {
        if (eof() || !lex::is_hex_digit_byte(uc(peek()))) {
          fail("bad unicode escape in identifier");
        }
        code = code * 16 + hex_value(advance());
      }
    }
    cooked.push_back(static_cast<char>(code & 0x7f));
  }
  if (pos_ == start_offset) {
    // A lone '\' not starting a \uXXXX escape: no progress was made; this
    // must be a hard error or the tokenizer would loop forever.
    fail("unexpected '\\'");
  }
  const std::string_view name =
      dirty ? view_of(cooked) : slice(start_offset, pos_);
  Token token;
  if (name == "true" || name == "false") {
    token = make_token(TokenType::kBooleanLiteral, start_offset, start_line,
                       start_column);
  } else if (name == "null") {
    token = make_token(TokenType::kNullLiteral, start_offset, start_line,
                       start_column);
  } else if (is_js_keyword(name)) {
    token =
        make_token(TokenType::kKeyword, start_offset, start_line, start_column);
  } else {
    token = make_token(TokenType::kIdentifier, start_offset, start_line,
                       start_column);
  }
  token.value = name;
  return token;
}

Token Lexer::scan_number() {
  const std::size_t start_offset = pos_;
  const std::size_t start_line = line_;
  const std::size_t start_column = column_;

  double value = 0.0;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    if (!lex::is_hex_digit_byte(uc(peek()))) fail("missing hex digits");
    while (!eof() && lex::is_hex_digit_byte(uc(peek()))) {
      value = value * 16 + hex_value(advance());
    }
  } else if (peek() == '0' && (peek(1) == 'b' || peek(1) == 'B')) {
    advance();
    advance();
    if (peek() != '0' && peek() != '1') fail("missing binary digits");
    while (peek() == '0' || peek() == '1') value = value * 2 + (advance() - '0');
  } else if (peek() == '0' && (peek(1) == 'o' || peek(1) == 'O')) {
    advance();
    advance();
    if (peek() < '0' || peek() > '7') fail("missing octal digits");
    while (peek() >= '0' && peek() <= '7') value = value * 8 + (advance() - '0');
  } else if (peek() == '0' && lex::is_digit_byte(uc(peek(1)))) {
    // Legacy octal (non-strict); fall back to decimal if 8/9 appear.
    // Short digit runs stay in the std::string SSO buffer (strtod needs a
    // NUL-terminated copy, the source slice is not).
    std::string digits;
    advance();
    while (lex::is_digit_byte(uc(peek()))) digits.push_back(advance());
    const bool octal = digits.find('8') == std::string::npos &&
                       digits.find('9') == std::string::npos;
    value = std::strtod(digits.c_str(), nullptr);
    if (octal) value = static_cast<double>(std::strtoll(digits.c_str(), nullptr, 8));
  } else {
    std::string digits;
    while (lex::is_digit_byte(uc(peek()))) digits.push_back(advance());
    if (peek() == '.') {
      digits.push_back(advance());
      while (lex::is_digit_byte(uc(peek()))) digits.push_back(advance());
    }
    if (peek() == 'e' || peek() == 'E') {
      digits.push_back(advance());
      if (peek() == '+' || peek() == '-') digits.push_back(advance());
      if (!lex::is_digit_byte(uc(peek()))) fail("missing exponent digits");
      while (lex::is_digit_byte(uc(peek()))) digits.push_back(advance());
    }
    value = std::strtod(digits.c_str(), nullptr);
  }
  if (lex::is_id_start_byte(uc(peek()))) {
    fail("identifier starts immediately after number");
  }

  Token token = make_token(TokenType::kNumericLiteral, start_offset, start_line,
                           start_column);
  token.number = value;
  token.value = token.raw;
  return token;
}

Token Lexer::scan_string(char quote) {
  const char* data = source_.data();
  const std::size_t size = source_.size();
  const std::size_t start_offset = pos_;
  const std::size_t start_line = line_;
  const std::size_t start_column = column_;
  advance();  // opening quote
  // Zero-copy fast path: the cooked value equals the source slice between
  // the quotes until the first backslash; from there the prefix is copied
  // into the arena and escapes decode into the copy. The escape-free
  // payload spans between interesting bytes (quote, backslash, newline)
  // are block-scanned — for the common no-escape literal the scanner
  // finds the closing quote in one pass and the value stays a view.
  const std::size_t content_start = pos_;
  support::ArenaVec<char> cooked(*arena_);
  bool dirty = false;
  while (true) {
    const std::size_t stop = lex::find_string_end(data, size, pos_, quote);
    if (dirty && stop > pos_) cooked.append(data + pos_, stop - pos_);
    skip_run(stop - pos_);
    if (pos_ >= size) fail("unterminated string literal");
    const char c = advance();
    if (c == quote) break;
    if (c == '\n' || c == '\r') fail("newline in string literal");
    // c == '\\': decode one escape into the cooked copy.
    if (!dirty) {
      cooked.append(data + content_start, (pos_ - 1) - content_start);
      dirty = true;
    }
    if (eof()) fail("unterminated escape sequence");
    const char esc = advance();
    switch (esc) {
      case 'n': cooked.push_back('\n'); break;
      case 't': cooked.push_back('\t'); break;
      case 'r': cooked.push_back('\r'); break;
      case 'b': cooked.push_back('\b'); break;
      case 'f': cooked.push_back('\f'); break;
      case 'v': cooked.push_back('\v'); break;
      case '0':
        if (!lex::is_digit_byte(uc(peek()))) {
          cooked.push_back('\0');
          break;
        }
        [[fallthrough]];
      case '1': case '2': case '3': case '4':
      case '5': case '6': case '7': {
        // Legacy octal escape.
        unsigned code = static_cast<unsigned>(esc - '0');
        for (int i = 0; i < 2 && peek() >= '0' && peek() <= '7'; ++i) {
          code = code * 8 + static_cast<unsigned>(advance() - '0');
          if (code > 255) break;
        }
        cooked.push_back(static_cast<char>(code & 0xff));
        break;
      }
      case 'x': {
        unsigned code = 0;
        for (int i = 0; i < 2; ++i) {
          if (eof() || !lex::is_hex_digit_byte(uc(peek()))) {
            fail("bad hex escape");
          }
          code = code * 16 + hex_value(advance());
        }
        cooked.push_back(static_cast<char>(code));
        break;
      }
      case 'u': {
        unsigned code = 0;
        if (peek() == '{') {
          advance();
          while (!eof() && peek() != '}') {
            if (!lex::is_hex_digit_byte(uc(peek()))) {
              fail("bad unicode escape");
            }
            code = code * 16 + hex_value(advance());
          }
          if (!match('}')) fail("unterminated unicode escape");
        } else {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !lex::is_hex_digit_byte(uc(peek()))) {
              fail("bad unicode escape");
            }
            code = code * 16 + hex_value(advance());
          }
        }
        // Encode as UTF-8.
        if (code < 0x80) {
          cooked.push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          cooked.push_back(static_cast<char>(0xc0 | (code >> 6)));
          cooked.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        } else {
          cooked.push_back(static_cast<char>(0xe0 | (code >> 12)));
          cooked.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
          cooked.push_back(static_cast<char>(0x80 | (code & 0x3f)));
        }
        break;
      }
      case '\n':  // line continuation
        break;
      case '\r':
        if (peek() == '\n') advance();
        break;
      default:
        cooked.push_back(esc);
    }
  }
  Token token = make_token(TokenType::kStringLiteral, start_offset, start_line,
                           start_column);
  token.value = dirty ? view_of(cooked) : slice(content_start, pos_ - 1);
  return token;
}

Token Lexer::scan_template() {
  const char* data = source_.data();
  const std::size_t size = source_.size();
  const std::size_t start_offset = pos_;
  const std::size_t start_line = line_;
  const std::size_t start_column = column_;
  advance();  // opening backtick

  // Quasis are always verbatim source slices (escapes are kept raw);
  // substitution expressions are slices too unless a comment inside was
  // skipped, which switches that expression to arena-cooked copying.
  // Quasi text between interesting bytes ('`', '\', '$', '\n') is
  // block-scanned; the balanced substitution scan stays scalar.
  support::ArenaVec<std::string_view> quasis(*arena_);
  support::ArenaVec<std::string_view> expressions(*arena_);
  std::size_t chunk_start = pos_;
  while (true) {
    skip_run(lex::find_template_end(data, size, pos_) - pos_);
    if (pos_ >= size) fail("unterminated template literal");
    const char c = advance();
    if (c == '`') {
      quasis.push_back(slice(chunk_start, pos_ - 1));
      break;
    }
    if (c == '\\') {
      if (eof()) fail("unterminated template escape");
      advance();
      continue;
    }
    if (c == '\n') continue;  // advance() already tracked the line
    if (c == '$' && peek() == '{') {
      quasis.push_back(slice(chunk_start, pos_ - 1));
      advance();  // '{'
      // Balanced scan of the substitution expression, skipping over nested
      // strings, templates, and comments so their braces do not count.
      const std::size_t expr_start = pos_;
      support::ArenaVec<char> cooked(*arena_);
      bool dirty = false;
      int depth = 1;
      while (depth > 0) {
        if (eof()) fail("unterminated template substitution");
        char e = advance();
        if (e == '{') {
          ++depth;
          if (dirty) cooked.push_back(e);
        } else if (e == '}') {
          --depth;
          if (depth > 0 && dirty) cooked.push_back(e);
        } else if (e == '"' || e == '\'') {
          if (dirty) cooked.push_back(e);
          while (true) {
            if (eof()) fail("unterminated string in template substitution");
            char s = advance();
            if (dirty) cooked.push_back(s);
            if (s == '\\') {
              if (eof()) fail("unterminated escape");
              const char esc = advance();
              if (dirty) cooked.push_back(esc);
            } else if (s == e) {
              break;
            }
          }
        } else if (e == '`') {
          // Nested template: balanced scan with its own substitution depth.
          if (dirty) cooked.push_back(e);
          int nested_subst = 0;
          while (true) {
            if (eof()) fail("unterminated nested template");
            char t = advance();
            if (dirty) cooked.push_back(t);
            if (t == '\\') {
              if (eof()) fail("unterminated escape");
              const char esc = advance();
              if (dirty) cooked.push_back(esc);
            } else if (t == '$' && peek() == '{') {
              const char brace = advance();
              if (dirty) cooked.push_back(brace);
              ++nested_subst;
            } else if (t == '}' && nested_subst > 0) {
              --nested_subst;
            } else if (t == '`' && nested_subst == 0) {
              break;
            }
          }
        } else if (e == '/' && peek() == '/') {
          // Comment bytes are dropped from the expression, so the cooked
          // text diverges from the slice here.
          if (!dirty) {
            cooked.append(data + expr_start, (pos_ - 1) - expr_start);
            dirty = true;
          }
          skip_run(lex::find_line_end(data, size, pos_) - pos_);
        } else if (e == '/' && peek() == '*') {
          if (!dirty) {
            cooked.append(data + expr_start, (pos_ - 1) - expr_start);
            dirty = true;
          }
          advance();
          while (!eof() && !(peek() == '*' && peek(1) == '/')) advance();
          if (!eof()) {
            advance();
            advance();
          }
        } else {
          if (dirty) cooked.push_back(e);
        }
      }
      expressions.push_back(dirty ? view_of(cooked)
                                  : slice(expr_start, pos_ - 1));
      chunk_start = pos_;
    }
    // A '$' not followed by '{' is plain quasi text: fall through and
    // let the next block scan resume after it.
  }

  Token token =
      make_token(TokenType::kTemplate, start_offset, start_line, start_column);
  token.value = token.raw;
  token.template_expressions =
      std::span<const std::string_view>(expressions.data(), expressions.size());
  token.template_quasis =
      std::span<const std::string_view>(quasis.data(), quasis.size());
  return token;
}

Token Lexer::scan_regex() {
  const std::size_t start_offset = pos_;
  const std::size_t start_line = line_;
  const std::size_t start_column = column_;
  advance();  // '/'
  // The pattern is always the verbatim slice between the delimiting
  // slashes (escapes are kept raw), so no cooking is ever needed.
  const std::size_t pattern_start = pos_;
  bool in_class = false;
  while (true) {
    if (eof()) fail("unterminated regular expression");
    char c = advance();
    if (lex::is_line_terminator_byte(uc(c))) {
      fail("newline in regular expression");
    }
    if (c == '\\') {
      if (eof()) fail("unterminated regex escape");
      advance();
      continue;
    }
    if (c == '[') in_class = true;
    if (c == ']') in_class = false;
    if (c == '/' && !in_class) break;
  }
  const std::string_view pattern = slice(pattern_start, pos_ - 1);
  const std::size_t flags_start = pos_;
  // Flags are ASCII id-part only (no >= 0x80 passthrough, unlike
  // identifier tails), so this stays a short scalar loop.
  while (!eof() && uc(peek()) < 0x80 && lex::is_id_part_byte(uc(peek()))) {
    advance();
  }

  Token token = make_token(TokenType::kRegularExpression, start_offset,
                           start_line, start_column);
  token.value = pattern;
  token.regex_flags = slice(flags_start, pos_);
  return token;
}

Token Lexer::scan_punctuator() {
  const std::size_t start_offset = pos_;
  const std::size_t start_line = line_;
  const std::size_t start_column = column_;

  // Table-driven longest match: a switch on the first byte with ordered
  // follower checks replaces the historical linear scan over the 57-entry
  // punctuator list. Every returned text is a string literal (static
  // storage), so the value view outlives every arena.
  const auto emit = [&](std::string_view text) {
    skip_run(text.size());
    Token token = make_token(TokenType::kPunctuator, start_offset, start_line,
                             start_column);
    token.value = text;
    return token;
  };
  const char c1 = peek();
  const char c2 = peek(1);
  const char c3 = peek(2);
  switch (c1) {
    case '{': return emit("{");
    case '}': return emit("}");
    case '(': return emit("(");
    case ')': return emit(")");
    case '[': return emit("[");
    case ']': return emit("]");
    case ';': return emit(";");
    case ',': return emit(",");
    case ':': return emit(":");
    case '~': return emit("~");
    case '.':
      if (c2 == '.' && c3 == '.') return emit("...");
      return emit(".");
    case '<':
      if (c2 == '<') return emit(c3 == '=' ? "<<=" : "<<");
      if (c2 == '=') return emit("<=");
      return emit("<");
    case '>':
      if (c2 == '>') {
        if (c3 == '>') return emit(peek(3) == '=' ? ">>>=" : ">>>");
        return emit(c3 == '=' ? ">>=" : ">>");
      }
      if (c2 == '=') return emit(">=");
      return emit(">");
    case '=':
      if (c2 == '=') return emit(c3 == '=' ? "===" : "==");
      if (c2 == '>') return emit("=>");
      return emit("=");
    case '!':
      if (c2 == '=') return emit(c3 == '=' ? "!==" : "!=");
      return emit("!");
    case '+':
      if (c2 == '+') return emit("++");
      if (c2 == '=') return emit("+=");
      return emit("+");
    case '-':
      if (c2 == '-') return emit("--");
      if (c2 == '=') return emit("-=");
      return emit("-");
    case '*':
      if (c2 == '*') return emit(c3 == '=' ? "**=" : "**");
      if (c2 == '=') return emit("*=");
      return emit("*");
    case '/':
      if (c2 == '=') return emit("/=");
      return emit("/");
    case '%':
      if (c2 == '=') return emit("%=");
      return emit("%");
    case '&':
      if (c2 == '&') return emit(c3 == '=' ? "&&=" : "&&");
      if (c2 == '=') return emit("&=");
      return emit("&");
    case '|':
      if (c2 == '|') return emit(c3 == '=' ? "||=" : "||");
      if (c2 == '=') return emit("|=");
      return emit("|");
    case '^':
      if (c2 == '=') return emit("^=");
      return emit("^");
    case '?':
      if (c2 == '?') return emit(c3 == '=' ? "?\?=" : "??");
      if (c2 == '.') return emit("?.");
      return emit("?");
    default:
      break;
  }
  fail(std::string("unexpected character '") + peek() + "'");
}

std::vector<Token> Lexer::tokenize(std::string_view source,
                                   support::Arena& arena) {
  Lexer lexer(source, arena);
  std::vector<Token> tokens;
  while (true) {
    Token token = lexer.next();
    if (token.type == TokenType::kEndOfFile) break;
    tokens.push_back(token);
  }
  return tokens;
}

}  // namespace jst
