// Abstract Syntax Tree for JavaScript, following Esprima's (ESTree's) node
// taxonomy so the paper's feature definitions (§III-A/B) map one-to-one.
//
// Nodes are "fat": a single struct with a kind tag, positional children,
// and a small payload. Child layout per kind is documented below; optional
// slots hold nullptr. Variadic kinds place fixed slots first and the
// variable tail afterwards.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/budget.h"
#include "support/error.h"

namespace jst {

enum class NodeKind : std::uint8_t {
  kProgram,  // children: body...

  // --- Statements ---
  kExpressionStatement,  // [expression]
  kBlockStatement,       // body...
  kVariableDeclaration,  // declarators... ; str_value = "var"|"let"|"const"
  kVariableDeclarator,   // [id, init?]
  kFunctionDeclaration,  // [id, body, params...]; flags: generator/async
  kClassDeclaration,     // [id, superClass?, classBody]
  kReturnStatement,      // [argument?]
  kIfStatement,          // [test, consequent, alternate?]
  kForStatement,         // [init?, test?, update?, body]
  kForInStatement,       // [left, right, body]
  kForOfStatement,       // [left, right, body]
  kWhileStatement,       // [test, body]
  kDoWhileStatement,     // [body, test]
  kSwitchStatement,      // [discriminant, cases...]
  kSwitchCase,           // [test?, consequent...]
  kBreakStatement,       // [label?]
  kContinueStatement,    // [label?]
  kThrowStatement,       // [argument]
  kTryStatement,         // [block, handler?, finalizer?]
  kCatchClause,          // [param?, body]
  kLabeledStatement,     // [label, body]
  kEmptyStatement,       // no children
  kDebuggerStatement,    // no children
  kWithStatement,        // [object, body]

  // --- Expressions ---
  kIdentifier,            // str_value = name
  kLiteral,               // payload via lit_kind/str_value/num_value/raw
  kTemplateLiteral,       // [quasis..., expressions...] interleaved:
                          //   quasi0, expr0, quasi1, expr1, ..., quasiN
  kTemplateElement,       // str_value = cooked text
  kTaggedTemplateExpression,  // [tag, quasi]
  kThisExpression,        // no children
  kSuper,                 // no children
  kArrayExpression,       // elements... (nullptr = hole)
  kObjectExpression,      // properties...
  kProperty,              // [key, value]; flags: computed/shorthand;
                          //   str_value = "init"|"get"|"set"
  kFunctionExpression,    // [id?, body, params...]
  kArrowFunctionExpression,  // [body, params...]; flag_a: expression body
  kClassExpression,       // [id?, superClass?, classBody]
  kClassBody,             // methods...
  kMethodDefinition,      // [key, value(FunctionExpression)];
                          //   str_value = "method"|"constructor"|"get"|"set"
  kSequenceExpression,    // expressions...
  kUnaryExpression,       // [argument]; str_value = operator
  kBinaryExpression,      // [left, right]; str_value = operator
  kLogicalExpression,     // [left, right]; str_value = "&&"|"||"|"??"
  kAssignmentExpression,  // [left, right]; str_value = operator
  kUpdateExpression,      // [argument]; str_value = "++"|"--"; flag_a: prefix
  kConditionalExpression, // [test, consequent, alternate]
  kCallExpression,        // [callee, arguments...]
  kNewExpression,         // [callee, arguments...]
  kMemberExpression,      // [object, property]; flag_a: computed
  kSpreadElement,         // [argument]
  kRestElement,           // [argument]
  kYieldExpression,       // [argument?]; flag_a: delegate
  kAwaitExpression,       // [argument]

  // --- Patterns ---
  kAssignmentPattern,     // [left, right]
  kArrayPattern,          // elements... (nullptr = hole)
  kObjectPattern,         // properties...
};

constexpr std::size_t kNodeKindCount =
    static_cast<std::size_t>(NodeKind::kObjectPattern) + 1;

enum class LiteralKind : std::uint8_t {
  kString,
  kNumber,
  kBoolean,
  kNull,
  kRegExp,
};

std::string_view node_kind_name(NodeKind kind);

struct Node {
  NodeKind kind = NodeKind::kProgram;
  std::vector<Node*> kids;

  // Payload (meaning depends on kind; see enum comments).
  std::string str_value;
  std::string raw;          // literal raw text / regex flags
  double num_value = 0.0;
  LiteralKind lit_kind = LiteralKind::kNull;
  bool flag_a = false;      // computed / prefix / delegate / expression-body
  bool flag_b = false;      // shorthand / generator / static
  bool flag_c = false;      // async

  // Source position (propagated from the first token of the production).
  std::size_t line = 0;

  // Stable id within the owning Ast; assigned by Ast::finalize().
  std::uint32_t id = 0;
  Node* parent = nullptr;

  bool is_statement() const;
  bool is_expression() const;
  bool is_function() const;   // declaration, expression, or arrow
  bool is_loop() const;

  // Convenience accessors (bounds-checked; nullptr for missing optionals).
  Node* kid(std::size_t i) const { return i < kids.size() ? kids[i] : nullptr; }
};

// Arena-owning AST. Node addresses are stable (deque storage). Typical
// lifecycle: parser builds nodes via make(), sets the root, and calls
// finalize() to assign ids/parents; transformers may mutate the tree and
// re-finalize.
class Ast {
 public:
  Ast() = default;
  Ast(Ast&&) noexcept = default;
  Ast& operator=(Ast&&) noexcept = default;
  Ast(const Ast&) = delete;
  Ast& operator=(const Ast&) = delete;

  Node* make(NodeKind kind);
  Node* make_identifier(std::string name);
  Node* make_string(std::string value);
  Node* make_number(double value);
  Node* make_bool(bool value);
  Node* make_null();
  Node* make_regex(std::string pattern, std::string flags);

  // Deep copy of `node` (and its subtree) into this arena.
  Node* clone(const Node* node);

  Node* root() const { return root_; }
  void set_root(Node* root) { root_ = root; }

  // Attaches a resource budget charged one AST node per make() (and polled
  // for the deadline); a tripped ceiling throws BudgetExceeded out of
  // make(). The pointer is non-owning and must be cleared (or outlive the
  // Ast) before the Ast escapes the budget's scope — parse_program()
  // detaches it before returning.
  void set_budget(Budget* budget) { budget_ = budget; }

  // Assigns pre-order ids and parent pointers from the root; returns the
  // number of reachable nodes.
  std::size_t finalize();

  // Number of nodes allocated in the arena (including detached ones).
  std::size_t allocated() const { return nodes_.size(); }
  // Number of nodes reachable from the root after the last finalize().
  std::size_t node_count() const { return node_count_; }

 private:
  std::deque<Node> nodes_;
  Node* root_ = nullptr;
  std::size_t node_count_ = 0;
  Budget* budget_ = nullptr;
};

}  // namespace jst
