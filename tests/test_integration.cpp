// End-to-end tests: train the two detectors on a small synthesized corpus
// and verify the paper's qualitative results hold — level 1 separates
// regular from transformed scripts with high accuracy, level 2 recovers
// the techniques, and the detectors generalize to the unseen packer.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/pipeline.h"
#include "analysis/wild.h"
#include "ml/metrics.h"
#include "transform/transform.h"

namespace jst::analysis {
namespace {

using transform::Technique;

// Small-but-meaningful training configuration shared by the tests
// (train once; the fixture object is reused across tests in this file).
const TransformationAnalyzer& shared_analyzer() {
  static const TransformationAnalyzer* kAnalyzer = [] {
    PipelineOptions options;
    options.training_regular_count = 70;
    options.per_technique_count = 14;
    options.seed = 20240701;
    options.detector.forest.tree_count = 24;
    options.detector.features.ngram.hash_dim = 256;
    auto* analyzer = new TransformationAnalyzer(options);
    analyzer->train();
    return analyzer;
  }();
  return *kAnalyzer;
}

std::vector<std::string> held_out_regular(std::size_t count,
                                          std::uint64_t seed) {
  CorpusSpec spec;
  spec.regular_count = count;
  spec.seed = seed;  // different seed -> disjoint from training corpus
  return generate_regular_corpus(spec);
}

TEST(Integration, TrainsSuccessfully) {
  EXPECT_TRUE(shared_analyzer().trained());
}

TEST(Integration, AnalyzeRejectsGarbage) {
  const ScriptReport report = shared_analyzer().analyze("var = ;;; {{{");
  EXPECT_FALSE(report.parsed);
}

TEST(Integration, Level1SeparatesRegularFromTransformed) {
  const auto& analyzer = shared_analyzer();
  const auto regular = held_out_regular(24, 777);

  std::size_t regular_correct = 0;
  for (const std::string& source : regular) {
    const ScriptReport report = analyzer.analyze(source);
    ASSERT_TRUE(report.parsed);
    if (report.level1.regular()) ++regular_correct;
  }

  Rng rng(88);
  std::size_t transformed_correct = 0;
  std::size_t transformed_total = 0;
  for (const std::string& source : regular) {
    for (Technique technique :
         {Technique::kMinificationSimple, Technique::kIdentifierObfuscation,
          Technique::kControlFlowFlattening}) {
      const Sample sample = make_transformed_sample(source, technique, rng);
      const ScriptReport report = analyzer.analyze(sample.source);
      ++transformed_total;
      if (report.level1.transformed()) ++transformed_correct;
    }
  }

  // Paper: 98.65% regular / 99.7% transformed at full scale; at this toy
  // scale we require strong but looser separation.
  EXPECT_GE(regular_correct * 10, regular.size() * 8)
      << regular_correct << "/" << regular.size();
  EXPECT_GE(transformed_correct * 10, transformed_total * 9)
      << transformed_correct << "/" << transformed_total;
}

TEST(Integration, Level2RecoversDominantTechniques) {
  const auto& analyzer = shared_analyzer();
  const auto bases = held_out_regular(10, 991);
  Rng rng(99);

  // For clearly distinguishable techniques, the top prediction should be a
  // true label most of the time.
  const std::vector<Technique> probes = {
      Technique::kMinificationSimple, Technique::kNoAlphanumeric,
      Technique::kControlFlowFlattening, Technique::kDebugProtection};
  std::size_t top1_hits = 0;
  std::size_t total = 0;
  for (const std::string& base : bases) {
    for (Technique technique : probes) {
      const Sample sample = make_transformed_sample(base, technique, rng);
      const ScriptReport report = analyzer.analyze(sample.source);
      ASSERT_TRUE(report.parsed);
      const auto top1 = analyzer.level2().predict_topk(
          features::extract_from_source(
              sample.source, analyzer.options().detector.features),
          1);
      ASSERT_EQ(top1.size(), 1u);
      ++total;
      if (std::find(sample.techniques.begin(), sample.techniques.end(),
                    top1[0]) != sample.techniques.end()) {
        ++top1_hits;
      }
    }
  }
  EXPECT_GE(top1_hits * 10, total * 7) << top1_hits << "/" << total;
}

TEST(Integration, ThresholdLimitsWrongLabels) {
  const auto& analyzer = shared_analyzer();
  const auto bases = held_out_regular(8, 1313);
  Rng rng(131);
  double wrong_total = 0.0;
  std::size_t count = 0;
  for (const std::string& base : bases) {
    const Sample sample = make_mixed_sample(base, 2, rng);
    const ScriptReport report = analyzer.analyze(sample.source);
    ASSERT_TRUE(report.parsed);
    const auto truth = indices_from_techniques(sample.techniques);
    const auto predicted = indices_from_techniques(report.techniques);
    wrong_total += static_cast<double>(ml::wrong_labels(predicted, truth));
    ++count;
  }
  // Paper (Figure 1b): < 0.32 wrong labels on average at threshold 10%
  // (at full training scale); the toy-scale bound is looser.
  EXPECT_LT(wrong_total / static_cast<double>(count), 2.5);
}

TEST(Integration, PackerDetectedAsTransformed) {
  const auto& analyzer = shared_analyzer();
  const auto bases = held_out_regular(10, 555);
  Rng rng(555);
  std::size_t detected = 0;
  for (const std::string& base : bases) {
    const std::string packed = transform::pack(base, rng);
    const ScriptReport report = analyzer.analyze(packed);
    ASSERT_TRUE(report.parsed);
    if (report.level1.transformed()) ++detected;
  }
  // Paper §III-E3: 99.52% at full scale.
  EXPECT_GE(detected, 8u) << detected << "/10";
}

TEST(Integration, WildPopulationRatesOrdered) {
  const auto& analyzer = shared_analyzer();
  const auto measure = [&analyzer](const PopulationSpec& spec,
                                   std::size_t count, std::uint64_t seed) {
    const auto samples = simulate_population(spec, count, seed);
    std::size_t transformed = 0;
    std::size_t parsed = 0;
    for (const Sample& sample : samples) {
      const ScriptReport report = analyzer.analyze(sample.source);
      if (!report.parsed) continue;
      ++parsed;
      if (report.level1.transformed()) ++transformed;
    }
    return parsed == 0 ? 0.0
                       : static_cast<double>(transformed) /
                             static_cast<double>(parsed);
  };
  const double alexa_rate = measure(alexa_spec(), 40, 1);
  const double npm_rate = measure(npm_spec(), 40, 2);
  // Paper: Alexa 68.6% vs npm 8.7% — the ordering must be clear.
  EXPECT_GT(alexa_rate, npm_rate + 0.2);
}

TEST(Integration, ChainAndIndependentBothTrain) {
  PipelineOptions options;
  options.training_regular_count = 30;
  options.per_technique_count = 6;
  options.detector.forest.tree_count = 8;
  options.detector.features.ngram.hash_dim = 128;

  options.detector.classifier_chain = true;
  TransformationAnalyzer chain(options);
  chain.train();
  EXPECT_TRUE(chain.trained());

  options.detector.classifier_chain = false;
  TransformationAnalyzer independent(options);
  independent.train();
  EXPECT_TRUE(independent.trained());

  const std::string probe = held_out_regular(1, 31337)[0];
  EXPECT_TRUE(chain.analyze(probe).parsed);
  EXPECT_TRUE(independent.analyze(probe).parsed);
}

}  // namespace
}  // namespace jst::analysis
