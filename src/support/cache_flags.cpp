#include "support/cache_flags.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace jst {

std::string_view to_string(CacheMode mode) {
  switch (mode) {
    case CacheMode::kDefault: return "default";
    case CacheMode::kBypass: return "bypass";
    case CacheMode::kRefresh: return "refresh";
  }
  return "default";
}

bool parse_cache_mode(std::string_view text, CacheMode& mode) {
  if (text == "default") mode = CacheMode::kDefault;
  else if (text == "bypass") mode = CacheMode::kBypass;
  else if (text == "refresh") mode = CacheMode::kRefresh;
  else return false;
  return true;
}

}  // namespace jst

namespace jst::support {
namespace {

bool next_value(int argc, char** argv, int& i, const char** out,
                std::string& error) {
  if (i + 1 >= argc) {
    error = std::string(argv[i]) + ": missing value";
    return false;
  }
  *out = argv[++i];
  return true;
}

}  // namespace

bool consume_cache_flag(int argc, char** argv, int& i, CacheOptions& options,
                        std::string& error) {
  const char* flag = argv[i];
  if (std::strcmp(flag, "--cache-dir") == 0) {
    const char* value = nullptr;
    if (next_value(argc, argv, i, &value, error)) {
      if (*value == '\0') {
        error = "--cache-dir: empty path";
      } else {
        options.dir = value;
      }
    }
    return true;
  }
  if (std::strcmp(flag, "--cache-bytes") == 0) {
    const char* value = nullptr;
    if (next_value(argc, argv, i, &value, error)) {
      errno = 0;
      char* end = nullptr;
      const unsigned long long bytes = std::strtoull(value, &end, 10);
      if (errno != 0 || end == value || *end != '\0' || bytes == 0) {
        error = std::string("--cache-bytes: invalid byte count '") + value +
                "'";
      } else {
        options.max_bytes = static_cast<std::size_t>(bytes);
      }
    }
    return true;
  }
  if (std::strcmp(flag, "--cache-mode") == 0) {
    const char* value = nullptr;
    if (next_value(argc, argv, i, &value, error)) {
      if (!parse_cache_mode(value, options.mode)) {
        error = std::string("--cache-mode: expected default, bypass, or "
                            "refresh (got '") +
                value + "')";
      }
    }
    return true;
  }
  return false;
}

const char* cache_flags_usage() {
  return "[--cache-dir PATH] [--cache-bytes N] "
         "[--cache-mode default|bypass|refresh]";
}

}  // namespace jst::support
