// §IV-B1 + Figure 4 — popularity-rank effects.
//
// Alexa: "while 72.35% of the scripts belonging to Alexa Top 10k, but not
// to Alexa Top 9k, are transformed, almost 80% of the Top 1k are
// transformed" (and 64.72% around rank 100k). npm: the 1k most popular
// packages are 2.4-4.4x less likely to contain transformed code, and they
// balance simple/advanced minification (49%/47%) where later buckets favor
// simple (58%/37%).
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace jst;
  using namespace jst::bench;

  const std::size_t per_bucket = scaled(70);

  print_header("Rank effect: Alexa 1k-buckets", "section IV-B1");
  std::printf("%-12s %14s %14s\n", "bucket", "paper approx", "measured");
  for (std::size_t bucket = 0; bucket < 10; bucket += 3) {
    const auto spec = analysis::alexa_rank_bucket_spec(bucket);
    const auto measurement =
        measure_population(spec, per_bucket, 0xa0 + bucket);
    const double paper = 80.0 + (72.35 - 80.0) * static_cast<double>(bucket) / 9.0;
    std::printf("Top %zuk-%zuk %13.2f%% %13.2f%%\n", bucket, bucket + 1, paper,
                100.0 * measurement.transformed_rate);
  }

  print_header("Rank effect: npm 1k-buckets", "section IV-B2, Figure 4");
  std::printf("%-12s %14s %14s\n", "bucket", "paper approx", "measured");
  double top1k_rate = 0.0;
  double later_rate = 0.0;
  // npm rates are small (3-13%); measure more scripts per bucket so the
  // 2.4-4.4x factor is not washed out by sampling noise.
  const std::size_t npm_per_bucket = per_bucket * 4;
  for (const std::size_t bucket : {std::size_t{0}, std::size_t{4}, std::size_t{9}}) {
    const auto spec = analysis::npm_rank_bucket_spec(bucket);
    const auto measurement =
        measure_population(spec, npm_per_bucket, 0xb0 + bucket);
    const double paper = bucket == 0 ? 3.2 : 7.5 + 0.6 * static_cast<double>(bucket);
    std::printf("Top %zuk-%zuk %13.2f%% %13.2f%%\n", bucket, bucket + 1, paper,
                100.0 * measurement.transformed_rate);
    if (bucket == 0) {
      top1k_rate = measurement.transformed_rate;
    } else {
      later_rate = measurement.transformed_rate;
    }
  }
  if (top1k_rate > 0.0) {
    print_row("npm: later-bucket / Top-1k factor (2.4-4.4x)", 3.4,
              later_rate / top1k_rate, "x");
  }
  print_footer();
  return 0;
}
