#include "lexer/token.h"

namespace jst {

std::string_view token_type_name(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier: return "Identifier";
    case TokenType::kKeyword: return "Keyword";
    case TokenType::kBooleanLiteral: return "Boolean";
    case TokenType::kNullLiteral: return "Null";
    case TokenType::kNumericLiteral: return "Numeric";
    case TokenType::kStringLiteral: return "String";
    case TokenType::kTemplate: return "Template";
    case TokenType::kRegularExpression: return "RegularExpression";
    case TokenType::kPunctuator: return "Punctuator";
    case TokenType::kEndOfFile: return "EOF";
  }
  return "Unknown";
}

}  // namespace jst
