#include "features/feature_extractor.h"

namespace jst::features {

std::size_t feature_dimension(const FeatureConfig& config) {
  std::size_t dimension = 0;
  if (config.use_handpicked) dimension += handpicked_feature_names().size();
  if (config.use_ngrams) dimension += config.ngram.hash_dim;
  return dimension;
}

std::vector<std::string> feature_names(const FeatureConfig& config) {
  std::vector<std::string> names;
  if (config.use_handpicked) {
    names = handpicked_feature_names();
  }
  if (config.use_ngrams) {
    for (std::size_t i = 0; i < config.ngram.hash_dim; ++i) {
      names.push_back("ngram" + std::to_string(config.ngram.n) + "_" +
                      std::to_string(i));
    }
  }
  return names;
}

std::vector<float> extract(const ScriptAnalysis& analysis,
                           const FeatureConfig& config) {
  std::vector<float> out;
  out.reserve(feature_dimension(config));
  if (config.use_handpicked) {
    std::vector<float> handpicked = handpicked_features(analysis);
    out.insert(out.end(), handpicked.begin(), handpicked.end());
  }
  if (config.use_ngrams) {
    std::vector<float> ngrams =
        ngram_features(analysis.parse.ast.root(), config.ngram);
    out.insert(out.end(), ngrams.begin(), ngrams.end());
  }
  return out;
}

std::vector<float> extract_from_source(std::string_view source,
                                       const FeatureConfig& config) {
  const ScriptAnalysis analysis = analyze_script(source, config.analysis);
  return extract(analysis, config);
}

}  // namespace jst::features
