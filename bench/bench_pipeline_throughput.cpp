// Engineering microbenchmarks: throughput of every pipeline stage
// (tokenize, parse, CFG, data flow, n-grams, hand-picked features,
// level-1/level-2 inference, and each transformer), plus the batch
// engine's scaling axis:
//
//   $ ./bench_pipeline_throughput                 # sweeps 1/2/4 threads
//   $ ./bench_pipeline_throughput --threads 8     # pins the batch width
//   $ ./bench_pipeline_throughput --stage-split   # lex/parse/post-parse ms
//   $ ./bench_pipeline_throughput --obs-overhead  # sinks on vs off, <=2%?
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/service.h"
#include "bench_common.h"
#include "cfg/cfg.h"
#include "corpus/generator.h"
#include "dataflow/dataflow.h"
#include "features/feature_extractor.h"
#include "lexer/lexer.h"
#include "obs/flight_recorder.h"
#include "parser/parser.h"
#include "transform/transform.h"

namespace {

using namespace jst;

const std::string& sample_source() {
  static const std::string kSource = [] {
    corpus::ProgramGenerator generator(0xbe9c4);
    corpus::GeneratorOptions options;
    options.min_bytes = 8 * 1024;
    return generator.generate(options);
  }();
  return kSource;
}

void BM_Tokenize(benchmark::State& state) {
  support::Arena arena;
  for (auto _ : state) {
    arena.reset();
    benchmark::DoNotOptimize(Lexer::tokenize(sample_source(), arena));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sample_source().size()));
}
BENCHMARK(BM_Tokenize);

void BM_Parse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_program(sample_source()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sample_source().size()));
}
BENCHMARK(BM_Parse);

void BM_ControlFlow(benchmark::State& state) {
  const ParseResult parsed = parse_program(sample_source());
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_control_flow(parsed.ast));
  }
}
BENCHMARK(BM_ControlFlow);

void BM_DataFlow(benchmark::State& state) {
  const ParseResult parsed = parse_program(sample_source());
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_data_flow(parsed.ast));
  }
}
BENCHMARK(BM_DataFlow);

void BM_NgramFeatures(benchmark::State& state) {
  const ParseResult parsed = parse_program(sample_source());
  features::NgramConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        features::ngram_features(parsed.ast.root(), config));
  }
}
BENCHMARK(BM_NgramFeatures);

void BM_HandpickedFeatures(benchmark::State& state) {
  const ScriptAnalysis analysis = analyze_script(sample_source());
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::handpicked_features(analysis));
  }
}
BENCHMARK(BM_HandpickedFeatures);

void BM_FullFeatureExtraction(benchmark::State& state) {
  features::FeatureConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        features::extract_from_source(sample_source(), config));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sample_source().size()));
}
BENCHMARK(BM_FullFeatureExtraction);

// Post-parse fast-path microbenchmarks, paired for direct comparison on
// the same analyzed script / feature row: the legacy multi-walk extractor
// vs the fused single-pass extractor, and the reference per-tree walk vs
// compiled-forest inference (both detector levels per iteration).
void BM_LegacyExtraction(benchmark::State& state) {
  features::FeatureConfig config;
  const ScriptAnalysis analysis =
      analyze_script(sample_source(), config.analysis);
  for (auto _ : state) {
    benchmark::DoNotOptimize(features::extract(analysis, config));
  }
}
BENCHMARK(BM_LegacyExtraction);

void BM_FusedExtraction(benchmark::State& state) {
  features::FeatureConfig config;
  const ScriptAnalysis analysis =
      analyze_script(sample_source(), config.analysis);
  features::ExtractScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        features::extract_into(analysis, config, scratch).data());
  }
}
BENCHMARK(BM_FusedExtraction);

void BM_ReferenceInference(benchmark::State& state) {
  const auto& model = jst::bench::analyzer();
  const features::FeatureConfig& config = model.options().detector.features;
  const ScriptAnalysis analysis =
      analyze_script(sample_source(), config.analysis);
  const std::vector<float> row = features::extract(analysis, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.level1().reference_classifier().predict_proba(row));
    benchmark::DoNotOptimize(
        model.level2().reference_classifier().predict_proba(row));
  }
}
BENCHMARK(BM_ReferenceInference);

void BM_CompiledInference(benchmark::State& state) {
  const auto& model = jst::bench::analyzer();
  const features::FeatureConfig& config = model.options().detector.features;
  const ScriptAnalysis analysis =
      analyze_script(sample_source(), config.analysis);
  const std::vector<float> row = features::extract(analysis, config);
  ml::PredictScratch scratch;
  std::vector<double> proba;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.level1().predict(row, scratch));
    model.level2().predict_proba(row, scratch, proba);
    benchmark::DoNotOptimize(proba.data());
  }
}
BENCHMARK(BM_CompiledInference);

void BM_AnalyzeEndToEnd(benchmark::State& state) {
  const auto& model = jst::bench::analyzer();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.analyze(sample_source()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sample_source().size()));
}
BENCHMARK(BM_AnalyzeEndToEnd);

void BM_Minify(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform::minify(sample_source()));
  }
}
BENCHMARK(BM_Minify);

void BM_ObfuscateIdentifiers(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        transform::obfuscate_identifiers(sample_source(), rng));
  }
}
BENCHMARK(BM_ObfuscateIdentifiers);

void BM_FlattenControlFlow(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        transform::flatten_control_flow(sample_source(), rng));
  }
}
BENCHMARK(BM_FlattenControlFlow);

void BM_Pack(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform::pack(sample_source(), rng));
  }
}
BENCHMARK(BM_Pack);

void BM_JsFuckEncode(benchmark::State& state) {
  const std::string small = "alert('covered');";
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform::no_alnum_transform(small));
  }
}
BENCHMARK(BM_JsFuckEncode);

// Per-config BatchStats of the last BM_AnalyzeBatch iteration, exported
// to BENCH_pipeline.json after the run (keyed by config string, emitted
// in key order: limits=off rows before limits=on per thread count).
std::map<std::string, jst::bench::BenchRecord>& batch_records() {
  static std::map<std::string, jst::bench::BenchRecord> records;
  return records;
}

// Batch analysis over a held-out corpus; state.range(0) = thread lanes,
// state.range(1) = resource governance (0 = limits off, 1 = production
// limits — none trip on this corpus, so the delta between paired rows is
// pure budget-guard overhead; the target is <2%). Registered from main()
// so a --threads override can pin the thread axis.
void BM_AnalyzeBatch(benchmark::State& state) {
  static const std::vector<std::string> kCorpus =
      jst::bench::held_out_regular(48, 0xba7c4);
  static const std::vector<analysis::AnalyzeRequest> kRequests =
      analysis::make_source_requests(kCorpus);
  const analysis::AnalyzerService service(jst::bench::analyzer());
  const bool governed = state.range(1) != 0;
  analysis::BatchOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  if (governed) options.limits = ResourceLimits::production();

  std::size_t total_bytes = 0;
  for (const std::string& source : kCorpus) total_bytes += source.size();

  analysis::BatchStats last_stats;
  for (auto _ : state) {
    const analysis::BatchResponse result =
        service.analyze_batch(kRequests, options);
    benchmark::DoNotOptimize(result.stats.ok);
    last_stats = result.stats;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kCorpus.size()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(total_bytes));
  state.counters["scripts_per_sec"] = last_stats.scripts_per_second;
  state.counters["p99_script_ms"] = last_stats.p99_script_ms;

  jst::bench::BenchRecord record;
  record.config = "threads=" + std::to_string(last_stats.threads) +
                  ",limits=" + (governed ? "on" : "off");
  record.threads = last_stats.threads;
  record.scripts = kCorpus.size();
  record.wall_ms = last_stats.wall_ms;
  record.scripts_per_second = last_stats.scripts_per_second;
  record.stats_json = last_stats.to_json();
  batch_records()[record.config] = std::move(record);
}

// Front-end stage split (--stage-split): one serial pass over the batch
// corpus per stage, pooled arenas reset per script (the steady-state
// analyze_batch configuration), best of `reps` repetitions. Each pass is
// a strict prefix of the pipeline, so subtracting consecutive passes
// attributes the wall time of exactly one stage:
//
//   lex_ms       tokenize-only pass (Lexer::tokenize into a pooled arena)
//   parse_ms     parse_program total minus the lex share
//   static_ms    analyze_script + eligibility walk minus parse_program
//                (CFG + data flow + the §III-D1 AST walk)
//   features_ms  the same pass plus extract_into, minus the static pass
//   inference_ms serial analyze_batch wall minus the features pass
//                (prediction plus per-script outcome assembly)
//   postparse_ms serial analyze_batch wall minus the front end
//                (== static_ms + features_ms + inference_ms)
//
// The method is documented in bench/README.md; the committed
// BENCH_pipeline.json carries paired pr4/pr5 rows captured with it.
jst::bench::BenchRecord run_stage_split(int reps) {
  using clock = std::chrono::steady_clock;
  const auto ms_since = [](clock::time_point start) {
    return std::chrono::duration<double, std::milli>(clock::now() - start)
        .count();
  };
  const std::vector<std::string> corpus =
      jst::bench::held_out_regular(48, 0xba7c4);
  const std::vector<analysis::AnalyzeRequest> requests =
      analysis::make_source_requests(corpus);
  const auto& model = jst::bench::analyzer();
  const analysis::AnalyzerService service(model);
  analysis::BatchOptions options;
  options.threads = 1;

  // The post-parse passes reuse one scratch set the way a batch worker
  // does: pooled arena, data-flow workspace, and extraction scratch.
  const features::FeatureConfig& feature_config =
      model.options().detector.features;
  features::ExtractScratch extract_scratch;
  AnalysisOptions analysis_options = feature_config.analysis;

  double lex_ms = 1e300, frontend_ms = 1e300, static_total_ms = 1e300,
         features_total_ms = 1e300, batch_ms = 1e300;
  double scripts_per_second = 0.0;
  support::Arena arena;
  support::AtomTable atoms;
  analysis_options.arena = &arena;
  analysis_options.atoms = &atoms;
  analysis_options.dataflow_scratch = &extract_scratch.dataflow;
  analysis_options.cfg_scratch = &extract_scratch.cfg;
  for (int rep = 0; rep < reps; ++rep) {
    const auto lex_start = clock::now();
    for (const std::string& source : corpus) {
      arena.reset();
      benchmark::DoNotOptimize(Lexer::tokenize(source, arena));
    }
    lex_ms = std::min(lex_ms, ms_since(lex_start));

    const auto parse_start = clock::now();
    for (const std::string& source : corpus) {
      benchmark::DoNotOptimize(
          parse_program(source, nullptr, &arena, &atoms).ast.node_count());
    }
    frontend_ms = std::min(frontend_ms, ms_since(parse_start));

    const auto static_start = clock::now();
    for (const std::string& source : corpus) {
      const ScriptAnalysis analysis = analyze_script(source, analysis_options);
      benchmark::DoNotOptimize(
          script_eligible(analysis, &extract_scratch.eligibility_stack));
    }
    static_total_ms = std::min(static_total_ms, ms_since(static_start));

    const auto features_start = clock::now();
    for (const std::string& source : corpus) {
      const ScriptAnalysis analysis = analyze_script(source, analysis_options);
      benchmark::DoNotOptimize(
          script_eligible(analysis, &extract_scratch.eligibility_stack));
      benchmark::DoNotOptimize(
          features::extract_into(analysis, feature_config, extract_scratch)
              .data());
    }
    features_total_ms = std::min(features_total_ms, ms_since(features_start));

    const auto batch_start = clock::now();
    const analysis::BatchResponse result =
        service.analyze_batch(requests, options);
    benchmark::DoNotOptimize(result.stats.ok);
    batch_ms = std::min(batch_ms, ms_since(batch_start));
    scripts_per_second =
        std::max(scripts_per_second, result.stats.scripts_per_second);
  }

  jst::bench::BenchRecord record;
  record.config = "stage-split,threads=1,limits=off";
  record.threads = 1;
  record.scripts = corpus.size();
  record.wall_ms = batch_ms;
  record.scripts_per_second = scripts_per_second;
  record.lex_ms = lex_ms;
  record.parse_ms = std::max(0.0, frontend_ms - lex_ms);
  record.postparse_ms = std::max(0.0, batch_ms - frontend_ms);
  record.static_ms = std::max(0.0, static_total_ms - frontend_ms);
  record.features_ms = std::max(0.0, features_total_ms - static_total_ms);
  record.inference_ms = std::max(0.0, batch_ms - features_total_ms);
  std::printf(
      "stage-split (best of %d, serial, %zu scripts): lex %.3f ms, "
      "parse %.3f ms, front end %.3f ms, post-parse %.3f ms "
      "(static %.3f ms, features %.3f ms, inference %.3f ms)\n",
      reps, corpus.size(), record.lex_ms, record.parse_ms, frontend_ms,
      record.postparse_ms, record.static_ms, record.features_ms,
      record.inference_ms);
  return record;
}

// Observability-overhead smoke (--obs-overhead): the serial batch wall
// with the flight recorder enabled (the serving default) vs disabled,
// best of `reps` each. The budget is 2% — the instrumented path must not
// tax the batch engine, which never carries a request id and therefore
// only pays the per-script thread-local gate plus the always-on metric
// adds. Exit 1 when the budget is exceeded; CI runs this non-gating.
int run_obs_overhead(int reps) {
  using clock = std::chrono::steady_clock;
  const auto ms_since = [](clock::time_point start) {
    return std::chrono::duration<double, std::milli>(clock::now() - start)
        .count();
  };
  const std::vector<std::string> corpus =
      jst::bench::held_out_regular(48, 0xba7c4);
  const std::vector<analysis::AnalyzeRequest> requests =
      analysis::make_source_requests(corpus);
  const analysis::AnalyzerService service(jst::bench::analyzer());
  analysis::BatchOptions options;
  options.threads = 1;

  const auto best_wall = [&](bool sinks_on) {
    obs::FlightRecorder::global().set_enabled(sinks_on);
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      const auto start = clock::now();
      const analysis::BatchResponse result =
          service.analyze_batch(requests, options);
      benchmark::DoNotOptimize(result.stats.ok);
      best = std::min(best, ms_since(start));
    }
    return best;
  };

  // One untimed warm-up batch so model lazies, pooled arenas, and page
  // faults are paid before either timed configuration.
  benchmark::DoNotOptimize(service.analyze_batch(requests, options).stats.ok);
  const double off_ms = best_wall(/*sinks_on=*/false);
  const double on_ms = best_wall(/*sinks_on=*/true);
  obs::FlightRecorder::global().set_enabled(true);

  const double delta_pct =
      off_ms > 0.0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0;
  const bool within_budget = delta_pct <= 2.0;
  std::printf(
      "obs-overhead (best of %d, serial, %zu scripts): sinks off %.3f ms, "
      "sinks on %.3f ms, delta %+.2f%% (budget 2%%) -> %s\n",
      reps, corpus.size(), off_ms, on_ms, delta_pct,
      within_budget ? "OK" : "OVER BUDGET");
  return within_budget ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract our own flags before google-benchmark parses argv.
  long pinned_threads = 0;
  bool stage_split = false;
  bool obs_overhead = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      pinned_threads = std::atol(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      pinned_threads = std::atol(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--stage-split") == 0) {
      stage_split = true;
    } else if (std::strcmp(argv[i], "--obs-overhead") == 0) {
      obs_overhead = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  auto* batch = benchmark::RegisterBenchmark("BM_AnalyzeBatch",
                                             BM_AnalyzeBatch);
  batch->Unit(benchmark::kMillisecond)->UseRealTime();
  // Every thread config runs limits-off then limits-on so the paired rows
  // in BENCH_pipeline.json expose the budget-guard overhead directly.
  if (pinned_threads > 0) {
    batch->Args({pinned_threads, 0})->Args({pinned_threads, 1});
  } else {
    for (long threads : {1L, 2L, 4L}) {
      batch->Args({threads, 0})->Args({threads, 1});
    }
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // --obs-overhead is a standalone pass/fail probe: no sweep, no JSON.
  if (obs_overhead) {
    const int status = run_obs_overhead(/*reps=*/5);
    benchmark::Shutdown();
    return status;
  }
  // --stage-split is a standalone report: it skips the google-benchmark
  // sweep. Both modes write BENCH_pipeline.json, so when capturing both
  // point each run at its own $JSTRACED_BENCH_OUT.
  if (!stage_split) benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Record the perf trajectory machine-readably (one row per
  // threads×limits config that actually ran; empty when
  // --benchmark_filter skipped the batch axis).
  std::vector<jst::bench::BenchRecord> records;
  for (auto& [config, record] : batch_records()) {
    records.push_back(std::move(record));
  }
  if (stage_split) records.push_back(run_stage_split(/*reps=*/5));
  if (!records.empty()) jst::bench::write_bench_json("pipeline", records);
  return 0;
}
