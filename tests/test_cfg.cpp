#include <gtest/gtest.h>

#include <set>

#include "ast/walk.h"
#include "cfg/cfg.h"
#include "parser/parser.h"

namespace jst {
namespace {

struct Built {
  ParseResult parse;
  ControlFlow flow;
};

Built build(std::string_view source) {
  Built out;
  out.parse = parse_program(source);
  out.flow = build_control_flow(out.parse.ast);
  return out;
}

// Finds the id of the i-th node of `kind` in pre-order.
std::uint32_t id_of(const Built& built, NodeKind kind, std::size_t index = 0) {
  const auto nodes = collect_kind(
      static_cast<const Node*>(built.parse.ast.root()), kind);
  EXPECT_LT(index, nodes.size());
  return nodes[index]->id;
}

bool has_edge(const Built& built, std::uint32_t from, std::uint32_t to) {
  for (const auto& [a, b] : built.flow.edges) {
    if (a == from && b == to) return true;
  }
  return false;
}

TEST(Cfg, SequenceEdges) {
  const Built built = build("a(); b(); c();");
  // stmt1 -> stmt2 -> stmt3.
  const std::uint32_t s1 = id_of(built, NodeKind::kExpressionStatement, 0);
  const std::uint32_t s2 = id_of(built, NodeKind::kExpressionStatement, 1);
  const std::uint32_t s3 = id_of(built, NodeKind::kExpressionStatement, 2);
  EXPECT_TRUE(has_edge(built, s1, s2));
  EXPECT_TRUE(has_edge(built, s2, s3));
  EXPECT_FALSE(has_edge(built, s1, s3));
}

TEST(Cfg, IfBranches) {
  const Built built = build("if (c) { a(); } else { b(); } d();");
  const std::uint32_t if_id = id_of(built, NodeKind::kIfStatement);
  const std::uint32_t then_block = id_of(built, NodeKind::kBlockStatement, 0);
  const std::uint32_t else_block = id_of(built, NodeKind::kBlockStatement, 1);
  EXPECT_TRUE(has_edge(built, if_id, then_block));
  EXPECT_TRUE(has_edge(built, if_id, else_block));
  // Both branch exits reach the following statement.
  const std::uint32_t after = id_of(built, NodeKind::kExpressionStatement, 2);
  const std::uint32_t a_stmt = id_of(built, NodeKind::kExpressionStatement, 0);
  const std::uint32_t b_stmt = id_of(built, NodeKind::kExpressionStatement, 1);
  EXPECT_TRUE(has_edge(built, a_stmt, after));
  EXPECT_TRUE(has_edge(built, b_stmt, after));
}

TEST(Cfg, IfWithoutElseFallsThrough) {
  const Built built = build("if (c) a(); b();");
  const std::uint32_t if_id = id_of(built, NodeKind::kIfStatement);
  const std::uint32_t after = id_of(built, NodeKind::kExpressionStatement, 1);
  EXPECT_TRUE(has_edge(built, if_id, after));
}

TEST(Cfg, LoopBackEdge) {
  const Built built = build("while (c) { a(); } b();");
  const std::uint32_t loop = id_of(built, NodeKind::kWhileStatement);
  const std::uint32_t body_stmt = id_of(built, NodeKind::kExpressionStatement, 0);
  EXPECT_TRUE(has_edge(built, body_stmt, loop));  // back edge
  EXPECT_GE(built.flow.back_edge_count(), 1u);
}

TEST(Cfg, BreakExitsLoop) {
  const Built built = build("while (c) { if (x) break; a(); } b();");
  const std::uint32_t break_id = id_of(built, NodeKind::kBreakStatement);
  const std::uint32_t after = id_of(built, NodeKind::kExpressionStatement, 1);
  EXPECT_TRUE(has_edge(built, break_id, after));
}

TEST(Cfg, ContinueTargetsLoop) {
  const Built built = build("for (;;) { if (x) continue; a(); }");
  const std::uint32_t continue_id = id_of(built, NodeKind::kContinueStatement);
  const std::uint32_t loop = id_of(built, NodeKind::kForStatement);
  EXPECT_TRUE(has_edge(built, continue_id, loop));
}

TEST(Cfg, ReturnHasNoFallthrough) {
  const Built built = build("function f() { return 1; unreachable(); }");
  const std::uint32_t return_id = id_of(built, NodeKind::kReturnStatement);
  for (const auto& [from, to] : built.flow.edges) {
    (void)to;
    EXPECT_NE(from, return_id);
  }
}

TEST(Cfg, SwitchDispatchesToCases) {
  const Built built =
      build("switch (x) { case 1: a(); break; case 2: b(); } c();");
  const std::uint32_t switch_id = id_of(built, NodeKind::kSwitchStatement);
  const std::uint32_t a_stmt = id_of(built, NodeKind::kExpressionStatement, 0);
  const std::uint32_t b_stmt = id_of(built, NodeKind::kExpressionStatement, 1);
  EXPECT_TRUE(has_edge(built, switch_id, a_stmt));
  EXPECT_TRUE(has_edge(built, switch_id, b_stmt));
  // No default: switch itself can fall through to c().
  const std::uint32_t after = id_of(built, NodeKind::kExpressionStatement, 2);
  EXPECT_TRUE(has_edge(built, switch_id, after));
}

TEST(Cfg, SwitchFallthroughBetweenCases) {
  const Built built = build("switch (x) { case 1: a(); case 2: b(); }");
  const std::uint32_t a_stmt = id_of(built, NodeKind::kExpressionStatement, 0);
  const std::uint32_t b_stmt = id_of(built, NodeKind::kExpressionStatement, 1);
  EXPECT_TRUE(has_edge(built, a_stmt, b_stmt));
}

TEST(Cfg, TryCatchExceptionEdge) {
  const Built built = build("try { a(); } catch (e) { b(); } c();");
  const std::uint32_t try_id = id_of(built, NodeKind::kTryStatement);
  const std::uint32_t handler = id_of(built, NodeKind::kCatchClause);
  EXPECT_TRUE(has_edge(built, try_id, handler));
  // Handler body exit reaches c().
  const std::uint32_t b_stmt = id_of(built, NodeKind::kExpressionStatement, 1);
  const std::uint32_t after = id_of(built, NodeKind::kExpressionStatement, 2);
  EXPECT_TRUE(has_edge(built, b_stmt, after));
}

TEST(Cfg, FinallyChains) {
  const Built built = build("try { a(); } finally { f(); } c();");
  const std::uint32_t a_stmt = id_of(built, NodeKind::kExpressionStatement, 0);
  const std::uint32_t finally_block = id_of(built, NodeKind::kBlockStatement, 1);
  EXPECT_TRUE(has_edge(built, a_stmt, finally_block));
}

TEST(Cfg, ConditionalExpressionIsFlowNode) {
  const Built built = build("var v = c ? a : b;");
  const std::uint32_t declaration =
      id_of(built, NodeKind::kVariableDeclaration);
  const std::uint32_t conditional =
      id_of(built, NodeKind::kConditionalExpression);
  EXPECT_TRUE(has_edge(built, declaration, conditional));
}

TEST(Cfg, NestedConditionalExpressions) {
  const Built built = build("var v = c ? (d ? a : b) : e;");
  const std::uint32_t outer = id_of(built, NodeKind::kConditionalExpression, 0);
  const std::uint32_t inner = id_of(built, NodeKind::kConditionalExpression, 1);
  EXPECT_TRUE(has_edge(built, outer, inner));
}

TEST(Cfg, FunctionBodiesAreSeparateSubgraphs) {
  const Built built = build("function f() { a(); b(); } f(); g();");
  const std::uint32_t a_stmt = id_of(built, NodeKind::kExpressionStatement, 0);
  const std::uint32_t b_stmt = id_of(built, NodeKind::kExpressionStatement, 1);
  EXPECT_TRUE(has_edge(built, a_stmt, b_stmt));  // inside f
  // The function declaration participates in the top-level sequence.
  const std::uint32_t fn = id_of(built, NodeKind::kFunctionDeclaration);
  const std::uint32_t call_f = id_of(built, NodeKind::kExpressionStatement, 2);
  EXPECT_TRUE(has_edge(built, fn, call_f));
}

TEST(Cfg, LabeledBreakTargets) {
  const Built built = build(
      "outer: while (a) { while (b) { break outer; } } done();");
  const std::uint32_t break_id = id_of(built, NodeKind::kBreakStatement);
  const std::uint32_t after = id_of(built, NodeKind::kExpressionStatement, 0);
  EXPECT_TRUE(has_edge(built, break_id, after));
}

TEST(Cfg, EdgesAreDeduplicated) {
  const Built built = build("a(); a(); if (x) { y(); }");
  std::set<std::pair<std::uint32_t, std::uint32_t>> unique(
      built.flow.edges.begin(), built.flow.edges.end());
  EXPECT_EQ(unique.size(), built.flow.edges.size());
}

TEST(Cfg, EmptyProgramHasNoEdges) {
  const Built built = build("");
  EXPECT_EQ(built.flow.edge_count(), 0u);
}

TEST(Cfg, BranchNodeCount) {
  const Built built = build("if (a) { x(); } else { y(); }");
  EXPECT_GE(built.flow.branch_node_count(), 1u);
}

TEST(Cfg, DoWhileBackEdge) {
  const Built built = build("do { a(); } while (c);");
  EXPECT_GE(built.flow.back_edge_count(), 1u);
}

}  // namespace
}  // namespace jst
