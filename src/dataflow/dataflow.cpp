#include "dataflow/dataflow.h"

#include <memory>
#include <span>
#include <string_view>
#include <utility>

#include "ast/walk.h"

namespace jst {
namespace {

struct Scope {
  enum class Kind { kFunction, kBlock, kCatch };
  Kind kind = Kind::kFunction;
  Scope* parent = nullptr;
  std::unordered_map<std::string, std::size_t> bindings;  // name -> index
};

class DataFlowBuilder {
 public:
  DataFlowBuilder(DataFlow& out, Budget* budget, DataFlowScratch* scratch)
      : out_(out), budget_(budget), scratch_(scratch) {}

  void run(const Node* root) {
    if (root == nullptr) return;
    Scope* global = new_scope(Scope::Kind::kFunction, nullptr);
    hoist_into_function_scope(root, global);
    collect_lexical(root->kids, global);
    for (const Node* statement : root->kids) {
      visit(statement, global);
      if (aborted_) return;  // deadline noticed mid-resolution
    }
    // Emit def -> use edges: declaration and every assignment site are
    // definition sources; every read is a destination. This product is the
    // quadratic blow-up on adversarial inputs (one binding, thousands of
    // writes × thousands of reads), so the edge ceiling and deadline are
    // checked per edge; a trip truncates the edge list and records itself
    // instead of throwing — the pipeline degrades around it.
    DataFlowScratch local_scratch;
    DataFlowScratch& workspace =
        scratch_ != nullptr ? *scratch_ : local_scratch;
    for (const Binding& binding : out_.bindings) {
      std::vector<const Node*>& defs = workspace.defs;
      defs.clear();
      if (binding.declaration != nullptr) defs.push_back(binding.declaration);
      defs.insert(defs.end(), binding.assignments.begin(),
                  binding.assignments.end());
      for (const Node* def : defs) {
        for (const Node* use : binding.uses) {
          if (def == use) continue;
          if (budget_ != nullptr) {
            if (!budget_->try_charge_dataflow_edges()) {
              abort_with(ResourceKind::kDataflowEdges);
              return;
            }
            if (budget_->dataflow_edges_charged() %
                        Budget::kDeadlinePollStride ==
                    0 &&
                budget_->deadline_expired()) {
              abort_with(ResourceKind::kDeadline);
              return;
            }
          }
          out_.edges.emplace_back(def->id, use->id);
        }
      }
    }
  }

 private:
  void abort_with(ResourceKind kind) {
    out_.tripped = budget_->make_trip(kind);
    out_.completed = false;
    aborted_ = true;
  }
  Scope* new_scope(Scope::Kind kind, Scope* parent) {
    scopes_.push_back(std::make_unique<Scope>());
    Scope* scope = scopes_.back().get();
    scope->kind = kind;
    scope->parent = parent;
    ++out_.scope_count;
    return scope;
  }

  Scope* enclosing_function_scope(Scope* scope) {
    while (scope->kind != Scope::Kind::kFunction && scope->parent != nullptr) {
      scope = scope->parent;
    }
    return scope;
  }

  std::size_t bind(std::string_view name, Scope* scope,
                   const Node* declaration) {
    const std::string key(name);
    auto it = scope->bindings.find(key);
    if (it != scope->bindings.end()) {
      // Redeclaration (var x twice, or function overriding var): keep the
      // first binding, update the declaration node if missing.
      Binding& binding = out_.bindings[it->second];
      if (binding.declaration == nullptr) binding.declaration = declaration;
      return it->second;
    }
    Binding binding;
    binding.name = key;
    binding.declaration = declaration;
    out_.bindings.push_back(std::move(binding));
    const std::size_t index = out_.bindings.size() - 1;
    scope->bindings.emplace(key, index);
    return index;
  }

  Binding* resolve(std::string_view name, Scope* scope) {
    const std::string key(name);
    for (Scope* s = scope; s != nullptr; s = s->parent) {
      auto it = s->bindings.find(key);
      if (it != s->bindings.end()) return &out_.bindings[it->second];
    }
    return nullptr;
  }

  // --- declaration collection ---

  // Binds all identifiers in a binding pattern into `scope`.
  void bind_pattern(const Node* pattern, Scope* scope, bool is_parameter) {
    if (pattern == nullptr) return;
    switch (pattern->kind) {
      case NodeKind::kIdentifier: {
        const std::size_t index = bind(pattern->str_value, scope, pattern);
        out_.bindings[index].is_parameter = is_parameter;
        break;
      }
      case NodeKind::kArrayPattern:
        for (const Node* element : pattern->kids) {
          bind_pattern(element, scope, is_parameter);
        }
        break;
      case NodeKind::kObjectPattern:
        for (const Node* property : pattern->kids) {
          if (property == nullptr) continue;
          if (property->kind == NodeKind::kRestElement) {
            bind_pattern(property->kid(0), scope, is_parameter);
          } else {
            bind_pattern(property->kid(1), scope, is_parameter);
          }
        }
        break;
      case NodeKind::kAssignmentPattern:
        bind_pattern(pattern->kid(0), scope, is_parameter);
        // The default value is an expression, resolved during visit().
        break;
      case NodeKind::kRestElement:
        bind_pattern(pattern->kid(0), scope, is_parameter);
        break;
      default:
        break;  // member-expression targets bind nothing
    }
  }

  // Hoists `var` declarators and function declarations from the subtree
  // into the function scope, without descending into nested functions.
  // Iterative pre-order with pruning: deep expression chains make the
  // subtree arbitrarily deep (the parser's recursion guard only bounds
  // nested statements), so per-node recursion would overflow the native
  // stack on hostile inputs. The explicit stack visits every descendant
  // in exactly the order the recursive version did, so bindings are
  // created in the same order and get the same indices.
  void hoist_into_function_scope(const Node* node, Scope* function_scope) {
    if (node == nullptr) return;
    std::vector<const Node*>& stack = hoist_stack_;
    const std::size_t base = stack.size();  // re-entered via visit_function
    for (std::size_t i = node->kids.size(); i > 0; --i) {
      if (node->kids[i - 1] != nullptr) stack.push_back(node->kids[i - 1]);
    }
    while (stack.size() > base) {
      const Node* kid = stack.back();
      stack.pop_back();
      if (kid->kind == NodeKind::kFunctionDeclaration) {
        if (kid->kid(0) != nullptr) {
          const std::size_t index =
              bind(kid->kids[0]->str_value, function_scope, kid->kids[0]);
          out_.bindings[index].is_function_name = true;
          out_.bindings[index].init = kid;
        }
        continue;  // do not hoist through the nested function
      }
      if (kid->is_function()) continue;
      if (kid->kind == NodeKind::kVariableDeclaration &&
          kid->str_value == "var") {
        for (const Node* declarator : kid->kids) {
          bind_pattern(declarator->kid(0), function_scope, false);
        }
        // Initializers may contain more nested statements (rare); fall
        // through to descend into the declarators.
      }
      for (std::size_t i = kid->kids.size(); i > 0; --i) {
        if (kid->kids[i - 1] != nullptr) stack.push_back(kid->kids[i - 1]);
      }
    }
  }

  // Binds let/const/class declared directly in this statement list.
  // Templated over the list type: callers pass the arena-backed NodeList
  // or (for switch cases) a span over a kid-list tail.
  template <typename StatementList>
  void collect_lexical(const StatementList& statements, Scope* scope) {
    for (const Node* statement : statements) {
      if (statement == nullptr) continue;
      if (statement->kind == NodeKind::kVariableDeclaration &&
          statement->str_value != "var") {
        for (const Node* declarator : statement->kids) {
          bind_pattern(declarator->kid(0), scope, false);
        }
      } else if (statement->kind == NodeKind::kClassDeclaration &&
                 statement->kid(0) != nullptr) {
        bind(statement->kids[0]->str_value, scope, statement->kids[0]);
      }
    }
  }

  // --- reference resolution ---

  void record_use(const Node* identifier, Scope* scope) {
    Binding* binding = resolve(identifier->str_value, scope);
    if (binding == nullptr) {
      ++out_.unresolved_uses;
      return;
    }
    binding->uses.push_back(identifier);
  }

  void record_write(const Node* identifier, Scope* scope) {
    Binding* binding = resolve(identifier->str_value, scope);
    if (binding == nullptr) {
      ++out_.unresolved_uses;
      return;
    }
    binding->assignments.push_back(identifier);
  }

  // Visits write targets (assignment LHS / for-in heads): identifiers are
  // writes; member expressions read their object; patterns recurse.
  void visit_target(const Node* target, Scope* scope) {
    if (target == nullptr) return;
    switch (target->kind) {
      case NodeKind::kIdentifier:
        record_write(target, scope);
        break;
      case NodeKind::kMemberExpression:
        visit(target->kid(0), scope);
        if (target->flag_a) visit(target->kid(1), scope);
        break;
      case NodeKind::kArrayPattern:
        for (const Node* element : target->kids) visit_target(element, scope);
        break;
      case NodeKind::kObjectPattern:
        for (const Node* property : target->kids) {
          if (property == nullptr) continue;
          if (property->kind == NodeKind::kRestElement) {
            visit_target(property->kid(0), scope);
          } else {
            if (property->flag_a) visit(property->kid(0), scope);
            visit_target(property->kid(1), scope);
          }
        }
        break;
      case NodeKind::kAssignmentPattern:
        visit_target(target->kid(0), scope);
        visit(target->kid(1), scope);
        break;
      case NodeKind::kRestElement:
        visit_target(target->kid(0), scope);
        break;
      default:
        visit(target, scope);
    }
  }

  void visit_function(const Node* function, Scope* outer) {
    Scope* scope = new_scope(Scope::Kind::kFunction, outer);
    const bool is_arrow = function->kind == NodeKind::kArrowFunctionExpression;
    const std::size_t first_param = is_arrow ? 1 : 2;
    const Node* body = is_arrow ? function->kid(0) : function->kid(1);
    // Function-expression names are visible inside the function.
    if (!is_arrow && function->kind == NodeKind::kFunctionExpression &&
        function->kid(0) != nullptr) {
      const std::size_t index =
          bind(function->kids[0]->str_value, scope, function->kids[0]);
      out_.bindings[index].is_function_name = true;
      out_.bindings[index].init = function;
    }
    for (std::size_t i = first_param; i < function->kids.size(); ++i) {
      bind_pattern(function->kids[i], scope, /*is_parameter=*/true);
    }
    if (body != nullptr && body->kind == NodeKind::kBlockStatement) {
      hoist_into_function_scope(body, scope);
      collect_lexical(body->kids, scope);
      // Parameter defaults are expressions in the function scope.
      for (std::size_t i = first_param; i < function->kids.size(); ++i) {
        visit_pattern_defaults(function->kids[i], scope);
      }
      for (const Node* statement : body->kids) visit(statement, scope);
    } else if (body != nullptr) {
      for (std::size_t i = first_param; i < function->kids.size(); ++i) {
        visit_pattern_defaults(function->kids[i], scope);
      }
      visit(body, scope);  // expression-bodied arrow
    }
  }

  void visit_pattern_defaults(const Node* pattern, Scope* scope) {
    if (pattern == nullptr) return;
    if (pattern->kind == NodeKind::kAssignmentPattern) {
      visit(pattern->kid(1), scope);
      visit_pattern_defaults(pattern->kid(0), scope);
      return;
    }
    for (const Node* kid : pattern->kids) visit_pattern_defaults(kid, scope);
  }

  void visit_block_like(const Node* node, Scope* outer) {
    Scope* scope = new_scope(Scope::Kind::kBlock, outer);
    collect_lexical(node->kids, scope);
    for (const Node* statement : node->kids) visit(statement, scope);
  }

  void push_kid(const Node* node, Scope* scope) {
    if (node != nullptr) spine_.emplace_back(node, scope);
  }

  // Pushes `node`'s kids so they pop in source order.
  void push_kids_of(const Node* node, Scope* scope) {
    for (std::size_t i = node->kids.size(); i > 0; --i) {
      push_kid(node->kids[i - 1], scope);
    }
  }

  // Iterative driver: expression chains (binary, call/member, sequence)
  // are parsed iteratively, so their AST depth is NOT bounded by the
  // parser's nesting recursion guard — a hostile 10k-term `[]+[]+...`
  // blob must not overflow the native stack here. Same-scope descent
  // therefore goes through an explicit spine stack; only scope-opening
  // and binding constructs (functions, blocks, loops, catch, switch —
  // forms the parser can only nest through its depth-guarded recursion)
  // re-enter visit() and consume native frames. A re-entrant call drains
  // its own segment of the shared stack (everything above `base`), which
  // preserves the exact pre-order visitation — and budget-poll order —
  // of the recursive implementation it replaced.
  void visit(const Node* node, Scope* scope) {
    const std::size_t base = spine_.size();
    push_kid(node, scope);
    while (spine_.size() > base) {
      if (aborted_) {
        spine_.resize(base);
        return;
      }
      const auto [next, next_scope] = spine_.back();
      spine_.pop_back();
      step(next, next_scope);
    }
  }

  // Handles one node; same-scope subtrees are pushed, not recursed.
  void step(const Node* node, Scope* scope) {
    if (budget_ != nullptr &&
        ++visits_ % Budget::kDeadlinePollStride == 0 &&
        budget_->deadline_expired()) {
      abort_with(ResourceKind::kDeadline);
      return;
    }
    switch (node->kind) {
      case NodeKind::kIdentifier:
        record_use(node, scope);
        break;

      case NodeKind::kBlockStatement:
        visit_block_like(node, scope);
        break;

      case NodeKind::kVariableDeclaration:
        for (const Node* declarator : node->kids) {
          // Binding was established during hoisting/lexical collection;
          // here we attach the initializer and resolve it.
          const Node* id = declarator->kid(0);
          const Node* init = declarator->kid(1);
          if (id != nullptr && id->kind == NodeKind::kIdentifier) {
            Binding* binding = resolve(id->str_value, scope);
            if (binding != nullptr) {
              if (binding->init == nullptr) binding->init = init;
              // Redeclarations (`var x` appearing twice) share one binding;
              // record the extra declarator identifiers as write sites so
              // renaming and def-use edges cover them.
              if (binding->declaration != id) {
                binding->assignments.push_back(id);
              }
            }
          } else {
            visit_pattern_defaults(id, scope);
          }
          visit(init, scope);
        }
        break;

      case NodeKind::kFunctionDeclaration:
      case NodeKind::kFunctionExpression:
      case NodeKind::kArrowFunctionExpression:
        visit_function(node, scope);
        break;

      case NodeKind::kClassDeclaration:
      case NodeKind::kClassExpression: {
        visit(node->kid(1), scope);  // superclass expression
        const Node* body = node->kid(2);
        if (body != nullptr) {
          for (const Node* method : body->kids) {
            if (method->flag_a) visit(method->kid(0), scope);  // computed key
            visit_function(method->kid(1), scope);
          }
        }
        break;
      }

      case NodeKind::kCatchClause: {
        Scope* catch_scope = new_scope(Scope::Kind::kCatch, scope);
        if (node->kid(0) != nullptr) {
          bind_pattern(node->kids[0], catch_scope, false);
        }
        // The catch body is a block; give it its own lexical scope under
        // the catch scope.
        visit_block_like(node->kid(1), catch_scope);
        break;
      }

      case NodeKind::kTryStatement:
        push_kid(node->kid(2), scope);
        push_kid(node->kid(1), scope);  // CatchClause handled above
        push_kid(node->kid(0), scope);
        break;

      case NodeKind::kForStatement: {
        Scope* for_scope = new_scope(Scope::Kind::kBlock, scope);
        const Node* init = node->kid(0);
        if (init != nullptr &&
            init->kind == NodeKind::kVariableDeclaration &&
            init->str_value != "var") {
          for (const Node* declarator : init->kids) {
            bind_pattern(declarator->kid(0), for_scope, false);
          }
        }
        visit(init, for_scope);
        visit(node->kid(1), for_scope);
        visit(node->kid(2), for_scope);
        visit(node->kid(3), for_scope);
        break;
      }

      case NodeKind::kForInStatement:
      case NodeKind::kForOfStatement: {
        Scope* for_scope = new_scope(Scope::Kind::kBlock, scope);
        const Node* left = node->kid(0);
        if (left != nullptr && left->kind == NodeKind::kVariableDeclaration) {
          if (left->str_value != "var") {
            for (const Node* declarator : left->kids) {
              bind_pattern(declarator->kid(0), for_scope, false);
            }
          }
          // Loop variable is written each iteration.
          const Node* id = left->kid(0) != nullptr ? left->kids[0]->kid(0)
                                                   : nullptr;
          if (id != nullptr && id->kind == NodeKind::kIdentifier) {
            record_write(id, for_scope);
          }
        } else {
          visit_target(left, for_scope);
        }
        visit(node->kid(1), for_scope);
        visit(node->kid(2), for_scope);
        break;
      }

      case NodeKind::kAssignmentExpression: {
        const Node* target = node->kid(0);
        visit_target(target, scope);
        if (node->str_value != "=" && target != nullptr &&
            target->kind == NodeKind::kIdentifier) {
          record_use(target, scope);  // compound assignment also reads
        }
        push_kid(node->kid(1), scope);
        break;
      }

      case NodeKind::kUpdateExpression: {
        const Node* argument = node->kid(0);
        if (argument != nullptr && argument->kind == NodeKind::kIdentifier) {
          record_use(argument, scope);
          record_write(argument, scope);
        } else {
          push_kid(argument, scope);
        }
        break;
      }

      case NodeKind::kMemberExpression:
        if (node->flag_a) push_kid(node->kid(1), scope);  // computed only
        push_kid(node->kid(0), scope);
        break;

      case NodeKind::kProperty:
        push_kid(node->kid(1), scope);
        if (node->flag_a) push_kid(node->kid(0), scope);  // computed key
        break;

      case NodeKind::kMethodDefinition:
        if (node->flag_a) visit(node->kid(0), scope);
        visit_function(node->kid(1), scope);
        break;

      case NodeKind::kLabeledStatement:
        push_kid(node->kid(1), scope);  // label identifier is not a reference
        break;

      case NodeKind::kBreakStatement:
      case NodeKind::kContinueStatement:
        break;  // label identifier is not a reference

      case NodeKind::kSwitchStatement: {
        visit(node->kid(0), scope);
        Scope* switch_scope = new_scope(Scope::Kind::kBlock, scope);
        for (std::size_t i = 1; i < node->kids.size(); ++i) {
          const Node* switch_case = node->kids[i];
          collect_lexical(
              std::span<Node* const>(switch_case->kids.begin() + 1,
                                     switch_case->kids.end()),
              switch_scope);
        }
        for (std::size_t i = 1; i < node->kids.size(); ++i) {
          const Node* switch_case = node->kids[i];
          visit(switch_case->kid(0), switch_scope);
          for (std::size_t j = 1; j < switch_case->kids.size(); ++j) {
            visit(switch_case->kids[j], switch_scope);
          }
        }
        break;
      }

      default:
        push_kids_of(node, scope);
    }
  }

  DataFlow& out_;
  Budget* budget_ = nullptr;
  DataFlowScratch* scratch_ = nullptr;
  std::size_t visits_ = 0;
  bool aborted_ = false;
  std::vector<std::unique_ptr<Scope>> scopes_;
  // Shared stacks for the iterative walkers; re-entrant calls operate on
  // the segment above their own base index.
  std::vector<std::pair<const Node*, Scope*>> spine_;
  std::vector<const Node*> hoist_stack_;
};

}  // namespace

DataFlow build_data_flow(const Ast& ast, const DataFlowOptions& options) {
  DataFlow flow;
  if (ast.node_count() > options.node_budget) {
    flow.completed = false;
    return flow;
  }
  DataFlowBuilder builder(flow, options.budget, options.scratch);
  builder.run(ast.root());
  return flow;
}

}  // namespace jst
