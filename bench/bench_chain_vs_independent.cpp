// §III-D3 — validation-set comparison of the two multi-task strategies:
// classifier chain vs. classifiers-independence assumption. The paper
// selects the chain ("the random forest classifier with the classifiers
// chain approach performed best").
#include <cstdio>

#include "analysis/dataset.h"
#include "analysis/pipeline.h"
#include "bench_common.h"
#include "ml/metrics.h"

namespace {

struct Scores {
  double level1_accuracy = 0.0;
  double level2_subset = 0.0;
  double level2_top1 = 0.0;
};

Scores evaluate(bool use_chain, std::size_t scale_count) {
  using namespace jst;
  using namespace jst::bench;

  analysis::PipelineOptions options;
  options.training_regular_count = scale_count;
  options.per_technique_count = scale_count / 5;
  options.seed = use_chain ? 0xc4a1 : 0x1d4e;
  options.detector.classifier_chain = use_chain;
  options.detector.forest.tree_count = 24;
  options.detector.features.ngram.hash_dim = 256;
  analysis::TransformationAnalyzer model(options);
  model.train();

  // Validation set: fresh bases, one technique each + regular files.
  const auto bases = held_out_regular(scale_count / 2, 0x7a11d);
  Rng rng(0x7a11d0);
  Scores scores;
  std::size_t level1_correct = 0;
  std::size_t level1_total = 0;
  std::vector<std::vector<std::size_t>> predicted;
  std::vector<std::vector<std::size_t>> truth;
  std::size_t top1_hits = 0;
  std::size_t top1_total = 0;

  for (const auto& base : bases) {
    {
      const auto report = model.analyze(base);
      ++level1_total;
      if (!report.parse_failed() && report.level1.regular()) ++level1_correct;
    }
    const auto technique = transform::all_techniques()[rng.index(10)];
    const auto sample = analysis::make_transformed_sample(base, technique, rng);
    const auto report = model.analyze(sample.source);
    ++level1_total;
    if (!report.parse_failed() && report.level1.transformed()) ++level1_correct;

    const auto row = features::extract_from_source(
        sample.source, model.options().detector.features);
    const auto probabilities = model.level2().predict_proba(row);
    std::vector<std::size_t> subset;
    for (std::size_t j = 0; j < probabilities.size(); ++j) {
      if (probabilities[j] >= 0.5) subset.push_back(j);
    }
    predicted.push_back(subset);
    truth.push_back(analysis::indices_from_techniques(sample.techniques));
    const auto top1 = analysis::indices_from_techniques(
        model.level2().predict_topk(row, 1));
    ++top1_total;
    if (ml::topk_correct(top1, truth.back())) ++top1_hits;
  }

  scores.level1_accuracy = 100.0 * static_cast<double>(level1_correct) /
                           static_cast<double>(level1_total);
  scores.level2_subset = 100.0 * ml::subset_accuracy(predicted, truth);
  scores.level2_top1 =
      100.0 * static_cast<double>(top1_hits) / static_cast<double>(top1_total);
  return scores;
}

}  // namespace

int main() {
  using namespace jst::bench;

  const std::size_t scale_count = scaled(90);
  std::fprintf(stderr, "[bench] training chain variant...\n");
  const Scores chain = evaluate(/*use_chain=*/true, scale_count);
  std::fprintf(stderr, "[bench] training independent variant...\n");
  const Scores independent = evaluate(/*use_chain=*/false, scale_count);

  print_header("Classifier chain vs. independence assumption",
               "section III-D3");
  std::printf("%-36s %12s %12s\n", "metric", "chain", "independent");
  std::printf("%-36s %11.2f%% %11.2f%%\n", "level-1 accuracy",
              chain.level1_accuracy, independent.level1_accuracy);
  std::printf("%-36s %11.2f%% %11.2f%%\n", "level-2 subset accuracy",
              chain.level2_subset, independent.level2_subset);
  std::printf("%-36s %11.2f%% %11.2f%%\n", "level-2 Top-1 accuracy",
              chain.level2_top1, independent.level2_top1);
  print_note("paper: the chain variant won on the validation set and is "
             "used for all reported results");
  print_footer();
  return 0;
}
