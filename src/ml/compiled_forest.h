// Compiled inference fast path: flattened, cache-friendly forest layout.
//
// RandomForest::predict_proba walks one std::vector<TreeNode> per tree —
// an AoS layout where every hop touches a 24-byte node (half of which is
// training-only payload: importance, and the redundant left index) spread
// over per-tree heap blocks. At wild-study scale (the paper classifies
// ~20M scripts, 13 forests per script) that pointer-chasing is the
// inference bottleneck.
//
// CompiledForest flattens a fitted forest into one contiguous
// structure-of-arrays node table in the spirit of QuickScorer's tree
// blocking (Lucchese et al., SIGIR 2015): per node a feature index, a
// threshold, and child links as offsets *relative to the node itself*
// within the shared table; leaf probabilities live in a parallel array.
// Feature indices and child offsets are 16-bit — a full ensemble streams
// half the bytes of an int32 layout, which matters because batch analysis
// interleaves inference with extraction, so the node tables re-enter
// cache cold for every script. A tree hop reads a 2-byte feature, a
// 4-byte threshold, and a 2-byte offset from three hot arrays instead of
// one cold 24-byte struct, and whole trees sit adjacent in memory so
// block-wise batch evaluation keeps a tree resident while streaming rows.
// compile() rejects models that exceed the 16-bit layout (>32767 features
// or >32768 nodes in one tree — far beyond anything jstraced trains);
// the detectors then fall back to the reference prediction path.
//
// Predictions are bit-identical to the reference path by construction:
// the same float thresholds are compared with the same `<=`, the same
// float leaf values are accumulated into a double in the same tree order,
// and the same single division by the tree count happens at the end.
// DecisionTree::predict stays as the oracle; the equivalence suite
// (tests/test_compiled.cpp) asserts exact equality on randomized
// matrices, saved-then-loaded models, and across JST_THREADS widths.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/multilabel.h"
#include "ml/random_forest.h"

namespace jst::ml {

// Reusable per-thread buffers for the compiled prediction path. All
// predict calls that take a PredictScratch are allocation-free once the
// scratch has warmed up (capacities stick across calls).
struct PredictScratch {
  std::vector<float> extended;      // row + chain-position label bits
  std::vector<double> proba;        // per-label probabilities
  std::vector<std::size_t> order;   // label ranking workspace
  std::vector<std::size_t> picked;  // thresholded top-k workspace

  // Approximate steady-state footprint, for the obs peak-bytes gauge.
  std::size_t capacity_bytes() const {
    return extended.capacity() * sizeof(float) +
           proba.capacity() * sizeof(double) +
           (order.capacity() + picked.capacity()) * sizeof(std::size_t);
  }
};

class CompiledForest {
 public:
  CompiledForest() = default;

  // Flattens a fitted forest. Throws ModelError if the forest is empty.
  static CompiledForest compile(const RandomForest& forest);

  bool compiled() const { return !roots_.empty(); }
  std::size_t tree_count() const { return roots_.size(); }
  std::size_t node_count() const { return feature_.size(); }
  std::size_t feature_count() const { return feature_count_; }

  // Averaged positive-class probability — bit-identical to
  // RandomForest::predict_proba on the source forest.
  double predict_proba(std::span<const float> row) const;

  // Row-major batch evaluation: out[i] = predict_proba(row i). Trees are
  // evaluated in blocks (kTreeBlock at a time) across all rows, keeping
  // the block's node table cache-resident while the rows stream; per-row
  // accumulation still happens in ascending tree order, so every out[i]
  // is bit-identical to the per-row call.
  void predict_batch(const Matrix& data, std::span<double> out) const;

  static constexpr std::size_t kTreeBlock = 8;

 private:
  double predict_tree(std::uint32_t root, std::span<const float> row) const;

  // Structure-of-arrays node table, all trees concatenated.
  std::vector<std::int16_t> feature_;    // -1 = leaf
  std::vector<float> threshold_;
  std::vector<std::int16_t> left_;       // child offset relative to node
  std::vector<std::int16_t> right_;      // child offset relative to node
  std::vector<float> leaf_value_;        // parallel: positive-class prob
  std::vector<std::uint32_t> roots_;     // per-tree root index
  std::size_t feature_count_ = 0;
};

// Compiled counterpart of a fitted MultiLabelClassifier: one
// CompiledForest per label plus the chain rule (thresholded upstream
// predictions appended as features) when the source was a
// ClassifierChain. Mirrors predict_proba / predict_set / predict_topk /
// predict_topk_thresholded bit-for-bit, with scratch-taking overloads
// that are allocation-free in steady state.
class CompiledEnsemble {
 public:
  CompiledEnsemble() = default;

  static CompiledEnsemble compile(const MultiLabelClassifier& classifier);

  bool compiled() const { return !forests_.empty(); }
  std::size_t label_count() const { return forests_.size(); }
  bool chained() const { return chained_; }

  // Per-label probabilities into `out` (resized to label_count()).
  void predict_proba(std::span<const float> row, PredictScratch& scratch,
                     std::vector<double>& out) const;
  std::vector<double> predict_proba(std::span<const float> row) const;

  // Labels with probability >= threshold.
  void predict_set(std::span<const float> row, double threshold,
                   PredictScratch& scratch,
                   std::vector<std::size_t>& out) const;

  // Indices of the k most probable labels, most probable first.
  void predict_topk(std::span<const float> row, std::size_t k,
                    PredictScratch& scratch,
                    std::vector<std::size_t>& out) const;

  // Top-k restricted to labels whose probability clears `threshold`
  // (the paper's level-2 decision rule).
  void predict_topk_thresholded(std::span<const float> row, std::size_t k,
                                double threshold, PredictScratch& scratch,
                                std::vector<std::size_t>& out) const;

  const CompiledForest& forest(std::size_t label) const {
    return forests_[label];
  }

 private:
  // Ranks scratch.proba into scratch.order (stable, descending) — the
  // exact stable_sort the reference decision rules use.
  void rank_labels(PredictScratch& scratch) const;

  std::vector<CompiledForest> forests_;
  bool chained_ = false;
  double chain_threshold_ = 0.5;
};

}  // namespace jst::ml
