#include "analysis/detector.h"

#include <istream>
#include <ostream>

#include "analysis/model_io.h"
#include "support/error.h"

namespace jst::analysis {
namespace {

std::unique_ptr<ml::MultiLabelClassifier> make_classifier(bool chain) {
  if (chain) return std::make_unique<ml::ClassifierChain>();
  return std::make_unique<ml::BinaryRelevance>();
}

}  // namespace

Level1Detector::Level1Detector(DetectorConfig config)
    : config_(std::move(config)),
      classifier_(make_classifier(config_.classifier_chain)) {}

void Level1Detector::fit(const ml::Matrix& data, const ml::LabelMatrix& labels,
                         Rng& rng) {
  if (!labels.empty() && labels[0].size() != 3) {
    throw ModelError("Level1Detector::fit: expected 3 label columns");
  }
  classifier_->fit(data, labels, config_.forest, rng);
}

Level1Detector::Prediction Level1Detector::predict(
    std::span<const float> row) const {
  const std::vector<double> probabilities = classifier_->predict_proba(row);
  Prediction prediction;
  prediction.p_regular = probabilities[0];
  prediction.p_minified = probabilities[1];
  prediction.p_obfuscated = probabilities[2];
  return prediction;
}

void Level1Detector::save(std::ostream& out) const {
  write_model_header(out, make_model_header("level1", config_));
  classifier_->save(out);
}

void Level1Detector::load(std::istream& in) {
  check_model_header(in, make_model_header("level1", config_));
  classifier_->load(in);
}

Level2Detector::Level2Detector(DetectorConfig config)
    : config_(std::move(config)),
      classifier_(make_classifier(config_.classifier_chain)) {}

void Level2Detector::fit(const ml::Matrix& data, const ml::LabelMatrix& labels,
                         Rng& rng) {
  if (!labels.empty() && labels[0].size() != transform::kTechniqueCount) {
    throw ModelError("Level2Detector::fit: expected 10 label columns");
  }
  classifier_->fit(data, labels, config_.forest, rng);
}

std::vector<double> Level2Detector::predict_proba(
    std::span<const float> row) const {
  return classifier_->predict_proba(row);
}

std::vector<transform::Technique> Level2Detector::predict_techniques(
    std::span<const float> row) const {
  const std::vector<std::size_t> indices = classifier_->predict_topk_thresholded(
      row, config_.level2_topk, config_.level2_threshold);
  return techniques_from_indices(indices);
}

std::vector<transform::Technique> Level2Detector::predict_topk(
    std::span<const float> row, std::size_t k) const {
  return techniques_from_indices(classifier_->predict_topk(row, k));
}

}  // namespace jst::analysis

namespace jst::analysis {

void Level2Detector::save(std::ostream& out) const {
  write_model_header(out, make_model_header("level2", config_));
  classifier_->save(out);
}

void Level2Detector::load(std::istream& in) {
  check_model_header(in, make_model_header("level2", config_));
  classifier_->load(in);
}

}  // namespace jst::analysis
