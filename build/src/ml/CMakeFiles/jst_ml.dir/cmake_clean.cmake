file(REMOVE_RECURSE
  "CMakeFiles/jst_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/jst_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/jst_ml.dir/metrics.cpp.o"
  "CMakeFiles/jst_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/jst_ml.dir/multilabel.cpp.o"
  "CMakeFiles/jst_ml.dir/multilabel.cpp.o.d"
  "CMakeFiles/jst_ml.dir/random_forest.cpp.o"
  "CMakeFiles/jst_ml.dir/random_forest.cpp.o.d"
  "libjst_ml.a"
  "libjst_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
