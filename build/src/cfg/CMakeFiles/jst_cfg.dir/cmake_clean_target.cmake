file(REMOVE_RECURSE
  "libjst_cfg.a"
)
