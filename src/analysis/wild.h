// "In the wild" population simulators (§IV).
//
// We cannot ship the paper's crawled corpora (Alexa Top 10k scripts, npm
// Top 10k packages, DNC/Hynek/BSI malware feeds), so each population is
// modeled by (a) a base-script flavor, (b) a script-level transformed
// rate, and (c) a weighted mix of tool configurations — all parameterized
// from the statistics the paper reports. Running the detectors over a
// simulated population therefore exercises the full measurement pipeline
// and reproduces the shape of every §IV figure.
#pragma once

#include <string>
#include <vector>

#include "analysis/dataset.h"

namespace jst::analysis {

struct ConfigWeight {
  std::vector<transform::Technique> techniques;
  double weight = 1.0;
};

struct PopulationSpec {
  std::string name;
  // Probability that a script is transformed at all.
  double transformed_rate = 0.5;
  // Tool-configuration mix among transformed scripts.
  std::vector<ConfigWeight> configs;
  // Base-script flavor: 0 generic, 1 browser, 2 node.
  int flavor = 0;
  // Malware-flavored bases (loader motifs: eval, ActiveX, long payload
  // strings, document.write(unescape(...))).
  bool malware = false;
  // Scripts whose *first part* is regular and second part transformed
  // (the paper observes this for Alexa; npm files are fully transformed).
  double partial_transform_rate = 0.0;
};

// Populations as measured in September 2020 (§IV-B) and 2015-2017 (§IV-C).
PopulationSpec alexa_spec();
PopulationSpec npm_spec();
PopulationSpec dnc_spec();
PopulationSpec hynek_spec();
PopulationSpec bsi_spec();

// Generates one population sample set.
std::vector<Sample> simulate_population(const PopulationSpec& spec,
                                        std::size_t script_count,
                                        std::uint64_t seed);

// Rank effect (§IV-B1): Alexa-style populations get more transformed with
// popularity. Returns the spec for a given rank bucket (0 = Top 1k).
PopulationSpec alexa_rank_bucket_spec(std::size_t bucket_index);
// npm buckets: Top-1k packages are *less* likely to be transformed
// (§IV-B2, factor 2.4-4.4x) and balance basic/advanced minification.
PopulationSpec npm_rank_bucket_spec(std::size_t bucket_index);

// Malware-flavored base script generator (exposed for tests).
std::string generate_malware_base(Rng& rng);

}  // namespace jst::analysis
