#include "parser/parser.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"

namespace jst {
namespace {

// Binary operator precedence (higher binds tighter). Mirrors the ES spec's
// MultiplicativeExpression..RelationalExpression ladder; && / || / ?? are
// handled here too and distinguished into LogicalExpression nodes.
int binary_precedence(const Token& token) {
  if (token.type == TokenType::kKeyword) {
    if (token.value == "instanceof" || token.value == "in") return 7;
    return -1;
  }
  if (token.type != TokenType::kPunctuator) return -1;
  static const std::unordered_map<std::string_view, int> kPrecedence = {
      {"??", 1},
      {"||", 2},
      {"&&", 3},
      {"|", 4},
      {"^", 5},
      {"&", 6},
      {"==", 7}, {"!=", 7}, {"===", 7}, {"!==", 7},
      {"<", 8}, {">", 8}, {"<=", 8}, {">=", 8},
      {"<<", 9}, {">>", 9}, {">>>", 9},
      {"+", 10}, {"-", 10},
      {"*", 11}, {"/", 11}, {"%", 11},
      {"**", 12},
  };
  const auto it = kPrecedence.find(token.value);
  return it == kPrecedence.end() ? -1 : it->second;
}

// Precedence of equality/relational operators in the table above differs
// from the spec's exact numbering but preserves relative order, except that
// `in`/`instanceof` share the equality tier (8 in spec); harmless for the
// constructs we parse since we never rely on absolute values.

bool is_logical_op(std::string_view op) {
  return op == "&&" || op == "||" || op == "??";
}

bool is_assignment_op(std::string_view op) {
  return op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=" ||
         op == "%=" || op == "<<=" || op == ">>=" || op == ">>>=" ||
         op == "&=" || op == "|=" || op == "^=" || op == "**=" ||
         op == "&&=" || op == "||=" || op == "?\?=";
}

}  // namespace

// RAII nesting-depth guard (see Parser::kMaxNestingDepth). The budget's
// configurable depth ceiling is checked first so it trips as a structured
// BudgetExceeded before the hard recursion guard's ParseError.
struct ParserDepthGuard {
  explicit ParserDepthGuard(Parser& parser) : parser_(parser) {
    ++parser_.nesting_depth_;
    if (parser_.budget_ != nullptr) {
      parser_.budget_->check_depth(
          static_cast<std::size_t>(parser_.nesting_depth_));
    }
    if (parser_.nesting_depth_ > Parser::kMaxNestingDepth) {
      parser_.fail("nesting depth exceeded");
    }
  }
  ~ParserDepthGuard() { --parser_.nesting_depth_; }
  Parser& parser_;
};

ParseResult parse_program(std::string_view source, Budget* budget,
                          support::Arena* arena, support::AtomTable* atoms) {
  // Pooled contract: the caller's arena is rewound for this script; any
  // previous ParseResult built in it is dead from here on. The pooled
  // atom table is cleared in the same breath — its views alias the arena.
  if (arena != nullptr) arena->reset();
  if (atoms != nullptr) atoms->clear();
  ParseResult result{arena != nullptr ? Ast(arena, atoms) : Ast()};
  support::Arena& frontend_arena = result.ast.arena();
  // Copy the script into the arena so token/node views never dangle on
  // the caller's buffer (one memcpy; reclaimed by the pooled reset).
  const std::string_view stable_source = frontend_arena.alloc_string(source);

  if (budget != nullptr) budget->set_stage("lex");
  Lexer lexer(stable_source, frontend_arena, budget);
  support::ArenaVec<Token> tokens(frontend_arena);
  {
    JST_SPAN("lex");
    TokenStats& stats = result.token_stats;
    while (true) {
      Token token = lexer.next();
      if (token.type == TokenType::kEndOfFile) break;
      if (token.type == TokenType::kPunctuator) ++stats.punctuators;
      stats.raw_bytes += static_cast<double>(token.raw.size());
      stats.max_line_length =
          std::max(stats.max_line_length, token.column + token.raw.size());
      tokens.push_back(token);
    }
    stats.count = tokens.size();
  }
  result.comment_count = lexer.comment_count();
  result.comment_bytes = lexer.comment_bytes();
  result.source_bytes = source.size();
  result.source_lines = lexer.line();
  result.tokens = std::span<const Token>(tokens.data(), tokens.size());

  JST_SPAN("parse");
  if (budget != nullptr) budget->set_stage("parse");
  result.ast.set_budget(budget);
  try {
    Parser parser(result.tokens, result.ast, budget);
    Node* root = parser.parse_program_body();
    result.ast.set_root(root);
    result.ast.finalize();
  } catch (...) {
    result.ast.set_budget(nullptr);
    throw;
  }
  // The Ast outlives the per-script budget; never let the pointer escape.
  result.ast.set_budget(nullptr);
  return result;
}

bool parses(std::string_view source) {
  try {
    parse_program(source);
    return true;
  } catch (const ParseError&) {
    return false;
  }
}

Parser::Parser(std::span<const Token> tokens, Ast& ast, Budget* budget)
    : tokens_(tokens), ast_(ast), budget_(budget) {
  eof_token_.type = TokenType::kEndOfFile;
  eof_token_.line = tokens_.empty() ? 1 : tokens_.back().line;
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = index_ + ahead;
  return i < tokens_.size() ? tokens_[i] : eof_token_;
}

const Token& Parser::advance() {
  if (at_end()) fail("unexpected end of input");
  return tokens_[index_++];
}

bool Parser::check_punct(std::string_view text, std::size_t ahead) const {
  const Token& token = peek(ahead);
  return token.type == TokenType::kPunctuator && token.value == text;
}

bool Parser::check_keyword(std::string_view text, std::size_t ahead) const {
  const Token& token = peek(ahead);
  return token.type == TokenType::kKeyword && token.value == text;
}

bool Parser::check_identifier(std::string_view text, std::size_t ahead) const {
  const Token& token = peek(ahead);
  return token.type == TokenType::kIdentifier && token.value == text;
}

bool Parser::match_punct(std::string_view text) {
  if (!check_punct(text)) return false;
  advance();
  return true;
}

bool Parser::match_keyword(std::string_view text) {
  if (!check_keyword(text)) return false;
  advance();
  return true;
}

void Parser::expect_punct(std::string_view text) {
  if (!match_punct(text)) {
    fail("expected '" + std::string(text) + "' but found '" +
         std::string(current().value) + "'");
  }
}

void Parser::expect_keyword(std::string_view text) {
  if (!match_keyword(text)) {
    fail("expected keyword '" + std::string(text) + "'");
  }
}

void Parser::fail(const std::string& message) const {
  const Token& token = current();
  throw ParseError("parse error: " + message, token.line, token.column);
}

void Parser::consume_semicolon() {
  if (match_punct(";")) return;
  // Automatic semicolon insertion: allowed before '}', at EOF, or when the
  // offending token sits on a new line.
  if (at_end() || check_punct("}") || current().newline_before) return;
  fail("expected ';' but found '" + std::string(current().value) + "'");
}

bool Parser::is_arrow_ahead(std::size_t ahead) const {
  // peek(ahead) must be '('. Scan to the matching ')' and look for '=>'.
  std::size_t i = ahead;
  if (!check_punct("(", i)) return false;
  int depth = 0;
  while (index_ + i < tokens_.size()) {
    const Token& token = peek(i);
    if (token.type == TokenType::kPunctuator) {
      if (token.value == "(" || token.value == "[" || token.value == "{") {
        ++depth;
      } else if (token.value == ")" || token.value == "]" ||
                 token.value == "}") {
        --depth;
        if (depth == 0) return check_punct("=>", i + 1);
      }
    }
    ++i;
  }
  return false;
}

Node* Parser::parse_program_body() {
  Node* program = ast_.make(NodeKind::kProgram);
  program->line = tokens_.empty() ? 1 : tokens_.front().line;
  while (!at_end()) {
    program->kids.push_back(parse_statement());
  }
  return program;
}

Node* Parser::parse_statement() {
  ParserDepthGuard depth_guard(*this);
  const Token& token = current();
  if (token.type == TokenType::kPunctuator) {
    if (token.value == "{") return parse_block();
    if (token.value == ";") {
      Node* node = ast_.make(NodeKind::kEmptyStatement);
      node->line = token.line;
      advance();
      return node;
    }
  }
  if (token.type == TokenType::kKeyword) {
    if (token.value == "var" || token.value == "const") {
      Node* decl = parse_variable_declaration();
      consume_semicolon();
      return decl;
    }
    if (token.value == "if") return parse_if();
    if (token.value == "for") return parse_for();
    if (token.value == "while") return parse_while();
    if (token.value == "do") return parse_do_while();
    if (token.value == "switch") return parse_switch();
    if (token.value == "try") return parse_try();
    if (token.value == "return") return parse_return();
    if (token.value == "throw") return parse_throw();
    if (token.value == "break") return parse_break_continue(true);
    if (token.value == "continue") return parse_break_continue(false);
    if (token.value == "function") {
      advance();
      return parse_function(/*is_declaration=*/true, /*is_async=*/false);
    }
    if (token.value == "class") return parse_class(/*is_declaration=*/true);
    if (token.value == "debugger") {
      Node* node = ast_.make(NodeKind::kDebuggerStatement);
      node->line = token.line;
      advance();
      consume_semicolon();
      return node;
    }
    if (token.value == "with") return parse_with();
  }
  // Contextual keyword `let` — only a declaration when followed by a
  // binding form.
  if (check_identifier("let") &&
      (peek(1).type == TokenType::kIdentifier || check_punct("[", 1) ||
       check_punct("{", 1))) {
    Node* decl = parse_variable_declaration();
    consume_semicolon();
    return decl;
  }
  // `async function` declaration.
  if (check_identifier("async") && check_keyword("function", 1) &&
      !peek(1).newline_before) {
    advance();
    advance();
    return parse_function(/*is_declaration=*/true, /*is_async=*/true);
  }
  return parse_labeled_or_expression_statement();
}

Node* Parser::parse_block() {
  Node* block = ast_.make(NodeKind::kBlockStatement);
  block->line = current().line;
  expect_punct("{");
  while (!check_punct("}")) {
    if (at_end()) fail("unterminated block");
    block->kids.push_back(parse_statement());
  }
  expect_punct("}");
  return block;
}

Node* Parser::parse_variable_declaration() {
  Node* declaration = ast_.make(NodeKind::kVariableDeclaration);
  declaration->line = current().line;
  declaration->str_value = advance().value;  // var / let / const
  while (true) {
    Node* declarator = ast_.make(NodeKind::kVariableDeclarator);
    declarator->line = current().line;
    Node* target = parse_binding_target();
    Node* init = nullptr;
    if (match_punct("=")) init = parse_assignment();
    declarator->kids = {target, init};
    declaration->kids.push_back(declarator);
    if (!match_punct(",")) break;
  }
  return declaration;
}

Node* Parser::parse_if() {
  Node* node = ast_.make(NodeKind::kIfStatement);
  node->line = current().line;
  expect_keyword("if");
  expect_punct("(");
  Node* test = parse_expression();
  expect_punct(")");
  Node* consequent = parse_statement();
  Node* alternate = nullptr;
  if (match_keyword("else")) alternate = parse_statement();
  node->kids = {test, consequent, alternate};
  return node;
}

Node* Parser::parse_for() {
  const std::size_t line = current().line;
  expect_keyword("for");
  expect_punct("(");

  Node* init = nullptr;
  if (check_punct(";")) {
    advance();
  } else {
    const bool is_decl =
        check_keyword("var") || check_keyword("const") ||
        (check_identifier("let") &&
         (peek(1).type == TokenType::kIdentifier || check_punct("[", 1) ||
          check_punct("{", 1)));
    if (is_decl) {
      init = parse_variable_declaration();
    } else {
      init = parse_expression();
    }
    if (check_keyword("in") || check_identifier("of")) {
      const bool is_of = check_identifier("of");
      advance();
      Node* node = ast_.make(is_of ? NodeKind::kForOfStatement
                                   : NodeKind::kForInStatement);
      node->line = line;
      Node* right = parse_assignment();
      expect_punct(")");
      Node* body = parse_statement();
      node->kids = {init, right, body};
      return node;
    }
    // `for (a in b)` with an expression head: the `in` was consumed as a
    // binary operator by parse_expression; unfold it back.
    if (init != nullptr && init->kind == NodeKind::kBinaryExpression &&
        init->str_value == "in" && check_punct(")")) {
      Node* node = ast_.make(NodeKind::kForInStatement);
      node->line = line;
      advance();  // ')'
      Node* body = parse_statement();
      node->kids = {init->kids[0], init->kids[1], body};
      return node;
    }
    expect_punct(";");
  }

  Node* node = ast_.make(NodeKind::kForStatement);
  node->line = line;
  Node* test = nullptr;
  if (!check_punct(";")) test = parse_expression();
  expect_punct(";");
  Node* update = nullptr;
  if (!check_punct(")")) update = parse_expression();
  expect_punct(")");
  Node* body = parse_statement();
  node->kids = {init, test, update, body};
  return node;
}

Node* Parser::parse_while() {
  Node* node = ast_.make(NodeKind::kWhileStatement);
  node->line = current().line;
  expect_keyword("while");
  expect_punct("(");
  Node* test = parse_expression();
  expect_punct(")");
  Node* body = parse_statement();
  node->kids = {test, body};
  return node;
}

Node* Parser::parse_do_while() {
  Node* node = ast_.make(NodeKind::kDoWhileStatement);
  node->line = current().line;
  expect_keyword("do");
  Node* body = parse_statement();
  expect_keyword("while");
  expect_punct("(");
  Node* test = parse_expression();
  expect_punct(")");
  match_punct(";");  // optional
  node->kids = {body, test};
  return node;
}

Node* Parser::parse_switch() {
  Node* node = ast_.make(NodeKind::kSwitchStatement);
  node->line = current().line;
  expect_keyword("switch");
  expect_punct("(");
  node->kids.push_back(parse_expression());
  expect_punct(")");
  expect_punct("{");
  while (!check_punct("}")) {
    if (at_end()) fail("unterminated switch body");
    Node* switch_case = ast_.make(NodeKind::kSwitchCase);
    switch_case->line = current().line;
    Node* test = nullptr;
    if (match_keyword("case")) {
      test = parse_expression();
    } else {
      expect_keyword("default");
    }
    expect_punct(":");
    switch_case->kids.push_back(test);
    while (!check_punct("}") && !check_keyword("case") &&
           !check_keyword("default")) {
      if (at_end()) fail("unterminated switch case");
      switch_case->kids.push_back(parse_statement());
    }
    node->kids.push_back(switch_case);
  }
  expect_punct("}");
  return node;
}

Node* Parser::parse_try() {
  Node* node = ast_.make(NodeKind::kTryStatement);
  node->line = current().line;
  expect_keyword("try");
  Node* block = parse_block();
  Node* handler = nullptr;
  Node* finalizer = nullptr;
  if (match_keyword("catch")) {
    handler = ast_.make(NodeKind::kCatchClause);
    handler->line = current().line;
    Node* param = nullptr;
    if (match_punct("(")) {
      param = parse_binding_target();
      expect_punct(")");
    }
    Node* body = parse_block();
    handler->kids = {param, body};
  }
  if (match_keyword("finally")) finalizer = parse_block();
  if (handler == nullptr && finalizer == nullptr) {
    fail("try statement requires catch or finally");
  }
  node->kids = {block, handler, finalizer};
  return node;
}

Node* Parser::parse_return() {
  Node* node = ast_.make(NodeKind::kReturnStatement);
  node->line = current().line;
  expect_keyword("return");
  Node* argument = nullptr;
  if (!check_punct(";") && !check_punct("}") && !at_end() &&
      !current().newline_before) {
    argument = parse_expression();
  }
  consume_semicolon();
  node->kids = {argument};
  return node;
}

Node* Parser::parse_throw() {
  Node* node = ast_.make(NodeKind::kThrowStatement);
  node->line = current().line;
  expect_keyword("throw");
  if (current().newline_before) fail("newline after throw");
  node->kids = {parse_expression()};
  consume_semicolon();
  return node;
}

Node* Parser::parse_break_continue(bool is_break) {
  Node* node = ast_.make(is_break ? NodeKind::kBreakStatement
                                  : NodeKind::kContinueStatement);
  node->line = current().line;
  advance();
  Node* label = nullptr;
  if (current().type == TokenType::kIdentifier && !current().newline_before) {
    label = ast_.make_identifier(advance().value);
  }
  consume_semicolon();
  node->kids = {label};
  return node;
}

Node* Parser::parse_labeled_or_expression_statement() {
  if (current().type == TokenType::kIdentifier && check_punct(":", 1)) {
    Node* node = ast_.make(NodeKind::kLabeledStatement);
    node->line = current().line;
    Node* label = ast_.make_identifier(advance().value);
    label->line = node->line;
    advance();  // ':'
    Node* body = parse_statement();
    node->kids = {label, body};
    return node;
  }
  Node* node = ast_.make(NodeKind::kExpressionStatement);
  node->line = current().line;
  node->kids = {parse_expression()};
  consume_semicolon();
  return node;
}

Node* Parser::parse_with() {
  Node* node = ast_.make(NodeKind::kWithStatement);
  node->line = current().line;
  expect_keyword("with");
  expect_punct("(");
  Node* object = parse_expression();
  expect_punct(")");
  Node* body = parse_statement();
  node->kids = {object, body};
  return node;
}

Node* Parser::parse_function(bool is_declaration, bool is_async) {
  Node* node = ast_.make(is_declaration ? NodeKind::kFunctionDeclaration
                                        : NodeKind::kFunctionExpression);
  node->line = current().line;
  node->flag_c = is_async;
  if (match_punct("*")) node->flag_b = true;  // generator
  Node* id = nullptr;
  if (current().type == TokenType::kIdentifier) {
    id = ast_.make_identifier(advance().value);
  } else if (is_declaration) {
    fail("function declaration requires a name");
  }
  node->kids = {id, nullptr};  // body filled below
  return parse_function_rest(node);
}

Node* Parser::parse_function_rest(Node* function_node) {
  ++function_depth_;
  std::vector<Node*> params = parse_params();
  Node* body = parse_block();
  --function_depth_;
  function_node->kids[1] = body;
  for (Node* param : params) function_node->kids.push_back(param);
  return function_node;
}

std::vector<Node*> Parser::parse_params() {
  expect_punct("(");
  std::vector<Node*> params;
  while (!check_punct(")")) {
    if (at_end()) fail("unterminated parameter list");
    if (match_punct("...")) {
      Node* rest = ast_.make(NodeKind::kRestElement);
      rest->line = current().line;
      rest->kids = {parse_binding_target()};
      params.push_back(rest);
    } else {
      params.push_back(parse_binding_element());
    }
    if (!match_punct(",")) break;
  }
  expect_punct(")");
  return params;
}

Node* Parser::parse_binding_element() {
  Node* target = parse_binding_target();
  if (match_punct("=")) {
    Node* pattern = ast_.make(NodeKind::kAssignmentPattern);
    pattern->line = target->line;
    pattern->kids = {target, parse_assignment()};
    return pattern;
  }
  return target;
}

Node* Parser::parse_binding_target() {
  if (check_punct("[")) {
    Node* pattern = ast_.make(NodeKind::kArrayPattern);
    pattern->line = current().line;
    advance();
    while (!check_punct("]")) {
      if (at_end()) fail("unterminated array pattern");
      if (check_punct(",")) {
        pattern->kids.push_back(nullptr);  // hole
        advance();
        continue;
      }
      if (match_punct("...")) {
        Node* rest = ast_.make(NodeKind::kRestElement);
        rest->kids = {parse_binding_target()};
        pattern->kids.push_back(rest);
      } else {
        pattern->kids.push_back(parse_binding_element());
      }
      if (!check_punct("]")) expect_punct(",");
    }
    expect_punct("]");
    return pattern;
  }
  if (check_punct("{")) {
    Node* pattern = ast_.make(NodeKind::kObjectPattern);
    pattern->line = current().line;
    advance();
    while (!check_punct("}")) {
      if (at_end()) fail("unterminated object pattern");
      if (match_punct("...")) {
        Node* rest = ast_.make(NodeKind::kRestElement);
        rest->kids = {parse_binding_target()};
        pattern->kids.push_back(rest);
      } else {
        Node* property = ast_.make(NodeKind::kProperty);
        property->line = current().line;
        property->str_value = "init";
        bool computed = false;
        Node* key = parse_property_key(&computed);
        property->flag_a = computed;
        Node* value = nullptr;
        if (match_punct(":")) {
          value = parse_binding_element();
        } else {
          // Shorthand {a} or {a = default}.
          property->flag_b = true;
          if (key->kind != NodeKind::kIdentifier) {
            fail("shorthand pattern property must be an identifier");
          }
          value = ast_.make_identifier(key->str_value);
          value->line = key->line;
          if (match_punct("=")) {
            Node* with_default = ast_.make(NodeKind::kAssignmentPattern);
            with_default->kids = {value, parse_assignment()};
            value = with_default;
          }
        }
        property->kids = {key, value};
        pattern->kids.push_back(property);
      }
      if (!check_punct("}")) expect_punct(",");
    }
    expect_punct("}");
    return pattern;
  }
  if (current().type == TokenType::kIdentifier ||
      check_keyword("yield")) {  // sloppy-mode binding names
    Node* id = ast_.make_identifier(advance().value);
    return id;
  }
  fail("expected binding target");
}

Node* Parser::parse_class(bool is_declaration) {
  Node* node = ast_.make(is_declaration ? NodeKind::kClassDeclaration
                                        : NodeKind::kClassExpression);
  node->line = current().line;
  expect_keyword("class");
  Node* id = nullptr;
  if (current().type == TokenType::kIdentifier) {
    id = ast_.make_identifier(advance().value);
  } else if (is_declaration) {
    fail("class declaration requires a name");
  }
  Node* super_class = nullptr;
  if (match_keyword("extends")) {
    super_class = parse_postfix();
  }
  Node* body = ast_.make(NodeKind::kClassBody);
  body->line = current().line;
  expect_punct("{");
  while (!check_punct("}")) {
    if (at_end()) fail("unterminated class body");
    if (match_punct(";")) continue;
    Node* method = ast_.make(NodeKind::kMethodDefinition);
    method->line = current().line;
    if (check_identifier("static") && !check_punct("(", 1) &&
        !check_punct("=", 1)) {
      advance();
      method->flag_b = true;
    }
    bool is_async = false;
    bool is_generator = false;
    // View-safe: every candidate value is a string literal (static) or a
    // token payload (arena lifetime), so the node can keep the view.
    std::string_view method_kind = "method";
    if (check_identifier("async") && !check_punct("(", 1) &&
        !peek(1).newline_before) {
      advance();
      is_async = true;
    }
    if (match_punct("*")) is_generator = true;
    if ((check_identifier("get") || check_identifier("set")) &&
        !check_punct("(", 1)) {
      method_kind = advance().value;
    }
    bool computed = false;
    Node* key = parse_property_key(&computed);
    method->flag_a = computed;
    if (method_kind == "method" && key->kind == NodeKind::kIdentifier &&
        key->str_value == "constructor" && !method->flag_b) {
      method_kind = "constructor";
    }
    method->str_value = method_kind;
    Node* function = ast_.make(NodeKind::kFunctionExpression);
    function->line = method->line;
    function->flag_b = is_generator;
    function->flag_c = is_async;
    function->kids = {nullptr, nullptr};
    parse_function_rest(function);
    method->kids = {key, function};
    body->kids.push_back(method);
  }
  expect_punct("}");
  node->kids = {id, super_class, body};
  return node;
}

Node* Parser::parse_expression() {
  Node* first = parse_assignment();
  if (!check_punct(",")) return first;
  Node* sequence = ast_.make(NodeKind::kSequenceExpression);
  sequence->line = first->line;
  sequence->kids.push_back(first);
  while (match_punct(",")) {
    sequence->kids.push_back(parse_assignment());
  }
  return sequence;
}

Node* Parser::parse_assignment() {
  ParserDepthGuard depth_guard(*this);
  // Arrow functions: ident => ... | (params) => ... | async forms.
  if (current().type == TokenType::kIdentifier && check_punct("=>", 1) &&
      !peek(1).newline_before) {
    Node* param = ast_.make_identifier(advance().value);
    advance();  // '=>'
    return parse_arrow_tail({param}, /*is_async=*/false);
  }
  if (check_identifier("async") && !peek(1).newline_before) {
    if (peek(1).type == TokenType::kIdentifier && check_punct("=>", 2)) {
      advance();  // async
      Node* param = ast_.make_identifier(advance().value);
      advance();  // '=>'
      return parse_arrow_tail({param}, /*is_async=*/true);
    }
    if (check_punct("(", 1) && is_arrow_ahead(1)) {
      advance();  // async
      std::vector<Node*> params = parse_params();
      expect_punct("=>");
      return parse_arrow_tail(std::move(params), /*is_async=*/true);
    }
  }
  if (check_punct("(") && is_arrow_ahead(0)) {
    std::vector<Node*> params = parse_params();
    expect_punct("=>");
    return parse_arrow_tail(std::move(params), /*is_async=*/false);
  }
  if (check_keyword("yield")) {
    Node* node = ast_.make(NodeKind::kYieldExpression);
    node->line = current().line;
    advance();
    if (match_punct("*")) node->flag_a = true;
    Node* argument = nullptr;
    if (!at_end() && !current().newline_before && !check_punct(")") &&
        !check_punct("]") && !check_punct("}") && !check_punct(",") &&
        !check_punct(";") && !check_punct(":")) {
      argument = parse_assignment();
    }
    node->kids = {argument};
    return node;
  }

  Node* left = parse_conditional();
  if (current().type == TokenType::kPunctuator &&
      is_assignment_op(current().value)) {
    Node* node = ast_.make(NodeKind::kAssignmentExpression);
    node->line = left->line;
    node->str_value = advance().value;
    Node* right = parse_assignment();
    node->kids = {left, right};
    return node;
  }
  return left;
}

Node* Parser::parse_arrow_tail(std::vector<Node*> params, bool is_async) {
  Node* node = ast_.make(NodeKind::kArrowFunctionExpression);
  node->line = current().line;
  node->flag_c = is_async;
  Node* body = nullptr;
  if (check_punct("{")) {
    ++function_depth_;
    body = parse_block();
    --function_depth_;
  } else {
    node->flag_a = true;  // expression body
    body = parse_assignment();
  }
  node->kids.push_back(body);
  for (Node* param : params) node->kids.push_back(param);
  return node;
}

Node* Parser::parse_conditional() {
  Node* test = parse_binary(0);
  if (!match_punct("?")) return test;
  Node* node = ast_.make(NodeKind::kConditionalExpression);
  node->line = test->line;
  Node* consequent = parse_assignment();
  expect_punct(":");
  Node* alternate = parse_assignment();
  node->kids = {test, consequent, alternate};
  return node;
}

Node* Parser::parse_binary(int min_precedence) {
  Node* left = parse_unary();
  while (true) {
    const int precedence = binary_precedence(current());
    if (precedence < 0 || precedence < min_precedence) break;
    const std::string_view op = advance().value;
    // '**' is right-associative; everything else left-associative.
    const int next_min = (op == "**") ? precedence : precedence + 1;
    Node* right = parse_binary(next_min);
    Node* node = ast_.make(is_logical_op(op) ? NodeKind::kLogicalExpression
                                             : NodeKind::kBinaryExpression);
    node->line = left->line;
    node->str_value = op;
    node->kids = {left, right};
    left = node;
  }
  return left;
}

Node* Parser::parse_unary() {
  ParserDepthGuard depth_guard(*this);
  const Token& token = current();
  if (token.type == TokenType::kPunctuator &&
      (token.value == "!" || token.value == "~" || token.value == "+" ||
       token.value == "-")) {
    Node* node = ast_.make(NodeKind::kUnaryExpression);
    node->line = token.line;
    node->str_value = advance().value;
    node->flag_a = true;  // prefix
    node->kids = {parse_unary()};
    return node;
  }
  if (token.type == TokenType::kKeyword &&
      (token.value == "typeof" || token.value == "void" ||
       token.value == "delete")) {
    Node* node = ast_.make(NodeKind::kUnaryExpression);
    node->line = token.line;
    node->str_value = advance().value;
    node->flag_a = true;
    node->kids = {parse_unary()};
    return node;
  }
  if (token.type == TokenType::kPunctuator &&
      (token.value == "++" || token.value == "--")) {
    Node* node = ast_.make(NodeKind::kUpdateExpression);
    node->line = token.line;
    node->str_value = advance().value;
    node->flag_a = true;  // prefix
    node->kids = {parse_unary()};
    return node;
  }
  if (check_identifier("await") && !peek(1).newline_before &&
      (peek(1).type == TokenType::kIdentifier ||
       peek(1).type == TokenType::kNumericLiteral ||
       peek(1).type == TokenType::kStringLiteral ||
       peek(1).type == TokenType::kTemplate ||
       peek(1).type == TokenType::kBooleanLiteral ||
       peek(1).type == TokenType::kNullLiteral ||
       check_punct("(", 1) || check_punct("[", 1) ||
       check_keyword("this", 1) || check_keyword("new", 1) ||
       check_keyword("function", 1) || check_keyword("typeof", 1) ||
       check_punct("!", 1))) {
    Node* node = ast_.make(NodeKind::kAwaitExpression);
    node->line = token.line;
    advance();
    node->kids = {parse_unary()};
    return node;
  }
  return parse_postfix();
}

Node* Parser::parse_postfix() {
  Node* base = check_keyword("new") ? parse_new() : parse_primary();
  Node* expression = parse_call_member(base, /*allow_call=*/true);
  if ((check_punct("++") || check_punct("--")) && !current().newline_before) {
    Node* node = ast_.make(NodeKind::kUpdateExpression);
    node->line = expression->line;
    node->str_value = advance().value;
    node->flag_a = false;  // postfix
    node->kids = {expression};
    return node;
  }
  return expression;
}

Node* Parser::parse_new() {
  const std::size_t line = current().line;
  expect_keyword("new");
  Node* callee = nullptr;
  if (check_keyword("new")) {
    callee = parse_new();
  } else {
    callee = parse_primary();
    callee = parse_call_member(callee, /*allow_call=*/false);
  }
  Node* node = ast_.make(NodeKind::kNewExpression);
  node->line = line;
  node->kids = {callee};
  if (match_punct("(")) {
    while (!check_punct(")")) {
      if (at_end()) fail("unterminated argument list");
      if (match_punct("...")) {
        Node* spread = ast_.make(NodeKind::kSpreadElement);
        spread->kids = {parse_assignment()};
        node->kids.push_back(spread);
      } else {
        node->kids.push_back(parse_assignment());
      }
      if (!match_punct(",")) break;
    }
    expect_punct(")");
  }
  return parse_call_member(node, /*allow_call=*/true);
}

Node* Parser::parse_call_member(Node* base, bool allow_call) {
  while (true) {
    if (match_punct(".")) {
      Node* node = ast_.make(NodeKind::kMemberExpression);
      node->line = base->line;
      const Token& name = current();
      if (name.type != TokenType::kIdentifier &&
          name.type != TokenType::kKeyword &&
          name.type != TokenType::kBooleanLiteral &&
          name.type != TokenType::kNullLiteral) {
        fail("expected property name after '.'");
      }
      Node* property = ast_.make_identifier(advance().value);
      node->flag_a = false;  // dot notation
      node->kids = {base, property};
      base = node;
    } else if (match_punct("?.")) {
      // Optional chaining: model as a (non-optional) member/call — the
      // syntactic trace (MemberExpression/CallExpression) is what matters.
      if (check_punct("(")) {
        if (!allow_call) break;
        advance();
        Node* node = ast_.make(NodeKind::kCallExpression);
        node->line = base->line;
        node->kids = {base};
        while (!check_punct(")")) {
          if (at_end()) fail("unterminated argument list");
          if (match_punct("...")) {
            Node* spread = ast_.make(NodeKind::kSpreadElement);
            spread->kids = {parse_assignment()};
            node->kids.push_back(spread);
          } else {
            node->kids.push_back(parse_assignment());
          }
          if (!match_punct(",")) break;
        }
        expect_punct(")");
        base = node;
      } else if (check_punct("[")) {
        advance();
        Node* node = ast_.make(NodeKind::kMemberExpression);
        node->line = base->line;
        node->flag_a = true;
        Node* property = parse_expression();
        expect_punct("]");
        node->kids = {base, property};
        base = node;
      } else {
        Node* node = ast_.make(NodeKind::kMemberExpression);
        node->line = base->line;
        Node* property = ast_.make_identifier(advance().value);
        node->kids = {base, property};
        base = node;
      }
    } else if (check_punct("[")) {
      advance();
      Node* node = ast_.make(NodeKind::kMemberExpression);
      node->line = base->line;
      node->flag_a = true;  // bracket (computed) notation
      Node* property = parse_expression();
      expect_punct("]");
      node->kids = {base, property};
      base = node;
    } else if (allow_call && check_punct("(")) {
      advance();
      Node* node = ast_.make(NodeKind::kCallExpression);
      node->line = base->line;
      node->kids = {base};
      while (!check_punct(")")) {
        if (at_end()) fail("unterminated argument list");
        if (match_punct("...")) {
          Node* spread = ast_.make(NodeKind::kSpreadElement);
          spread->kids = {parse_assignment()};
          node->kids.push_back(spread);
        } else {
          node->kids.push_back(parse_assignment());
        }
        if (!match_punct(",")) break;
      }
      expect_punct(")");
      base = node;
    } else if (current().type == TokenType::kTemplate) {
      // Tagged template.
      Node* node = ast_.make(NodeKind::kTaggedTemplateExpression);
      node->line = base->line;
      Node* quasi = parse_template_literal(advance());
      node->kids = {base, quasi};
      base = node;
    } else {
      break;
    }
  }
  return base;
}

Node* Parser::parse_template_literal(const Token& token) {
  Node* node = ast_.make(NodeKind::kTemplateLiteral);
  node->line = token.line;
  // Interleave quasis and parsed substitution expressions:
  // quasi0, expr0, quasi1, ..., quasiN.
  for (std::size_t i = 0; i < token.template_quasis.size(); ++i) {
    Node* quasi = ast_.make(NodeKind::kTemplateElement);
    quasi->line = token.line;
    quasi->str_value = token.template_quasis[i];
    node->kids.push_back(quasi);
    if (i < token.template_expressions.size()) {
      node->kids.push_back(parse_subexpression(token.template_expressions[i]));
    }
  }
  return node;
}

Node* Parser::parse_subexpression(std::string_view source) {
  // `source` is a template-expression view with arena lifetime already
  // (slice of the stable source or arena-cooked), so the nested lexer can
  // cook into the same arena without copying the sub-source again.
  support::Arena& arena = ast_.arena();
  Lexer lexer(source, arena, budget_);
  support::ArenaVec<Token> tokens(arena);
  while (true) {
    Token token = lexer.next();
    if (token.type == TokenType::kEndOfFile) break;
    tokens.push_back(token);
  }
  Parser sub(std::span<const Token>(tokens.data(), tokens.size()), ast_,
             budget_);
  Node* expression = sub.parse_expression();
  if (!sub.at_end()) {
    fail("trailing tokens in template substitution");
  }
  return expression;
}

Node* Parser::parse_array_literal() {
  Node* node = ast_.make(NodeKind::kArrayExpression);
  node->line = current().line;
  expect_punct("[");
  while (!check_punct("]")) {
    if (at_end()) fail("unterminated array literal");
    if (check_punct(",")) {
      node->kids.push_back(nullptr);  // elision
      advance();
      continue;
    }
    if (match_punct("...")) {
      Node* spread = ast_.make(NodeKind::kSpreadElement);
      spread->line = current().line;
      spread->kids = {parse_assignment()};
      node->kids.push_back(spread);
    } else {
      node->kids.push_back(parse_assignment());
    }
    if (!check_punct("]")) expect_punct(",");
  }
  expect_punct("]");
  return node;
}

Node* Parser::parse_property_key(bool* computed) {
  *computed = false;
  const Token& token = current();
  if (check_punct("[")) {
    *computed = true;
    advance();
    Node* key = parse_assignment();
    expect_punct("]");
    return key;
  }
  if (token.type == TokenType::kStringLiteral) {
    Node* key = ast_.make_string(advance().value);
    key->line = token.line;
    return key;
  }
  if (token.type == TokenType::kNumericLiteral) {
    Node* key = ast_.make_number(token.number);
    key->line = token.line;
    key->raw = token.raw;
    advance();
    return key;
  }
  if (token.type == TokenType::kIdentifier ||
      token.type == TokenType::kKeyword ||
      token.type == TokenType::kBooleanLiteral ||
      token.type == TokenType::kNullLiteral) {
    Node* key = ast_.make_identifier(advance().value);
    key->line = token.line;
    return key;
  }
  fail("expected property key");
}

Node* Parser::parse_object_property() {
  Node* property = ast_.make(NodeKind::kProperty);
  property->line = current().line;
  property->str_value = "init";

  // Getter/setter: get/set followed by a key (not ':'/'('/','/'}').
  if ((check_identifier("get") || check_identifier("set")) &&
      !check_punct(":", 1) && !check_punct("(", 1) && !check_punct(",", 1) &&
      !check_punct("}", 1) && !check_punct("=", 1)) {
    property->str_value = advance().value;
    bool computed = false;
    Node* key = parse_property_key(&computed);
    property->flag_a = computed;
    Node* function = ast_.make(NodeKind::kFunctionExpression);
    function->line = property->line;
    function->kids = {nullptr, nullptr};
    parse_function_rest(function);
    property->kids = {key, function};
    return property;
  }

  bool is_async = false;
  bool is_generator = false;
  if (check_identifier("async") && !check_punct(":", 1) &&
      !check_punct("(", 1) && !check_punct(",", 1) && !check_punct("}", 1) &&
      !peek(1).newline_before) {
    advance();
    is_async = true;
  }
  if (match_punct("*")) is_generator = true;

  bool computed = false;
  Node* key = parse_property_key(&computed);
  property->flag_a = computed;

  if (check_punct("(")) {
    // Method shorthand.
    Node* function = ast_.make(NodeKind::kFunctionExpression);
    function->line = property->line;
    function->flag_b = is_generator;
    function->flag_c = is_async;
    function->kids = {nullptr, nullptr};
    parse_function_rest(function);
    property->kids = {key, function};
    return property;
  }
  if (is_async || is_generator) fail("expected method body");

  if (match_punct(":")) {
    property->kids = {key, parse_assignment()};
    return property;
  }
  // Shorthand property {a} or {a = default} (the latter only valid in
  // patterns, accepted here for simplicity).
  if (key->kind != NodeKind::kIdentifier) fail("expected ':' after key");
  property->flag_b = true;
  Node* value = ast_.make_identifier(key->str_value);
  value->line = key->line;
  if (match_punct("=")) {
    Node* with_default = ast_.make(NodeKind::kAssignmentPattern);
    with_default->kids = {value, parse_assignment()};
    value = with_default;
  }
  property->kids = {key, value};
  return property;
}

Node* Parser::parse_object_literal() {
  Node* node = ast_.make(NodeKind::kObjectExpression);
  node->line = current().line;
  expect_punct("{");
  while (!check_punct("}")) {
    if (at_end()) fail("unterminated object literal");
    if (match_punct("...")) {
      Node* spread = ast_.make(NodeKind::kSpreadElement);
      spread->line = current().line;
      spread->kids = {parse_assignment()};
      node->kids.push_back(spread);
    } else {
      node->kids.push_back(parse_object_property());
    }
    if (!check_punct("}")) expect_punct(",");
  }
  expect_punct("}");
  return node;
}

Node* Parser::parse_primary() {
  const Token& token = current();
  switch (token.type) {
    case TokenType::kNumericLiteral: {
      Node* node = ast_.make_number(token.number);
      node->line = token.line;
      node->raw = token.raw;
      advance();
      return node;
    }
    case TokenType::kStringLiteral: {
      Node* node = ast_.make_string(token.value);
      node->line = token.line;
      node->raw = token.raw;
      advance();
      return node;
    }
    case TokenType::kBooleanLiteral: {
      Node* node = ast_.make_bool(token.value == "true");
      node->line = token.line;
      advance();
      return node;
    }
    case TokenType::kNullLiteral: {
      Node* node = ast_.make_null();
      node->line = token.line;
      advance();
      return node;
    }
    case TokenType::kRegularExpression: {
      Node* node = ast_.make_regex(token.value, token.regex_flags);
      node->line = token.line;
      advance();
      return node;
    }
    case TokenType::kTemplate: {
      return parse_template_literal(advance());
    }
    case TokenType::kIdentifier: {
      Node* node = ast_.make_identifier(advance().value);
      node->line = token.line;
      return node;
    }
    case TokenType::kKeyword: {
      if (token.value == "this") {
        Node* node = ast_.make(NodeKind::kThisExpression);
        node->line = token.line;
        advance();
        return node;
      }
      if (token.value == "super") {
        Node* node = ast_.make(NodeKind::kSuper);
        node->line = token.line;
        advance();
        return node;
      }
      if (token.value == "function") {
        advance();
        return parse_function(/*is_declaration=*/false, /*is_async=*/false);
      }
      if (token.value == "class") {
        return parse_class(/*is_declaration=*/false);
      }
      if (token.value == "new") {
        return parse_new();
      }
      fail("unexpected keyword '" + std::string(token.value) + "' in expression");
    }
    case TokenType::kPunctuator: {
      if (token.value == "(") {
        advance();
        Node* expression = parse_expression();
        expect_punct(")");
        return expression;
      }
      if (token.value == "[") return parse_array_literal();
      if (token.value == "{") return parse_object_literal();
      fail("unexpected token '" + std::string(token.value) + "'");
    }
    default:
      fail("unexpected token");
  }
}

}  // namespace jst
