// String obfuscation (gnirts / custom-encoding style): string literals are
// split into concatenation chains, rewritten with hex escape sequences, or
// rebuilt through String.fromCharCode.
#include <string_view>
#include "ast/walk.h"
#include "codegen/codegen.h"
#include "parser/parser.h"
#include "transform/transform.h"

namespace jst::transform {
namespace {

// True when the literal may be rewritten into an arbitrary expression.
// Property keys, object-pattern keys, and method keys must stay literals.
bool rewritable_position(const Node& literal) {
  const Node* parent = literal.parent;
  if (parent == nullptr) return false;
  switch (parent->kind) {
    case NodeKind::kProperty:
    case NodeKind::kMethodDefinition:
      // key position = kids[0]; value position is fine (unless computed).
      return parent->kid(0) != &literal || parent->flag_a;
    default:
      return true;
  }
}

Node* make_concat_chain(Ast& ast, std::string_view value,
                        std::size_t chunk_count, Rng& rng) {
  // Split into chunk_count pieces at random cut points.
  std::vector<std::string_view> chunks;
  std::size_t start = 0;
  for (std::size_t i = 1; i < chunk_count && start < value.size(); ++i) {
    const std::size_t remaining = value.size() - start;
    const std::size_t take =
        1 + rng.index(std::max<std::size_t>(remaining / (chunk_count - i + 1),
                                            1));
    chunks.push_back(value.substr(start, take));
    start += take;
  }
  chunks.push_back(value.substr(start));

  Node* left = ast.make_string(chunks[0]);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    Node* plus = ast.make(NodeKind::kBinaryExpression);
    plus->str_value = "+";
    plus->kids = {left, ast.make_string(chunks[i])};
    left = plus;
  }
  return left;
}

Node* make_from_char_code(Ast& ast, std::string_view value) {
  // String.fromCharCode(c0, c1, ...)
  Node* string_id = ast.make_identifier("String");
  Node* member = ast.make(NodeKind::kMemberExpression);
  member->kids = {string_id, ast.make_identifier("fromCharCode")};
  Node* call = ast.make(NodeKind::kCallExpression);
  call->kids = {member};
  for (unsigned char c : value) {
    call->kids.push_back(ast.make_number(static_cast<double>(c)));
  }
  return call;
}

}  // namespace

std::string obfuscate_strings(std::string_view source, Rng& rng,
                              const StringObfuscationOptions& options) {
  ParseResult parsed = parse_program(source);
  Ast& ast = parsed.ast;
  ast.finalize();  // parents needed for position checks

  std::vector<Node*> strings_found;
  walk_preorder(ast.root(), [&strings_found](Node& node) {
    if (node.kind == NodeKind::kLiteral &&
        node.lit_kind == LiteralKind::kString && !node.str_value.empty()) {
      strings_found.push_back(&node);
    }
  });

  for (Node* literal : strings_found) {
    // One action per literal, chosen by the roll; if the chosen action is
    // not applicable at this position, the literal stays untouched.
    const double roll = rng.uniform();
    if (roll < options.char_code_probability) {
      if (!rewritable_position(*literal) || literal->str_value.size() > 48) {
        continue;
      }
      // Replace in the parent's child slot.
      Node* replacement = make_from_char_code(ast, literal->str_value);
      Node* parent = literal->parent;
      for (Node*& kid : parent->kids) {
        if (kid == literal) kid = replacement;
      }
    } else if (roll < options.char_code_probability +
                          options.split_probability) {
      if (!rewritable_position(*literal) || literal->str_value.size() < 4) {
        continue;
      }
      const std::size_t chunk_count =
          2 + rng.index(options.max_split_chunks - 1);
      Node* replacement =
          make_concat_chain(ast, literal->str_value, chunk_count, rng);
      // Randomly hex-escape some chunks of the chain too.
      walk_preorder(replacement, [&rng](Node& node) {
        if (node.kind == NodeKind::kLiteral &&
            node.lit_kind == LiteralKind::kString && rng.bernoulli(0.5)) {
          node.flag_a = true;
        }
      });
      Node* parent = literal->parent;
      for (Node*& kid : parent->kids) {
        if (kid == literal) kid = replacement;
      }
    } else if (roll < options.char_code_probability +
                          options.split_probability +
                          options.hex_escape_probability) {
      literal->flag_a = true;  // force \xHH escapes at codegen
    }
  }
  ast.finalize();
  return to_source(ast.root());
}

}  // namespace jst::transform
