// Robustness sweeps: randomly mutated / truncated / garbage inputs must
// never crash the lexer, parser, or analysis pipeline — every failure is
// a clean ParseError. This is the property a static analyzer of
// adversarial JavaScript must hold unconditionally.
#include <gtest/gtest.h>

#include "corpus/generator.h"
#include "corpus/snippets.h"
#include "features/feature_extractor.h"
#include "parser/parser.h"
#include "support/rng.h"

namespace jst {
namespace {

// Parses and, when parseable, pushes the result through the full feature
// pipeline. Returns true if it parsed. Any exception other than
// ParseError fails the test.
bool survives(const std::string& source) {
  try {
    features::FeatureConfig config;
    config.ngram.hash_dim = 32;
    features::extract_from_source(source, config);
    return true;
  } catch (const ParseError&) {
    return false;  // clean rejection
  }
}

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, ByteMutationsNeverCrash) {
  Rng rng(GetParam());
  corpus::ProgramGenerator generator(GetParam() * 31 + 1);
  corpus::GeneratorOptions options;
  options.min_bytes = 600;
  std::string source = generator.generate(options);

  for (int round = 0; round < 60; ++round) {
    std::string mutated = source;
    const std::size_t edits = 1 + rng.index(8);
    for (std::size_t e = 0; e < edits && !mutated.empty(); ++e) {
      const std::size_t position = rng.index(mutated.size());
      switch (rng.index(4)) {
        case 0:  // flip to random printable
          mutated[position] =
              static_cast<char>(32 + rng.index(95));
          break;
        case 1:  // delete
          mutated.erase(position, 1 + rng.index(4));
          break;
        case 2:  // duplicate a slice
          mutated.insert(position,
                         mutated.substr(position, 1 + rng.index(12)));
          break;
        default:  // insert structural character
          mutated.insert(position, 1, "{}()[];'\"`\\$"[rng.index(12)]);
      }
    }
    survives(mutated);  // must not crash either way
  }
  SUCCEED();
}

TEST_P(MutationFuzz, TruncationsNeverCrash) {
  corpus::ProgramGenerator generator(GetParam() * 17 + 3);
  corpus::GeneratorOptions options;
  options.min_bytes = 800;
  const std::string source = generator.generate(options);
  for (std::size_t cut = 1; cut < source.size(); cut += 37) {
    survives(source.substr(0, cut));
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Fuzz, PureGarbage) {
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::string garbage;
    const std::size_t size = 1 + rng.index(300);
    for (std::size_t i = 0; i < size; ++i) {
      garbage.push_back(static_cast<char>(rng.index(256)));
    }
    survives(garbage);
  }
  SUCCEED();
}

TEST(Fuzz, PathologicalRepetition) {
  // Deep/long constructs that stress recursion and buffers.
  survives(std::string(5000, '('));
  survives(std::string(5000, '['));
  survives(std::string(5000, '{'));
  survives("var x = " + std::string(2000, '!') + "1;");
  survives("a" + std::string(3000, '.') + "b;");
  std::string chain = "x = 1";
  for (int i = 0; i < 4000; ++i) chain += " + 1";
  EXPECT_TRUE(survives(chain + ";"));
  SUCCEED();
}

TEST(Fuzz, UnterminatedConstructsRejectCleanly) {
  EXPECT_FALSE(survives("var s = \"unterminated"));
  EXPECT_FALSE(survives("var t = `unterminated ${x"));
  EXPECT_FALSE(survives("/* comment never ends"));
  EXPECT_FALSE(survives("var r = /regex"));
  EXPECT_FALSE(survives("function f( {"));
}

TEST(Fuzz, SnippetCrossSplicing) {
  // Concatenate random halves of different snippets: usually invalid,
  // must always be handled cleanly.
  Rng rng(7);
  const auto snippets = corpus::seed_snippets();
  for (int round = 0; round < 60; ++round) {
    const std::string_view a = snippets[rng.index(snippets.size())];
    const std::string_view b = snippets[rng.index(snippets.size())];
    const std::string spliced =
        std::string(a.substr(0, rng.index(a.size()))) +
        std::string(b.substr(rng.index(b.size())));
    survives(spliced);
  }
  SUCCEED();
}

}  // namespace
}  // namespace jst
