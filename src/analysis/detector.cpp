#include "analysis/detector.h"

#include <istream>
#include <ostream>

#include "analysis/model_io.h"
#include "support/error.h"

namespace jst::analysis {
namespace {

std::unique_ptr<ml::MultiLabelClassifier> make_classifier(bool chain) {
  if (chain) return std::make_unique<ml::ClassifierChain>();
  return std::make_unique<ml::BinaryRelevance>();
}

// Fallback scratch for the conveniences that do not take one.
ml::PredictScratch& thread_scratch() {
  static thread_local ml::PredictScratch scratch;
  return scratch;
}

// Compiles the fitted classifier for the fast prediction path. A model
// that exceeds the compact 16-bit node-table limits (far beyond anything
// jstraced trains, but loadable from a foreign file) stays uncompiled
// and predicts through the bit-identical reference path instead.
ml::CompiledEnsemble compile_or_fallback(
    const ml::MultiLabelClassifier& classifier) {
  try {
    return ml::CompiledEnsemble::compile(classifier);
  } catch (const ModelError&) {
    return {};
  }
}

}  // namespace

Level1Detector::Level1Detector(DetectorConfig config)
    : config_(std::move(config)),
      classifier_(make_classifier(config_.classifier_chain)) {}

void Level1Detector::fit(const ml::Matrix& data, const ml::LabelMatrix& labels,
                         Rng& rng) {
  if (!labels.empty() && labels[0].size() != 3) {
    throw ModelError("Level1Detector::fit: expected 3 label columns");
  }
  classifier_->fit(data, labels, config_.forest, rng);
  compiled_ = compile_or_fallback(*classifier_);
}

Level1Detector::Prediction Level1Detector::predict(
    std::span<const float> row, ml::PredictScratch& scratch) const {
  Prediction prediction;
  if (compiled_.compiled()) {
    compiled_.predict_proba(row, scratch, scratch.proba);
    prediction.p_regular = scratch.proba[0];
    prediction.p_minified = scratch.proba[1];
    prediction.p_obfuscated = scratch.proba[2];
    return prediction;
  }
  // Untrained (or not yet compiled) — the reference classifier reports
  // the canonical error.
  const std::vector<double> probabilities = classifier_->predict_proba(row);
  prediction.p_regular = probabilities[0];
  prediction.p_minified = probabilities[1];
  prediction.p_obfuscated = probabilities[2];
  return prediction;
}

Level1Detector::Prediction Level1Detector::predict(
    std::span<const float> row) const {
  return predict(row, thread_scratch());
}

void Level1Detector::save(std::ostream& out, ml::ModelEncoding encoding) const {
  write_model_header(out, make_model_header("level1", config_));
  classifier_->save(out, encoding);
}

void Level1Detector::load(std::istream& in) {
  check_model_header(in, make_model_header("level1", config_));
  classifier_->load(in);
  compiled_ = compile_or_fallback(*classifier_);
}

Level2Detector::Level2Detector(DetectorConfig config)
    : config_(std::move(config)),
      classifier_(make_classifier(config_.classifier_chain)) {}

void Level2Detector::fit(const ml::Matrix& data, const ml::LabelMatrix& labels,
                         Rng& rng) {
  if (!labels.empty() && labels[0].size() != transform::kTechniqueCount) {
    throw ModelError("Level2Detector::fit: expected 10 label columns");
  }
  classifier_->fit(data, labels, config_.forest, rng);
  compiled_ = compile_or_fallback(*classifier_);
}

void Level2Detector::predict_proba(std::span<const float> row,
                                   ml::PredictScratch& scratch,
                                   std::vector<double>& out) const {
  if (compiled_.compiled()) {
    compiled_.predict_proba(row, scratch, out);
    return;
  }
  out = classifier_->predict_proba(row);
}

std::vector<double> Level2Detector::predict_proba(
    std::span<const float> row) const {
  std::vector<double> out;
  predict_proba(row, thread_scratch(), out);
  return out;
}

std::vector<transform::Technique> Level2Detector::predict_techniques(
    std::span<const float> row, ml::PredictScratch& scratch) const {
  if (compiled_.compiled()) {
    compiled_.predict_topk_thresholded(row, config_.level2_topk,
                                       config_.level2_threshold, scratch,
                                       scratch.picked);
    return techniques_from_indices(scratch.picked);
  }
  return techniques_from_indices(classifier_->predict_topk_thresholded(
      row, config_.level2_topk, config_.level2_threshold));
}

std::vector<transform::Technique> Level2Detector::predict_techniques(
    std::span<const float> row) const {
  return predict_techniques(row, thread_scratch());
}

std::vector<transform::Technique> Level2Detector::predict_topk(
    std::span<const float> row, std::size_t k) const {
  if (compiled_.compiled()) {
    ml::PredictScratch& scratch = thread_scratch();
    compiled_.predict_topk(row, k, scratch, scratch.picked);
    return techniques_from_indices(scratch.picked);
  }
  return techniques_from_indices(classifier_->predict_topk(row, k));
}

void Level2Detector::save(std::ostream& out, ml::ModelEncoding encoding) const {
  write_model_header(out, make_model_header("level2", config_));
  classifier_->save(out, encoding);
}

void Level2Detector::load(std::istream& in) {
  check_model_header(in, make_model_header("level2", config_));
  classifier_->load(in);
  compiled_ = compile_or_fallback(*classifier_);
}

}  // namespace jst::analysis
