file(REMOVE_RECURSE
  "libjst_codegen.a"
)
