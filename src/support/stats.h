// Descriptive statistics helpers for feature extraction and experiment
// reporting.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace jst::stats {

double mean(std::span<const double> values);           // 0 when empty
double variance(std::span<const double> values);       // population variance
double stddev(std::span<const double> values);
double median(std::span<const double> values);         // 0 when empty
double percentile(std::span<const double> values, double p);  // p in [0,100]
double min(std::span<const double> values);            // 0 when empty
double max(std::span<const double> values);            // 0 when empty

// Relative standard deviation in percent (100 * stddev / mean); 0 when the
// mean is 0.
double relative_stddev_percent(std::span<const double> values);

// Shannon entropy (bits) of the byte distribution of `data`.
double byte_entropy(std::span<const unsigned char> data);

// Running mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace jst::stats
