#include "analysis/labels.h"

namespace jst::analysis {

Level1Truth level1_from_techniques(
    const std::vector<transform::Technique>& techniques) {
  Level1Truth truth;
  if (techniques.empty()) {
    truth.regular = true;
    return truth;
  }
  for (transform::Technique technique : techniques) {
    if (transform::is_minification(technique)) {
      truth.minified = true;
    } else {
      truth.obfuscated = true;
    }
  }
  return truth;
}

std::vector<std::uint8_t> technique_row(
    const std::vector<transform::Technique>& techniques) {
  std::vector<std::uint8_t> row(transform::kTechniqueCount, 0);
  for (transform::Technique technique : techniques) {
    row[static_cast<std::size_t>(technique)] = 1;
  }
  return row;
}

std::vector<transform::Technique> techniques_from_indices(
    const std::vector<std::size_t>& indices) {
  std::vector<transform::Technique> out;
  out.reserve(indices.size());
  for (std::size_t index : indices) {
    out.push_back(static_cast<transform::Technique>(index));
  }
  return out;
}

std::vector<std::size_t> indices_from_techniques(
    const std::vector<transform::Technique>& techniques) {
  std::vector<std::size_t> out;
  out.reserve(techniques.size());
  for (transform::Technique technique : techniques) {
    out.push_back(static_cast<std::size_t>(technique));
  }
  return out;
}

}  // namespace jst::analysis
