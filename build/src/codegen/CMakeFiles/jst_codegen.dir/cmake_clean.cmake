file(REMOVE_RECURSE
  "CMakeFiles/jst_codegen.dir/codegen.cpp.o"
  "CMakeFiles/jst_codegen.dir/codegen.cpp.o.d"
  "libjst_codegen.a"
  "libjst_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
