// AST -> JavaScript source printer.
//
// Two modes:
//  - Pretty: indented, one statement per line, spaces around operators —
//    the "regular code" shape.
//  - Minified: no redundant whitespace, everything on one line — the shape
//    produced by minifiers (the minification transformers build on this).
//
// The printer is precedence-aware: children are parenthesized exactly when
// required, so print(parse(print(ast))) is a fixed point.
#pragma once

#include <string>

#include "ast/ast.h"

namespace jst {

struct CodegenOptions {
  bool minify = false;
  // Indentation width for pretty mode.
  int indent_width = 2;
  // In minified mode, insert a newline after roughly this many characters
  // (0 = never). Real minifiers wrap around 500-32000 chars; keeping a
  // finite line length makes char-per-line features realistic.
  std::size_t minified_line_limit = 0;
  // Prefer single quotes for string literals.
  bool single_quotes = false;
};

// Renders a full program (or any statement/expression subtree).
std::string generate(const Node* root, const CodegenOptions& options = {});

// Convenience wrappers.
std::string to_source(const Node* root);           // pretty
std::string to_minified_source(const Node* root);  // minified

}  // namespace jst
