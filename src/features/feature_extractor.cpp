#include "features/feature_extractor.h"

#include <algorithm>
#include <cstdint>

#include "ast/walk.h"

namespace jst::features {

std::size_t feature_dimension(const FeatureConfig& config) {
  std::size_t dimension = 0;
  if (config.use_handpicked) dimension += handpicked_feature_names().size();
  if (config.use_ngrams) dimension += config.ngram.hash_dim;
  return dimension;
}

std::vector<std::string> feature_names(const FeatureConfig& config) {
  std::vector<std::string> names;
  if (config.use_handpicked) {
    names = handpicked_feature_names();
  }
  if (config.use_ngrams) {
    for (std::size_t i = 0; i < config.ngram.hash_dim; ++i) {
      names.push_back("ngram" + std::to_string(config.ngram.n) + "_" +
                      std::to_string(i));
    }
  }
  return names;
}

std::vector<float> extract(const ScriptAnalysis& analysis,
                           const FeatureConfig& config) {
  std::vector<float> out;
  out.reserve(feature_dimension(config));
  if (config.use_handpicked) {
    std::vector<float> handpicked = handpicked_features(analysis);
    out.insert(out.end(), handpicked.begin(), handpicked.end());
  }
  if (config.use_ngrams) {
    std::vector<float> ngrams =
        ngram_features(analysis.parse.ast.root(), config.ngram);
    out.insert(out.end(), ngrams.begin(), ngrams.end());
  }
  return out;
}

std::vector<float> extract_from_source(std::string_view source,
                                       const FeatureConfig& config) {
  const ScriptAnalysis analysis = analyze_script(source, config.analysis);
  return extract(analysis, config);
}

const std::vector<float>& extract_into(const ScriptAnalysis& analysis,
                                       const FeatureConfig& config,
                                       ExtractScratch& scratch) {
  ++scratch.uses;
  scratch.row.clear();
  const Node* root = analysis.parse.ast.root();

  const std::size_t n = config.ngram.n;
  const std::size_t hash_dim = config.ngram.hash_dim;
  const bool want_handpicked = config.use_handpicked;
  // The incremental ring needs n >= 1 in-flight hash states; n == 0 is a
  // degenerate configuration nobody uses, handled by the reference path
  // below so the two implementations never diverge.
  const bool want_ngrams = config.use_ngrams && hash_dim > 0 && n > 0;

  ExtractCounters& counters = scratch.counters;
  if (want_handpicked) {
    counters.reset();
    scratch.level_counts.clear();
  }
  if (want_ngrams) {
    scratch.ngram_histogram.assign(hash_dim, 0.0f);
    scratch.fnv_ring.assign(n, 0);
  }

  std::size_t max_depth = 0;
  std::size_t node_index = 0;
  if (root != nullptr && (want_handpicked || want_ngrams)) {
    for_each_preorder_depth(
        root, scratch.walk_stack,
        [&](const Node& node, std::size_t depth) {
          if (want_handpicked) {
            gather_handpicked(node, counters);
            if (depth > max_depth) max_depth = depth;
            const std::size_t level = depth - 1;
            if (level >= scratch.level_counts.size()) {
              scratch.level_counts.resize(level + 1, 0);
            }
            ++scratch.level_counts[level];
          }
          if (want_ngrams) {
            // Ring of FNV-1a partial states, one per in-flight window:
            // the slot for the window starting at this node resets to the
            // offset basis, every slot absorbs this node's kind byte, and
            // the window that just saw its n-th byte emits. Windows emit
            // in the same order the reference hasher iterates them, so
            // the float histogram increments identically.
            const auto byte = static_cast<std::uint8_t>(node.kind);
            scratch.fnv_ring[node_index % n] = kFnvOffsetBasis;
            for (std::uint64_t& hash : scratch.fnv_ring) {
              hash = (hash ^ byte) * kFnvPrime;
            }
            if (node_index + 1 >= n) {
              ++scratch
                    .ngram_histogram[scratch.fnv_ring[(node_index + 1) % n] %
                                     hash_dim];
            }
          }
          ++node_index;
        });
  }

  if (want_handpicked) {
    const std::size_t breadth =
        scratch.level_counts.empty()
            ? 0
            : *std::max_element(scratch.level_counts.begin(),
                                scratch.level_counts.end());
    assemble_handpicked(analysis, counters, max_depth, breadth, scratch.row);
  }
  if (want_ngrams) {
    const std::size_t windows = ngram_window_count(node_index, n);
    if (windows > 0) {
      const float scale = 1.0f / static_cast<float>(windows);
      for (float& value : scratch.ngram_histogram) value *= scale;
    }
    scratch.row.insert(scratch.row.end(), scratch.ngram_histogram.begin(),
                       scratch.ngram_histogram.end());
  } else if (config.use_ngrams) {
    const std::vector<float> reference = ngram_features(root, config.ngram);
    scratch.row.insert(scratch.row.end(), reference.begin(), reference.end());
  }
  return scratch.row;
}

}  // namespace jst::features
