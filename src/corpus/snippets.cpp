#include "corpus/snippets.h"

#include <array>

namespace jst::corpus {
namespace {

constexpr std::string_view kEventEmitter = R"JS(
// Minimal event emitter, modeled after the Node.js API surface.
function EventEmitter() {
  this.listeners = {};
}

EventEmitter.prototype.on = function (name, handler) {
  if (!this.listeners[name]) {
    this.listeners[name] = [];
  }
  this.listeners[name].push(handler);
  return this;
};

EventEmitter.prototype.off = function (name, handler) {
  var bucket = this.listeners[name];
  if (!bucket) {
    return this;
  }
  var index = bucket.indexOf(handler);
  if (index >= 0) {
    bucket.splice(index, 1);
  }
  return this;
};

EventEmitter.prototype.emit = function (name) {
  var bucket = this.listeners[name] || [];
  var args = Array.prototype.slice.call(arguments, 1);
  for (var i = 0; i < bucket.length; i++) {
    try {
      bucket[i].apply(this, args);
    } catch (err) {
      console.error("listener failed", err);
    }
  }
  return bucket.length > 0;
};
)JS";

constexpr std::string_view kFetchWrapper = R"JS(
/**
 * Tiny fetch wrapper with a JSON convenience layer and retries.
 */
const DEFAULT_RETRIES = 3;

async function requestJson(url, options = {}) {
  const retries = options.retries || DEFAULT_RETRIES;
  let lastError = null;
  for (let attempt = 0; attempt < retries; attempt++) {
    try {
      const response = await fetch(url, {
        method: options.method || "GET",
        headers: { "Content-Type": "application/json" },
        body: options.body ? JSON.stringify(options.body) : undefined,
      });
      if (!response.ok) {
        throw new Error("HTTP " + response.status);
      }
      return await response.json();
    } catch (err) {
      lastError = err;
      await new Promise((resolve) => setTimeout(resolve, 100 * (attempt + 1)));
    }
  }
  throw lastError;
}

function buildQuery(params) {
  return Object.keys(params)
    .filter((key) => params[key] !== undefined)
    .map((key) => key + "=" + encodeURIComponent(params[key]))
    .join("&");
}
)JS";

constexpr std::string_view kDomUtils = R"JS(
// DOM helpers in the style of a small utility library.
var dom = (function () {
  function byId(id) {
    return document.getElementById(id);
  }

  function create(tag, className, text) {
    var node = document.createElement(tag);
    if (className) {
      node.className = className;
    }
    if (text) {
      node.textContent = text;
    }
    return node;
  }

  function toggle(element, visible) {
    element.style.display = visible ? "" : "none";
  }

  function delegate(root, selector, type, handler) {
    root.addEventListener(type, function (event) {
      var target = event.target;
      while (target && target !== root) {
        if (target.matches(selector)) {
          handler.call(target, event);
          return;
        }
        target = target.parentNode;
      }
    });
  }

  return { byId: byId, create: create, toggle: toggle, delegate: delegate };
})();
)JS";

constexpr std::string_view kLruCache = R"JS(
class LruCache {
  constructor(capacity) {
    this.capacity = capacity;
    this.map = new Map();
  }

  get(key) {
    if (!this.map.has(key)) {
      return undefined;
    }
    const value = this.map.get(key);
    this.map.delete(key);
    this.map.set(key, value);
    return value;
  }

  put(key, value) {
    if (this.map.has(key)) {
      this.map.delete(key);
    } else if (this.map.size >= this.capacity) {
      const oldest = this.map.keys().next().value;
      this.map.delete(oldest);
    }
    this.map.set(key, value);
  }

  get size() {
    return this.map.size;
  }
}

module.exports = LruCache;
)JS";

constexpr std::string_view kValidation = R"JS(
// Form validation rules, data-driven.
var rules = {
  required: function (value) {
    return value !== null && value !== undefined && value !== "";
  },
  minLength: function (value, limit) {
    return typeof value === "string" && value.length >= limit;
  },
  pattern: function (value, re) {
    return re.test(String(value));
  },
};

function validate(fields, spec) {
  var errors = [];
  for (var name in spec) {
    var checks = spec[name];
    var value = fields[name];
    for (var i = 0; i < checks.length; i++) {
      var check = checks[i];
      var rule = rules[check.rule];
      if (!rule) {
        throw new Error("unknown rule: " + check.rule);
      }
      if (!rule(value, check.arg)) {
        errors.push({ field: name, rule: check.rule });
        break;
      }
    }
  }
  return { ok: errors.length === 0, errors: errors };
}
)JS";

constexpr std::string_view kStateStore = R"JS(
// A small observable store, redux-flavored.
function createStore(reducer, initialState) {
  let state = initialState;
  const subscribers = [];

  function getState() {
    return state;
  }

  function dispatch(action) {
    state = reducer(state, action);
    subscribers.forEach((fn) => fn(state));
    return action;
  }

  function subscribe(fn) {
    subscribers.push(fn);
    return function unsubscribe() {
      const index = subscribers.indexOf(fn);
      if (index >= 0) {
        subscribers.splice(index, 1);
      }
    };
  }

  dispatch({ type: "@@init" });
  return { getState, dispatch, subscribe };
}

const counter = (state = { count: 0 }, action) => {
  switch (action.type) {
    case "increment":
      return { count: state.count + 1 };
    case "decrement":
      return { count: state.count - 1 };
    default:
      return state;
  }
};
)JS";

constexpr std::string_view kDateFormat = R"JS(
// Date formatting without dependencies.
var MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
              "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];

function pad(value, width) {
  var text = String(value);
  while (text.length < width) {
    text = "0" + text;
  }
  return text;
}

function formatDate(date, pattern) {
  return pattern
    .replace("YYYY", String(date.getFullYear()))
    .replace("MMM", MONTHS[date.getMonth()])
    .replace("MM", pad(date.getMonth() + 1, 2))
    .replace("DD", pad(date.getDate(), 2))
    .replace("hh", pad(date.getHours(), 2))
    .replace("mm", pad(date.getMinutes(), 2))
    .replace("ss", pad(date.getSeconds(), 2));
}

function relativeTime(from, to) {
  var delta = Math.max(0, to - from) / 1000;
  if (delta < 60) return "just now";
  if (delta < 3600) return Math.floor(delta / 60) + " minutes ago";
  if (delta < 86400) return Math.floor(delta / 3600) + " hours ago";
  return Math.floor(delta / 86400) + " days ago";
}
)JS";

constexpr std::string_view kDebounce = R"JS(
// Rate-limiting helpers found in virtually every frontend bundle.
function debounce(fn, wait) {
  var timer = null;
  return function () {
    var context = this;
    var args = arguments;
    if (timer) {
      clearTimeout(timer);
    }
    timer = setTimeout(function () {
      timer = null;
      fn.apply(context, args);
    }, wait);
  };
}

function throttle(fn, interval) {
  var last = 0;
  var pending = null;
  return function () {
    var now = Date.now();
    var args = arguments;
    if (now - last >= interval) {
      last = now;
      fn.apply(this, args);
    } else if (!pending) {
      var remaining = interval - (now - last);
      var context = this;
      pending = setTimeout(function () {
        pending = null;
        last = Date.now();
        fn.apply(context, args);
      }, remaining);
    }
  };
}
)JS";

constexpr std::string_view kRouter = R"JS(
// Hash-based router with parameter extraction.
const routes = [];

function route(pattern, handler) {
  const names = [];
  const regex = new RegExp(
    "^" +
      pattern.replace(/:([a-zA-Z]+)/g, function (match, name) {
        names.push(name);
        return "([^/]+)";
      }) +
      "$"
  );
  routes.push({ regex: regex, names: names, handler: handler });
}

function navigate(path) {
  for (const entry of routes) {
    const match = entry.regex.exec(path);
    if (match) {
      const params = {};
      entry.names.forEach(function (name, index) {
        params[name] = decodeURIComponent(match[index + 1]);
      });
      return entry.handler(params);
    }
  }
  return null;
}

window.addEventListener("hashchange", function () {
  navigate(location.hash.slice(1) || "/");
});
)JS";

constexpr std::string_view kCsvParser = R"JS(
// Small CSV parser handling quotes and escaped quotes.
function parseCsv(text, delimiter) {
  delimiter = delimiter || ",";
  var rows = [];
  var row = [];
  var field = "";
  var inQuotes = false;
  for (var i = 0; i < text.length; i++) {
    var ch = text[i];
    if (inQuotes) {
      if (ch === '"') {
        if (text[i + 1] === '"') {
          field += '"';
          i++;
        } else {
          inQuotes = false;
        }
      } else {
        field += ch;
      }
    } else if (ch === '"') {
      inQuotes = true;
    } else if (ch === delimiter) {
      row.push(field);
      field = "";
    } else if (ch === "\n") {
      row.push(field);
      rows.push(row);
      row = [];
      field = "";
    } else if (ch !== "\r") {
      field += ch;
    }
  }
  if (field.length > 0 || row.length > 0) {
    row.push(field);
    rows.push(row);
  }
  return rows;
}

module.exports = { parseCsv: parseCsv };
)JS";

constexpr std::array<std::string_view, 10> kSnippets = {
    kEventEmitter, kFetchWrapper, kDomUtils,  kLruCache, kValidation,
    kStateStore,   kDateFormat,   kDebounce,  kRouter,   kCsvParser,
};

}  // namespace

std::span<const std::string_view> seed_snippets() { return kSnippets; }

}  // namespace jst::corpus
