file(REMOVE_RECURSE
  "CMakeFiles/bench_rank_effect.dir/bench_rank_effect.cpp.o"
  "CMakeFiles/bench_rank_effect.dir/bench_rank_effect.cpp.o.d"
  "bench_rank_effect"
  "bench_rank_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rank_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
