# Empty compiler generated dependencies file for jst_interp.
# This may be replaced when dependencies are built.
