#include "features/ngram.h"

#include "ast/walk.h"
#include "support/strings.h"

namespace jst::features {

std::vector<float> ngram_features(const Node* root, const NgramConfig& config) {
  std::vector<float> histogram(config.hash_dim, 0.0f);
  const std::vector<NodeKind> kinds = preorder_kinds(root);
  if (kinds.size() < config.n || config.hash_dim == 0) return histogram;

  const std::size_t windows = kinds.size() - config.n + 1;
  for (std::size_t i = 0; i < windows; ++i) {
    // FNV-1a over the kind bytes of the window.
    std::uint64_t hash = kFnvOffsetBasis;
    for (std::size_t j = 0; j < config.n; ++j) {
      hash ^= static_cast<std::uint8_t>(kinds[i + j]);
      hash *= kFnvPrime;
    }
    ++histogram[hash % config.hash_dim];
  }
  const float scale = 1.0f / static_cast<float>(windows);
  for (float& value : histogram) value *= scale;
  return histogram;
}

std::size_t ngram_window_count(std::size_t node_count, std::size_t n) {
  return node_count >= n ? node_count - n + 1 : 0;
}

std::size_t ngram_window_count(const Node* root, std::size_t n) {
  return ngram_window_count(count_nodes(root), n);
}

}  // namespace jst::features
