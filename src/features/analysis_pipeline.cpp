#include "features/analysis_pipeline.h"

#include "ast/walk.h"
#include "obs/trace.h"

namespace jst {

ScriptAnalysis analyze_script(std::string_view source,
                              const AnalysisOptions& options) {
  ScriptAnalysis analysis;
  analysis.parse =
      parse_program(source, options.budget, options.arena, options.atoms);
  if (options.build_cfg) {
    JST_SPAN("cfg");
    if (options.budget != nullptr) options.budget->set_stage("cfg");
    analysis.control_flow = build_control_flow(
        analysis.parse.ast, options.budget, options.cfg_scratch);
  }
  if (options.build_dataflow) {
    JST_SPAN("dataflow");
    if (options.budget != nullptr) options.budget->set_stage("dataflow");
    DataFlowOptions dataflow_options;
    dataflow_options.node_budget = options.dataflow_node_budget;
    dataflow_options.budget = options.budget;
    dataflow_options.scratch = options.dataflow_scratch;
    analysis.data_flow = build_data_flow(analysis.parse.ast, dataflow_options);
  }
  return analysis;
}

bool size_eligible(std::string_view source) {
  return source.size() >= 512 && source.size() <= 2 * 1024 * 1024;
}

bool script_eligible(const ScriptAnalysis& analysis,
                     std::vector<const Node*>* walk_stack) {
  if (analysis.parse.source_bytes < 512 ||
      analysis.parse.source_bytes > 2 * 1024 * 1024) {
    return false;
  }
  return ast_eligible(analysis, walk_stack);
}

namespace {

bool eligibility_node(const Node& node) {
  switch (node.kind) {
    // Conditional control-flow nodes (paper footnote 2).
    case NodeKind::kDoWhileStatement:
    case NodeKind::kWhileStatement:
    case NodeKind::kForStatement:
    case NodeKind::kForOfStatement:
    case NodeKind::kForInStatement:
    case NodeKind::kIfStatement:
    case NodeKind::kConditionalExpression:
    case NodeKind::kTryStatement:
    case NodeKind::kSwitchStatement:
    // Function nodes (paper footnote 3).
    case NodeKind::kArrowFunctionExpression:
    case NodeKind::kFunctionExpression:
    case NodeKind::kFunctionDeclaration:
    // CallExpression (incl. tagged templates, footnote 4).
    case NodeKind::kCallExpression:
    case NodeKind::kTaggedTemplateExpression:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool ast_eligible(const ScriptAnalysis& analysis,
                  std::vector<const Node*>* walk_stack) {
  // Any qualifying node anywhere in the tree decides the answer, so the
  // walk returns at the first hit — typical scripts qualify within the
  // first few statements, where the previous implementation always
  // visited every node. Explicit stack: expression-chain depth is not
  // bounded by the parser's statement recursion guard.
  const Node* root = analysis.parse.ast.root();
  if (root == nullptr) return false;
  std::vector<const Node*> local_stack;
  std::vector<const Node*>& stack =
      walk_stack != nullptr ? *walk_stack : local_stack;
  stack.clear();
  stack.push_back(root);
  bool eligible = false;
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (eligibility_node(*node)) {
      eligible = true;
      break;
    }
    for (std::size_t i = node->kids.size(); i > 0; --i) {
      if (node->kids[i - 1] != nullptr) stack.push_back(node->kids[i - 1]);
    }
  }
  stack.clear();
  return eligible;
}

}  // namespace jst
