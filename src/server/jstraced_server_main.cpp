// jstraced-server: the analysis daemon (DESIGN.md §13).
//
//   $ ./jstraced-server --socket /tmp/jstraced.sock
//   $ ./jstraced-server --socket /tmp/jstraced.sock --workers 4
//         --production-limits --deadline-ms 5000
//
// Trains the detectors at startup (--training-regular / --per-technique
// size the synthetic corpus) or restores a saved model with --model FILE,
// then serves AnalyzeRequests over the Unix socket until SIGTERM/SIGINT,
// which triggers a graceful drain: stop accepting, answer every admitted
// request, shed the rest with kDraining, remove the socket file.
//
// SIGUSR1 dumps the flight recorder (recent admit/shed verdicts, stage
// timings, slowest exemplars) as NDJSON to --flight-out (default
// jstraced_flight.ndjson next to the cwd) without interrupting serving;
// the same data is reachable live via {"op":"flight"} on the socket.
//
// The limits flags (support/limits_flags.h) set the *default* per-request
// ResourceLimits; any request may carry its own override. The cache flags
// (support/cache_flags.h) attach a content-addressed ResultCache
// (DESIGN.md §15): --cache-dir and/or --cache-bytes enable it,
// --cache-mode sets the default discipline for requests that don't name
// one (an explicit per-request cache_mode always wins).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/pipeline.h"
#include "analysis/result_cache.h"
#include "analysis/service.h"
#include "server/server.h"
#include "support/cache_flags.h"
#include "support/limits_flags.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: jstraced-server --socket PATH [--workers N] "
               "[--max-queue-depth N] [--min-service-ms X] [--model FILE] "
               "[--training-regular N] [--per-technique N] "
               "[--window-seconds N] [--flight-out FILE] %s %s\n",
               jst::support::cache_flags_usage(),
               jst::support::limits_flags_usage());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jst;

  server::ServerConfig config;
  std::string model_path;
  support::CacheOptions cache_options;
  analysis::PipelineOptions pipeline_options;
  pipeline_options.training_regular_count = 100;
  pipeline_options.per_technique_count = 20;

  for (int i = 1; i < argc; ++i) {
    std::string limits_error;
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      config.socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      config.workers = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--max-queue-depth") == 0 &&
               i + 1 < argc) {
      config.max_queue_depth = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--min-service-ms") == 0 && i + 1 < argc) {
      config.min_service_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--window-seconds") == 0 && i + 1 < argc) {
      config.window_seconds = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--flight-out") == 0 && i + 1 < argc) {
      config.flight_dump_path = argv[++i];
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      model_path = argv[++i];
    } else if (std::strcmp(argv[i], "--training-regular") == 0 &&
               i + 1 < argc) {
      pipeline_options.training_regular_count =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--per-technique") == 0 && i + 1 < argc) {
      pipeline_options.per_technique_count =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (support::consume_cache_flag(argc, argv, i, cache_options,
                                           limits_error) ||
               support::consume_limits_flag(argc, argv, i,
                                            config.default_limits,
                                            limits_error)) {
      if (!limits_error.empty()) {
        std::fprintf(stderr, "jstraced-server: %s\n", limits_error.c_str());
        return 2;
      }
    } else {
      usage();
      return 2;
    }
  }
  if (config.socket_path.empty()) {
    usage();
    return 2;
  }
  if (config.flight_dump_path.empty()) {
    config.flight_dump_path = "jstraced_flight.ndjson";
  }

  // Block the handled signals in every thread (workers inherit the mask)
  // so they can be collected synchronously with sigwait below instead of
  // in an async handler. SIGUSR1 is collected on the same loop: it dumps
  // the flight recorder and resumes waiting.
  sigset_t handled_signals;
  sigemptyset(&handled_signals);
  sigaddset(&handled_signals, SIGTERM);
  sigaddset(&handled_signals, SIGINT);
  sigaddset(&handled_signals, SIGUSR1);
  pthread_sigmask(SIG_BLOCK, &handled_signals, nullptr);

  analysis::TransformationAnalyzer analyzer(pipeline_options);
  if (!model_path.empty()) {
    std::ifstream in(model_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "jstraced-server: cannot open model %s\n",
                   model_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "[jstraced] loading model from %s\n",
                 model_path.c_str());
    analyzer.load(in);
  } else {
    std::fprintf(stderr,
                 "[jstraced] training detectors (%zu regular, %zu per "
                 "technique)...\n",
                 pipeline_options.training_regular_count,
                 pipeline_options.per_technique_count);
    analyzer.train();
  }

  // The cache is attached only when asked for; --cache-mode bypass keeps
  // it detached even then (responses then carry no cache metadata at
  // all, matching a cacheless daemon byte-for-byte).
  std::unique_ptr<analysis::ResultCache> cache;
  if (cache_options.enabled() && cache_options.mode != CacheMode::kBypass) {
    analysis::ResultCache::Config cache_config;
    cache_config.dir = cache_options.dir;
    cache_config.max_bytes = cache_options.effective_bytes();
    cache = std::make_unique<analysis::ResultCache>(cache_config);
    if (!cache->load_error().empty()) {
      std::fprintf(stderr, "[jstraced] cache: %s\n",
                   cache->load_error().c_str());
    }
    config.default_cache_mode = cache_options.mode;
    std::fprintf(stderr, "[jstraced] result cache: %zu MiB memory tier%s%s\n",
                 cache_config.max_bytes >> 20,
                 cache_config.dir.empty() ? "" : ", persisted under ",
                 cache_config.dir.c_str());
  }
  const analysis::AnalyzerService service(analyzer, cache.get());

  try {
    server::Server daemon(service, config);
    daemon.start();
    // The readiness line: scripts wait for it before connecting.
    std::fprintf(stderr, "[jstraced] listening on %s (workers=%zu)\n",
                 daemon.socket_path().c_str(), daemon.workers());
    std::fflush(stderr);

    int signal_number = 0;
    for (;;) {
      sigwait(&handled_signals, &signal_number);
      if (signal_number != SIGUSR1) break;
      // Synchronous context (sigwait, not a handler), so the full dump
      // path — locks, allocation, file I/O — is safe here.
      const bool dumped = jst::obs::FlightRecorder::global().dump_to_file(
          config.flight_dump_path);
      std::fprintf(stderr, "[jstraced] SIGUSR1: flight recorder %s %s\n",
                   dumped ? "dumped to" : "dump FAILED for",
                   config.flight_dump_path.c_str());
      std::fflush(stderr);
    }
    std::fprintf(stderr, "[jstraced] signal %d: draining...\n",
                 signal_number);
    daemon.shutdown();
    const server::ServerStats stats = daemon.stats();
    std::fprintf(stderr,
                 "[jstraced] drained: %llu connections, %llu admitted, "
                 "%llu served, %llu shed, %llu invalid\n",
                 static_cast<unsigned long long>(stats.connections_accepted),
                 static_cast<unsigned long long>(stats.requests_admitted),
                 static_cast<unsigned long long>(stats.requests_served),
                 static_cast<unsigned long long>(stats.requests_shed),
                 static_cast<unsigned long long>(stats.requests_invalid));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "jstraced-server: %s\n", error.what());
    return 1;
  }
  return 0;
}
