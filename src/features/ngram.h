// Hashed AST n-gram features.
//
// The paper extracts 4-grams over "the list of syntactic units" of the AST
// (pre-order node-kind sequence). We hash each n-gram into a fixed number
// of buckets (the vector-space dimensions stay consistent across samples,
// §III-B) and store relative frequencies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ast/ast.h"

namespace jst::features {

struct NgramConfig {
  std::size_t n = 4;
  std::size_t hash_dim = 512;
};

// FNV-1a parameters for n-gram hashing. Shared between the reference
// windowed hasher below and the fused extractor's incremental ring of
// partial hash states (feature_extractor.cpp), which must produce the
// same per-window values.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

// Relative-frequency histogram of hashed n-grams, size = config.hash_dim.
std::vector<float> ngram_features(const Node* root, const NgramConfig& config);

// Raw n-gram window count given the tree's node count
// (windows = max(0, node_count - n + 1)).
std::size_t ngram_window_count(std::size_t node_count, std::size_t n);

// Convenience overload that counts the tree's nodes first. Callers that
// already know the node count (the analysis pipeline computes it anyway)
// should use the count-based overload and skip the extra traversal.
std::size_t ngram_window_count(const Node* root, std::size_t n);

}  // namespace jst::features
