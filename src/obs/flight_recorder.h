// Flight recorder: an always-on, fixed-size ring of structured serving
// events, dumped on demand for postmortems.
//
// Metrics tell you *that* the daemon shed; the flight recorder tells you
// *why*: each admit/shed verdict is recorded with the exact inputs the
// decision consumed (queue depth, windowed p95, deadline), each request
// leaves pickup/respond events with its stage timings, and budget trips
// land with the tripped stage. Every event carries the request id in
// scope, so a dump joins against the trace JSONL on `rid`.
//
// Storage is one ring per recording thread (registered on first use,
// never freed), each guarded by its own mutex — uncontended in steady
// state since only the owning thread records into it and only dumps read
// it. Capacity is fixed at kRingCapacity events per thread; old events
// are overwritten, which is the point: the recorder always holds the
// *recent* past, sized for "what just happened before the incident".
//
// Dump triggers (all NDJSON, one event per line, sorted by timestamp):
//   - `{"op":"flight"}` on the daemon socket;
//   - SIGUSR1 to the daemon process (writes to --flight-out);
//   - automatically when an overload-shed burst crosses the configured
//     threshold (Server::Config::shed_burst_dump_threshold).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace jst::obs {

enum class FlightEventKind : std::uint8_t {
  kAdmit,         // a/b/c = queue_depth, p95_ms consulted, deadline_ms
  kShed,          // same inputs as kAdmit; the verdict went the other way
  kPickup,        // a = queue_ms (time spent queued before a worker ran it)
  kRespond,       // a/b = service_ms, status code
  kBudgetTrip,    // label = tripped resource, a = observed value
  kStage,         // label = stage name, a = stage_ms
  kSlowExemplar,  // key = source_hash, a = service_ms (new slowest-N entry)
};

const char* flight_event_kind_name(FlightEventKind kind);

// One recorded event. Fixed-size POD so recording never allocates; `rid`
// and `key` are NUL-terminated copies (16 hex chars + NUL), `label` must
// point at static storage (stage names, resource names).
struct FlightEvent {
  double ts_us = 0.0;
  std::uint32_t tid = 0;
  FlightEventKind kind = FlightEventKind::kAdmit;
  char rid[17] = {0};
  char key[17] = {0};
  const char* label = nullptr;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kRingCapacity = 1024;

  // Records into the calling thread's ring; `rid` defaults to the
  // current RequestScope id when empty. No-op while disabled.
  void record(FlightEventKind kind, std::string_view rid,
              std::string_view key, const char* label, double a = 0.0,
              double b = 0.0, double c = 0.0);

  // Serializes every live event across all thread rings, oldest first,
  // one JSON object per line. Best-effort snapshot: events recorded
  // while the dump walks other threads' rings may or may not appear.
  std::string dump_ndjson() const;

  // Same events as one JSON array (for embedding in a wire response).
  std::string dump_json_array() const;

  // dump_ndjson to `path` (truncating); returns false on I/O failure.
  bool dump_to_file(const std::string& path) const;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all recorded events (rings stay registered). Test hook.
  void clear();

  // Process-wide recorder, intentionally leaked like the metrics
  // registry so late-exiting threads can still record.
  static FlightRecorder& global();

  FlightRecorder();

 private:
  struct Ring {
    std::mutex mutex;
    std::uint64_t head = 0;  // total events ever recorded by this thread
    std::array<FlightEvent, kRingCapacity> events;
    std::uint32_t tid = 0;
  };

  Ring& local_ring();
  std::vector<FlightEvent> collect_sorted() const;

  // Distinguishes recorder instances in the thread-local ring cache;
  // never reused, so a recorder allocated at a dead recorder's address
  // cannot inherit its rings.
  const std::uint64_t instance_id_;
  std::atomic<bool> enabled_{true};
  mutable std::mutex rings_mutex_;
  std::vector<Ring*> rings_;
};

// Convenience wrapper over the global recorder with rid defaulting to
// the calling thread's current request id.
void flight_record(FlightEventKind kind, std::string_view key = {},
                   const char* label = nullptr, double a = 0.0,
                   double b = 0.0, double c = 0.0);

// Slowest-N request exemplars keyed by source_hash: the daemon offers
// every completed request; the table keeps the N largest service times
// (one entry per distinct hash, max-deduplicated) so a stats probe can
// name which *scripts* are slow, not just how slow the tail is.
class SlowExemplars {
 public:
  explicit SlowExemplars(std::size_t capacity = 8);

  struct Entry {
    std::string source_hash;
    std::string rid;
    double service_ms = 0.0;
  };

  // Returns true when the offer entered (or re-ranked within) the table.
  bool offer(std::string_view source_hash, std::string_view rid,
             double service_ms);
  // Descending by service_ms.
  std::vector<Entry> snapshot() const;
  // JSON array: [{"source_hash":...,"rid":...,"service_ms":...},...]
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace jst::obs
