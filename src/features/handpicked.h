// Hand-picked features (§III-B).
//
// Implements the features the paper names explicitly — AST depth/breadth
// per line, MemberExpression-to-unique-Identifier ratio, proportions of
// CallExpression/Literal/Identifier nodes, built-in function presence,
// string-operation counts, average identifier length, characters per line,
// ternary-operator proportion, dot-vs-bracket notation ratio, array/
// dictionary sizes, and the data-flow-based "fetched from a structure"
// proportion — plus the companion signals the same in-depth study of the
// ten techniques yields (hex identifier prefixes, encoded-string ratios,
// switch-in-loop dispatchers, debugger density, self-defending markers,
// JSFuck-style operator densities, comment volume, whitespace ratios, CFG
// shape).
#pragma once

#include <string>
#include <vector>

#include "features/analysis_pipeline.h"

namespace jst::features {

// Stable list of hand-picked feature names; the returned vector of
// handpicked_features() uses the same order.
const std::vector<std::string>& handpicked_feature_names();

std::vector<float> handpicked_features(const ScriptAnalysis& analysis);

}  // namespace jst::features
