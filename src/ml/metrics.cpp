#include "ml/metrics.h"

#include <algorithm>

#include "support/error.h"

namespace jst::ml {
namespace {

bool contains(std::span<const std::size_t> haystack, std::size_t needle) {
  return std::find(haystack.begin(), haystack.end(), needle) != haystack.end();
}

}  // namespace

double subset_accuracy(const std::vector<std::vector<std::size_t>>& predicted,
                       const std::vector<std::vector<std::size_t>>& truth) {
  if (predicted.size() != truth.size()) {
    throw InvalidArgument("subset_accuracy: size mismatch");
  }
  if (predicted.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    std::vector<std::size_t> a = predicted[i];
    std::vector<std::size_t> b = truth[i];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    if (a == b) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

bool topk_correct(std::span<const std::size_t> topk,
                  std::span<const std::size_t> truth) {
  if (topk.empty()) return false;
  for (std::size_t label : topk) {
    if (!contains(truth, label)) return false;
  }
  return true;
}

std::size_t wrong_labels(std::span<const std::size_t> predicted,
                         std::span<const std::size_t> truth) {
  std::size_t wrong = 0;
  for (std::size_t label : predicted) {
    if (!contains(truth, label)) ++wrong;
  }
  return wrong;
}

std::size_t missing_labels(std::span<const std::size_t> predicted,
                           std::span<const std::size_t> truth) {
  std::size_t missing = 0;
  for (std::size_t label : truth) {
    if (!contains(predicted, label)) ++missing;
  }
  return missing;
}

void BinaryConfusion::add(bool predicted, bool actual) {
  if (predicted && actual) {
    ++true_positive;
  } else if (predicted && !actual) {
    ++false_positive;
  } else if (!predicted && actual) {
    ++false_negative;
  } else {
    ++true_negative;
  }
}

double BinaryConfusion::accuracy() const {
  const std::size_t all = total();
  if (all == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(all);
}

double BinaryConfusion::precision() const {
  const std::size_t denominator = true_positive + false_positive;
  if (denominator == 0) return 0.0;
  return static_cast<double>(true_positive) /
         static_cast<double>(denominator);
}

double BinaryConfusion::recall() const {
  const std::size_t denominator = true_positive + false_negative;
  if (denominator == 0) return 0.0;
  return static_cast<double>(true_positive) /
         static_cast<double>(denominator);
}

double BinaryConfusion::f1() const {
  const double p = precision();
  const double r = recall();
  if (p + r == 0.0) return 0.0;
  return 2.0 * p * r / (p + r);
}

double binary_accuracy(std::span<const bool> predicted,
                       std::span<const bool> truth) {
  if (predicted.size() != truth.size()) {
    throw InvalidArgument("binary_accuracy: size mismatch");
  }
  if (predicted.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == truth[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(predicted.size());
}

}  // namespace jst::ml
