#include "interp/interpreter.h"

#include <cmath>

#include "interp/builtins.h"
#include "support/error.h"

namespace jst::interp {

void Environment::declare(std::string_view name, Value value) {
  bindings_[std::string(name)] = std::move(value);
}

void Environment::assign(std::string_view name, Value value) {
  const std::string key(name);
  for (Environment* env = this; env != nullptr; env = env->parent_.get()) {
    auto it = env->bindings_.find(key);
    if (it != env->bindings_.end()) {
      it->second = std::move(value);
      return;
    }
  }
  // Sloppy-mode implicit global.
  Environment* root = this;
  while (root->parent_ != nullptr) root = root->parent_.get();
  root->bindings_[key] = std::move(value);
}

Value Environment::get(std::string_view name) const {
  const std::string key(name);
  for (const Environment* env = this; env != nullptr;
       env = env->parent_.get()) {
    const auto it = env->bindings_.find(key);
    if (it != env->bindings_.end()) return it->second;
  }
  throw ThrownValue{Value(std::string("ReferenceError: " + key +
                                      " is not defined"))};
}

bool Environment::has(std::string_view name) const {
  const std::string key(name);
  for (const Environment* env = this; env != nullptr;
       env = env->parent_.get()) {
    if (env->bindings_.count(key) > 0) return true;
  }
  return false;
}

Interpreter::Interpreter(InterpreterOptions options)
    : globals_(std::make_shared<Environment>()), options_(options) {
  install_builtins(*this, *globals_, log_);
}

void Interpreter::tick() {
  if (++steps_ > options_.step_budget) {
    throw InterpreterError("step budget exceeded");
  }
}

RunResult Interpreter::run(std::string_view source) {
  try {
    const ParseResult parsed = parse_program(source);
    return run_program(parsed.ast.root());
  } catch (const ParseError& error) {
    RunResult result;
    result.error = std::string("parse error: ") + error.what();
    return result;
  }
}

RunResult Interpreter::run_program(const Node* program) {
  RunResult result;
  try {
    hoist(program, globals_);
    for (const Node* statement : program->kids) {
      const Completion completion = exec_statement(statement, globals_);
      if (completion.type != CompletionType::kNormal) break;
    }
    result.ok = true;
  } catch (const ThrownValue& thrown) {
    result.error = "uncaught: " + to_string_value(thrown.value);
  } catch (const InterpreterError& error) {
    result.error = error.what();
  }
  result.log = log_;
  result.steps = steps_;
  return result;
}

void Interpreter::hoist(const Node* body, const EnvPtr& environment) {
  if (body == nullptr) return;
  for (const Node* statement : body->kids) {
    if (statement == nullptr) continue;
    switch (statement->kind) {
      case NodeKind::kFunctionDeclaration:
        if (statement->kid(0) != nullptr) {
          environment->declare(statement->kids[0]->str_value,
                               Value(make_function(statement, environment)));
        }
        break;
      case NodeKind::kVariableDeclaration:
        if (statement->str_value == "var") {
          for (const Node* declarator : statement->kids) {
            // Bind every identifier in the target (patterns included).
            std::vector<const Node*> stack = {declarator->kid(0)};
            while (!stack.empty()) {
              const Node* target = stack.back();
              stack.pop_back();
              if (target == nullptr) continue;
              if (target->kind == NodeKind::kIdentifier) {
                if (!environment->has(target->str_value)) {
                  environment->declare(target->str_value, Undefined{});
                }
              } else if (target->kind == NodeKind::kArrayPattern ||
                         target->kind == NodeKind::kObjectPattern ||
                         target->kind == NodeKind::kRestElement) {
                for (const Node* kid : target->kids) stack.push_back(kid);
              } else if (target->kind == NodeKind::kProperty ||
                         target->kind == NodeKind::kAssignmentPattern) {
                stack.push_back(target->kid(target->kind ==
                                                    NodeKind::kProperty
                                                ? 1
                                                : 0));
              }
            }
          }
        }
        hoist(statement, environment);
        break;
      case NodeKind::kFunctionExpression:
      case NodeKind::kArrowFunctionExpression:
      case NodeKind::kClassDeclaration:
      case NodeKind::kClassExpression:
        break;  // no var-hoisting through nested functions
      default:
        hoist(statement, environment);
    }
  }
}

Interpreter::Completion Interpreter::exec_block(const Node* node,
                                                const EnvPtr& environment) {
  auto scope = std::make_shared<Environment>(environment);
  // Hoist function declarations within the block.
  for (const Node* statement : node->kids) {
    if (statement != nullptr &&
        statement->kind == NodeKind::kFunctionDeclaration &&
        statement->kid(0) != nullptr) {
      scope->declare(statement->kids[0]->str_value,
                     Value(make_function(statement, scope)));
    }
  }
  for (const Node* statement : node->kids) {
    const Completion completion = exec_statement(statement, scope);
    if (completion.type != CompletionType::kNormal) return completion;
  }
  return {};
}

Interpreter::Completion Interpreter::exec_statement(const Node* node,
                                                    const EnvPtr& environment) {
  tick();
  if (node == nullptr) return {};
  switch (node->kind) {
    case NodeKind::kEmptyStatement:
    case NodeKind::kDebuggerStatement:
      return {};

    case NodeKind::kExpressionStatement:
      eval(node->kids[0], environment);
      return {};

    case NodeKind::kBlockStatement:
      return exec_block(node, environment);

    case NodeKind::kVariableDeclaration: {
      const bool is_var = node->str_value == "var";
      for (const Node* declarator : node->kids) {
        const Node* target = declarator->kid(0);
        const Node* init = declarator->kid(1);
        if (is_var && init == nullptr) continue;  // `var x;` keeps its value
        Value value = init != nullptr ? eval(init, environment)
                                      : Value(Undefined{});
        // `var` assigns the (hoisted) function-scope binding; let/const
        // declare in the current block scope.
        bind_pattern(target, value, environment, /*declare=*/!is_var);
      }
      return {};
    }

    case NodeKind::kFunctionDeclaration:
      // Already hoisted; re-declare to rebind in loops.
      if (node->kid(0) != nullptr) {
        environment->declare(node->kids[0]->str_value,
                             Value(make_function(node, environment)));
      }
      return {};

    case NodeKind::kReturnStatement: {
      Completion completion;
      completion.type = CompletionType::kReturn;
      completion.value = node->kid(0) != nullptr
                             ? eval(node->kids[0], environment)
                             : Value(Undefined{});
      return completion;
    }

    case NodeKind::kIfStatement: {
      if (to_boolean(eval(node->kids[0], environment))) {
        return exec_statement(node->kids[1], environment);
      }
      if (node->kid(2) != nullptr) {
        return exec_statement(node->kids[2], environment);
      }
      return {};
    }

    case NodeKind::kWhileStatement: {
      while (to_boolean(eval(node->kids[0], environment))) {
        tick();
        const Completion completion = exec_statement(node->kids[1], environment);
        if (completion.type == CompletionType::kBreak) {
          if (completion.label.empty()) break;
          return completion;
        }
        if (completion.type == CompletionType::kContinue &&
            !completion.label.empty()) {
          return completion;
        }
        if (completion.type == CompletionType::kReturn) return completion;
      }
      return {};
    }

    case NodeKind::kDoWhileStatement: {
      do {
        tick();
        const Completion completion = exec_statement(node->kids[0], environment);
        if (completion.type == CompletionType::kBreak) {
          if (completion.label.empty()) break;
          return completion;
        }
        if (completion.type == CompletionType::kContinue &&
            !completion.label.empty()) {
          return completion;
        }
        if (completion.type == CompletionType::kReturn) return completion;
      } while (to_boolean(eval(node->kids[1], environment)));
      return {};
    }

    case NodeKind::kForStatement: {
      auto scope = std::make_shared<Environment>(environment);
      const Node* init = node->kid(0);
      if (init != nullptr) {
        if (init->kind == NodeKind::kVariableDeclaration) {
          exec_statement(init, scope);
        } else {
          eval(init, scope);
        }
      }
      while (node->kid(1) == nullptr ||
             to_boolean(eval(node->kids[1], scope))) {
        tick();
        const Completion completion = exec_statement(node->kids[3], scope);
        if (completion.type == CompletionType::kBreak) {
          if (completion.label.empty()) break;
          return completion;
        }
        if (completion.type == CompletionType::kContinue &&
            !completion.label.empty()) {
          return completion;
        }
        if (completion.type == CompletionType::kReturn) return completion;
        if (node->kid(2) != nullptr) eval(node->kids[2], scope);
      }
      return {};
    }

    case NodeKind::kForInStatement:
    case NodeKind::kForOfStatement: {
      auto scope = std::make_shared<Environment>(environment);
      const Value iterable = eval(node->kids[1], scope);
      std::vector<Value> sequence;
      if (const ObjectPtr* object = std::get_if<ObjectPtr>(&iterable)) {
        if (node->kind == NodeKind::kForOfStatement) {
          if ((*object)->is_array) sequence = (*object)->elements;
        } else {
          if ((*object)->is_array) {
            for (std::size_t i = 0; i < (*object)->elements.size(); ++i) {
              sequence.emplace_back(std::to_string(i));
            }
          }
          for (const auto& [key, value] : (*object)->properties) {
            (void)value;
            sequence.emplace_back(key);
          }
        }
      } else if (const std::string* text = std::get_if<std::string>(&iterable)) {
        if (node->kind == NodeKind::kForOfStatement) {
          for (char c : *text) sequence.emplace_back(std::string(1, c));
        } else {
          for (std::size_t i = 0; i < text->size(); ++i) {
            sequence.emplace_back(std::to_string(i));
          }
        }
      }
      const Node* left = node->kids[0];
      for (const Value& item : sequence) {
        tick();
        if (left->kind == NodeKind::kVariableDeclaration) {
          bind_pattern(left->kids[0]->kid(0), item, scope,
                       /*declare=*/left->str_value != "var");
        } else {
          assign_target(left, item, scope);
        }
        const Completion completion = exec_statement(node->kids[2], scope);
        if (completion.type == CompletionType::kBreak) {
          if (completion.label.empty()) break;
          return completion;
        }
        if (completion.type == CompletionType::kContinue &&
            !completion.label.empty()) {
          return completion;
        }
        if (completion.type == CompletionType::kReturn) return completion;
      }
      return {};
    }

    case NodeKind::kSwitchStatement: {
      const Value discriminant = eval(node->kids[0], environment);
      auto scope = std::make_shared<Environment>(environment);
      bool matched = false;
      std::size_t default_index = 0;
      bool has_default = false;
      // First pass: find the matching case (or remember default).
      for (std::size_t i = 1; i < node->kids.size() && !matched; ++i) {
        const Node* switch_case = node->kids[i];
        if (switch_case->kid(0) == nullptr) {
          has_default = true;
          default_index = i;
          continue;
        }
        if (strict_equals(discriminant, eval(switch_case->kids[0], scope))) {
          matched = true;
          default_index = i;
        }
      }
      if (!matched && !has_default) return {};
      // Execute from the matched/default case onward (fallthrough).
      for (std::size_t i = default_index; i < node->kids.size(); ++i) {
        const Node* switch_case = node->kids[i];
        for (std::size_t j = 1; j < switch_case->kids.size(); ++j) {
          const Completion completion =
              exec_statement(switch_case->kids[j], scope);
          if (completion.type == CompletionType::kBreak &&
              completion.label.empty()) {
            return {};
          }
          if (completion.type != CompletionType::kNormal) return completion;
        }
      }
      return {};
    }

    case NodeKind::kBreakStatement: {
      Completion completion;
      completion.type = CompletionType::kBreak;
      if (node->kid(0) != nullptr) completion.label = node->kids[0]->str_value;
      return completion;
    }

    case NodeKind::kContinueStatement: {
      Completion completion;
      completion.type = CompletionType::kContinue;
      if (node->kid(0) != nullptr) completion.label = node->kids[0]->str_value;
      return completion;
    }

    case NodeKind::kLabeledStatement: {
      const std::string_view label = node->kids[0]->str_value;
      const Completion completion = exec_statement(node->kids[1], environment);
      if ((completion.type == CompletionType::kBreak ||
           completion.type == CompletionType::kContinue) &&
          completion.label == label) {
        // continue <label> on a loop behaves like break of one iteration;
        // our loops return labeled continue outward, so consuming it here
        // ends the statement — adequate for the fixtures.
        return {};
      }
      return completion;
    }

    case NodeKind::kThrowStatement:
      throw ThrownValue{eval(node->kids[0], environment)};

    case NodeKind::kTryStatement: {
      Completion completion;
      bool thrown = false;
      Value thrown_value;
      try {
        completion = exec_statement(node->kids[0], environment);
      } catch (const ThrownValue& error) {
        thrown = true;
        thrown_value = error.value;
      }
      if (thrown && node->kid(1) != nullptr) {
        const Node* handler = node->kids[1];
        auto scope = std::make_shared<Environment>(environment);
        if (handler->kid(0) != nullptr) {
          bind_pattern(handler->kids[0], thrown_value, scope, /*declare=*/true);
        }
        thrown = false;
        try {
          completion = exec_statement(handler->kids[1], scope);
        } catch (const ThrownValue& error) {
          thrown = true;
          thrown_value = error.value;
        }
      }
      if (node->kid(2) != nullptr) {
        const Completion finalizer = exec_statement(node->kids[2], environment);
        if (finalizer.type != CompletionType::kNormal) return finalizer;
      }
      if (thrown) throw ThrownValue{thrown_value};
      return completion;
    }

    case NodeKind::kClassDeclaration:
      throw InterpreterError("class statements are not supported");

    case NodeKind::kWithStatement:
      throw InterpreterError("with statements are not supported");

    default:
      throw InterpreterError(std::string("unsupported statement: ") +
                             std::string(node_kind_name(node->kind)));
  }
}

std::string Interpreter::property_key(const Node* key_node, bool computed,
                                      const EnvPtr& environment) {
  if (computed) return to_string_value(eval(key_node, environment));
  if (key_node->kind == NodeKind::kIdentifier) {
    return std::string(key_node->str_value);
  }
  if (key_node->kind == NodeKind::kLiteral) {
    if (key_node->lit_kind == LiteralKind::kString) {
      return std::string(key_node->str_value);
    }
    return to_string_value(Value(key_node->num_value));
  }
  throw InterpreterError("unsupported property key");
}

FunctionPtr Interpreter::make_function(const Node* node,
                                       const EnvPtr& environment) {
  auto function = std::make_shared<JsFunction>();
  function->declaration = node;
  function->closure = environment;
  function->is_arrow = node->kind == NodeKind::kArrowFunctionExpression;
  if (!function->is_arrow && node->kid(0) != nullptr) {
    function->name = node->kids[0]->str_value;
  }
  return function;
}

Value Interpreter::call_function(const Value& callee, const Value& this_value,
                                 const std::vector<Value>& args) {
  const FunctionPtr* function = std::get_if<FunctionPtr>(&callee);
  if (function == nullptr) {
    throw ThrownValue{Value(std::string("TypeError: not a function"))};
  }
  return invoke(*function, this_value, args);
}

Value Interpreter::invoke(const FunctionPtr& function, const Value& this_value,
                          const std::vector<Value>& args) {
  tick();
  if (function->native) return function->native(*this, this_value, args);
  const Node* declaration = function->declaration;
  if (declaration == nullptr) return Undefined{};

  auto scope = std::make_shared<Environment>(function->closure);
  const bool is_arrow = function->is_arrow;
  const std::size_t first_param = is_arrow ? 1 : 2;
  const Node* body = is_arrow ? declaration->kid(0) : declaration->kid(1);

  if (!is_arrow) {
    scope->declare("this", this_value);
    scope->declare("arguments", Value(make_array(args)));
    if (declaration->kind == NodeKind::kFunctionExpression &&
        declaration->kid(0) != nullptr) {
      scope->declare(declaration->kids[0]->str_value, Value(function));
    }
  }
  for (std::size_t i = first_param; i < declaration->kids.size(); ++i) {
    const Node* param = declaration->kids[i];
    const std::size_t arg_index = i - first_param;
    if (param->kind == NodeKind::kRestElement) {
      std::vector<Value> rest;
      for (std::size_t j = arg_index; j < args.size(); ++j) {
        rest.push_back(args[j]);
      }
      bind_pattern(param->kid(0), Value(make_array(std::move(rest))), scope,
                   /*declare=*/true);
      break;
    }
    const Value argument =
        arg_index < args.size() ? args[arg_index] : Value(Undefined{});
    bind_pattern(param, argument, scope, /*declare=*/true);
  }

  if (is_arrow && declaration->flag_a) {
    return eval(body, scope);  // expression body
  }
  hoist(body, scope);
  for (const Node* statement : body->kids) {
    const Completion completion = exec_statement(statement, scope);
    if (completion.type == CompletionType::kReturn) return completion.value;
    if (completion.type != CompletionType::kNormal) break;
  }
  return Undefined{};
}

void Interpreter::bind_pattern(const Node* pattern, const Value& value,
                               const EnvPtr& environment, bool declare) {
  if (pattern == nullptr) return;
  switch (pattern->kind) {
    case NodeKind::kIdentifier:
      if (declare) {
        environment->declare(pattern->str_value, value);
      } else {
        environment->assign(pattern->str_value, value);
      }
      return;
    case NodeKind::kAssignmentPattern: {
      Value resolved = value;
      if (std::holds_alternative<Undefined>(value)) {
        resolved = eval(pattern->kids[1], environment);
      }
      bind_pattern(pattern->kids[0], resolved, environment, declare);
      return;
    }
    case NodeKind::kArrayPattern: {
      const ObjectPtr* array = std::get_if<ObjectPtr>(&value);
      for (std::size_t i = 0; i < pattern->kids.size(); ++i) {
        const Node* element = pattern->kids[i];
        if (element == nullptr) continue;
        if (element->kind == NodeKind::kRestElement) {
          std::vector<Value> rest;
          if (array != nullptr && (*array)->is_array) {
            for (std::size_t j = i; j < (*array)->elements.size(); ++j) {
              rest.push_back((*array)->elements[j]);
            }
          }
          bind_pattern(element->kid(0), Value(make_array(std::move(rest))),
                       environment, declare);
          break;
        }
        Value item = Undefined{};
        if (array != nullptr && (*array)->is_array &&
            i < (*array)->elements.size()) {
          item = (*array)->elements[i];
        }
        bind_pattern(element, item, environment, declare);
      }
      return;
    }
    case NodeKind::kObjectPattern: {
      for (const Node* property : pattern->kids) {
        if (property == nullptr) continue;
        if (property->kind == NodeKind::kRestElement) {
          continue;  // rest-object unsupported; ignore
        }
        const std::string key =
            property_key(property->kids[0], property->flag_a, environment);
        bind_pattern(property->kids[1], get_member(value, key), environment,
                     declare);
      }
      return;
    }
    default:
      assign_target(pattern, value, environment);
  }
}

Value Interpreter::get_member(const Value& object, std::string_view key_view) {
  const std::string key(key_view);
  if (const std::string* text = std::get_if<std::string>(&object)) {
    if (key == "length") return static_cast<double>(text->size());
    if (!key.empty() &&
        key.find_first_not_of("0123456789") == std::string::npos) {
      const std::size_t index = std::stoul(key);
      if (index < text->size()) return std::string(1, (*text)[index]);
      return Undefined{};
    }
    return string_method(*text, key);
  }
  if (const ObjectPtr* obj = std::get_if<ObjectPtr>(&object)) {
    if ((*obj)->is_array) {
      const Value method = array_method(*obj, key);
      if (!std::holds_alternative<Undefined>(method)) return method;
    }
    return (*obj)->get(key);
  }
  if (const FunctionPtr* fn = std::get_if<FunctionPtr>(&object)) {
    return function_method(*fn, key);
  }
  if (std::holds_alternative<double>(object)) {
    return number_method(std::get<double>(object), key);
  }
  throw ThrownValue{Value(std::string("TypeError: cannot read property '" +
                                      key + "'"))};
}

void Interpreter::set_member(const Value& object, std::string_view key_view,
                             Value value) {
  const std::string key(key_view);
  if (const ObjectPtr* obj = std::get_if<ObjectPtr>(&object)) {
    (*obj)->set(key, std::move(value));
    return;
  }
  throw ThrownValue{Value(std::string("TypeError: cannot set property '" +
                                      key + "'"))};
}

Value Interpreter::eval_member_object(const Node* member,
                                      const EnvPtr& environment,
                                      Value* this_out) {
  const Value object = eval(member->kids[0], environment);
  if (this_out != nullptr) *this_out = object;
  return object;
}

void Interpreter::assign_target(const Node* target, Value value,
                                const EnvPtr& environment) {
  if (target->kind == NodeKind::kIdentifier) {
    environment->assign(target->str_value, std::move(value));
    return;
  }
  if (target->kind == NodeKind::kMemberExpression) {
    const Value object = eval(target->kids[0], environment);
    const std::string key =
        target->flag_a
            ? to_string_value(eval(target->kids[1], environment))
            : std::string(target->kids[1]->str_value);
    set_member(object, key, std::move(value));
    return;
  }
  if (target->kind == NodeKind::kArrayPattern ||
      target->kind == NodeKind::kObjectPattern) {
    bind_pattern(target, value, environment, /*declare=*/false);
    return;
  }
  throw InterpreterError("unsupported assignment target");
}

Value Interpreter::eval_binary(const Node* node, const EnvPtr& environment) {
  const std::string_view op = node->str_value;
  const Value left = eval(node->kids[0], environment);

  if (op == "&&") {
    return to_boolean(left) ? eval(node->kids[1], environment) : left;
  }
  if (op == "||") {
    return to_boolean(left) ? left : eval(node->kids[1], environment);
  }
  if (op == "??") {
    const bool nullish = std::holds_alternative<Undefined>(left) ||
                         std::holds_alternative<Null>(left);
    return nullish ? eval(node->kids[1], environment) : left;
  }

  const Value right = eval(node->kids[1], environment);
  if (op == "+") {
    if (std::holds_alternative<std::string>(left) ||
        std::holds_alternative<std::string>(right) ||
        std::holds_alternative<ObjectPtr>(left) ||
        std::holds_alternative<ObjectPtr>(right)) {
      return to_string_value(left) + to_string_value(right);
    }
    return to_number(left) + to_number(right);
  }
  if (op == "-") return to_number(left) - to_number(right);
  if (op == "*") return to_number(left) * to_number(right);
  if (op == "/") return to_number(left) / to_number(right);
  if (op == "%") return std::fmod(to_number(left), to_number(right));
  if (op == "**") return std::pow(to_number(left), to_number(right));
  if (op == "==") return loose_equals(left, right);
  if (op == "!=") return !loose_equals(left, right);
  if (op == "===") return strict_equals(left, right);
  if (op == "!==") return !strict_equals(left, right);
  if (op == "<" || op == ">" || op == "<=" || op == ">=") {
    if (std::holds_alternative<std::string>(left) &&
        std::holds_alternative<std::string>(right)) {
      const auto& lhs = std::get<std::string>(left);
      const auto& rhs = std::get<std::string>(right);
      if (op == "<") return lhs < rhs;
      if (op == ">") return lhs > rhs;
      if (op == "<=") return lhs <= rhs;
      return lhs >= rhs;
    }
    const double lhs = to_number(left);
    const double rhs = to_number(right);
    if (std::isnan(lhs) || std::isnan(rhs)) return false;
    if (op == "<") return lhs < rhs;
    if (op == ">") return lhs > rhs;
    if (op == "<=") return lhs <= rhs;
    return lhs >= rhs;
  }
  const auto to_int32 = [](double number) {
    if (std::isnan(number) || std::isinf(number)) return std::int32_t{0};
    return static_cast<std::int32_t>(static_cast<std::int64_t>(number));
  };
  const auto to_uint32 = [](double number) {
    if (std::isnan(number) || std::isinf(number)) return std::uint32_t{0};
    return static_cast<std::uint32_t>(static_cast<std::int64_t>(number));
  };
  if (op == "&") return static_cast<double>(to_int32(to_number(left)) &
                                            to_int32(to_number(right)));
  if (op == "|") return static_cast<double>(to_int32(to_number(left)) |
                                            to_int32(to_number(right)));
  if (op == "^") return static_cast<double>(to_int32(to_number(left)) ^
                                            to_int32(to_number(right)));
  if (op == "<<") {
    return static_cast<double>(to_int32(to_number(left))
                               << (to_uint32(to_number(right)) & 31));
  }
  if (op == ">>") {
    return static_cast<double>(to_int32(to_number(left)) >>
                               (to_uint32(to_number(right)) & 31));
  }
  if (op == ">>>") {
    return static_cast<double>(to_uint32(to_number(left)) >>
                               (to_uint32(to_number(right)) & 31));
  }
  if (op == "in") {
    if (const ObjectPtr* obj = std::get_if<ObjectPtr>(&right)) {
      const std::string key = to_string_value(left);
      if ((*obj)->is_array &&
          key.find_first_not_of("0123456789") == std::string::npos &&
          !key.empty()) {
        return std::stoul(key) < (*obj)->elements.size();
      }
      return (*obj)->properties.count(key) > 0;
    }
    return false;
  }
  if (op == "instanceof") return false;  // no prototype chain modeled
  throw InterpreterError("unsupported binary operator " +
                         std::string(op));
}

Value Interpreter::eval_call(const Node* node, const EnvPtr& environment) {
  const Node* callee = node->kids[0];
  Value this_value = Undefined{};
  Value function;
  if (callee->kind == NodeKind::kMemberExpression) {
    const Value object = eval(callee->kids[0], environment);
    const std::string key =
        callee->flag_a
            ? to_string_value(eval(callee->kids[1], environment))
            : std::string(callee->kids[1]->str_value);
    this_value = object;
    function = get_member(object, key);
  } else {
    function = eval(callee, environment);
  }
  std::vector<Value> args;
  for (std::size_t i = 1; i < node->kids.size(); ++i) {
    const Node* argument = node->kids[i];
    if (argument->kind == NodeKind::kSpreadElement) {
      const Value spread = eval(argument->kids[0], environment);
      if (const ObjectPtr* array = std::get_if<ObjectPtr>(&spread)) {
        if ((*array)->is_array) {
          for (const Value& element : (*array)->elements) {
            args.push_back(element);
          }
          continue;
        }
      }
      continue;
    }
    args.push_back(eval(argument, environment));
  }
  return call_function(function, this_value, args);
}

Value Interpreter::eval(const Node* node, const EnvPtr& environment) {
  tick();
  if (node == nullptr) return Undefined{};
  switch (node->kind) {
    case NodeKind::kIdentifier:
      if (node->str_value == "undefined") return Undefined{};
      if (node->str_value == "NaN") return std::nan("");
      if (node->str_value == "Infinity") return HUGE_VAL;
      return environment->get(node->str_value);

    case NodeKind::kLiteral:
      switch (node->lit_kind) {
        case LiteralKind::kString: return std::string(node->str_value);
        case LiteralKind::kNumber: return node->num_value;
        case LiteralKind::kBoolean: return node->num_value != 0.0;
        case LiteralKind::kNull: return Null{};
        case LiteralKind::kRegExp:
          throw InterpreterError("regex literals are not supported");
      }
      return Undefined{};

    case NodeKind::kThisExpression:
      return environment->has("this") ? environment->get("this")
                                      : Value(Undefined{});

    case NodeKind::kTemplateLiteral: {
      std::string out;
      for (const Node* kid : node->kids) {
        if (kid->kind == NodeKind::kTemplateElement) {
          // Cooked value: unescape the raw chunk minimally.
          const std::string_view raw = kid->str_value;
          for (std::size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] == '\\' && i + 1 < raw.size()) {
              const char next = raw[++i];
              switch (next) {
                case 'n': out += '\n'; break;
                case 't': out += '\t'; break;
                case '\\': out += '\\'; break;
                case '`': out += '`'; break;
                case '$': out += '$'; break;
                default: out += next;
              }
            } else {
              out += raw[i];
            }
          }
        } else {
          out += to_string_value(eval(kid, environment));
        }
      }
      return out;
    }

    case NodeKind::kArrayExpression: {
      std::vector<Value> elements;
      for (const Node* element : node->kids) {
        if (element == nullptr) {
          elements.emplace_back(Undefined{});
          continue;
        }
        if (element->kind == NodeKind::kSpreadElement) {
          const Value spread = eval(element->kids[0], environment);
          if (const ObjectPtr* array = std::get_if<ObjectPtr>(&spread)) {
            if ((*array)->is_array) {
              for (const Value& item : (*array)->elements) {
                elements.push_back(item);
              }
            }
          }
          continue;
        }
        elements.push_back(eval(element, environment));
      }
      return make_array(std::move(elements));
    }

    case NodeKind::kObjectExpression: {
      auto object = std::make_shared<JsObject>();
      for (const Node* property : node->kids) {
        if (property->kind == NodeKind::kSpreadElement) {
          const Value spread = eval(property->kids[0], environment);
          if (const ObjectPtr* other = std::get_if<ObjectPtr>(&spread)) {
            for (const auto& [key, value] : (*other)->properties) {
              object->properties[key] = value;
            }
          }
          continue;
        }
        if (property->str_value == "get" || property->str_value == "set") {
          continue;  // accessors unsupported; skip
        }
        const std::string key =
            property_key(property->kids[0], property->flag_a, environment);
        object->properties[key] = eval(property->kids[1], environment);
      }
      return object;
    }

    case NodeKind::kFunctionExpression:
    case NodeKind::kArrowFunctionExpression:
      return make_function(node, environment);

    case NodeKind::kSequenceExpression: {
      Value last = Undefined{};
      for (const Node* kid : node->kids) last = eval(kid, environment);
      return last;
    }

    case NodeKind::kUnaryExpression: {
      const std::string_view op = node->str_value;
      if (op == "typeof") {
        // typeof undeclaredVar does not throw.
        const Node* argument = node->kids[0];
        if (argument->kind == NodeKind::kIdentifier &&
            !environment->has(argument->str_value)) {
          return std::string("undefined");
        }
        return type_of(eval(argument, environment));
      }
      if (op == "delete") {
        const Node* argument = node->kids[0];
        if (argument->kind == NodeKind::kMemberExpression) {
          const Value object = eval(argument->kids[0], environment);
          const std::string key =
              argument->flag_a
                  ? to_string_value(eval(argument->kids[1], environment))
                  : std::string(argument->kids[1]->str_value);
          if (const ObjectPtr* obj = std::get_if<ObjectPtr>(&object)) {
            (*obj)->properties.erase(key);
            return true;
          }
        }
        return true;
      }
      const Value value = eval(node->kids[0], environment);
      if (op == "!") return !to_boolean(value);
      if (op == "-") return -to_number(value);
      if (op == "+") return to_number(value);
      if (op == "~") {
        const double number = to_number(value);
        const auto as_int =
            std::isnan(number) || std::isinf(number)
                ? std::int32_t{0}
                : static_cast<std::int32_t>(static_cast<std::int64_t>(number));
        return static_cast<double>(~as_int);
      }
      if (op == "void") return Undefined{};
      throw InterpreterError("unsupported unary operator " +
                             std::string(op));
    }

    case NodeKind::kUpdateExpression: {
      const Node* target = node->kids[0];
      const double old_value =
          to_number(target->kind == NodeKind::kIdentifier
                        ? environment->get(target->str_value)
                        : eval(target, environment));
      const double new_value =
          node->str_value == "++" ? old_value + 1 : old_value - 1;
      assign_target(target, new_value, environment);
      return node->flag_a ? new_value : old_value;
    }

    case NodeKind::kBinaryExpression:
    case NodeKind::kLogicalExpression:
      return eval_binary(node, environment);

    case NodeKind::kAssignmentExpression: {
      const std::string_view op = node->str_value;
      if (op == "=") {
        Value value = eval(node->kids[1], environment);
        assign_target(node->kids[0], value, environment);
        return value;
      }
      // Compound: read-modify-write.
      const Node* target = node->kids[0];
      const Value current = target->kind == NodeKind::kIdentifier
                                ? environment->get(target->str_value)
                                : eval(target, environment);
      if (op == "&&=" || op == "||=" || op == "?\?=") {
        const bool take = op == "&&=" ? to_boolean(current)
                          : op == "||="
                              ? !to_boolean(current)
                              : (std::holds_alternative<Undefined>(current) ||
                                 std::holds_alternative<Null>(current));
        if (!take) return current;
        Value value = eval(node->kids[1], environment);
        assign_target(target, value, environment);
        return value;
      }
      Node binary;
      binary.kind = NodeKind::kBinaryExpression;
      binary.str_value = op.substr(0, op.size() - 1);
      // Evaluate manually to avoid cloning: compute rhs then combine.
      const Value rhs = eval(node->kids[1], environment);
      Value result;
      {
        // Reuse eval_binary's logic via a tiny shim: build values directly.
        const std::string_view bop = binary.str_value;
        if (bop == "+") {
          if (std::holds_alternative<std::string>(current) ||
              std::holds_alternative<std::string>(rhs)) {
            result = to_string_value(current) + to_string_value(rhs);
          } else {
            result = to_number(current) + to_number(rhs);
          }
        } else if (bop == "-") {
          result = to_number(current) - to_number(rhs);
        } else if (bop == "*") {
          result = to_number(current) * to_number(rhs);
        } else if (bop == "/") {
          result = to_number(current) / to_number(rhs);
        } else if (bop == "%") {
          result = std::fmod(to_number(current), to_number(rhs));
        } else if (bop == "**") {
          result = std::pow(to_number(current), to_number(rhs));
        } else {
          throw InterpreterError("unsupported compound assignment " +
                               std::string(op));
        }
      }
      assign_target(target, result, environment);
      return result;
    }

    case NodeKind::kConditionalExpression:
      return to_boolean(eval(node->kids[0], environment))
                 ? eval(node->kids[1], environment)
                 : eval(node->kids[2], environment);

    case NodeKind::kCallExpression:
      return eval_call(node, environment);

    case NodeKind::kNewExpression: {
      // Constructor call: create a plain object, run the function with it
      // as `this`, return the object (or an explicit object return).
      const Value callee = eval(node->kids[0], environment);
      const FunctionPtr* function = std::get_if<FunctionPtr>(&callee);
      if (function == nullptr) {
        throw ThrownValue{Value(std::string("TypeError: not a constructor"))};
      }
      std::vector<Value> args;
      for (std::size_t i = 1; i < node->kids.size(); ++i) {
        args.push_back(eval(node->kids[i], environment));
      }
      auto instance = std::make_shared<JsObject>();
      const Value result = invoke(*function, Value(instance), args);
      if (std::holds_alternative<ObjectPtr>(result)) return result;
      return instance;
    }

    case NodeKind::kMemberExpression: {
      const Value object = eval(node->kids[0], environment);
      const std::string key =
          node->flag_a ? to_string_value(eval(node->kids[1], environment))
                       : std::string(node->kids[1]->str_value);
      return get_member(object, key);
    }

    case NodeKind::kSpreadElement:
      return eval(node->kids[0], environment);

    default:
      throw InterpreterError(std::string("unsupported expression: ") +
                             std::string(node_kind_name(node->kind)));
  }
}

RunResult run_program_source(std::string_view source,
                             const InterpreterOptions& options) {
  Interpreter interpreter(options);
  return interpreter.run(source);
}

}  // namespace jst::interp
