#include "ml/random_forest.h"

#include <algorithm>
#include <chrono>
#include <istream>
#include <numeric>
#include <ostream>
#include <string>

#include "ml/model_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace jst::ml {

void RandomForest::fit(const Matrix& data, std::span<const std::uint8_t> labels,
                       const ForestParams& params, Rng& rng) {
  if (data.row_count() == 0) throw ModelError("RandomForest::fit: empty data");
  trees_.clear();
  trees_.resize(params.tree_count);
  feature_count_ = data.column_count();
  const std::size_t row_count = data.row_count();
  const auto sample_count = static_cast<std::size_t>(
      static_cast<double>(row_count) * params.bootstrap_fraction);
  // One seed per tree, drawn serially from the caller's stream: tree t sees
  // the same RNG stream no matter how many threads train the forest, so the
  // fitted model is bit-identical for every params.threads value.
  std::vector<std::uint64_t> seeds(trees_.size());
  for (std::uint64_t& seed : seeds) seed = rng.next();
  JST_SPAN("forest.fit");
  obs::Histogram& tree_fit_ms =
      obs::MetricsRegistry::global().histogram("jst_forest_tree_fit_ms");
  support::run_parallel(
      params.threads, trees_.size(), [&](std::size_t t) {
        JST_SPAN("forest.fit_tree");
        const auto start = std::chrono::steady_clock::now();
        Rng tree_rng(seeds[t]);
        std::vector<std::size_t> bootstrap(
            std::max<std::size_t>(sample_count, 1));
        for (std::size_t& index : bootstrap) index = tree_rng.index(row_count);
        trees_[t].fit(data, labels, bootstrap, params.tree, tree_rng);
        tree_fit_ms.record(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count());
      });
}

double RandomForest::predict_proba(std::span<const float> row) const {
  if (trees_.empty()) throw ModelError("RandomForest::predict before fit");
  double total = 0.0;
  for (const DecisionTree& tree : trees_) total += tree.predict(row);
  return total / static_cast<double>(trees_.size());
}

namespace {
// v1: whitespace-separated text (the original format, still written by
// ModelEncoding::kText and always readable). v2b: binary node records
// framed by the same magic convention; the tag line ends in '\n' so the
// payload starts at an exact byte offset.
constexpr const char* kForestMagic = "jstraced-forest-v1";
constexpr const char* kForestMagicBinary = "jstraced-forest-v2b";
}

void RandomForest::save(std::ostream& out, ModelEncoding encoding) const {
  if (encoding == ModelEncoding::kBinary) {
    out << kForestMagicBinary << '\n';
    codec::write_u64(out, trees_.size());
    codec::write_u64(out, feature_count_);
    for (const DecisionTree& tree : trees_) tree.save_binary(out);
    return;
  }
  out << kForestMagic << '\n';
  out << trees_.size() << ' ' << feature_count_ << '\n';
  for (const DecisionTree& tree : trees_) tree.save(out);
}

void RandomForest::load(std::istream& in) {
  std::string magic;
  if (!(in >> magic)) {
    throw ModelError("RandomForest::load: empty or truncated stream");
  }
  if (magic == kForestMagicBinary) {
    codec::skip_separator(in);
    const std::uint64_t count = codec::read_u64(in, "forest tree count");
    feature_count_ =
        static_cast<std::size_t>(codec::read_u64(in, "forest feature count"));
    trees_.assign(static_cast<std::size_t>(count), DecisionTree{});
    for (DecisionTree& tree : trees_) tree.load_binary(in);
    return;
  }
  if (magic != kForestMagic) {
    throw ModelError("RandomForest::load: unrecognized format (magic \"" +
                     magic + "\")");
  }
  std::size_t count = 0;
  if (!(in >> count >> feature_count_)) {
    throw ModelError("RandomForest::load: bad header");
  }
  trees_.assign(count, DecisionTree{});
  for (DecisionTree& tree : trees_) tree.load(in);
}

std::vector<double> RandomForest::feature_importance() const {
  std::vector<double> importance(feature_count_, 0.0);
  for (const DecisionTree& tree : trees_) {
    tree.add_feature_importance(importance);
  }
  const double total =
      std::accumulate(importance.begin(), importance.end(), 0.0);
  if (total > 0.0) {
    for (double& value : importance) value /= total;
  }
  return importance;
}

}  // namespace jst::ml
