// Parse-time identifier interning.
//
// The data-flow pass (DESIGN.md §17) resolves every identifier reference
// against lexical scopes. Keying those scopes by string re-hashes (and,
// with std::unordered_map, re-materializes) each identifier's bytes once
// per bind/resolve — at wild-study batch scale that string traffic is the
// hot core of the static stage. AtomTable assigns each distinct
// identifier spelling a dense u32 atom id once, at parse time, when the
// lexer has just produced the bytes: Node carries the atom, and every
// later scope operation is integer indexing.
//
// Same table discipline as features::IdentifierSet: open addressing with
// linear probing over a power-of-two slot array, FNV-1a hashing,
// byte-exact comparison on hash hits, O(1) epoch clear(). The interned
// views alias the AST arena (Ast::intern copies the bytes there first),
// so a table pooled across scripts must be clear()ed exactly when the
// arena is reset — parse_program does both together.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace jst::support {

class AtomTable {
 public:
  // Absent atom (identifier not interned / non-identifier node).
  static constexpr std::uint32_t kNoAtom = 0xffffffffu;

  // Number of distinct atoms interned this epoch. Atom ids are dense:
  // every id in [0, size()) is live.
  std::size_t size() const { return names_.size(); }

  // The spelling behind an atom id (a view into the source arena).
  std::string_view name(std::uint32_t atom) const { return names_[atom]; }

  // O(1): slots carry an epoch and stale epochs read as empty.
  void clear() {
    ++epoch_;
    if (epoch_ == 0) {
      // Epoch wrapped: lazily-invalidated slots would read as live again.
      std::fill(slots_.begin(), slots_.end(), Slot{});
      epoch_ = 1;
    }
    names_.clear();
  }

  // Returns the atom for `name`, interning it if new. `name` must point
  // at storage that outlives the current epoch (the AST arena).
  std::uint32_t intern(std::string_view name) {
    if (names_.size() * 10 >= slots_.size() * 7) grow();
    std::uint64_t hash = kFnvOffsetBasis;
    for (const char ch : name) {
      hash ^= static_cast<unsigned char>(ch);
      hash *= kFnvPrime;
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t index = static_cast<std::size_t>(hash) & mask;
    while (true) {
      Slot& slot = slots_[index];
      if (slot.epoch != epoch_) {  // empty: never used, or stale epoch
        slot.hash = hash;
        slot.atom = static_cast<std::uint32_t>(names_.size());
        slot.epoch = epoch_;
        names_.push_back(name);
        return slot.atom;
      }
      const std::string_view existing = names_[slot.atom];
      if (slot.hash == hash && existing.size() == name.size() &&
          std::memcmp(existing.data(), name.data(), name.size()) == 0) {
        return slot.atom;
      }
      index = (index + 1) & mask;
    }
  }

  std::size_t capacity_bytes() const {
    return slots_.capacity() * sizeof(Slot) +
           names_.capacity() * sizeof(std::string_view);
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::uint32_t atom = 0;
    std::uint32_t epoch = 0;  // live iff equal to the table's current epoch
  };
  static constexpr std::size_t kInitialSlots = 256;  // power of two
  static constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
  static constexpr std::uint64_t kFnvPrime = 1099511628211ull;

  // Doubles the table (first call: allocates it — a default-constructed
  // table owns no memory).
  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? kInitialSlots : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.epoch != epoch_) continue;
      std::size_t index = static_cast<std::size_t>(slot.hash) & mask;
      while (slots_[index].epoch == epoch_) index = (index + 1) & mask;
      slots_[index] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::string_view> names_;
  std::uint32_t epoch_ = 1;  // default-constructed slots (epoch 0) are empty
};

}  // namespace jst::support
