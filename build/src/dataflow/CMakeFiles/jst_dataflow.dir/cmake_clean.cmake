file(REMOVE_RECURSE
  "CMakeFiles/jst_dataflow.dir/dataflow.cpp.o"
  "CMakeFiles/jst_dataflow.dir/dataflow.cpp.o.d"
  "libjst_dataflow.a"
  "libjst_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jst_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
