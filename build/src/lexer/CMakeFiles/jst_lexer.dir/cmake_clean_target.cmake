file(REMOVE_RECURSE
  "libjst_lexer.a"
)
