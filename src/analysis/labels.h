// Ground-truth label structures shared by training and evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "transform/technique.h"

namespace jst::analysis {

// Level-1 classes (§III-C): a multi-task detector over
// {regular, minified, obfuscated}; a file counts as *transformed* when it
// is minified and/or obfuscated.
struct Level1Truth {
  bool regular = false;
  bool minified = false;
  bool obfuscated = false;

  bool transformed() const { return minified || obfuscated; }
};

// A labeled sample: source plus its technique label set.
struct Sample {
  std::string source;
  std::vector<transform::Technique> techniques;  // empty = regular
  Level1Truth level1;
};

// Derives the level-1 truth from a technique label set.
Level1Truth level1_from_techniques(
    const std::vector<transform::Technique>& techniques);

// Converts a technique set to a 10-wide binary row (LabelMatrix row).
std::vector<std::uint8_t> technique_row(
    const std::vector<transform::Technique>& techniques);

// Indices of set bits -> technique list.
std::vector<transform::Technique> techniques_from_indices(
    const std::vector<std::size_t>& indices);

std::vector<std::size_t> indices_from_techniques(
    const std::vector<transform::Technique>& techniques);

}  // namespace jst::analysis
