#include "obs/window.h"

#include <algorithm>
#include <chrono>

namespace jst::obs {
namespace {

std::chrono::steady_clock::time_point window_epoch() {
  static const auto kEpoch = std::chrono::steady_clock::now();
  return kEpoch;
}

void atomic_fetch_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

// Ring slack beyond the window: a slot is recycled only after this many
// extra seconds, which bounds how stale a descheduled writer can be
// before its observation lands in the wrong second.
constexpr std::size_t kRingSlack = 4;

}  // namespace

std::uint64_t window_now_s() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - window_epoch())
          .count());
}

WindowedCounter::WindowedCounter(std::size_t window_seconds)
    : window_seconds_(window_seconds == 0 ? 1 : window_seconds),
      slots_(window_seconds_ + kRingSlack) {}

WindowedCounter::Slot& WindowedCounter::rotate(std::uint64_t now_s) {
  Slot& slot = slots_[now_s % slots_.size()];
  std::uint64_t seen = slot.epoch.load(std::memory_order_acquire);
  while (seen != now_s) {
    // Recycled slot: the CAS winner zeroes it for the new second. Losers
    // retry the load and fall through once the epoch matches.
    if (slot.epoch.compare_exchange_weak(seen, now_s,
                                         std::memory_order_acq_rel)) {
      slot.count.store(0, std::memory_order_relaxed);
      break;
    }
  }
  return slot;
}

void WindowedCounter::add_at(std::uint64_t now_s, std::uint64_t delta) {
  rotate(now_s).count.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t WindowedCounter::sum_at(std::uint64_t now_s) const {
  std::uint64_t total = 0;
  for (const Slot& slot : slots_) {
    const std::uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == kEmptyEpoch || epoch > now_s) continue;
    if (now_s - epoch >= window_seconds_) continue;
    total += slot.count.load(std::memory_order_relaxed);
  }
  return total;
}

WindowedHistogram::WindowedHistogram(std::size_t window_seconds,
                                     HistogramLayout layout)
    : window_seconds_(window_seconds == 0 ? 1 : window_seconds),
      layout_(layout),
      slots_(window_seconds_ + kRingSlack) {}

WindowedHistogram::Slot& WindowedHistogram::rotate(std::uint64_t now_s) {
  Slot& slot = slots_[now_s % slots_.size()];
  std::uint64_t seen = slot.epoch.load(std::memory_order_acquire);
  while (seen != now_s) {
    if (slot.epoch.compare_exchange_weak(seen, now_s,
                                         std::memory_order_acq_rel)) {
      for (auto& bucket : slot.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      slot.count.store(0, std::memory_order_relaxed);
      slot.sum.store(0.0, std::memory_order_relaxed);
      slot.max.store(0.0, std::memory_order_relaxed);
      break;
    }
  }
  return slot;
}

void WindowedHistogram::record_at(std::uint64_t now_s, double value) {
  Slot& slot = rotate(now_s);
  const auto& bounds = Histogram::layout_bounds(layout_);
  std::size_t bucket = 0;
  while (bucket + 1 < Histogram::kBucketCount && value > bounds[bucket]) {
    ++bucket;
  }
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(value, std::memory_order_relaxed);
  atomic_fetch_max(slot.max, value);
}

WindowSnapshot WindowedHistogram::snapshot_at(std::uint64_t now_s) const {
  std::array<std::uint64_t, Histogram::kBucketCount> buckets{};
  WindowSnapshot snap;
  for (const Slot& slot : slots_) {
    const std::uint64_t epoch = slot.epoch.load(std::memory_order_acquire);
    if (epoch == kEmptyEpoch || epoch > now_s) continue;
    if (now_s - epoch >= window_seconds_) continue;
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      buckets[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += slot.count.load(std::memory_order_relaxed);
    snap.sum += slot.sum.load(std::memory_order_relaxed);
    snap.max = std::max(snap.max, slot.max.load(std::memory_order_relaxed));
  }
  const auto& bounds = Histogram::layout_bounds(layout_);
  snap.p50 = percentile_from_buckets(bounds, buckets, snap.count, snap.max,
                                     50.0);
  snap.p95 = percentile_from_buckets(bounds, buckets, snap.count, snap.max,
                                     95.0);
  snap.p99 = percentile_from_buckets(bounds, buckets, snap.count, snap.max,
                                     99.0);
  return snap;
}

}  // namespace jst::obs
