// A miniature of the paper's §IV measurement: simulate the five script
// populations (Alexa, npm, DNC, Hynek, BSI), run the trained detectors
// over each, and print the comparative table — benign populations are
// minification-led while malware favors identifier/string obfuscation.
//
//   $ ./wild_study [scripts_per_population]
#include <cstdio>
#include <cstdlib>

#include "analysis/pipeline.h"
#include "analysis/wild.h"
#include "support/strings.h"

int main(int argc, char** argv) {
  using namespace jst;
  using transform::Technique;

  const std::size_t per_population =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;

  analysis::PipelineOptions options;
  options.training_regular_count = 100;
  options.per_technique_count = 20;
  analysis::TransformationAnalyzer analyzer(options);
  std::fprintf(stderr, "[wild] training detectors...\n");
  analyzer.train();

  struct Population {
    const char* name;
    analysis::PopulationSpec spec;
  };
  const Population populations[] = {
      {"Alexa Top 10k", analysis::alexa_spec()},
      {"npm Top 10k", analysis::npm_spec()},
      {"DNC", analysis::dnc_spec()},
      {"Hynek", analysis::hynek_spec()},
      {"BSI", analysis::bsi_spec()},
  };

  std::printf("%-16s %12s %12s %12s %12s\n", "population", "transformed",
              "id-obf", "str-obf", "minified*");
  for (const Population& population : populations) {
    const auto samples = analysis::simulate_population(
        population.spec, per_population, strings::fnv1a(population.name));
    std::size_t transformed = 0;
    std::size_t analyzed = 0;
    double id_obf = 0.0;
    double str_obf = 0.0;
    double minified = 0.0;
    for (const analysis::Sample& sample : samples) {
      const analysis::ScriptReport report = analyzer.analyze(sample.source);
      if (report.parse_failed()) continue;
      ++analyzed;
      if (!report.level1.transformed()) continue;
      ++transformed;
      id_obf += report.technique_confidence[static_cast<std::size_t>(
          Technique::kIdentifierObfuscation)];
      str_obf += report.technique_confidence[static_cast<std::size_t>(
          Technique::kStringObfuscation)];
      minified += report.technique_confidence[static_cast<std::size_t>(
                      Technique::kMinificationSimple)] +
                  report.technique_confidence[static_cast<std::size_t>(
                      Technique::kMinificationAdvanced)];
    }
    const double divisor = transformed > 0 ? static_cast<double>(transformed) : 1.0;
    std::printf("%-16s %11.1f%% %11.1f%% %11.1f%% %11.1f%%\n", population.name,
                100.0 * static_cast<double>(transformed) /
                    static_cast<double>(analyzed > 0 ? analyzed : 1),
                100.0 * id_obf / divisor, 100.0 * str_obf / divisor,
                100.0 * minified / divisor);
  }
  std::printf("\n* summed confidence of the two minification techniques\n");
  std::printf("expected shape: benign rows minification-led; malware rows "
              "identifier/string-obfuscation-led\n");
  return 0;
}
