// Control-flow flattening (obfuscator.io / László & Kiss [23]): each
// eligible statement list is rewritten into a dispatcher —
//
//   var _0xorder = "3|0|2|1"["split"]("|"), _0xstep = 0;
//   while (true) {
//     switch (_0xorder[_0xstep++]) {
//       case "0": <stmt>; continue;
//       ...
//     }
//     break;
//   }
//
// The transformer also hex-renames its own state variables, matching the
// tools' combined behaviour (a flattened file also carries identifier-
// obfuscation and minification traces — up to three labels per §III-E1).
#include <algorithm>
#include <string>
#include <unordered_set>

#include "ast/walk.h"
#include "codegen/codegen.h"
#include "parser/parser.h"
#include "transform/rename.h"
#include "transform/transform.h"

namespace jst::transform {
namespace {

// Statements that must not be moved into switch cases.
bool safe_to_flatten(const Node& statement) {
  switch (statement.kind) {
    case NodeKind::kFunctionDeclaration:  // hoisting would break
    case NodeKind::kClassDeclaration:
    case NodeKind::kBreakStatement:       // would re-bind to our switch
    case NodeKind::kContinueStatement:    // would re-bind to our loop
      return false;
    case NodeKind::kVariableDeclaration:
      // let/const are block-scoped; moving them into cases breaks uses.
      return statement.str_value == "var";
    default:
      return true;
  }
}

// Direct break/continue in the statement subtree that would change target
// when wrapped in our while/switch (i.e., not already inside a nested
// loop/switch within the statement).
bool contains_rebinding_jump(const Node& node, bool inside_protector) {
  if (node.kind == NodeKind::kBreakStatement ||
      node.kind == NodeKind::kContinueStatement) {
    // Labeled jumps keep their target; unlabeled ones re-bind.
    return node.kid(0) == nullptr && !inside_protector;
  }
  const bool protects_break =
      node.is_loop() || node.kind == NodeKind::kSwitchStatement;
  for (const Node* kid : node.kids) {
    if (kid == nullptr || kid->is_function()) continue;
    if (contains_rebinding_jump(*kid, inside_protector || protects_break)) {
      return true;
    }
  }
  return false;
}

void flatten_list(Ast& ast, NodeList& statements, Rng& rng,
                  const FlattenOptions& options) {
  // Partition: leading hoisted declarations stay, the longest safe run is
  // flattened.
  std::vector<Node*> head;
  std::vector<Node*> run;
  std::vector<Node*> tail;
  bool in_run = false;
  bool run_done = false;
  for (Node* statement : statements) {
    const bool safe = statement != nullptr && safe_to_flatten(*statement) &&
                      !contains_rebinding_jump(*statement, false);
    if (!run_done && safe) {
      in_run = true;
      run.push_back(statement);
    } else if (in_run) {
      run_done = true;
      tail.push_back(statement);
    } else {
      head.push_back(statement);
    }
  }
  if (run.size() < options.min_statements) return;

  // Shuffled dispatch: the order string lists case ids in execution order;
  // the cases themselves are emitted shuffled.
  std::vector<std::size_t> case_of_statement(run.size());
  std::vector<std::size_t> shuffled(run.size());
  for (std::size_t i = 0; i < shuffled.size(); ++i) shuffled[i] = i;
  rng.shuffle(shuffled);
  for (std::size_t i = 0; i < run.size(); ++i) {
    case_of_statement[shuffled[i]] = i;  // statement shuffled[i] gets case i
  }

  std::string order_string;
  for (std::size_t i = 0; i < run.size(); ++i) {
    if (i > 0) order_string += "|";
    order_string += std::to_string(case_of_statement[i]);
  }

  const std::string order_name = hex_name(rng);
  const std::string step_name = hex_name(rng);

  // var _0xorder = "...".split("|"), _0xstep = 0;
  Node* split_member = ast.make(NodeKind::kMemberExpression);
  split_member->kids = {ast.make_string(order_string),
                        ast.make_identifier("split")};
  Node* split_call = ast.make(NodeKind::kCallExpression);
  split_call->kids = {split_member, ast.make_string("|")};
  Node* order_declarator = ast.make(NodeKind::kVariableDeclarator);
  order_declarator->kids = {ast.make_identifier(order_name), split_call};
  Node* step_declarator = ast.make(NodeKind::kVariableDeclarator);
  step_declarator->kids = {ast.make_identifier(step_name),
                           ast.make_number(0.0)};
  Node* declaration = ast.make(NodeKind::kVariableDeclaration);
  declaration->str_value = "var";
  declaration->kids = {order_declarator, step_declarator};

  // switch (_0xorder[_0xstep++]) { case "i": stmt; continue; }
  Node* step_update = ast.make(NodeKind::kUpdateExpression);
  step_update->str_value = "++";
  step_update->flag_a = false;  // postfix
  step_update->kids = {ast.make_identifier(step_name)};
  Node* discriminant = ast.make(NodeKind::kMemberExpression);
  discriminant->flag_a = true;
  discriminant->kids = {ast.make_identifier(order_name), step_update};
  Node* switch_statement = ast.make(NodeKind::kSwitchStatement);
  switch_statement->kids = {discriminant};
  for (std::size_t case_id = 0; case_id < run.size(); ++case_id) {
    Node* switch_case = ast.make(NodeKind::kSwitchCase);
    Node* continue_statement = ast.make(NodeKind::kContinueStatement);
    continue_statement->kids = {nullptr};
    switch_case->kids = {ast.make_string(std::to_string(case_id)),
                         run[shuffled[case_id]], continue_statement};
    switch_statement->kids.push_back(switch_case);
  }

  // while (true) { switch ...; break; }
  Node* break_statement = ast.make(NodeKind::kBreakStatement);
  break_statement->kids = {nullptr};
  Node* loop_body = ast.make(NodeKind::kBlockStatement);
  loop_body->kids = {switch_statement, break_statement};
  Node* loop = ast.make(NodeKind::kWhileStatement);
  loop->kids = {ast.make_bool(true), loop_body};

  statements.assign(head.begin(), head.end());
  statements.push_back(declaration);
  statements.push_back(loop);
  statements.insert(statements.cend(), tail.begin(), tail.end());
}

}  // namespace

std::string flatten_control_flow(std::string_view source, Rng& rng,
                                 const FlattenOptions& options) {
  ParseResult parsed = parse_program(source);
  Ast& ast = parsed.ast;
  ast.finalize();

  // Flatten the program body and every function body.
  flatten_list(ast, ast.root()->kids, rng, options);
  walk_preorder(ast.root(), [&](Node& node) {
    if (!node.is_function()) return;
    Node* body = node.kind == NodeKind::kArrowFunctionExpression
                     ? node.kid(0)
                     : node.kid(1);
    if (body != nullptr && body->kind == NodeKind::kBlockStatement) {
      flatten_list(ast, body->kids, rng, options);
    }
  });
  ast.finalize();

  // The tools that flatten also rename identifiers and compact their
  // output (three ground-truth labels per §III-E1).
  std::unordered_set<std::string> used;
  rename_bindings(ast, [&rng, &used](std::size_t, const std::string&) {
    std::string name = hex_name(rng);
    while (!used.insert(name).second) name = hex_name(rng);
    return name;
  });
  CodegenOptions codegen_options;
  codegen_options.minify = true;
  codegen_options.minified_line_limit = 800;
  return generate(ast.root(), codegen_options);
}

}  // namespace jst::transform
