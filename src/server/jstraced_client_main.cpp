// jstraced-client: load generator and probe for jstraced-server.
//
//   $ ./jstraced-client --socket /tmp/jstraced.sock --ping
//   $ ./jstraced-client --socket /tmp/jstraced.sock --metrics
//   $ ./jstraced-client --socket /tmp/jstraced.sock --stats
//   $ ./jstraced-client --socket /tmp/jstraced.sock
//         --connections 8 --requests 64 --deadline-ms 2000 --json
//
// Load mode runs a closed loop per connection (next request leaves when
// the previous response lands) over simulated Alexa-population scripts
// and reports client-observed latency percentiles and the shed rate.
// --json emits the LoadReport as one JSON object on stdout (the format
// bench_server_latency aggregates); the default is a human summary.
// --stats prints the daemon's recent-window {"op":"stats"} view;
// --stats-out FILE captures that snapshot to FILE *after* a load run, so
// one invocation records both the client-observed and the server-side
// pictures of the same burst.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/wild.h"
#include "server/client.h"
#include "support/strings.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: jstraced-client --socket PATH "
               "[--ping | --metrics | --stats | --connections N --requests N "
               "[--deadline-ms X] [--detail status|summary|full] "
               "[--scripts N] [--json] [--stats-out FILE]]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jst;

  std::string socket_path;
  server::LoadOptions options;
  std::size_t script_count = 32;
  bool ping = false;
  bool metrics = false;
  bool stats = false;
  bool json = false;
  std::string stats_out;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--connections") == 0 && i + 1 < argc) {
      options.connections = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      options.requests_per_connection =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      options.deadline_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--detail") == 0 && i + 1 < argc) {
      const char* level = argv[++i];
      if (std::strcmp(level, "status") == 0) {
        options.detail = analysis::OutputDetail::kStatus;
      } else if (std::strcmp(level, "summary") == 0) {
        options.detail = analysis::OutputDetail::kSummary;
      } else if (std::strcmp(level, "full") == 0) {
        options.detail = analysis::OutputDetail::kFull;
      } else {
        usage();
        return 2;
      }
    } else if (std::strcmp(argv[i], "--scripts") == 0 && i + 1 < argc) {
      script_count = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--ping") == 0) {
      ping = true;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else if (std::strcmp(argv[i], "--stats-out") == 0 && i + 1 < argc) {
      stats_out = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      usage();
      return 2;
    }
  }
  if (socket_path.empty()) {
    usage();
    return 2;
  }

  try {
    if (ping) {
      server::Client client(socket_path);
      const bool alive = client.ping();
      std::printf("%s\n", alive ? "ok" : "unreachable");
      return alive ? 0 : 1;
    }
    if (metrics) {
      server::Client client(socket_path);
      std::printf("%s\n", client.metrics_json().c_str());
      return 0;
    }
    if (stats) {
      server::Client client(socket_path);
      std::printf("%s\n", client.stats_json().c_str());
      return 0;
    }

    const auto samples = analysis::simulate_population(
        analysis::alexa_spec(), script_count, strings::fnv1a("jstraced-client"));
    options.sources.reserve(samples.size());
    for (const analysis::Sample& sample : samples) {
      options.sources.push_back(sample.source);
    }

    const server::LoadReport report = server::run_load(socket_path, options);
    if (!stats_out.empty()) {
      // Capture the server-side recent-window view while the load burst
      // is still inside the window.
      server::Client client(socket_path);
      std::ofstream out(stats_out, std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "jstraced-client: cannot write %s\n",
                     stats_out.c_str());
        return 1;
      }
      out << client.stats_json() << "\n";
    }
    if (json) {
      std::printf("%s\n", report.to_json().c_str());
    } else {
      std::printf(
          "sent %llu  ok %llu  shed %llu (%.1f%%)  rejected %llu  "
          "transport errors %llu\n",
          static_cast<unsigned long long>(report.sent),
          static_cast<unsigned long long>(report.ok),
          static_cast<unsigned long long>(report.shed),
          100.0 * report.shed_rate(),
          static_cast<unsigned long long>(report.rejected),
          static_cast<unsigned long long>(report.transport_errors));
      std::printf(
          "latency p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms  "
          "(%.1f req/s over %.0f ms)\n",
          report.latency_p50_ms, report.latency_p95_ms, report.latency_p99_ms,
          report.latency_max_ms, report.achieved_qps, report.wall_ms);
    }
    return report.transport_errors == 0 ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "jstraced-client: %s\n", error.what());
    return 1;
  }
}
