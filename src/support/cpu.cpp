#include "support/cpu.h"

namespace jst::support {

std::string_view simd_kind_name(SimdKind kind) {
  switch (kind) {
    case SimdKind::kSse2:
      return "sse2";
    case SimdKind::kNeon:
      return "neon";
    case SimdKind::kNone:
      break;
  }
  return "none";
}

}  // namespace jst::support
