// Deterministic random number generation for reproducible experiments.
//
// All randomized components (corpus generation, transformers, forest
// training, dataset simulation) draw from an explicitly seeded Rng so a
// given seed reproduces a full experiment bit-for-bit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/error.h"

namespace jst {

// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
// Not cryptographic; chosen for speed and reproducibility across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform over the full 64-bit range.
  std::uint64_t next();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform size_t in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  // Uniform double in [0, 1).
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  // Standard normal via Box-Muller.
  double normal(double mean = 0.0, double stddev = 1.0);

  // Samples an index according to non-negative weights; requires a positive
  // total weight.
  std::size_t weighted_index(std::span<const double> weights);

  // Picks a uniformly random element. Requires a non-empty span.
  template <typename T>
  const T& choice(std::span<const T> items) {
    if (items.empty()) throw InvalidArgument("Rng::choice on empty span");
    return items[index(items.size())];
  }

  template <typename T>
  const T& choice(const std::vector<T>& items) {
    return choice(std::span<const T>(items));
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      std::swap(items[i], items[index(i + 1)]);
    }
  }

  // Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  // Derives an independent child generator (for parallel determinism).
  Rng split();

  // Random lowercase identifier-ish string of the given length.
  std::string identifier(std::size_t length);

  // Random hex string of the given length.
  std::string hex_string(std::size_t length);

 private:
  std::uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace jst
