#include "cfg/cfg.h"

#include <algorithm>
#include <set>
#include <string>

#include "ast/walk.h"

namespace jst {
namespace {

// Builder with break/continue context stacks. Exits of a statement are the
// CFG nodes from which control falls through to the lexically following
// statement.
class CfgBuilder {
 public:
  explicit CfgBuilder(Budget* budget) : budget_(budget) {}

  std::vector<std::pair<std::uint32_t, std::uint32_t>> build(const Node* root) {
    if (root != nullptr) {
      visit_body(root->kids, *root);
      // Nested functions get their own sub-graphs.
      walk_preorder(root, [this](const Node& node) {
        if (node.is_function()) {
          const Node* body = function_body(node);
          if (body != nullptr && body->kind == NodeKind::kBlockStatement) {
            BreakableStack saved_breakables;
            saved_breakables.swap(breakables_);
            visit_body(body->kids, *body);
            saved_breakables.swap(breakables_);
          }
          // Expression-bodied arrows have conditional-expression nodes only.
        }
      });
    }
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
    return std::move(edges_);
  }

 private:
  using Exits = std::vector<const Node*>;
  struct Breakable {
    std::string label;          // empty for unlabeled targets
    const Node* continue_target;  // nullptr for switch
    Exits* break_sink;
  };
  using BreakableStack = std::vector<Breakable>;

  static const Node* function_body(const Node& function) {
    // Layout: FunctionDeclaration/Expression: [id, body, params...];
    // ArrowFunctionExpression: [body, params...].
    if (function.kind == NodeKind::kArrowFunctionExpression) {
      return function.kid(0);
    }
    return function.kid(1);
  }

  void edge(const Node* from, const Node* to) {
    if (budget_ != nullptr) budget_->poll_deadline();
    if (from == nullptr || to == nullptr) return;
    edges_.emplace_back(from->id, to->id);
  }

  void edges_from(const Exits& froms, const Node* to) {
    for (const Node* from : froms) edge(from, to);
  }

  // Adds statement -> ConditionalExpression edges for every conditional
  // expression syntactically inside `statement` (not crossing function
  // boundaries), plus nesting edges between conditionals.
  void link_conditional_expressions(const Node& statement) {
    // Manual stack walk that stops at nested functions and nested
    // statements (those are visited on their own).
    std::vector<std::pair<const Node*, const Node*>> stack;  // (node, nearest cfg parent)
    for (const Node* kid : statement.kids) {
      if (kid != nullptr && !kid->is_statement() &&
          kid->kind != NodeKind::kSwitchCase &&
          kid->kind != NodeKind::kCatchClause) {
        stack.emplace_back(kid, &statement);
      }
    }
    while (!stack.empty()) {
      auto [node, cfg_parent] = stack.back();
      stack.pop_back();
      const Node* next_parent = cfg_parent;
      if (node->kind == NodeKind::kConditionalExpression) {
        edge(cfg_parent, node);
        next_parent = node;
      }
      if (node->is_function()) continue;  // separate sub-graph
      for (const Node* kid : node->kids) {
        if (kid != nullptr && !kid->is_statement()) {
          stack.emplace_back(kid, next_parent);
        }
      }
    }
  }

  Exits visit_body(const NodeList& statements, const Node& owner) {
    Exits previous = {&owner};
    bool first = true;
    for (const Node* statement : statements) {
      if (statement == nullptr) continue;
      if (first) {
        // The container (block/program) flows into its first statement
        // only for blocks nested as CFG nodes; for Program we treat the
        // first statement as the entry, so skip the self edge there.
        first = false;
        if (owner.kind != NodeKind::kProgram) {
          edges_from(previous, statement);
        }
      } else {
        edges_from(previous, statement);
      }
      previous = visit_statement(*statement);
    }
    return previous;
  }

  Exits visit_statement(const Node& node) {
    link_conditional_expressions(node);
    switch (node.kind) {
      case NodeKind::kBlockStatement:
        return visit_body(node.kids, node);

      case NodeKind::kIfStatement: {
        Exits exits;
        const Node* consequent = node.kid(1);
        edge(&node, consequent);
        Exits consequent_exits = visit_statement(*consequent);
        exits.insert(exits.end(), consequent_exits.begin(),
                     consequent_exits.end());
        if (node.kid(2) != nullptr) {
          edge(&node, node.kids[2]);
          Exits alternate_exits = visit_statement(*node.kids[2]);
          exits.insert(exits.end(), alternate_exits.begin(),
                       alternate_exits.end());
        } else {
          exits.push_back(&node);  // false branch falls through
        }
        return exits;
      }

      case NodeKind::kWhileStatement:
      case NodeKind::kDoWhileStatement:
      case NodeKind::kForStatement:
      case NodeKind::kForInStatement:
      case NodeKind::kForOfStatement: {
        Exits breaks;
        breakables_.push_back({pending_label_, &node, &breaks});
        pending_label_.clear();
        const Node* body = loop_body(node);
        edge(&node, body);
        Exits body_exits = visit_statement(*body);
        edges_from(body_exits, &node);  // back edge
        breakables_.pop_back();
        Exits exits = {&node};
        exits.insert(exits.end(), breaks.begin(), breaks.end());
        return exits;
      }

      case NodeKind::kSwitchStatement: {
        Exits breaks;
        breakables_.push_back({pending_label_, nullptr, &breaks});
        pending_label_.clear();
        Exits previous_case_exits;
        bool has_default = false;
        for (std::size_t i = 1; i < node.kids.size(); ++i) {
          const Node& switch_case = *node.kids[i];
          if (switch_case.kid(0) == nullptr) has_default = true;
          // Dispatch edge from the switch to the case's first statement.
          const Node* first_statement = nullptr;
          Exits case_exits = previous_case_exits;
          for (std::size_t j = 1; j < switch_case.kids.size(); ++j) {
            const Node* statement = switch_case.kids[j];
            if (first_statement == nullptr) {
              first_statement = statement;
              edge(&node, statement);
              edges_from(previous_case_exits, statement);  // fallthrough
              case_exits.clear();
            } else {
              edges_from(case_exits, statement);
            }
            case_exits = visit_statement(*statement);
          }
          previous_case_exits = case_exits;
        }
        breakables_.pop_back();
        Exits exits = previous_case_exits;
        exits.insert(exits.end(), breaks.begin(), breaks.end());
        if (!has_default) exits.push_back(&node);
        return exits;
      }

      case NodeKind::kTryStatement: {
        const Node* block = node.kid(0);
        const Node* handler = node.kid(1);
        const Node* finalizer = node.kid(2);
        edge(&node, block);
        Exits exits = visit_statement(*block);
        if (handler != nullptr) {
          edge(&node, handler);  // exception path
          const Node* handler_body = handler->kid(1);
          edge(handler, handler_body);
          Exits handler_exits = visit_statement(*handler_body);
          exits.insert(exits.end(), handler_exits.begin(), handler_exits.end());
        }
        if (finalizer != nullptr) {
          edges_from(exits, finalizer);
          exits = visit_statement(*finalizer);
        }
        return exits;
      }

      case NodeKind::kLabeledStatement: {
        pending_label_ = node.kids[0]->str_value;
        const Node* body = node.kid(1);
        edge(&node, body);
        if (body->is_loop() || body->kind == NodeKind::kSwitchStatement) {
          return visit_statement(*body);
        }
        // Labeled block: breaks to this label exit the block.
        Exits breaks;
        breakables_.push_back({pending_label_, nullptr, &breaks});
        pending_label_.clear();
        Exits exits = visit_statement(*body);
        breakables_.pop_back();
        exits.insert(exits.end(), breaks.begin(), breaks.end());
        return exits;
      }

      case NodeKind::kBreakStatement: {
        const std::string label =
            node.kid(0) != nullptr ? std::string(node.kids[0]->str_value)
                                   : std::string();
        for (auto it = breakables_.rbegin(); it != breakables_.rend(); ++it) {
          if (label.empty() || it->label == label) {
            it->break_sink->push_back(&node);
            break;
          }
        }
        return {};
      }

      case NodeKind::kContinueStatement: {
        const std::string label =
            node.kid(0) != nullptr ? std::string(node.kids[0]->str_value)
                                   : std::string();
        for (auto it = breakables_.rbegin(); it != breakables_.rend(); ++it) {
          if (it->continue_target != nullptr &&
              (label.empty() || it->label == label)) {
            edge(&node, it->continue_target);
            break;
          }
        }
        return {};
      }

      case NodeKind::kReturnStatement:
      case NodeKind::kThrowStatement:
        return {};  // leaves the function / propagates

      case NodeKind::kWithStatement: {
        const Node* body = node.kid(1);
        edge(&node, body);
        return visit_statement(*body);
      }

      default:
        // Straight-line statements: the node itself is the single exit.
        return {&node};
    }
  }

  static const Node* loop_body(const Node& loop) {
    switch (loop.kind) {
      case NodeKind::kWhileStatement: return loop.kid(1);
      case NodeKind::kDoWhileStatement: return loop.kid(0);
      case NodeKind::kForStatement: return loop.kid(3);
      case NodeKind::kForInStatement:
      case NodeKind::kForOfStatement:
        return loop.kid(2);
      default:
        return nullptr;
    }
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  Budget* budget_ = nullptr;
  BreakableStack breakables_;
  std::string pending_label_;
};

}  // namespace

std::unordered_map<std::uint32_t, std::size_t> ControlFlow::out_degrees()
    const {
  std::unordered_map<std::uint32_t, std::size_t> degrees;
  for (const auto& [from, to] : edges) {
    (void)to;
    ++degrees[from];
  }
  return degrees;
}

std::size_t ControlFlow::branch_node_count() const {
  // `edges` is sorted by (from, to) and deduplicated (see build()), so an
  // out-degree is the length of a run of equal `from` values — a linear
  // scan, where the previous implementation built an unordered_map per
  // call (a per-script allocation on the feature fast path).
  std::size_t count = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ++run;
    if (i + 1 == edges.size() || edges[i + 1].first != edges[i].first) {
      if (run >= 2) ++count;
      run = 0;
    }
  }
  return count;
}

std::size_t ControlFlow::back_edge_count() const {
  std::size_t count = 0;
  for (const auto& [from, to] : edges) {
    if (to <= from) ++count;
  }
  return count;
}

ControlFlow build_control_flow(const Ast& ast, Budget* budget) {
  ControlFlow flow;
  CfgBuilder builder(budget);
  flow.edges = builder.build(ast.root());
  return flow;
}

}  // namespace jst
