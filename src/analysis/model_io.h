// Versioned serialization header shared by every persisted detector.
//
// Level1Detector, Level2Detector, and TransformationAnalyzer all prefix
// their serialized form with one ModelHeader line carrying the format
// version, the component name, the feature dimension, and the forest
// hyper-parameters. Loading checks every field against the loader's
// configuration and fails with a ModelError naming the first mismatched
// field and both values — instead of the former partial header check that
// let a config-mismatched load corrupt predictions silently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace jst::analysis {

struct DetectorConfig;

struct ModelHeader {
  static constexpr std::uint32_t kFormatVersion = 2;

  std::uint32_t version = kFormatVersion;
  std::string component;  // "analyzer" | "level1" | "level2"
  std::size_t feature_dimension = 0;
  // Forest hyper-parameters baked into the trained model.
  std::size_t tree_count = 0;
  std::size_t max_depth = 0;
  std::size_t min_samples_split = 0;
  std::size_t min_samples_leaf = 0;
  std::size_t max_features = 0;
  bool classifier_chain = true;
};

// Header describing `config` for the given component name.
ModelHeader make_model_header(std::string component,
                              const DetectorConfig& config);

void write_model_header(std::ostream& out, const ModelHeader& header);

// Throws ModelError on bad magic, unsupported version, or truncation.
ModelHeader read_model_header(std::istream& in);

// read_model_header + field-by-field comparison against `expected`;
// throws ModelError with a precise message on the first mismatch.
void check_model_header(std::istream& in, const ModelHeader& expected);

}  // namespace jst::analysis
