file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_mixed.dir/bench_fig1_mixed.cpp.o"
  "CMakeFiles/bench_fig1_mixed.dir/bench_fig1_mixed.cpp.o.d"
  "bench_fig1_mixed"
  "bench_fig1_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
