// Ground-truth dataset construction (§III-D).
//
// The paper collects 21,000 regular scripts and transforms each with every
// technique; we synthesize the regular corpus (generator + seed snippets)
// and apply the transform module. Counts are configurable so experiments
// scale from smoke tests to paper-protocol sizes.
#pragma once

#include <vector>

#include "analysis/labels.h"
#include "corpus/generator.h"
#include "features/feature_extractor.h"
#include "ml/multilabel.h"
#include "support/rng.h"

namespace jst::analysis {

struct CorpusSpec {
  std::size_t regular_count = 300;
  std::uint64_t seed = 42;
  // Mixing: fraction of regular files seeded from handwritten snippets
  // (possibly concatenated with generated code).
  double snippet_fraction = 0.25;
};

// Generates `regular_count` regular JavaScript sources.
std::vector<std::string> generate_regular_corpus(const CorpusSpec& spec);

// Transforms `source` with one technique; labels follow
// transform::labels_produced().
Sample make_transformed_sample(const std::string& source,
                               transform::Technique technique, Rng& rng);

// Applies a specific technique combination in normalized tool-pipeline
// order (injection -> encodings -> structure -> renaming -> minification);
// labels are the union of each technique's produced labels.
Sample apply_configuration(const std::string& source,
                           std::vector<transform::Technique> techniques,
                           Rng& rng);

// Applies a random combination of `technique_count` distinct techniques
// sequentially (§III-E2's mixed set). Minification-after-obfuscation order
// is normalized so the result stays parseable and label-faithful.
Sample make_mixed_sample(const std::string& source,
                         std::size_t technique_count, Rng& rng);

Sample make_regular_sample(const std::string& source);

// Feature extraction over samples.
struct FeatureTable {
  std::vector<std::vector<float>> rows;
  std::vector<Sample> samples;  // aligned with rows

  ml::Matrix matrix() const { return ml::Matrix{&rows}; }
};

FeatureTable extract_features(std::vector<Sample> samples,
                              const features::FeatureConfig& config);

// Level-1 label matrix: columns [regular, minified, obfuscated].
ml::LabelMatrix level1_labels(const std::vector<Sample>& samples);
// Level-2 label matrix: 10 technique columns.
ml::LabelMatrix level2_labels(const std::vector<Sample>& samples);

}  // namespace jst::analysis
