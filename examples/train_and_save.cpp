// Train once, persist the detectors, reload them in a fresh analyzer, and
// dump an Esprima-style JSON AST — the offline/production workflow.
//
//   $ ./train_and_save /tmp/jstraced.model
#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/pipeline.h"
#include "ast/ast_json.h"
#include "parser/parser.h"
#include "transform/transform.h"

int main(int argc, char** argv) {
  using namespace jst;

  const std::string model_path =
      argc > 1 ? argv[1] : "/tmp/jstraced.model";

  analysis::PipelineOptions options;
  options.training_regular_count = 80;
  options.per_technique_count = 16;

  // 1. Train and save.
  {
    analysis::TransformationAnalyzer analyzer(options);
    std::printf("training...\n");
    analyzer.train();
    std::ofstream out(model_path);
    analyzer.save(out);
    std::printf("model written to %s\n", model_path.c_str());
  }

  // 2. Reload into a fresh analyzer (no retraining).
  analysis::TransformationAnalyzer restored(options);
  {
    std::ifstream in(model_path);
    if (!in) {
      std::fprintf(stderr, "cannot reopen %s\n", model_path.c_str());
      return 1;
    }
    restored.load(in);
    std::printf("model reloaded; trained=%s\n",
                restored.trained() ? "true" : "false");
  }

  // 3. Use it.
  const std::string script = R"JS(
function fetchScores(user) {
  return api.get("/scores/" + user.id).then(function (rows) {
    return rows.filter(function (row) { return row.valid; });
  });
}
)JS";
  Rng rng(11);
  const std::string packed = transform::pack(script, rng);
  const auto report = restored.analyze(packed);
  std::printf("packed sample => transformed=%s (p_min=%.2f p_obf=%.2f)\n",
              report.level1.transformed() ? "yes" : "no",
              report.level1.p_minified, report.level1.p_obfuscated);

  // 4. Dump the AST of the original script as ESTree JSON (first 400
  //    chars for the demo).
  const ParseResult parsed = parse_program(script);
  const std::string json = ast_to_json(parsed.ast.root(), /*pretty=*/true);
  std::printf("\nESTree JSON (truncated):\n%.*s...\n", 400, json.c_str());
  return 0;
}
