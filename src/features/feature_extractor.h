// The complete vector space (§III-B): hashed AST 4-grams plus hand-picked
// features, each feature pinned to one consistent dimension.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "features/analysis_pipeline.h"
#include "features/handpicked.h"
#include "features/ngram.h"
#include "features/scratch.h"

namespace jst::features {

struct FeatureConfig {
  bool use_ngrams = true;
  bool use_handpicked = true;
  NgramConfig ngram;
  AnalysisOptions analysis;
};

// Total dimensionality under `config`.
std::size_t feature_dimension(const FeatureConfig& config);

// Names aligned with extract()'s output (hand-picked names, then
// "ngram4_<bucket>").
std::vector<std::string> feature_names(const FeatureConfig& config);

// Extracts the feature vector from an already-analyzed script.
//
// Reference implementation: separate traversals for the hand-picked
// counters, tree depth, tree breadth, and the n-gram kind sequence. Kept
// as the oracle the fused fast path is equivalence-tested against.
std::vector<float> extract(const ScriptAnalysis& analysis,
                           const FeatureConfig& config);

// Fused fast path: produces a vector bit-identical to extract() in ONE
// pre-order traversal — the hand-picked counters, depth/breadth tracking,
// and an incremental FNV-1a ring of partial n-gram hash states all
// advance per node, with no materialized kind sequence. All working
// storage lives in `scratch` (capacities survive across calls, so steady
// state allocates nothing). Returns a view of scratch.row that stays
// valid until the next call with the same scratch.
const std::vector<float>& extract_into(const ScriptAnalysis& analysis,
                                       const FeatureConfig& config,
                                       ExtractScratch& scratch);

// Parses + analyzes + extracts in one call. Throws ParseError.
std::vector<float> extract_from_source(std::string_view source,
                                       const FeatureConfig& config);

}  // namespace jst::features
