#include "support/json_reader.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "support/json_writer.h"

namespace jst::support {
namespace {

const std::string& empty_string() {
  static const std::string empty;
  return empty;
}
const std::vector<JsonValue>& empty_array() {
  static const std::vector<JsonValue> empty;
  return empty;
}
const std::map<std::string, JsonValue>& empty_object() {
  static const std::map<std::string, JsonValue> empty;
  return empty;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> value = parse_value();
    if (value.has_value()) {
      skip_whitespace();
      if (pos_ != text_.size()) {
        value.reset();
        fail("trailing characters after document");
      }
    }
    if (!value.has_value() && error != nullptr) {
      *error = "offset " + std::to_string(error_pos_) + ": " + error_;
    }
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  void fail(std::string reason) {
    if (error_.empty()) {
      error_ = std::move(reason);
      error_pos_ = pos_;
    }
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  std::optional<JsonValue> parse_value() {
    if (++depth_ > kMaxDepth) {
      fail("nesting deeper than " + std::to_string(kMaxDepth));
      return std::nullopt;
    }
    skip_whitespace();
    std::optional<JsonValue> value;
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
    } else {
      switch (text_[pos_]) {
        case 'n':
          if (consume_literal("null")) value = JsonValue::make_null();
          else fail("invalid literal");
          break;
        case 't':
          if (consume_literal("true")) value = JsonValue::make_bool(true);
          else fail("invalid literal");
          break;
        case 'f':
          if (consume_literal("false")) value = JsonValue::make_bool(false);
          else fail("invalid literal");
          break;
        case '"': value = parse_string(); break;
        case '[': value = parse_array(); break;
        case '{': value = parse_object(); break;
        default: value = parse_number(); break;
      }
    }
    --depth_;
    return value;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (!consume_digits()) {
      pos_ = start;
      fail("invalid number");
      return std::nullopt;
    }
    if (consume('.') && !consume_digits()) {
      fail("digits required after decimal point");
      return std::nullopt;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!consume_digits()) {
        fail("digits required in exponent");
        return std::nullopt;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    // Overflowing literals (e.g. the 1e999 the metrics registry emits for
    // +Inf bucket bounds) saturate to ±infinity, matching strtod and the
    // common lenient-parser behavior, instead of failing the document.
    return JsonValue::make_number(std::strtod(token.c_str(), nullptr));
  }

  bool consume_digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  std::optional<JsonValue> parse_string() {
    std::optional<std::string> text = parse_string_body();
    if (!text.has_value()) return std::nullopt;
    return JsonValue::make_string(*std::move(text));
  }

  std::optional<std::string> parse_string_body() {
    if (!consume('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (!append_unicode_escape(out)) return std::nullopt;
          break;
        }
        default:
          pos_ -= 1;
          fail("invalid escape sequence");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  bool append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else {
        fail("invalid hex digit in \\u escape");
        return false;
      }
    }
    pos_ += 4;
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail("surrogate \\u escapes are not supported");
      return false;
    }
    // UTF-8 encode the BMP code point.
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return true;
  }

  std::optional<JsonValue> parse_array() {
    consume('[');
    std::vector<JsonValue> values;
    skip_whitespace();
    if (consume(']')) return JsonValue::make_array(std::move(values));
    for (;;) {
      std::optional<JsonValue> value = parse_value();
      if (!value.has_value()) return std::nullopt;
      values.push_back(*std::move(value));
      skip_whitespace();
      if (consume(']')) return JsonValue::make_array(std::move(values));
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return std::nullopt;
      }
    }
  }

  std::optional<JsonValue> parse_object() {
    consume('{');
    std::map<std::string, JsonValue> members;
    skip_whitespace();
    if (consume('}')) return JsonValue::make_object(std::move(members));
    for (;;) {
      skip_whitespace();
      std::optional<std::string> key = parse_string_body();
      if (!key.has_value()) return std::nullopt;
      skip_whitespace();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<JsonValue> value = parse_value();
      if (!value.has_value()) return std::nullopt;
      members.insert_or_assign(*std::move(key), *std::move(value));
      skip_whitespace();
      if (consume('}')) return JsonValue::make_object(std::move(members));
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return std::nullopt;
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::string error_;
  std::size_t error_pos_ = 0;
};

}  // namespace

const std::string& JsonValue::as_string() const {
  return is_string() ? string_ : empty_string();
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  return is_array() ? array_ : empty_array();
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  return is_object() ? object_ : empty_object();
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> values) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(values);
  return v;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

std::optional<JsonValue> parse_json(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

namespace {

// Shortest decimal that strtod reads back to exactly `value`; ±infinity
// becomes ±1e999 so the overflow-saturation in parse_number round-trips.
void write_number(JsonWriter& writer, double value) {
  if (std::isnan(value)) {
    writer.null();  // JSON has no NaN; parse never produces one either
    return;
  }
  if (std::isinf(value)) {
    writer.raw(value > 0 ? "1e999" : "-1e999");
    return;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  writer.raw(buf);
}

void write_value(JsonWriter& writer, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      writer.null();
      break;
    case JsonValue::Kind::kBool:
      writer.value(value.as_bool());
      break;
    case JsonValue::Kind::kNumber:
      write_number(writer, value.as_number());
      break;
    case JsonValue::Kind::kString:
      writer.value(value.as_string());
      break;
    case JsonValue::Kind::kArray:
      writer.begin_array();
      for (const JsonValue& element : value.as_array()) {
        write_value(writer, element);
      }
      writer.end_array();
      break;
    case JsonValue::Kind::kObject:
      writer.begin_object();
      for (const auto& [key, member] : value.as_object()) {
        writer.key(key);
        write_value(writer, member);
      }
      writer.end_object();
      break;
  }
}

}  // namespace

std::string to_json(const JsonValue& value) {
  JsonWriter writer;
  write_value(writer, value);
  return writer.str();
}

}  // namespace jst::support
