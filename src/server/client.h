// Blocking client for jstraced-server, plus the closed-loop load
// generator shared by the jstraced-client binary and
// bench/bench_server_latency.
//
// A Client owns one connection and speaks the NDJSON wire schema
// (analysis/wire.h): call() writes one request line and blocks until the
// matching response line arrives. Requests on one Client are strictly
// sequential; open one Client per thread for concurrency (run_load does).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/service.h"
#include "analysis/wire.h"

namespace jst::server {

class Client {
 public:
  // Connects immediately; throws std::runtime_error if the daemon is not
  // listening on `socket_path`.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // One request, one response. Throws std::runtime_error on transport
  // failure (connection reset, malformed response line); server-side
  // rejections come back as regular responses with a non-kOk status.
  analysis::wire::ParsedResponse call(const analysis::AnalyzeRequest& request);

  // Sends a raw line (appending '\n') and returns the raw response line.
  // Used for op lines ({"op":"ping"}, {"op":"metrics"}) and by tests that
  // probe malformed input.
  std::string call_raw(const std::string& line);

  bool ping();
  // The registry snapshot as one JSON document (the "metrics" member of
  // the op response).
  std::string metrics_json();
  // The recent-window serving view as one JSON document (the "stats"
  // member of the {"op":"stats"} response): qps, shed rate, service
  // percentiles, slowest-N exemplars, and — when the daemon has a result
  // cache attached — a "cache" object (mode, hits, misses, stores,
  // evictions, bypasses, entries, bytes, disk_records); "cache" is null
  // on a cacheless daemon. Per-response cache metadata arrives typed on
  // ParsedResponse (cache / cache_lookup_ms / cache_hit() / cached()).
  // See Server::stats_json.
  std::string stats_json();

  void close();
  bool connected() const { return fd_ >= 0; }

 private:
  std::string read_line();

  int fd_ = -1;
  std::string buffer_;  // bytes read past the last returned line
};

// --- load generation -------------------------------------------------------

struct LoadOptions {
  // Concurrent connections, each its own thread with its own Client.
  std::size_t connections = 4;
  // Requests sent per connection (closed loop: next request leaves when
  // the previous response arrived).
  std::size_t requests_per_connection = 64;
  // Per-request deadline forwarded in the request limits; 0 = none.
  double deadline_ms = 0.0;
  // Detail level requested (status-only keeps response parsing off the
  // measured path).
  analysis::OutputDetail detail = analysis::OutputDetail::kStatus;
  // Script bodies to submit, round-robined across requests. Must be
  // non-empty.
  std::vector<std::string> sources;
};

struct LoadReport {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;        // kOverloaded + kDraining responses
  std::uint64_t rejected = 0;    // kInvalidRequest + kNotFound responses
  std::uint64_t transport_errors = 0;
  double wall_ms = 0.0;
  // Client-observed round-trip latency over completed (non-transport-error)
  // requests, shed responses included — a shed answer is still an answer.
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
  double achieved_qps = 0.0;

  double shed_rate() const {
    return sent == 0 ? 0.0
                     : static_cast<double>(shed) / static_cast<double>(sent);
  }
  std::string to_json() const;
};

// Runs the closed-loop load described by `options` against the daemon at
// `socket_path` and aggregates what came back. Transport errors count per
// failed request and end that connection's loop early.
LoadReport run_load(const std::string& socket_path,
                    const LoadOptions& options);

}  // namespace jst::server
