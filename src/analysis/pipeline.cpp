#include "analysis/pipeline.h"

#include <array>
#include <chrono>
#include <istream>
#include <ostream>
#include <string>

#include "analysis/model_io.h"
#include "analysis/wire.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "support/error.h"
#include "support/json_writer.h"
#include "support/thread_pool.h"
#include "transform/technique.h"

namespace jst::analysis {
namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Per-script pipeline telemetry (DESIGN.md §9). The histograms mirror
// StageTimings, so no extra clock reads happen — recording is a handful
// of relaxed atomic adds per script.
struct ScriptMetrics {
  obs::Counter& scripts =
      obs::MetricsRegistry::global().counter("jst_scripts_total");
  obs::Counter& parse_errors =
      obs::MetricsRegistry::global().counter("jst_scripts_parse_errors_total");
  obs::Histogram& total_ms =
      obs::MetricsRegistry::global().histogram("jst_script_total_ms");
  obs::Histogram& static_analysis_ms =
      obs::MetricsRegistry::global().histogram("jst_stage_static_analysis_ms");
  obs::Histogram& features_ms =
      obs::MetricsRegistry::global().histogram("jst_stage_features_ms");
  obs::Histogram& inference_ms =
      obs::MetricsRegistry::global().histogram("jst_stage_inference_ms");
};

ScriptMetrics& script_metrics() {
  static ScriptMetrics* metrics = new ScriptMetrics();  // outlives statics
  return *metrics;
}

// Scratch-reuse telemetry for the zero-alloc fast path: how often a
// warmed-up scratch was handed another script, and the largest
// steady-state footprint any scratch reached.
struct ScratchMetrics {
  obs::Counter& reuses =
      obs::MetricsRegistry::global().counter("jst_scratch_reuse_total");
  obs::Gauge& peak_bytes =
      obs::MetricsRegistry::global().gauge("jst_scratch_peak_bytes");

  void record_peak(std::size_t bytes) {
    // Racy max across workers is fine — telemetry only.
    const auto value = static_cast<double>(bytes);
    if (value > peak_bytes.value()) peak_bytes.set(value);
  }
};

ScratchMetrics& scratch_metrics() {
  static ScratchMetrics* metrics = new ScratchMetrics();  // outlives statics
  return *metrics;
}

// Pooled front-end arena telemetry: how often a warmed-up arena was
// reset-and-reused for another script, and the largest per-script
// footprint (peak bytes across resets) any worker arena reached.
struct ArenaMetrics {
  obs::Counter& reuses =
      obs::MetricsRegistry::global().counter("jst_arena_reuse_total");
  obs::Gauge& peak_bytes =
      obs::MetricsRegistry::global().gauge("jst_arena_peak_bytes");

  void record_peak(std::size_t bytes) {
    // Racy max across workers is fine — telemetry only.
    const auto value = static_cast<double>(bytes);
    if (value > peak_bytes.value()) peak_bytes.set(value);
  }
};

ArenaMetrics& arena_metrics() {
  static ArenaMetrics* metrics = new ArenaMetrics();  // outlives statics
  return *metrics;
}

// Budget-trip telemetry (DESIGN.md §10): one aggregate counter plus one
// counter per ResourceKind, named jst_budget_<kind>_total.
struct BudgetMetrics {
  obs::Counter& trips =
      obs::MetricsRegistry::global().counter("jst_budget_trips_total");
  obs::Counter& degraded =
      obs::MetricsRegistry::global().counter("jst_scripts_degraded_total");
  std::array<obs::Counter*, 6> by_kind{};

  BudgetMetrics() {
    for (std::size_t i = 0; i < by_kind.size(); ++i) {
      const std::string name =
          "jst_budget_" +
          std::string(to_string(static_cast<ResourceKind>(i))) + "_total";
      by_kind[i] = &obs::MetricsRegistry::global().counter(name);
    }
  }
};

BudgetMetrics& budget_metrics() {
  static BudgetMetrics* metrics = new BudgetMetrics();  // outlives statics
  return *metrics;
}

// Prediction telemetry (DESIGN.md §14): what the detectors are *saying*,
// not just how fast they say it. Level-1 verdict counters plus, per
// technique, a positive counter and a confidence histogram on the unit
// layout — a drifting confidence distribution is visible in the export
// long before thresholded positives move.
struct PredictMetrics {
  obs::Counter& transformed =
      obs::MetricsRegistry::global().counter("jst_predict_transformed_total");
  obs::Counter& minified =
      obs::MetricsRegistry::global().counter("jst_predict_minified_total");
  obs::Counter& obfuscated =
      obs::MetricsRegistry::global().counter("jst_predict_obfuscated_total");
  obs::Counter& regular =
      obs::MetricsRegistry::global().counter("jst_predict_regular_total");
  std::array<obs::Counter*, transform::kTechniqueCount> technique_positive{};
  std::array<obs::Histogram*, transform::kTechniqueCount>
      technique_confidence{};

  PredictMetrics() {
    auto& registry = obs::MetricsRegistry::global();
    registry.set_help("jst_predict_transformed_total",
                      "scripts level 1 flagged as minified and/or obfuscated");
    registry.set_help("jst_predict_minified_total",
                      "scripts level 1 flagged as minified");
    registry.set_help("jst_predict_obfuscated_total",
                      "scripts level 1 flagged as obfuscated");
    registry.set_help("jst_predict_regular_total",
                      "scripts level 1 considered untransformed");
    for (transform::Technique technique : transform::all_techniques()) {
      const std::string name(transform::technique_name(technique));
      const std::size_t i = static_cast<std::size_t>(technique);
      technique_positive[i] =
          &registry.counter("jst_predict_" + name + "_total");
      registry.set_help("jst_predict_" + name + "_total",
                        "scripts level 2 labeled " + name);
      technique_confidence[i] = &registry.histogram(
          "jst_predict_" + name + "_confidence",
          obs::HistogramLayout::kUnit);
      registry.set_help("jst_predict_" + name + "_confidence",
                        "level-2 confidence for " + name + " (all scripts)");
    }
  }

  void record(const ScriptReport& report) {
    if (report.level1.transformed()) {
      transformed.add(1);
    } else {
      regular.add(1);
    }
    if (report.level1.minified()) minified.add(1);
    if (report.level1.obfuscated()) obfuscated.add(1);
    for (std::size_t i = 0; i < report.technique_confidence.size() &&
                            i < transform::kTechniqueCount;
         ++i) {
      technique_confidence[i]->record(report.technique_confidence[i]);
    }
    for (transform::Technique technique : report.techniques) {
      technique_positive[static_cast<std::size_t>(technique)]->add(1);
    }
  }
};

PredictMetrics& predict_metrics() {
  static PredictMetrics* metrics = new PredictMetrics();  // outlives statics
  return *metrics;
}

// Flight-recorder breadcrumbs for the serving path: per-stage timings and
// the budget trip, keyed to the request id in scope. Gated on an active
// RequestScope so the batch path (wild_study, training, benches) pays
// nothing beyond one thread-local read per script.
void record_outcome_flight(const ScriptOutcome& outcome) {
  if (obs::current_request_id().empty()) return;
  if (outcome.budget.has_value()) {
    obs::flight_record(obs::FlightEventKind::kBudgetTrip, {},
                       to_string(outcome.budget->kind).data(),
                       outcome.budget->observed, outcome.budget->limit);
  }
  obs::flight_record(obs::FlightEventKind::kStage, {}, "static_analysis",
                     outcome.timing.static_analysis_ms);
  if (outcome.timing.features_ms > 0.0) {
    obs::flight_record(obs::FlightEventKind::kStage, {}, "features",
                       outcome.timing.features_ms);
  }
  if (outcome.has_predictions()) {
    obs::flight_record(obs::FlightEventKind::kStage, {}, "inference",
                       outcome.timing.inference_ms);
  }
}

// Statuses whose analysis stopped before features could run.
bool hard_failure(ScriptStatus status) {
  switch (status) {
    case ScriptStatus::kParseError:
    case ScriptStatus::kBudgetTokens:
    case ScriptStatus::kBudgetAstNodes:
    case ScriptStatus::kBudgetDepth:
    case ScriptStatus::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

ScriptStatus status_for_trip(ResourceKind kind) {
  switch (kind) {
    case ResourceKind::kSourceBytes: return ScriptStatus::kIneligibleSize;
    case ResourceKind::kTokens: return ScriptStatus::kBudgetTokens;
    case ResourceKind::kAstNodes: return ScriptStatus::kBudgetAstNodes;
    case ResourceKind::kAstDepth: return ScriptStatus::kBudgetDepth;
    case ResourceKind::kDataflowEdges: return ScriptStatus::kBudgetDataflow;
    case ResourceKind::kDeadline: return ScriptStatus::kDeadlineExceeded;
  }
  return ScriptStatus::kParseError;
}

void record_outcome_metrics(const ScriptOutcome& outcome) {
  ScriptMetrics& metrics = script_metrics();
  // Touch the budget/scratch/arena/predict singletons unconditionally so
  // the jst_budget_*, jst_scratch_*, jst_arena_*, and jst_predict_*
  // series exist (at 0) in every export, not only after the first trip,
  // reuse, or prediction.
  BudgetMetrics& budget = budget_metrics();
  PredictMetrics& predict = predict_metrics();
  scratch_metrics();
  arena_metrics();
  record_outcome_flight(outcome);
  metrics.scripts.add(1);
  metrics.total_ms.record(outcome.timing.total_ms);
  metrics.static_analysis_ms.record(outcome.timing.static_analysis_ms);
  if (outcome.budget.has_value()) {
    budget.trips.add(1);
    budget.by_kind[static_cast<std::size_t>(outcome.budget->kind)]->add(1);
    if (outcome.degraded()) budget.degraded.add(1);
  }
  if (outcome.parse_failed()) {
    metrics.parse_errors.add(1);
    return;
  }
  if (hard_failure(outcome.status)) return;
  metrics.features_ms.record(outcome.timing.features_ms);
  if (outcome.has_predictions()) {
    metrics.inference_ms.record(outcome.timing.inference_ms);
    predict.record(outcome.report);
  }
}

}  // namespace

std::string_view to_string(ScriptStatus status) {
  switch (status) {
    case ScriptStatus::kOk: return "ok";
    case ScriptStatus::kParseError: return "parse_error";
    case ScriptStatus::kIneligibleSize: return "ineligible_size";
    case ScriptStatus::kIneligibleAst: return "ineligible_ast";
    case ScriptStatus::kBudgetTokens: return "budget_tokens";
    case ScriptStatus::kBudgetAstNodes: return "budget_ast_nodes";
    case ScriptStatus::kBudgetDepth: return "budget_depth";
    case ScriptStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ScriptStatus::kBudgetDataflow: return "budget_dataflow";
    case ScriptStatus::kDegraded: return "degraded";
  }
  return "unknown";
}

std::string ScriptOutcome::to_json() const {
  // Serialization lives in the versioned wire schema (analysis/wire.h) so
  // this method, the daemon, and wild_study --ndjson-out emit identical
  // bytes; v1 preserves the pre-schema field order the golden frontend
  // fixture was captured against.
  return wire::script_outcome_json(*this);
}

TransformationAnalyzer::TransformationAnalyzer(PipelineOptions options)
    : options_(std::move(options)),
      level1_(options_.detector),
      level2_(options_.detector) {}

void TransformationAnalyzer::train() {
  CorpusSpec spec;
  spec.regular_count = options_.training_regular_count;
  spec.seed = options_.seed;
  std::vector<std::string> corpus;
  {
    JST_SPAN("train.corpus");
    corpus = generate_regular_corpus(spec);
  }
  train_on(corpus);
}

void TransformationAnalyzer::train_on(
    const std::vector<std::string>& regular_sources) {
  if (regular_sources.empty()) {
    throw InvalidArgument("train_on: empty regular corpus");
  }
  Rng rng(options_.seed ^ 0x5eedf00dULL);

  // Build pools: regular + per-technique transformed. Base indices and
  // per-sample seeds are drawn serially so the corpus is identical for any
  // thread count; the transforms themselves fan out over the pool.
  struct TransformJob {
    std::size_t base = 0;
    transform::Technique technique;
    std::uint64_t seed = 0;
  };
  std::vector<TransformJob> jobs;
  jobs.reserve(options_.per_technique_count * transform::kTechniqueCount);
  for (transform::Technique technique : transform::all_techniques()) {
    for (std::size_t i = 0; i < options_.per_technique_count; ++i) {
      jobs.push_back({rng.index(regular_sources.size()), technique,
                      rng.next()});
    }
  }

  std::vector<Sample> samples(regular_sources.size() + jobs.size());
  {
    JST_SPAN("train.synthesize");
    for (std::size_t i = 0; i < regular_sources.size(); ++i) {
      samples[i] = make_regular_sample(regular_sources[i]);
    }
    support::run_parallel(0, jobs.size(), [&](std::size_t j) {
      const TransformJob& job = jobs[j];
      Rng job_rng(job.seed);
      samples[regular_sources.size() + j] = make_transformed_sample(
          regular_sources[job.base], job.technique, job_rng);
    });
  }

  FeatureTable table;
  {
    JST_SPAN("train.features");
    table = extract_features(std::move(samples), options_.detector.features);
  }
  const ml::LabelMatrix level1_matrix = level1_labels(table.samples);
  const ml::LabelMatrix level2_matrix = level2_labels(table.samples);

  {
    JST_SPAN("train.level1");
    Rng level1_rng = rng.split();
    level1_.fit(table.matrix(), level1_matrix, level1_rng);
  }

  // Level 2 trains on transformed samples only.
  JST_SPAN("train.level2");
  std::vector<std::vector<float>> transformed_rows;
  ml::LabelMatrix transformed_labels;
  for (std::size_t i = 0; i < table.samples.size(); ++i) {
    if (!table.samples[i].techniques.empty()) {
      transformed_rows.push_back(table.rows[i]);
      transformed_labels.push_back(level2_matrix[i]);
    }
  }
  Rng level2_rng = rng.split();
  level2_.fit(ml::Matrix{&transformed_rows}, transformed_labels, level2_rng);
  trained_ = true;
}

void TransformationAnalyzer::save(std::ostream& out) const {
  if (!trained_) throw ModelError("save: detector not trained");
  write_model_header(out, make_model_header("analyzer", options_.detector));
  level1_.save(out);
  level2_.save(out);
}

void TransformationAnalyzer::load(std::istream& in) {
  check_model_header(in, make_model_header("analyzer", options_.detector));
  level1_.load(in);
  level2_.load(in);
  trained_ = true;
}

ScriptReport TransformationAnalyzer::analyze(std::string_view source) const {
  return analyze_outcome(source).report;
}

ScriptOutcome TransformationAnalyzer::analyze_outcome(
    std::string_view source) const {
  return analyze_outcome(source, ResourceLimits{});
}

ScriptOutcome TransformationAnalyzer::analyze_outcome(
    std::string_view source, const ResourceLimits& limits) const {
  static thread_local ScriptScratch scratch;
  return analyze_outcome(source, limits, scratch);
}

// The resource-governed per-script pipeline (DESIGN.md §10). Hard stages
// (lex/parse/CFG) throw BudgetExceeded, mapped to a budget status here;
// soft stages (data flow, features, inference) degrade: the outcome keeps
// everything computed before the trip and lists the skipped stages.
// Tripped ceilings never escape as exceptions.
ScriptOutcome TransformationAnalyzer::analyze_outcome(
    std::string_view source, const ResourceLimits& limits,
    ScriptScratch& scratch) const {
  if (!trained_) throw ModelError("analyze: detector not trained");
  if (scratch.extract.uses > 0) scratch_metrics().reuses.add(1);
  // epoch > 0 means the pooled arena has been reset at least once, i.e.
  // this script reuses chunks warmed up by a previous one.
  if (scratch.arena.epoch() > 0) arena_metrics().reuses.add(1);
  ScriptOutcome outcome;
  JST_SPAN("script");
  const bool governed = limits.any_enabled();
  Budget budget(limits);
  const auto start = std::chrono::steady_clock::now();

  // Source-size ceiling: refused before the lexer touches a byte. This is
  // the successor of the retired BatchOptions::max_bytes guard and keeps
  // its status (kIneligibleSize) so population counts stay comparable.
  if (limits.max_source_bytes > 0 && source.size() > limits.max_source_bytes) {
    budget.set_stage("pre-parse");
    BudgetTrip trip = budget.make_trip(ResourceKind::kSourceBytes);
    trip.observed = static_cast<double>(source.size());
    outcome.status = ScriptStatus::kIneligibleSize;
    outcome.report.status = outcome.status;
    outcome.error_message = trip.to_string();
    outcome.budget = std::move(trip);
    outcome.timing.static_analysis_ms = ms_since(start);
    outcome.timing.total_ms = outcome.timing.static_analysis_ms;
    record_outcome_metrics(outcome);
    return outcome;
  }

  ScriptAnalysis analysis;
  {
    JST_SPAN("static_analysis");
    try {
      AnalysisOptions analysis_options = options_.detector.features.analysis;
      analysis_options.budget = governed ? &budget : nullptr;
      analysis_options.dataflow_scratch = &scratch.extract.dataflow;
      analysis_options.cfg_scratch = &scratch.extract.cfg;
      analysis_options.arena = &scratch.arena;
      analysis_options.atoms = &scratch.atoms;
      analysis = analyze_script(source, analysis_options);
    } catch (const BudgetExceeded& error) {
      outcome.status = status_for_trip(error.trip().kind);
      outcome.report.status = outcome.status;
      outcome.budget = error.trip();
      outcome.error_message = error.what();
      outcome.timing.static_analysis_ms = ms_since(start);
      outcome.timing.total_ms = outcome.timing.static_analysis_ms;
      record_outcome_metrics(outcome);
      return outcome;
    } catch (const ParseError& error) {
      outcome.status = ScriptStatus::kParseError;
      outcome.report.status = outcome.status;
      outcome.error_message = error.what();
      outcome.timing.static_analysis_ms = ms_since(start);
      outcome.timing.total_ms = outcome.timing.static_analysis_ms;
      record_outcome_metrics(outcome);
      return outcome;
    }
    // The §III-D1 eligibility filter is an AST walk, so it belongs to the
    // static-analysis stage; attributing it here keeps the per-stage times
    // a partition of total_ms (the BatchStats invariant in service.h).
    if (!size_eligible(source)) {
      outcome.status = ScriptStatus::kIneligibleSize;
    } else if (!ast_eligible(analysis, &scratch.extract.eligibility_stack)) {
      outcome.status = ScriptStatus::kIneligibleAst;
    } else {
      outcome.status = ScriptStatus::kOk;
    }
  }
  outcome.timing.static_analysis_ms = ms_since(start);

  // Soft trip 1: the data-flow pass ran out of edge budget. Edges are
  // truncated but the AST and CFG are intact, so features and inference
  // still run below; the budget status takes precedence over eligibility.
  const bool dataflow_edges_tripped =
      analysis.data_flow.tripped.has_value() &&
      analysis.data_flow.tripped->kind == ResourceKind::kDataflowEdges;
  const bool dataflow_deadline_tripped =
      analysis.data_flow.tripped.has_value() &&
      analysis.data_flow.tripped->kind == ResourceKind::kDeadline;
  if (dataflow_edges_tripped) {
    outcome.status = ScriptStatus::kBudgetDataflow;
    outcome.budget = analysis.data_flow.tripped;
    outcome.error_message = outcome.budget->to_string();
    outcome.skipped_stages.push_back("dataflow");
  }
  outcome.report.status = outcome.status;

  // Soft trip 2: the deadline passed during data flow or by this
  // checkpoint. Degrade — emit the hand-picked block (cheap, bounded by
  // the already-admitted AST) and skip n-grams and inference.
  budget.set_stage("features");
  if (governed && (dataflow_deadline_tripped || budget.deadline_expired())) {
    outcome.status = ScriptStatus::kDegraded;
    outcome.budget = dataflow_deadline_tripped
                         ? analysis.data_flow.tripped
                         : std::optional<BudgetTrip>(
                               budget.make_trip(ResourceKind::kDeadline));
    outcome.error_message = outcome.budget->to_string();
    if (dataflow_deadline_tripped) {
      outcome.skipped_stages.push_back("dataflow");
    }
    outcome.skipped_stages.push_back("ngrams");
    outcome.skipped_stages.push_back("inference");
    const auto features_start = std::chrono::steady_clock::now();
    {
      JST_SPAN("features");
      features::FeatureConfig handpicked_only = options_.detector.features;
      handpicked_only.use_ngrams = false;
      outcome.partial_features =
          features::extract_into(analysis, handpicked_only, scratch.extract);
    }
    outcome.timing.features_ms = ms_since(features_start);
    outcome.timing.total_ms = ms_since(start);
    outcome.report.status = outcome.status;
    scratch_metrics().record_peak(scratch.capacity_bytes());
    arena_metrics().record_peak(scratch.arena.peak_bytes());
    record_outcome_metrics(outcome);
    return outcome;
  }

  const auto features_start = std::chrono::steady_clock::now();
  const std::vector<float>* row = nullptr;
  {
    JST_SPAN("features");
    row = &features::extract_into(analysis, options_.detector.features,
                                  scratch.extract);
  }
  outcome.timing.features_ms = ms_since(features_start);

  // Soft trip 3: the deadline passed during feature extraction. The full
  // feature row exists but inference is skipped.
  budget.set_stage("inference");
  if (governed && budget.deadline_expired()) {
    outcome.status = ScriptStatus::kDegraded;
    outcome.budget = budget.make_trip(ResourceKind::kDeadline);
    outcome.error_message = outcome.budget->to_string();
    outcome.skipped_stages.push_back("inference");
    outcome.partial_features = *row;
    outcome.timing.total_ms = ms_since(start);
    outcome.report.status = outcome.status;
    scratch_metrics().record_peak(scratch.capacity_bytes());
    arena_metrics().record_peak(scratch.arena.peak_bytes());
    record_outcome_metrics(outcome);
    return outcome;
  }

  const auto inference_start = std::chrono::steady_clock::now();
  {
    JST_SPAN("inference");
    outcome.report.level1 = level1_.predict(*row, scratch.predict);
    level2_.predict_proba(*row, scratch.predict,
                          outcome.report.technique_confidence);
    if (outcome.report.level1.transformed()) {
      outcome.report.techniques =
          level2_.predict_techniques(*row, scratch.predict);
    }
  }
  outcome.timing.inference_ms = ms_since(inference_start);
  outcome.timing.total_ms = ms_since(start);
  scratch_metrics().record_peak(scratch.capacity_bytes());
  arena_metrics().record_peak(scratch.arena.peak_bytes());
  record_outcome_metrics(outcome);
  return outcome;
}

}  // namespace jst::analysis
