// Abstract Syntax Tree for JavaScript, following Esprima's (ESTree's) node
// taxonomy so the paper's feature definitions (§III-A/B) map one-to-one.
//
// Nodes are "fat": a single struct with a kind tag, positional children,
// and a small payload. Child layout per kind is documented below; optional
// slots hold nullptr. Variadic kinds place fixed slots first and the
// variable tail afterwards.
#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <iterator>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/arena.h"
#include "support/atom.h"
#include "support/budget.h"
#include "support/error.h"

namespace jst {

enum class NodeKind : std::uint8_t {
  kProgram,  // children: body...

  // --- Statements ---
  kExpressionStatement,  // [expression]
  kBlockStatement,       // body...
  kVariableDeclaration,  // declarators... ; str_value = "var"|"let"|"const"
  kVariableDeclarator,   // [id, init?]
  kFunctionDeclaration,  // [id, body, params...]; flags: generator/async
  kClassDeclaration,     // [id, superClass?, classBody]
  kReturnStatement,      // [argument?]
  kIfStatement,          // [test, consequent, alternate?]
  kForStatement,         // [init?, test?, update?, body]
  kForInStatement,       // [left, right, body]
  kForOfStatement,       // [left, right, body]
  kWhileStatement,       // [test, body]
  kDoWhileStatement,     // [body, test]
  kSwitchStatement,      // [discriminant, cases...]
  kSwitchCase,           // [test?, consequent...]
  kBreakStatement,       // [label?]
  kContinueStatement,    // [label?]
  kThrowStatement,       // [argument]
  kTryStatement,         // [block, handler?, finalizer?]
  kCatchClause,          // [param?, body]
  kLabeledStatement,     // [label, body]
  kEmptyStatement,       // no children
  kDebuggerStatement,    // no children
  kWithStatement,        // [object, body]

  // --- Expressions ---
  kIdentifier,            // str_value = name
  kLiteral,               // payload via lit_kind/str_value/num_value/raw
  kTemplateLiteral,       // [quasis..., expressions...] interleaved:
                          //   quasi0, expr0, quasi1, expr1, ..., quasiN
  kTemplateElement,       // str_value = cooked text
  kTaggedTemplateExpression,  // [tag, quasi]
  kThisExpression,        // no children
  kSuper,                 // no children
  kArrayExpression,       // elements... (nullptr = hole)
  kObjectExpression,      // properties...
  kProperty,              // [key, value]; flags: computed/shorthand;
                          //   str_value = "init"|"get"|"set"
  kFunctionExpression,    // [id?, body, params...]
  kArrowFunctionExpression,  // [body, params...]; flag_a: expression body
  kClassExpression,       // [id?, superClass?, classBody]
  kClassBody,             // methods...
  kMethodDefinition,      // [key, value(FunctionExpression)];
                          //   str_value = "method"|"constructor"|"get"|"set"
  kSequenceExpression,    // expressions...
  kUnaryExpression,       // [argument]; str_value = operator
  kBinaryExpression,      // [left, right]; str_value = operator
  kLogicalExpression,     // [left, right]; str_value = "&&"|"||"|"??"
  kAssignmentExpression,  // [left, right]; str_value = operator
  kUpdateExpression,      // [argument]; str_value = "++"|"--"; flag_a: prefix
  kConditionalExpression, // [test, consequent, alternate]
  kCallExpression,        // [callee, arguments...]
  kNewExpression,         // [callee, arguments...]
  kMemberExpression,      // [object, property]; flag_a: computed
  kSpreadElement,         // [argument]
  kRestElement,           // [argument]
  kYieldExpression,       // [argument?]; flag_a: delegate
  kAwaitExpression,       // [argument]

  // --- Patterns ---
  kAssignmentPattern,     // [left, right]
  kArrayPattern,          // elements... (nullptr = hole)
  kObjectPattern,         // properties...
};

constexpr std::size_t kNodeKindCount =
    static_cast<std::size_t>(NodeKind::kObjectPattern) + 1;

enum class LiteralKind : std::uint8_t {
  kString,
  kNumber,
  kBoolean,
  kNull,
  kRegExp,
};

std::string_view node_kind_name(NodeKind kind);

struct Node;

// Child list living entirely in the owning Ast's arena: a vector-shaped
// span of Node* grown by doubling (the abandoned block is reclaimed at
// the arena's next reset). Trivially destructible, so Node storage can be
// dropped wholesale without running destructors. The API mirrors the
// std::vector<Node*> it replaced — only the operations the parser and
// transformers actually use.
class NodeList {
 public:
  using value_type = Node*;
  using iterator = Node**;
  using const_iterator = Node* const*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  NodeList() = default;

  // Wired by Ast::make(); every growth allocation comes from here.
  void set_arena(support::Arena* arena) { arena_ = arena; }

  Node** begin() { return data_; }
  Node** end() { return data_ + size_; }
  Node* const* begin() const { return data_; }
  Node* const* end() const { return data_ + size_; }
  const_iterator cbegin() const { return data_; }
  const_iterator cend() const { return data_ + size_; }
  reverse_iterator rbegin() { return reverse_iterator(end()); }
  reverse_iterator rend() { return reverse_iterator(begin()); }
  const_reverse_iterator rbegin() const {
    return const_reverse_iterator(end());
  }
  const_reverse_iterator rend() const {
    return const_reverse_iterator(begin());
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Node*& operator[](std::size_t i) { return data_[i]; }
  Node* operator[](std::size_t i) const { return data_[i]; }
  Node*& front() { return data_[0]; }
  Node* front() const { return data_[0]; }
  Node*& back() { return data_[size_ - 1]; }
  Node* back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }
  void pop_back() { --size_; }

  void reserve(std::size_t wanted) {
    if (wanted > capacity_) grow(wanted);
  }

  void push_back(Node* node) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_++] = node;
  }

  // Single-element insert; returns an iterator to the inserted element.
  iterator insert(const_iterator pos, Node* node) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    if (size_ == capacity_) grow(size_ + 1);
    for (std::size_t i = size_; i > at; --i) data_[i] = data_[i - 1];
    data_[at] = node;
    ++size_;
    return data_ + at;
  }

  // Range insert (used by transformers splicing statement lists).
  template <typename It>
  iterator insert(const_iterator pos, It first, It last) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    const std::size_t count =
        static_cast<std::size_t>(std::distance(first, last));
    if (count == 0) return data_ + at;
    if (size_ + count > capacity_) grow(size_ + count);
    for (std::size_t i = size_; i > at; --i) {
      data_[i + count - 1] = data_[i - 1];
    }
    std::size_t i = at;
    for (It it = first; it != last; ++it) data_[i++] = *it;
    size_ += count;
    return data_ + at;
  }

  iterator erase(const_iterator pos) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    for (std::size_t i = at; i + 1 < size_; ++i) data_[i] = data_[i + 1];
    --size_;
    return data_ + at;
  }

  NodeList& operator=(std::initializer_list<Node*> nodes) {
    clear();
    reserve(nodes.size());
    for (Node* node : nodes) data_[size_++] = node;
    return *this;
  }

  void assign(std::initializer_list<Node*> nodes) { *this = nodes; }

  // Replace the contents with a copied range (transformers rebuilding a
  // statement list in a transient std::vector).
  template <typename It>
  void assign(It first, It last) {
    clear();
    insert(cend(), first, last);
  }

 private:
  void grow(std::size_t at_least);

  support::Arena* arena_ = nullptr;
  Node** data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = 0;
};

struct Node {
  NodeKind kind = NodeKind::kProgram;
  NodeList kids;

  // Payload (meaning depends on kind; see enum comments). Views into the
  // owning Ast's arena (or static/token storage); use Ast::intern() when
  // assigning text that does not already have arena lifetime.
  std::string_view str_value;
  std::string_view raw;     // literal raw text / regex flags
  double num_value = 0.0;
  LiteralKind lit_kind = LiteralKind::kNull;
  bool flag_a = false;      // computed / prefix / delegate / expression-body
  bool flag_b = false;      // shorthand / generator / static
  bool flag_c = false;      // async

  // Source position (propagated from the first token of the production).
  std::size_t line = 0;

  // Stable id within the owning Ast; assigned by Ast::finalize().
  std::uint32_t id = 0;
  // Dense interned-identifier id (support::AtomTable::kNoAtom for
  // non-identifier nodes). Assigned by Ast::make_identifier / clone() so
  // the data-flow pass resolves scopes by integer, never re-hashing the
  // spelling. Code that mutates an identifier's str_value in place must
  // re-intern (see transform/rename.cpp).
  std::uint32_t atom = 0xffffffffu;
  Node* parent = nullptr;

  bool is_statement() const;
  bool is_expression() const;
  bool is_function() const;   // declaration, expression, or arrow
  bool is_loop() const;

  // Convenience accessors (bounds-checked; nullptr for missing optionals).
  Node* kid(std::size_t i) const { return i < kids.size() ? kids[i] : nullptr; }
};

// Arena-backed AST. Nodes are placement-constructed in the arena, so
// addresses are stable for the arena's epoch (chunks never move) and the
// whole tree is reclaimed by a single arena reset — no destructors run.
// Typical lifecycle: parser builds nodes via make(), sets the root, and
// calls finalize() to assign ids/parents; transformers may mutate the
// tree and re-finalize.
//
// An Ast either owns a private arena (default constructor) or borrows a
// pooled one (analysis::ScriptScratch hands the same arena to every
// script its worker analyzes; parse_program resets it per script). The
// identifier atom table follows the same ownership split: private by
// default, or borrowed from the pool alongside the arena.
class Ast {
 public:
  Ast() : owned_arena_(std::make_unique<support::Arena>()),
          arena_(owned_arena_.get()),
          owned_atoms_(std::make_unique<support::AtomTable>()),
          atoms_(owned_atoms_.get()) {}
  explicit Ast(support::Arena* arena, support::AtomTable* atoms = nullptr)
      : arena_(arena) {
    if (atoms != nullptr) {
      atoms_ = atoms;
    } else {
      owned_atoms_ = std::make_unique<support::AtomTable>();
      atoms_ = owned_atoms_.get();
    }
  }
  Ast(Ast&&) noexcept = default;
  Ast& operator=(Ast&&) noexcept = default;
  Ast(const Ast&) = delete;
  Ast& operator=(const Ast&) = delete;

  Node* make(NodeKind kind);
  Node* make_identifier(std::string_view name);
  Node* make_string(std::string_view value);
  Node* make_number(double value);
  Node* make_bool(bool value);
  Node* make_null();
  Node* make_regex(std::string_view pattern, std::string_view flags);

  // Copies `text` into the arena and returns the stable view. Required
  // whenever a Node payload is assigned text whose storage does not
  // already outlive the tree (local std::strings in transformers, etc.).
  std::string_view intern(std::string_view text) {
    return arena_->alloc_string(text);
  }

  // The arena nodes, payloads, and kid arrays live in.
  support::Arena& arena() { return *arena_; }
  const support::Arena& arena() const { return *arena_; }

  // The identifier atom table the tree's Node::atom ids index into.
  // Deliberately non-const from a const Ast: interning a straggler
  // identifier (a transformer-created node analyzed before the next
  // re-parse) mutates only the table, never the tree.
  support::AtomTable& atoms() const { return *atoms_; }

  // Deep copy of `node` (and its subtree) into this arena.
  Node* clone(const Node* node);

  Node* root() const { return root_; }
  void set_root(Node* root) { root_ = root; }

  // Attaches a resource budget charged one AST node per make() (and polled
  // for the deadline); a tripped ceiling throws BudgetExceeded out of
  // make(). The pointer is non-owning and must be cleared (or outlive the
  // Ast) before the Ast escapes the budget's scope — parse_program()
  // detaches it before returning.
  void set_budget(Budget* budget) { budget_ = budget; }

  // Assigns pre-order ids and parent pointers from the root; returns the
  // number of reachable nodes.
  std::size_t finalize();

  // Number of nodes allocated in the arena (including detached ones).
  std::size_t allocated() const { return allocated_; }
  // Number of nodes reachable from the root after the last finalize().
  std::size_t node_count() const { return node_count_; }

 private:
  std::unique_ptr<support::Arena> owned_arena_;  // null when pooled
  support::Arena* arena_ = nullptr;
  std::unique_ptr<support::AtomTable> owned_atoms_;  // null when pooled
  support::AtomTable* atoms_ = nullptr;
  Node* root_ = nullptr;
  std::size_t allocated_ = 0;
  std::size_t node_count_ = 0;
  Budget* budget_ = nullptr;
};

}  // namespace jst
