# Empty dependencies file for jst_ml.
# This may be replaced when dependencies are built.
