#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analysis/dataset.h"
#include "analysis/detector.h"
#include "analysis/model_io.h"
#include "analysis/longitudinal.h"
#include "analysis/wild.h"
#include "parser/parser.h"

namespace jst::analysis {
namespace {

using transform::Technique;

TEST(Labels, Level1FromTechniques) {
  EXPECT_TRUE(level1_from_techniques({}).regular);
  EXPECT_FALSE(level1_from_techniques({}).transformed());

  const Level1Truth minified =
      level1_from_techniques({Technique::kMinificationSimple});
  EXPECT_TRUE(minified.minified);
  EXPECT_FALSE(minified.obfuscated);
  EXPECT_TRUE(minified.transformed());

  const Level1Truth both = level1_from_techniques(
      {Technique::kMinificationSimple, Technique::kStringObfuscation});
  EXPECT_TRUE(both.minified);
  EXPECT_TRUE(both.obfuscated);
}

TEST(Labels, TechniqueRowRoundTrip) {
  const std::vector<Technique> techniques = {Technique::kGlobalArray,
                                             Technique::kDebugProtection};
  const auto row = technique_row(techniques);
  ASSERT_EQ(row.size(), transform::kTechniqueCount);
  EXPECT_EQ(row[static_cast<std::size_t>(Technique::kGlobalArray)], 1);
  EXPECT_EQ(row[static_cast<std::size_t>(Technique::kDebugProtection)], 1);
  std::size_t set_bits = 0;
  for (auto bit : row) set_bits += bit;
  EXPECT_EQ(set_bits, 2u);

  const auto indices = indices_from_techniques(techniques);
  EXPECT_EQ(techniques_from_indices(indices), techniques);
}

TEST(Dataset, RegularCorpusParsesAndCounts) {
  CorpusSpec spec;
  spec.regular_count = 12;
  spec.seed = 5;
  const auto corpus = generate_regular_corpus(spec);
  ASSERT_EQ(corpus.size(), 12u);
  for (const std::string& source : corpus) {
    EXPECT_TRUE(parses(source));
    EXPECT_GE(source.size(), 500u);
  }
}

TEST(Dataset, RegularCorpusDeterministic) {
  CorpusSpec spec;
  spec.regular_count = 4;
  spec.seed = 9;
  EXPECT_EQ(generate_regular_corpus(spec), generate_regular_corpus(spec));
}

TEST(Dataset, TransformedSampleLabels) {
  CorpusSpec spec;
  spec.regular_count = 1;
  const auto corpus = generate_regular_corpus(spec);
  Rng rng(3);
  const Sample sample = make_transformed_sample(
      corpus[0], Technique::kControlFlowFlattening, rng);
  EXPECT_TRUE(parses(sample.source));
  EXPECT_EQ(sample.techniques.size(), 3u);  // cff + id obf + min simple
  EXPECT_TRUE(sample.level1.obfuscated);
  EXPECT_TRUE(sample.level1.minified);
}

TEST(Dataset, MixedSampleHasUnionLabels) {
  CorpusSpec spec;
  spec.regular_count = 1;
  const auto corpus = generate_regular_corpus(spec);
  Rng rng(4);
  const Sample sample = make_mixed_sample(corpus[0], 3, rng);
  EXPECT_TRUE(parses(sample.source));
  EXPECT_GE(sample.techniques.size(), 3u);
  EXPECT_LE(sample.techniques.size(), 7u);
  EXPECT_TRUE(sample.level1.transformed());
}

TEST(Dataset, ApplyConfigurationKeepsHexNamesUnderMinification) {
  CorpusSpec spec;
  spec.regular_count = 1;
  const auto corpus = generate_regular_corpus(spec);
  Rng rng(5);
  const Sample sample = apply_configuration(
      corpus[0],
      {Technique::kIdentifierObfuscation, Technique::kMinificationSimple},
      rng);
  EXPECT_TRUE(parses(sample.source));
  EXPECT_NE(sample.source.find("_0x"), std::string::npos);
}

TEST(Dataset, FeatureTableAligned) {
  CorpusSpec spec;
  spec.regular_count = 3;
  const auto corpus = generate_regular_corpus(spec);
  std::vector<Sample> samples;
  for (const auto& source : corpus) samples.push_back(make_regular_sample(source));
  features::FeatureConfig config;
  config.ngram.hash_dim = 64;
  const FeatureTable table = extract_features(std::move(samples), config);
  EXPECT_EQ(table.rows.size(), 3u);
  EXPECT_EQ(table.samples.size(), 3u);
  EXPECT_EQ(table.rows[0].size(), features::feature_dimension(config));
}

TEST(Dataset, LabelMatrices) {
  std::vector<Sample> samples;
  Sample regular;
  regular.level1 = level1_from_techniques({});
  samples.push_back(regular);
  Sample transformed;
  transformed.techniques = {Technique::kMinificationSimple};
  transformed.level1 = level1_from_techniques(transformed.techniques);
  samples.push_back(transformed);

  const auto level1 = level1_labels(samples);
  EXPECT_EQ(level1[0], (std::vector<std::uint8_t>{1, 0, 0}));
  EXPECT_EQ(level1[1], (std::vector<std::uint8_t>{0, 1, 0}));
  const auto level2 = level2_labels(samples);
  EXPECT_EQ(level2[0][static_cast<std::size_t>(Technique::kMinificationSimple)],
            0);
  EXPECT_EQ(level2[1][static_cast<std::size_t>(Technique::kMinificationSimple)],
            1);
}

TEST(Wild, SpecsMatchPaperRates) {
  EXPECT_NEAR(alexa_spec().transformed_rate, 0.686, 1e-6);
  EXPECT_NEAR(npm_spec().transformed_rate, 0.087, 1e-6);
  EXPECT_NEAR(dnc_spec().transformed_rate, 0.6594, 1e-6);
  EXPECT_NEAR(hynek_spec().transformed_rate, 0.7307, 1e-6);
  EXPECT_NEAR(bsi_spec().transformed_rate, 0.2893, 1e-6);
}

TEST(Wild, SimulatedPopulationMatchesRate) {
  PopulationSpec spec = npm_spec();
  const auto samples = simulate_population(spec, 300, 7);
  ASSERT_EQ(samples.size(), 300u);
  std::size_t transformed = 0;
  for (const Sample& sample : samples) {
    if (sample.level1.transformed()) ++transformed;
    EXPECT_TRUE(parses(sample.source));
  }
  const double rate = static_cast<double>(transformed) / 300.0;
  EXPECT_NEAR(rate, spec.transformed_rate, 0.06);
}

TEST(Wild, MalwareBasesHaveLoaderMotifs) {
  Rng rng(8);
  bool saw_motif = false;
  for (int i = 0; i < 8 && !saw_motif; ++i) {
    const std::string base = generate_malware_base(rng);
    EXPECT_TRUE(parses(base));
    saw_motif = base.find("payload") != std::string::npos;
  }
  EXPECT_TRUE(saw_motif);
}

TEST(Wild, RankBucketsMonotonicAlexa) {
  const double top = alexa_rank_bucket_spec(0).transformed_rate;
  const double bottom = alexa_rank_bucket_spec(9).transformed_rate;
  EXPECT_GT(top, bottom);
}

TEST(Wild, NpmTopBucketLessTransformed) {
  const double top = npm_rank_bucket_spec(0).transformed_rate;
  const double later = npm_rank_bucket_spec(5).transformed_rate;
  EXPECT_LT(top * 2.0, later);  // at least 2x less likely (paper: 2.4-4.4x)
}

TEST(Longitudinal, MonthLabels) {
  EXPECT_EQ(month_label(0), "2015-05");
  EXPECT_EQ(month_label(7), "2015-12");
  EXPECT_EQ(month_label(8), "2016-01");
  EXPECT_EQ(month_label(64), "2020-09");
}

TEST(Longitudinal, AlexaTrendRises) {
  const double early = alexa_month_spec(0).transformed_rate;
  const double late = alexa_month_spec(64).transformed_rate;
  EXPECT_LT(early, late);
}

TEST(Longitudinal, NpmThreePhases) {
  // Average rates per phase follow 7.4% / 17.95% / 15.17%.
  double phase1 = 0.0;
  for (std::size_t m = 0; m < 12; ++m) {
    phase1 += npm_month_spec(m).transformed_rate;
  }
  phase1 /= 12;
  double phase2 = 0.0;
  for (std::size_t m = 12; m < 49; ++m) {
    phase2 += npm_month_spec(m).transformed_rate;
  }
  phase2 /= 37;
  EXPECT_LT(phase1, phase2);
  EXPECT_NEAR(phase1, 0.074, 0.03);
  EXPECT_NEAR(phase2, 0.1795, 0.03);
}

TEST(Longitudinal, MalwareWavesVary) {
  const PopulationSpec base = bsi_spec();
  double min_rate = 1.0;
  double max_rate = 0.0;
  for (std::size_t m = 0; m < 24; ++m) {
    const double rate = malware_month_spec(base, m).transformed_rate;
    min_rate = std::min(min_rate, rate);
    max_rate = std::max(max_rate, rate);
  }
  EXPECT_GT(max_rate - min_rate, 0.08);  // strong monthly variation
}

TEST(Detector, Level1RejectsWrongLabelWidth) {
  Level1Detector detector;
  std::vector<std::vector<float>> rows = {{0.f}, {1.f}};
  ml::LabelMatrix bad = {{1, 0}, {0, 1}};  // 2 columns, needs 3
  Rng rng(1);
  EXPECT_THROW(detector.fit(ml::Matrix{&rows}, bad, rng), ModelError);
}

TEST(Detector, Level2RejectsWrongLabelWidth) {
  Level2Detector detector;
  std::vector<std::vector<float>> rows = {{0.f}, {1.f}};
  ml::LabelMatrix bad = {{1, 0, 0}, {0, 1, 0}};
  Rng rng(2);
  EXPECT_THROW(detector.fit(ml::Matrix{&rows}, bad, rng), ModelError);
}

// --- versioned model header (shared by all persisted detectors) ---

// Fails with ModelError and asserts the message mentions every expected
// fragment (field name plus both values).
template <typename Fn>
void expect_model_error(Fn&& fn, std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected ModelError";
  } catch (const ModelError& error) {
    const std::string message = error.what();
    for (const char* fragment : fragments) {
      EXPECT_NE(message.find(fragment), std::string::npos)
          << "missing \"" << fragment << "\" in: " << message;
    }
  }
}

TEST(ModelHeader, WriteReadRoundTrip) {
  DetectorConfig config;
  const ModelHeader written = make_model_header("level1", config);
  std::stringstream stream;
  write_model_header(stream, written);
  const ModelHeader read = read_model_header(stream);
  EXPECT_EQ(read.version, ModelHeader::kFormatVersion);
  EXPECT_EQ(read.component, "level1");
  EXPECT_EQ(read.feature_dimension, written.feature_dimension);
  EXPECT_EQ(read.tree_count, written.tree_count);
  EXPECT_EQ(read.max_depth, written.max_depth);
  EXPECT_EQ(read.min_samples_split, written.min_samples_split);
  EXPECT_EQ(read.min_samples_leaf, written.min_samples_leaf);
  EXPECT_EQ(read.max_features, written.max_features);
  EXPECT_EQ(read.classifier_chain, written.classifier_chain);
}

TEST(ModelHeader, RejectsEmptyStreamAndBadMagic) {
  std::stringstream empty;
  expect_model_error([&empty] { read_model_header(empty); },
                     {"empty or truncated"});
  std::stringstream bad("jstraced-analyzer-v1 whatever");
  expect_model_error([&bad] { read_model_header(bad); },
                     {"unrecognized format", "jstraced-analyzer-v1"});
}

TEST(ModelHeader, RejectsUnsupportedVersionAndTruncation) {
  std::stringstream future("jstraced-model 99 level1 10 8 0 2 1 0 1");
  expect_model_error([&future] { read_model_header(future); },
                     {"unsupported format version 99"});
  std::stringstream cut("jstraced-model 2 level1 10 8");
  expect_model_error([&cut] { read_model_header(cut); },
                     {"truncated header"});
}

TEST(ModelHeader, CheckNamesFirstMismatchedField) {
  DetectorConfig config;
  std::stringstream stream;
  write_model_header(stream, make_model_header("level1", config));

  DetectorConfig other = config;
  other.forest.tree_count = config.forest.tree_count + 5;
  expect_model_error(
      [&] { check_model_header(stream, make_model_header("level1", other)); },
      {"model load (level1)", "tree_count",
       std::to_string(config.forest.tree_count).c_str()});
}

TEST(ModelHeader, CheckRejectsFeatureDimensionChange) {
  DetectorConfig config;
  std::stringstream stream;
  write_model_header(stream, make_model_header("level2", config));

  DetectorConfig other = config;
  other.features.ngram.hash_dim = config.features.ngram.hash_dim * 2;
  expect_model_error(
      [&] { check_model_header(stream, make_model_header("level2", other)); },
      {"model load (level2)", "feature_dimension"});
}

TEST(ModelHeader, CheckRejectsChainFlip) {
  DetectorConfig config;
  config.classifier_chain = true;
  std::stringstream stream;
  write_model_header(stream, make_model_header("analyzer", config));

  DetectorConfig other = config;
  other.classifier_chain = false;
  expect_model_error(
      [&] { check_model_header(stream, make_model_header("analyzer", other)); },
      {"classifier_chain", "chain", "independent"});
}

TEST(ModelHeader, CheckRejectsComponentMismatch) {
  DetectorConfig config;
  std::stringstream stream;
  write_model_header(stream, make_model_header("level2", config));
  expect_model_error(
      [&] { check_model_header(stream, make_model_header("level1", config)); },
      {"component", "level2", "level1"});
}

TEST(Detector, SaveLoadRoundTripAndMismatchDiagnostics) {
  // Fit a deliberately tiny level-1 forest, then exercise the load paths:
  // identical config succeeds; changed forest size / flipped chain /
  // swapped component all throw precise ModelErrors.
  DetectorConfig config;
  config.forest.tree_count = 3;
  config.features.ngram.hash_dim = 64;

  Rng data_rng(11);
  std::vector<std::vector<float>> rows;
  ml::LabelMatrix labels;
  for (int i = 0; i < 24; ++i) {
    const float a = static_cast<float>(data_rng.uniform());
    rows.push_back({a, 1.0f - a, static_cast<float>(data_rng.uniform())});
    const std::uint8_t transformed = a > 0.5f ? 1 : 0;
    labels.push_back({static_cast<std::uint8_t>(1 - transformed), transformed,
                      0});
  }
  Level1Detector detector(config);
  Rng fit_rng(12);
  detector.fit(ml::Matrix{&rows}, labels, fit_rng);

  std::stringstream saved;
  detector.save(saved);

  Level1Detector same(config);
  same.load(saved);
  const auto a = detector.predict(rows[0]);
  const auto b = same.predict(rows[0]);
  EXPECT_DOUBLE_EQ(a.p_minified, b.p_minified);

  DetectorConfig bigger = config;
  bigger.forest.tree_count = 9;
  Level1Detector mismatched(bigger);
  std::stringstream saved2;
  detector.save(saved2);
  expect_model_error([&] { mismatched.load(saved2); }, {"tree_count", "3", "9"});

  Level2Detector wrong_component(config);
  std::stringstream saved3;
  detector.save(saved3);
  expect_model_error([&] { wrong_component.load(saved3); },
                     {"component", "level1", "level2"});
}

}  // namespace
}  // namespace jst::analysis
