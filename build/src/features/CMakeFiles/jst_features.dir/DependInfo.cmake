
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/analysis_pipeline.cpp" "src/features/CMakeFiles/jst_features.dir/analysis_pipeline.cpp.o" "gcc" "src/features/CMakeFiles/jst_features.dir/analysis_pipeline.cpp.o.d"
  "/root/repo/src/features/feature_extractor.cpp" "src/features/CMakeFiles/jst_features.dir/feature_extractor.cpp.o" "gcc" "src/features/CMakeFiles/jst_features.dir/feature_extractor.cpp.o.d"
  "/root/repo/src/features/handpicked.cpp" "src/features/CMakeFiles/jst_features.dir/handpicked.cpp.o" "gcc" "src/features/CMakeFiles/jst_features.dir/handpicked.cpp.o.d"
  "/root/repo/src/features/ngram.cpp" "src/features/CMakeFiles/jst_features.dir/ngram.cpp.o" "gcc" "src/features/CMakeFiles/jst_features.dir/ngram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/jst_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/jst_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/jst_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/jst_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/jst_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/jst_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
