#include "ast/walk.h"

#include <algorithm>

namespace jst {

void walk_preorder(Node* root, const std::function<void(Node&)>& visit) {
  for_each_preorder(root, [&visit](Node& node) { visit(node); });
}

void walk_preorder(const Node* root,
                   const std::function<void(const Node&)>& visit) {
  for_each_preorder(root, [&visit](const Node& node) { visit(node); });
}

void walk_postorder(Node* root, const std::function<void(Node&)>& visit) {
  if (root == nullptr) return;
  // Two-stack iterative post-order.
  std::vector<Node*> stack = {root};
  std::vector<Node*> output;
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    output.push_back(node);
    for (Node* kid : node->kids) {
      if (kid != nullptr) stack.push_back(kid);
    }
  }
  for (auto it = output.rbegin(); it != output.rend(); ++it) visit(**it);
}

std::vector<NodeKind> preorder_kinds(const Node* root) {
  std::vector<NodeKind> kinds;
  for_each_preorder(root,
                    [&kinds](const Node& node) { kinds.push_back(node.kind); });
  return kinds;
}

std::size_t tree_depth(const Node* root) {
  if (root == nullptr) return 0;
  std::size_t max_depth = 0;
  std::vector<std::pair<const Node*, std::size_t>> stack;
  for_each_preorder_depth(root, stack,
                          [&max_depth](const Node&, std::size_t depth) {
                            max_depth = std::max(max_depth, depth);
                          });
  return max_depth;
}

std::size_t tree_breadth(const Node* root) {
  if (root == nullptr) return 0;
  std::vector<std::size_t> level_counts;
  std::vector<std::pair<const Node*, std::size_t>> stack;
  for_each_preorder_depth(
      root, stack, [&level_counts](const Node&, std::size_t depth) {
        const std::size_t level = depth - 1;
        if (level >= level_counts.size()) level_counts.resize(level + 1, 0);
        ++level_counts[level];
      });
  return *std::max_element(level_counts.begin(), level_counts.end());
}

std::size_t count_nodes(const Node* root) {
  std::size_t count = 0;
  for_each_preorder(root, [&count](const Node&) { ++count; });
  return count;
}

std::vector<Node*> collect_kind(Node* root, NodeKind kind) {
  std::vector<Node*> out;
  for_each_preorder(root, [&out, kind](Node& node) {
    if (node.kind == kind) out.push_back(&node);
  });
  return out;
}

std::vector<const Node*> collect_kind(const Node* root, NodeKind kind) {
  std::vector<const Node*> out;
  for_each_preorder(root, [&out, kind](const Node& node) {
    if (node.kind == kind) out.push_back(&node);
  });
  return out;
}

}  // namespace jst
