// ThreadPool contract tests: lane accounting, FIFO submission, exactly-once
// index coverage, exception propagation, nested parallel_for on one pool,
// and the serial (parallelism 1) inline path. The batch engine, forest
// trainer, and corpus synthesizer all rely on these guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/thread_pool.h"

namespace jst::support {
namespace {

TEST(ThreadPool, DefaultParallelismAtLeastOne) {
  EXPECT_GE(ThreadPool::default_parallelism(), 1u);
}

TEST(ThreadPool, JstThreadsEnvOverridesDefault) {
  const char* previous = std::getenv("JST_THREADS");
  const std::string saved = previous == nullptr ? "" : previous;
  ::setenv("JST_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_parallelism(), 3u);
  ::setenv("JST_THREADS", "0", 1);  // non-positive values are ignored
  EXPECT_GE(ThreadPool::default_parallelism(), 1u);
  if (previous == nullptr) {
    ::unsetenv("JST_THREADS");
  } else {
    ::setenv("JST_THREADS", saved.c_str(), 1);
  }
}

TEST(ThreadPool, ParallelismCountsCaller) {
  ThreadPool serial(1);
  EXPECT_EQ(serial.parallelism(), 1u);
  ThreadPool wide(4);
  EXPECT_EQ(wide.parallelism(), 4u);
}

TEST(ThreadPool, SubmittedTasksRunFifoOnSingleWorker) {
  // Parallelism 2 = exactly one worker thread, so queue order is execution
  // order. The destructor drains the queue before joining.
  std::vector<int> order;
  std::mutex mutex;
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&order, &mutex, i] {
        std::lock_guard<std::mutex> lock(mutex);
        order.push_back(i);
      });
    }
  }
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SerialPoolRunsSubmitInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&ran_on] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ParallelForCoversEachIndexExactlyOnce) {
  constexpr std::size_t kCount = 10'000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesZeroAndOneIndices) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(1000, [&ran](std::size_t i) {
      ++ran;
      if (i == 7) throw std::runtime_error("index 7 failed");
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "index 7 failed");
  }
  // Unstarted indices are abandoned after the failure.
  EXPECT_LE(ran.load(), 1000);
}

TEST(ThreadPool, NestedParallelForOnSamePoolCompletes) {
  // Inner parallel_for calls run from worker threads of the same pool; the
  // caller-participates rule means they cannot deadlock even with every
  // worker busy.
  ThreadPool pool(3);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(kOuter, [&pool, &hits](std::size_t outer) {
    pool.parallel_for(kInner, [&hits, outer](std::size_t inner) {
      ++hits[outer * kInner + inner];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(ThreadPool, RunParallelMatchesSerialResult) {
  // The canonical usage pattern: per-index work derived from per-index
  // state gives identical output for any lane count.
  constexpr std::size_t kCount = 513;
  std::vector<std::uint64_t> serial(kCount);
  run_parallel(1, kCount, [&serial](std::size_t i) {
    serial[i] = i * 2654435761u + 17;
  });
  for (std::size_t threads : {2u, 4u, 7u}) {
    std::vector<std::uint64_t> parallel(kCount);
    run_parallel(threads, kCount, [&parallel](std::size_t i) {
      parallel[i] = i * 2654435761u + 17;
    });
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
}

TEST(ThreadPool, RunParallelZeroThreadsUsesDefault) {
  std::atomic<std::uint64_t> sum{0};
  run_parallel(0, 100, [&sum](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

}  // namespace
}  // namespace jst::support
