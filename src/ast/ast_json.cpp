#include "ast/ast_json.h"

#include "support/json_writer.h"

namespace jst {
namespace {

// ESTree child-slot names per node kind, matching the layouts documented
// in ast.h. Variadic tails are emitted under the conventional list name.
struct Layout {
  // Fixed slots in order; nullptr-terminated conceptually by size.
  std::vector<const char*> fixed;
  const char* tail = nullptr;  // name of the variadic list (or nullptr)
  std::size_t tail_start = 0;
};

Layout layout_for(NodeKind kind) {
  switch (kind) {
    case NodeKind::kProgram: return {{}, "body", 0};
    case NodeKind::kExpressionStatement: return {{"expression"}, nullptr, 0};
    case NodeKind::kBlockStatement: return {{}, "body", 0};
    case NodeKind::kVariableDeclaration: return {{}, "declarations", 0};
    case NodeKind::kVariableDeclarator: return {{"id", "init"}, nullptr, 0};
    case NodeKind::kFunctionDeclaration:
    case NodeKind::kFunctionExpression:
      return {{"id", "body"}, "params", 2};
    case NodeKind::kArrowFunctionExpression: return {{"body"}, "params", 1};
    case NodeKind::kClassDeclaration:
    case NodeKind::kClassExpression:
      return {{"id", "superClass", "body"}, nullptr, 0};
    case NodeKind::kClassBody: return {{}, "body", 0};
    case NodeKind::kMethodDefinition: return {{"key", "value"}, nullptr, 0};
    case NodeKind::kReturnStatement: return {{"argument"}, nullptr, 0};
    case NodeKind::kIfStatement:
      return {{"test", "consequent", "alternate"}, nullptr, 0};
    case NodeKind::kForStatement:
      return {{"init", "test", "update", "body"}, nullptr, 0};
    case NodeKind::kForInStatement:
    case NodeKind::kForOfStatement:
      return {{"left", "right", "body"}, nullptr, 0};
    case NodeKind::kWhileStatement: return {{"test", "body"}, nullptr, 0};
    case NodeKind::kDoWhileStatement: return {{"body", "test"}, nullptr, 0};
    case NodeKind::kSwitchStatement: return {{"discriminant"}, "cases", 1};
    case NodeKind::kSwitchCase: return {{"test"}, "consequent", 1};
    case NodeKind::kBreakStatement:
    case NodeKind::kContinueStatement:
      return {{"label"}, nullptr, 0};
    case NodeKind::kThrowStatement: return {{"argument"}, nullptr, 0};
    case NodeKind::kTryStatement:
      return {{"block", "handler", "finalizer"}, nullptr, 0};
    case NodeKind::kCatchClause: return {{"param", "body"}, nullptr, 0};
    case NodeKind::kLabeledStatement: return {{"label", "body"}, nullptr, 0};
    case NodeKind::kWithStatement: return {{"object", "body"}, nullptr, 0};
    case NodeKind::kTemplateLiteral: return {{}, "parts", 0};
    case NodeKind::kTaggedTemplateExpression:
      return {{"tag", "quasi"}, nullptr, 0};
    case NodeKind::kArrayExpression:
    case NodeKind::kArrayPattern:
      return {{}, "elements", 0};
    case NodeKind::kObjectExpression:
    case NodeKind::kObjectPattern:
      return {{}, "properties", 0};
    case NodeKind::kProperty: return {{"key", "value"}, nullptr, 0};
    case NodeKind::kSequenceExpression: return {{}, "expressions", 0};
    case NodeKind::kUnaryExpression:
    case NodeKind::kUpdateExpression:
    case NodeKind::kSpreadElement:
    case NodeKind::kRestElement:
    case NodeKind::kAwaitExpression:
    case NodeKind::kYieldExpression:
      return {{"argument"}, nullptr, 0};
    case NodeKind::kBinaryExpression:
    case NodeKind::kLogicalExpression:
    case NodeKind::kAssignmentExpression:
    case NodeKind::kAssignmentPattern:
      return {{"left", "right"}, nullptr, 0};
    case NodeKind::kConditionalExpression:
      return {{"test", "consequent", "alternate"}, nullptr, 0};
    case NodeKind::kCallExpression:
    case NodeKind::kNewExpression:
      return {{"callee"}, "arguments", 1};
    case NodeKind::kMemberExpression:
      return {{"object", "property"}, nullptr, 0};
    default:
      return {{}, nullptr, 0};  // leaves
  }
}

void emit(const Node* node, JsonWriter& json) {
  if (node == nullptr) {
    json.null();
    return;
  }
  json.begin_object();
  json.key("type");
  json.value(node_kind_name(node->kind));

  switch (node->kind) {
    case NodeKind::kIdentifier:
      json.key("name");
      json.value(node->str_value);
      break;
    case NodeKind::kLiteral:
      json.key("value");
      switch (node->lit_kind) {
        case LiteralKind::kString: json.value(node->str_value); break;
        case LiteralKind::kNumber: json.value(node->num_value); break;
        case LiteralKind::kBoolean: json.value(node->num_value != 0.0); break;
        case LiteralKind::kNull: json.null(); break;
        case LiteralKind::kRegExp:
          json.value("/" + std::string(node->str_value) + "/" +
                     std::string(node->raw));
          break;
      }
      if (!node->raw.empty() && node->lit_kind == LiteralKind::kNumber) {
        json.key("raw");
        json.value(node->raw);
      }
      break;
    case NodeKind::kTemplateElement:
      json.key("value");
      json.value(node->str_value);
      break;
    case NodeKind::kVariableDeclaration:
      json.key("kind");
      json.value(node->str_value);
      break;
    case NodeKind::kBinaryExpression:
    case NodeKind::kLogicalExpression:
    case NodeKind::kAssignmentExpression:
    case NodeKind::kUnaryExpression:
    case NodeKind::kUpdateExpression:
      json.key("operator");
      json.value(node->str_value);
      break;
    case NodeKind::kProperty:
    case NodeKind::kMethodDefinition:
      json.key("kind");
      json.value(node->str_value);
      break;
    default:
      break;
  }
  if (node->kind == NodeKind::kMemberExpression ||
      node->kind == NodeKind::kProperty ||
      node->kind == NodeKind::kMethodDefinition) {
    json.key("computed");
    json.value(node->flag_a);
  }
  if (node->kind == NodeKind::kUpdateExpression ||
      node->kind == NodeKind::kUnaryExpression) {
    json.key("prefix");
    json.value(node->flag_a);
  }
  if (node->is_function()) {
    json.key("async");
    json.value(node->flag_c);
    json.key("generator");
    json.value(node->flag_b);
  }

  const Layout layout = layout_for(node->kind);
  for (std::size_t i = 0; i < layout.fixed.size(); ++i) {
    json.key(layout.fixed[i]);
    emit(node->kid(i), json);
  }
  if (layout.tail != nullptr) {
    json.key(layout.tail);
    json.begin_array();
    for (std::size_t i = layout.tail_start; i < node->kids.size(); ++i) {
      emit(node->kids[i], json);
    }
    json.end_array();
  }
  json.end_object();
}

// Minimal re-indenter for pretty output.
std::string indent_json(const std::string& compact) {
  std::string out;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < compact.size(); ++i) {
    const char c = compact[i];
    if (in_string) {
      out += c;
      if (c == '\\' && i + 1 < compact.size()) {
        out += compact[++i];
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        out += c;
        break;
      case '{':
      case '[':
        out += c;
        ++depth;
        out += '\n';
        out.append(static_cast<std::size_t>(depth) * 2, ' ');
        break;
      case '}':
      case ']':
        --depth;
        out += '\n';
        out.append(static_cast<std::size_t>(depth) * 2, ' ');
        out += c;
        break;
      case ',':
        out += c;
        out += '\n';
        out.append(static_cast<std::size_t>(depth) * 2, ' ');
        break;
      case ':':
        out += ": ";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string ast_to_json(const Node* root, bool pretty) {
  JsonWriter json;
  emit(root, json);
  return pretty ? indent_json(json.str()) : json.str();
}

}  // namespace jst
