// Shared command-line parser for the result-cache flag family
// (DESIGN.md §15), mirroring limits_flags for ResourceLimits.
//
// jstraced-server, jstraced-snapshot, and wild_study all accept the same
// cache configuration; this is the single implementation so the flags
// cannot drift apart:
//   --cache-dir PATH     persist outcomes under PATH (results.ndjson)
//   --cache-bytes N      in-memory LRU tier budget (0 keeps the default)
//   --cache-mode MODE    default | bypass | refresh
// A cache is enabled once either --cache-dir or --cache-bytes is given;
// --cache-mode bypass leaves the cache detached entirely.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace jst {

// Per-request cache discipline (AnalyzeRequest::cache_mode). Lives here —
// below the analysis layer — so the flag parser and the service API share
// one definition.
enum class CacheMode : std::uint8_t {
  kDefault,  // consult the cache; store on miss
  kBypass,   // ignore the cache entirely (no lookup, no store)
  kRefresh,  // recompute and overwrite any existing entry
};

std::string_view to_string(CacheMode mode);
// Accepts "default" | "bypass" | "refresh"; false on anything else.
bool parse_cache_mode(std::string_view text, CacheMode& mode);

}  // namespace jst

namespace jst::support {

struct CacheOptions {
  std::string dir;             // empty = memory-only tier
  std::size_t max_bytes = 0;   // 0 = use effective_bytes() default
  CacheMode mode = CacheMode::kDefault;

  // A cache was asked for on the command line.
  bool enabled() const { return max_bytes > 0 || !dir.empty(); }
  // In-memory LRU budget to configure (64 MiB unless overridden).
  std::size_t effective_bytes() const {
    return max_bytes > 0 ? max_bytes : std::size_t{64} << 20;
  }
};

// Attempts to consume argv[i] (and its value argument, if any) as one of
// the shared cache flags, updating `options` and advancing `i` past
// consumed arguments. Returns true when the flag was recognized. A
// recognized flag with a missing or malformed value also returns true
// but sets `error` to a diagnostic; callers should fail usage on it.
bool consume_cache_flag(int argc, char** argv, int& i, CacheOptions& options,
                        std::string& error);

// One-line usage fragment listing every flag above, for --help texts.
const char* cache_flags_usage();

}  // namespace jst::support
