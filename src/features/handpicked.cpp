#include "features/handpicked.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <string_view>

#include "ast/walk.h"
#include "support/stats.h"
#include "support/strings.h"

namespace jst::features {
namespace {

// String-manipulation method names counted as string operations. Length
// dispatch for the same reason as decoder_builtin_index: this runs for
// every member-callee in the script, and almost every property name exits
// on the first integer compare.
bool is_string_operation(std::string_view name) {
  switch (name.size()) {
    case 4: return name == "join";
    case 5: return name == "split" || name == "slice";
    case 6: return name == "concat" || name == "substr" ||
                   name == "charAt" || name == "repeat";
    case 7: return name == "replace" || name == "reverse" ||
                   name == "indexOf";
    case 8: return name == "padStart";
    case 9: return name == "substring";
    case 10: return name == "charCodeAt";
    case 11: return name == "codePointAt";
    case 12: return name == "fromCharCode";
    default: return false;
  }
}

// Order defines the builtin_seen array layout and the has_* feature
// columns (must stay aligned with handpicked_feature_names()).
constexpr std::array<std::string_view, 9> kDecoderBuiltins = {
    "eval",   "Function",           "atob",
    "btoa",   "unescape",           "escape",
    "decodeURIComponent",           "encodeURIComponent",
    "parseInt",
};

// Index into kDecoderBuiltins, or -1. Dispatching on length first lets
// almost every callee name exit after one integer compare — this runs
// for every identifier callee in the script.
int decoder_builtin_index(std::string_view name) {
  switch (name.size()) {
    case 4:
      if (name == "eval") return 0;
      if (name == "atob") return 2;
      if (name == "btoa") return 3;
      return -1;
    case 6:
      return name == "escape" ? 5 : -1;
    case 8:
      if (name == "Function") return 1;
      if (name == "unescape") return 4;
      if (name == "parseInt") return 8;
      return -1;
    case 18:
      if (name == "decodeURIComponent") return 6;
      if (name == "encodeURIComponent") return 7;
      return -1;
    default:
      return -1;
  }
}

bool looks_encoded(std::string_view value) {
  if (value.size() < 8) return false;
  // Long strings with very low space frequency and either high entropy or
  // base64/hex shape are typical of packed payloads.
  std::size_t spaces = 0;
  std::size_t nonprintable = 0;
  std::size_t hexish = 0;
  for (char c : value) {
    if (c == ' ') ++spaces;
    const auto byte = static_cast<unsigned char>(c);
    if (byte < 0x20 || byte > 0x7e) ++nonprintable;
    if (strings::is_hex_digit(c) || c == '%' || c == '\\' || c == '|') ++hexish;
  }
  const double size = static_cast<double>(value.size());
  if (nonprintable / size > 0.05) return true;
  if (spaces / size < 0.02 && hexish / size > 0.85) return true;
  return false;
}

bool is_hexlike_identifier(std::string_view name) {
  // _0x1a2b3c or similar machine-generated names.
  if (name.size() >= 4 && name[0] == '_' && name[1] == '0' &&
      (name[2] == 'x' || name[2] == 'X')) {
    return true;
  }
  // Pure hex-ish tail after a single letter: a0f3c9.
  if (name.size() >= 6) {
    std::size_t hex = 0;
    for (char c : name) {
      if (strings::is_hex_digit(c)) ++hex;
    }
    if (static_cast<double>(hex) / static_cast<double>(name.size()) > 0.9) {
      return true;
    }
  }
  return false;
}

bool inside_loop_or_function(const Node& node) {
  for (const Node* p = node.parent; p != nullptr; p = p->parent) {
    if (p->is_loop() || p->is_function()) return true;
  }
  return false;
}

bool is_infinite_loop(const Node& node) {
  if (node.kind == NodeKind::kWhileStatement ||
      node.kind == NodeKind::kDoWhileStatement) {
    const Node* test = node.kind == NodeKind::kWhileStatement ? node.kid(0)
                                                              : node.kid(1);
    return test != nullptr && test->kind == NodeKind::kLiteral &&
           test->lit_kind == LiteralKind::kBoolean && test->num_value != 0.0;
  }
  if (node.kind == NodeKind::kForStatement) {
    return node.kid(1) == nullptr;  // no test
  }
  return false;
}

bool contains_switch_statement(const Node& body) {
  bool found = false;
  for_each_preorder(&body, [&found](const Node& node) {
    if (node.kind == NodeKind::kSwitchStatement) found = true;
  });
  return found;
}

double safe_div(double a, double b) { return b == 0.0 ? 0.0 : a / b; }

double log1p_scaled(double v) { return std::log1p(std::max(0.0, v)); }

}  // namespace

void gather_handpicked(const Node& node, ExtractCounters& c) {
  ++c.nodes;
  switch (node.kind) {
    case NodeKind::kIdentifier: {
      ++c.identifiers;
      const std::string_view name = node.str_value;
      c.identifier_lengths.push_back(static_cast<double>(name.size()));
      if (name.size() == 1) ++c.identifiers_len1;
      if (name.size() == 2) ++c.identifiers_len2;
      if (is_hexlike_identifier(name)) ++c.identifiers_hexlike;
      c.unique_identifiers.insert(name);
      break;
    }
    case NodeKind::kLiteral:
      ++c.literals;
      switch (node.lit_kind) {
        case LiteralKind::kString: {
          ++c.string_literals;
          c.string_lengths.push_back(
              static_cast<double>(node.str_value.size()));
          if (c.all_string_bytes.size() < 1 << 20) {
            c.all_string_bytes += node.str_value;
          }
          if (looks_encoded(node.str_value)) ++c.encoded_looking_strings;
          break;
        }
        case LiteralKind::kNumber:
          ++c.number_literals;
          if (node.raw.size() > 2 && node.raw[0] == '0' &&
              (node.raw[1] == 'x' || node.raw[1] == 'X')) {
            ++c.hex_number_literals;
          }
          break;
        case LiteralKind::kRegExp:
          ++c.regex_literals;
          break;
        default:
          break;
      }
      break;
    case NodeKind::kTemplateLiteral:
      ++c.template_literals;
      break;
    case NodeKind::kCallExpression: {
      ++c.calls;
      const Node* callee = node.kid(0);
      if (callee != nullptr) {
        if (callee->kind == NodeKind::kIdentifier) {
          const int builtin = decoder_builtin_index(callee->str_value);
          if (builtin >= 0) c.builtin_seen[static_cast<std::size_t>(builtin)] = true;
          if (builtin == 0) ++c.eval_calls;  // kDecoderBuiltins[0] == "eval"
        }
        if (callee->kind == NodeKind::kMemberExpression && !callee->flag_a &&
            callee->kid(1) != nullptr) {
          if (is_string_operation(callee->kids[1]->str_value)) {
            ++c.string_operations;
          }
        }
        if (callee->kind == NodeKind::kFunctionExpression ||
            callee->kind == NodeKind::kArrowFunctionExpression) {
          ++c.iife;
        }
      }
      break;
    }
    case NodeKind::kMemberExpression: {
      ++c.members;
      if (node.flag_a) {
        ++c.member_bracket;
        const Node* key = node.kid(1);
        if (key != nullptr && key->kind == NodeKind::kLiteral &&
            key->lit_kind == LiteralKind::kString) {
          ++c.member_bracket_string_key;
        }
      } else {
        ++c.member_dot;
        const Node* property = node.kid(1);
        if (property != nullptr &&
            (property->str_value == "toString" ||
             property->str_value == "callee" ||
             property->str_value == "constructor")) {
          ++c.self_defense_markers;
        }
      }
      break;
    }
    case NodeKind::kConditionalExpression:
      ++c.conditionals;
      break;
    case NodeKind::kIfStatement:
      ++c.if_statements;
      break;
    case NodeKind::kSequenceExpression:
      ++c.sequences;
      break;
    case NodeKind::kEmptyStatement:
      ++c.empty_statements;
      break;
    case NodeKind::kUnaryExpression:
      ++c.unary_total;
      if (node.str_value == "!" || node.str_value == "+") ++c.unary_bang_plus;
      break;
    case NodeKind::kBinaryExpression: {
      ++c.binary_total;
      if (node.str_value == "+") {
        ++c.binary_plus;
        const Node* left = node.kid(0);
        const Node* right = node.kid(1);
        const auto is_string = [](const Node* n) {
          return n != nullptr && n->kind == NodeKind::kLiteral &&
                 n->lit_kind == LiteralKind::kString;
        };
        if (is_string(left) || is_string(right)) ++c.binary_plus_on_strings;
      }
      {
        const auto is_number = [](const Node* n) {
          return n != nullptr && n->kind == NodeKind::kLiteral &&
                 n->lit_kind == LiteralKind::kNumber;
        };
        if (is_number(node.kid(0)) && is_number(node.kid(1))) {
          ++c.binary_numeric_only;
        }
      }
      break;
    }
    case NodeKind::kArrayExpression:
      ++c.arrays;
      c.array_elements_total += node.kids.size();
      if (node.kids.empty()) ++c.empty_arrays;
      if (node.kids.size() >= 16) ++c.large_arrays;
      break;
    case NodeKind::kObjectExpression:
      ++c.objects;
      c.object_properties_total += node.kids.size();
      break;
    case NodeKind::kFunctionDeclaration:
    case NodeKind::kFunctionExpression:
      ++c.functions;
      c.function_params += node.kids.size() >= 2 ? node.kids.size() - 2 : 0;
      break;
    case NodeKind::kArrowFunctionExpression:
      ++c.functions;
      c.function_params += node.kids.size() >= 1 ? node.kids.size() - 1 : 0;
      break;
    case NodeKind::kTryStatement:
      ++c.try_statements;
      break;
    case NodeKind::kThrowStatement:
      ++c.throw_statements;
      break;
    case NodeKind::kWithStatement:
      ++c.with_statements;
      break;
    case NodeKind::kDebuggerStatement:
      ++c.debugger_statements;
      if (inside_loop_or_function(node)) ++c.debugger_in_loop_or_function;
      break;
    case NodeKind::kLabeledStatement:
      ++c.labeled;
      break;
    case NodeKind::kAssignmentExpression:
      ++c.assignments;
      break;
    case NodeKind::kUpdateExpression:
      ++c.update_expressions;
      break;
    case NodeKind::kVariableDeclaration:
      ++c.var_declarations;
      c.declarators += node.kids.size();
      break;
    case NodeKind::kSwitchStatement:
      ++c.switches;
      c.switch_cases += node.kids.size() > 0 ? node.kids.size() - 1 : 0;
      break;
    case NodeKind::kNewExpression:
      ++c.new_expressions;
      break;
    case NodeKind::kSpreadElement:
    case NodeKind::kRestElement:
      ++c.spread_like;
      break;
    default:
      break;
  }

  if (node.is_loop() && is_infinite_loop(node)) {
    ++c.infinite_loops;
    // Control-flow-flattening dispatcher: an infinite loop whose body
    // drives a switch.
    const Node* body = nullptr;
    switch (node.kind) {
      case NodeKind::kWhileStatement: body = node.kid(1); break;
      case NodeKind::kDoWhileStatement: body = node.kid(0); break;
      case NodeKind::kForStatement: body = node.kid(3); break;
      default: break;
    }
    if (body != nullptr && contains_switch_statement(*body)) {
      ++c.switch_in_loop;
    }
  }
}

const std::vector<std::string>& handpicked_feature_names() {
  static const std::vector<std::string> kNames = {
      // shape
      "ast_depth_per_line", "ast_breadth_per_line", "nodes_per_line",
      "avg_chars_per_line", "log_max_line_length", "whitespace_ratio",
      "bytes_per_line", "comment_byte_ratio", "comments_per_line",
      "source_alnum_ratio",
      // node-kind proportions
      "call_proportion", "literal_proportion", "identifier_proportion",
      "member_proportion", "member_per_unique_identifier",
      "ternary_proportion", "sequence_proportion", "empty_stmt_proportion",
      "assignment_proportion", "update_proportion", "new_proportion",
      // identifiers
      "avg_identifier_length", "stddev_identifier_length",
      "short1_identifier_fraction", "short2_identifier_fraction",
      "hexlike_identifier_fraction", "unique_identifier_fraction",
      // member access style
      "dot_to_member_ratio", "bracket_string_key_fraction",
      // strings
      "string_literal_fraction_of_literals", "avg_string_length",
      "log_max_string_length", "string_entropy",
      "encoded_string_fraction", "string_ops_per_node",
      "string_concat_fraction_of_binary",
      // numbers
      "hex_number_fraction", "numeric_only_binary_per_node",
      // builtins (presence)
      "has_eval", "has_function_ctor", "has_atob", "has_btoa",
      "has_unescape", "has_escape", "has_decodeuri", "has_encodeuri",
      "has_parseint", "eval_calls_per_node",
      // structure / logic
      "function_per_node", "avg_params_per_function", "iife_per_function",
      "try_per_node", "throw_per_node", "with_present",
      "regex_per_node", "template_per_node",
      "debugger_per_node", "debugger_in_loop_fraction",
      "labeled_per_node", "switch_per_node", "avg_cases_per_switch",
      "switch_in_loop_per_function", "infinite_loops_per_node",
      "if_per_node",
      // arrays / objects
      "avg_array_size", "log_max_array_density", "empty_array_per_node",
      "avg_object_size", "large_array_per_node",
      // declarations
      "declarations_per_line", "avg_declarators_per_declaration",
      // unary (JSFuck-ish)
      "bang_plus_unary_per_node", "unary_per_node",
      // tokens
      "punctuator_token_fraction", "avg_token_length", "tokens_per_byte",
      // control flow
      "cfg_edges_per_node", "cfg_branch_fraction", "cfg_back_edge_fraction",
      // data flow
      "dataflow_edges_per_node", "unresolved_use_fraction",
      "fetched_from_structure_fraction", "avg_uses_per_binding",
      "self_defense_markers_per_node",
  };
  return kNames;
}

void assemble_handpicked(const ScriptAnalysis& analysis,
                         const ExtractCounters& c, std::size_t depth_value,
                         std::size_t breadth_value, std::vector<float>& out) {
  const ParseResult& parse = analysis.parse;

  const double nodes = static_cast<double>(std::max<std::size_t>(c.nodes, 1));
  const double lines =
      static_cast<double>(std::max<std::size_t>(parse.source_lines, 1));
  const double bytes =
      static_cast<double>(std::max<std::size_t>(parse.source_bytes, 1));

  // Token statistics: summarized once at lex time (TokenStats) — the
  // stream itself is never re-walked here.
  const std::size_t punctuators = parse.token_stats.punctuators;
  const double token_length_total = parse.token_stats.raw_bytes;
  const std::size_t max_line_length = parse.token_stats.max_line_length;
  const double token_count = static_cast<double>(
      std::max<std::size_t>(parse.token_stats.count, 1));

  // Whitespace ratio: bytes not covered by tokens or comments approximate
  // whitespace volume.
  const double token_bytes = parse.token_stats.raw_bytes;
  const double whitespace_ratio = std::clamp(
      (bytes - token_bytes - static_cast<double>(parse.comment_bytes)) / bytes,
      0.0, 1.0);

  // Data-flow derived: fraction of identifier uses whose binding was
  // initialized from an array/object literal (the "global array" fetch
  // signature), plus average fan-out.
  std::size_t total_uses = 0;
  std::size_t structure_uses = 0;
  std::size_t bindings_with_uses = 0;
  for (const Binding& binding : analysis.data_flow.bindings) {
    total_uses += binding.uses.size();
    if (!binding.uses.empty()) ++bindings_with_uses;
    if (binding.init != nullptr &&
        (binding.init->kind == NodeKind::kArrayExpression ||
         binding.init->kind == NodeKind::kObjectExpression)) {
      structure_uses += binding.uses.size();
    }
  }
  const double use_count =
      static_cast<double>(std::max<std::size_t>(total_uses, 1));

  const double depth = static_cast<double>(depth_value);
  const double breadth = static_cast<double>(breadth_value);

  out.reserve(out.size() + handpicked_feature_names().size());
  const auto push = [&out](double value) {
    out.push_back(static_cast<float>(value));
  };

  // shape
  push(depth / lines);
  push(breadth / lines);
  push(nodes / lines);
  push(bytes / lines);
  push(log1p_scaled(static_cast<double>(max_line_length)));
  push(whitespace_ratio);
  push(bytes / lines);
  push(static_cast<double>(parse.comment_bytes) / bytes);
  push(static_cast<double>(parse.comment_count) / lines);
  push(strings::alnum_ratio(c.all_string_bytes.empty()
                                ? std::string_view("")
                                : std::string_view(c.all_string_bytes)));
  // node-kind proportions
  push(static_cast<double>(c.calls) / nodes);
  push(static_cast<double>(c.literals) / nodes);
  push(static_cast<double>(c.identifiers) / nodes);
  push(static_cast<double>(c.members) / nodes);
  push(safe_div(static_cast<double>(c.members),
                static_cast<double>(c.unique_identifiers.size())));
  push(static_cast<double>(c.conditionals) / nodes);
  push(static_cast<double>(c.sequences) / nodes);
  push(static_cast<double>(c.empty_statements) / nodes);
  push(static_cast<double>(c.assignments) / nodes);
  push(static_cast<double>(c.update_expressions) / nodes);
  push(static_cast<double>(c.new_expressions) / nodes);
  // identifiers
  push(stats::mean(c.identifier_lengths));
  push(stats::stddev(c.identifier_lengths));
  push(safe_div(static_cast<double>(c.identifiers_len1),
                static_cast<double>(c.identifiers)));
  push(safe_div(static_cast<double>(c.identifiers_len2),
                static_cast<double>(c.identifiers)));
  push(safe_div(static_cast<double>(c.identifiers_hexlike),
                static_cast<double>(c.identifiers)));
  push(safe_div(static_cast<double>(c.unique_identifiers.size()),
                static_cast<double>(c.identifiers)));
  // member style
  push(safe_div(static_cast<double>(c.member_dot),
                static_cast<double>(c.members)));
  push(safe_div(static_cast<double>(c.member_bracket_string_key),
                static_cast<double>(c.member_bracket)));
  // strings
  push(safe_div(static_cast<double>(c.string_literals),
                static_cast<double>(c.literals)));
  push(stats::mean(c.string_lengths));
  push(log1p_scaled(stats::max(c.string_lengths)));
  push(stats::byte_entropy(std::span<const unsigned char>(
      reinterpret_cast<const unsigned char*>(c.all_string_bytes.data()),
      c.all_string_bytes.size())));
  push(safe_div(static_cast<double>(c.encoded_looking_strings),
                static_cast<double>(c.string_literals)));
  push(static_cast<double>(c.string_operations) / nodes);
  push(safe_div(static_cast<double>(c.binary_plus_on_strings),
                static_cast<double>(c.binary_total)));
  // numbers
  push(safe_div(static_cast<double>(c.hex_number_literals),
                static_cast<double>(c.number_literals)));
  push(static_cast<double>(c.binary_numeric_only) / nodes);
  // builtins (columns follow kDecoderBuiltins order)
  for (const bool seen : c.builtin_seen) {
    push(seen ? 1.0 : 0.0);
  }
  push(static_cast<double>(c.eval_calls) / nodes);
  // structure / logic
  push(static_cast<double>(c.functions) / nodes);
  push(safe_div(static_cast<double>(c.function_params),
                static_cast<double>(c.functions)));
  push(safe_div(static_cast<double>(c.iife),
                static_cast<double>(c.functions)));
  push(static_cast<double>(c.try_statements) / nodes);
  push(static_cast<double>(c.throw_statements) / nodes);
  push(c.with_statements > 0 ? 1.0 : 0.0);
  push(static_cast<double>(c.regex_literals) / nodes);
  push(static_cast<double>(c.template_literals) / nodes);
  push(static_cast<double>(c.debugger_statements) / nodes);
  push(safe_div(static_cast<double>(c.debugger_in_loop_or_function),
                static_cast<double>(c.debugger_statements)));
  push(static_cast<double>(c.labeled) / nodes);
  push(static_cast<double>(c.switches) / nodes);
  push(safe_div(static_cast<double>(c.switch_cases),
                static_cast<double>(c.switches)));
  push(safe_div(static_cast<double>(c.switch_in_loop),
                static_cast<double>(std::max<std::size_t>(c.functions, 1))));
  push(static_cast<double>(c.infinite_loops) / nodes);
  push(static_cast<double>(c.if_statements) / nodes);
  // arrays / objects
  push(safe_div(static_cast<double>(c.array_elements_total),
                static_cast<double>(c.arrays)));
  push(log1p_scaled(static_cast<double>(c.large_arrays)));
  push(static_cast<double>(c.empty_arrays) / nodes);
  push(safe_div(static_cast<double>(c.object_properties_total),
                static_cast<double>(c.objects)));
  push(static_cast<double>(c.large_arrays) / nodes);
  // declarations
  push(static_cast<double>(c.var_declarations) / lines);
  push(safe_div(static_cast<double>(c.declarators),
                static_cast<double>(c.var_declarations)));
  // unary
  push(static_cast<double>(c.unary_bang_plus) / nodes);
  push(static_cast<double>(c.unary_total) / nodes);
  // tokens
  push(static_cast<double>(punctuators) / token_count);
  push(token_length_total / token_count);
  push(token_count / bytes);
  // control flow
  push(static_cast<double>(analysis.control_flow.edge_count()) / nodes);
  push(safe_div(static_cast<double>(analysis.control_flow.branch_node_count()),
                static_cast<double>(
                    std::max<std::size_t>(analysis.control_flow.edge_count(), 1))));
  push(safe_div(static_cast<double>(analysis.control_flow.back_edge_count()),
                static_cast<double>(
                    std::max<std::size_t>(analysis.control_flow.edge_count(), 1))));
  // data flow
  push(static_cast<double>(analysis.data_flow.edge_count()) / nodes);
  push(safe_div(static_cast<double>(analysis.data_flow.unresolved_uses),
                use_count + static_cast<double>(analysis.data_flow.unresolved_uses)));
  push(static_cast<double>(structure_uses) / use_count);
  push(safe_div(static_cast<double>(total_uses),
                static_cast<double>(std::max<std::size_t>(bindings_with_uses, 1))));
  push(static_cast<double>(c.self_defense_markers) / nodes);
}

std::vector<float> handpicked_features(const ScriptAnalysis& analysis) {
  const Node* root = analysis.parse.ast.root();
  ExtractCounters c;
  walk_preorder(root,
                [&c](const Node& node) { gather_handpicked(node, c); });
  std::vector<float> out;
  assemble_handpicked(analysis, c, tree_depth(root), tree_breadth(root), out);
  return out;
}

}  // namespace jst::features
