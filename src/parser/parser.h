// Recursive-descent JavaScript parser producing Esprima-style ASTs.
//
// Covers the ES2017 subset required by the paper's feature definitions and
// by all ten transformation techniques: every statement form (including
// with/labeled/debugger), var/let/const with destructuring, functions
// (declarations, expressions, arrows, async, generators), classes, template
// literals (including tagged), spread/rest, and the full expression grammar
// with correct precedence and automatic semicolon insertion.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ast/ast.h"
#include "lexer/lexer.h"
#include "support/arena.h"

namespace jst {

// Parse result: the arena plus lexical statistics needed by the feature
// extractor (comment volume is erased from the AST but matters for
// minification detection).
// Aggregates over the token stream, accumulated during lexing while the
// tokens are cache-hot. The hand-picked feature block consumes these
// four numbers instead of re-walking the (cold, string-heavy) token
// vector at feature time.
struct TokenStats {
  std::size_t count = 0;        // tokens in the stream (no EOF)
  std::size_t punctuators = 0;
  // Max (column + raw length) over tokens — a max-line-length proxy.
  std::size_t max_line_length = 0;
  // Sum of raw token lengths, accumulated in stream order as a double —
  // the exact order/type the feature assembly historically used, so the
  // derived features are bit-identical.
  double raw_bytes = 0.0;
};

struct ParseResult {
  Ast ast;
  // Full token stream (no EOF), stored in the same arena as the AST. The
  // span (and every token payload view) shares the arena's lifetime: for
  // an owned-arena parse it lives as long as `ast`; for a pooled-arena
  // parse it is valid until the pool's next reset.
  std::span<const Token> tokens;
  TokenStats token_stats;
  std::size_t comment_count = 0;
  std::size_t comment_bytes = 0;
  std::size_t source_bytes = 0;
  std::size_t source_lines = 0;
};

// Parses a full program. Throws ParseError on malformed input. A non-null
// `budget` is charged per token and per AST node and checked against its
// depth ceiling and deadline; a tripped ceiling throws BudgetExceeded
// (the budget pointer is detached from the returned Ast before returning).
//
// When `arena` is non-null the whole front end runs in it — it is reset()
// first (per-script pooling contract: at most one live ParseResult per
// pooled arena), the source is copied in so every token/node view has
// arena lifetime, and the Ast borrows it instead of owning one. With a
// null arena the Ast owns a private arena and the result is fully
// self-contained. `atoms`, when non-null, is the pooled identifier atom
// table the parser interns into (cleared here, in lockstep with the
// arena reset, because the interned views alias the arena); null gives
// the Ast a private table.
ParseResult parse_program(std::string_view source, Budget* budget = nullptr,
                          support::Arena* arena = nullptr,
                          support::AtomTable* atoms = nullptr);

// Convenience: true if the source parses.
bool parses(std::string_view source);

class Parser {
 public:
  // `tokens` must not contain the EOF token and must stay alive for the
  // parse (parse_program keeps it in the arena). `budget`, when non-null,
  // has its AST-depth ceiling checked on every nesting step.
  Parser(std::span<const Token> tokens, Ast& ast, Budget* budget = nullptr);

  Node* parse_program_body();

 private:
  // --- token stream ---
  const Token& peek(std::size_t ahead = 0) const;
  const Token& current() const { return peek(0); }
  bool at_end() const { return index_ >= tokens_.size(); }
  const Token& advance();
  bool check_punct(std::string_view text, std::size_t ahead = 0) const;
  bool check_keyword(std::string_view text, std::size_t ahead = 0) const;
  bool check_identifier(std::string_view text, std::size_t ahead = 0) const;
  bool match_punct(std::string_view text);
  bool match_keyword(std::string_view text);
  void expect_punct(std::string_view text);
  void expect_keyword(std::string_view text);
  [[noreturn]] void fail(const std::string& message) const;
  void consume_semicolon();  // with automatic semicolon insertion

  // True if the '(' at `ahead` starts an arrow-function parameter list
  // (scans to the matching ')' and checks for '=>').
  bool is_arrow_ahead(std::size_t ahead) const;

  // --- statements ---
  Node* parse_statement();
  Node* parse_block();
  Node* parse_variable_declaration();  // current token: var/let/const
  Node* parse_if();
  Node* parse_for();
  Node* parse_while();
  Node* parse_do_while();
  Node* parse_switch();
  Node* parse_try();
  Node* parse_return();
  Node* parse_throw();
  Node* parse_break_continue(bool is_break);
  Node* parse_labeled_or_expression_statement();
  Node* parse_with();
  Node* parse_function(bool is_declaration, bool is_async);
  Node* parse_class(bool is_declaration);

  // --- expressions (precedence descent) ---
  Node* parse_expression();             // comma operator
  Node* parse_assignment();
  Node* parse_conditional();
  Node* parse_binary(int min_precedence);
  Node* parse_unary();
  Node* parse_postfix();
  Node* parse_call_member(Node* base, bool allow_call);
  Node* parse_new();
  Node* parse_primary();
  Node* parse_array_literal();
  Node* parse_object_literal();
  Node* parse_object_property();
  Node* parse_template_literal(const Token& token);
  Node* parse_arrow_tail(std::vector<Node*> params, bool is_async);
  // (params travel through a transient std::vector; they are copied into
  // the arena-backed kid list when attached to the function node.)
  Node* parse_property_key(bool* computed);
  Node* parse_function_rest(Node* function_node);  // params + body

  // --- binding patterns ---
  Node* parse_binding_target();   // Identifier | ArrayPattern | ObjectPattern
  Node* parse_binding_element();  // binding target with optional default
  std::vector<Node*> parse_params();

  // Reparses a sub-source (template substitution) into this arena.
  Node* parse_subexpression(std::string_view source);

  std::span<const Token> tokens_;
  std::size_t index_ = 0;
  Ast& ast_;
  Budget* budget_ = nullptr;
  int function_depth_ = 0;
  Token eof_token_;

  // Recursion guard: adversarial inputs (thousands of nested parentheses)
  // must yield a ParseError, never a stack overflow.
  static constexpr int kMaxNestingDepth = 700;
  int nesting_depth_ = 0;
  friend struct ParserDepthGuard;
};

}  // namespace jst
