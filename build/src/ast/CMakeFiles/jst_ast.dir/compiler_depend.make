# Empty compiler generated dependencies file for jst_ast.
# This may be replaced when dependencies are built.
