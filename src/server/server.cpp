#include "server/server.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "analysis/result_cache.h"
#include "analysis/wire.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "support/json_writer.h"

namespace jst::server {
namespace {

// Daemon telemetry (DESIGN.md §13). One shared instrument family: the
// registry is process-wide, and a process runs one serving daemon (tests
// that start several servers share the family, which only blends the p95
// estimate they already share). The *windowed* view is per-Server state
// (see server.h) for exactly that reason.
struct ServerMetrics {
  obs::Counter& requests =
      obs::MetricsRegistry::global().counter("jst_server_requests_total");
  obs::Counter& shed =
      obs::MetricsRegistry::global().counter("jst_server_shed_total");
  obs::Counter& connections =
      obs::MetricsRegistry::global().counter("jst_server_connections_total");
  obs::Gauge& queue_depth =
      obs::MetricsRegistry::global().gauge("jst_server_queue_depth");
  obs::Histogram& queue_ms =
      obs::MetricsRegistry::global().histogram("jst_server_queue_ms");
  obs::Histogram& service_ms =
      obs::MetricsRegistry::global().histogram("jst_server_service_ms");

  ServerMetrics() {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
    registry.set_help("jst_server_requests_total",
                      "Requests answered by the daemon (any status)");
    registry.set_help("jst_server_shed_total",
                      "Requests shed by admission control or drain");
    registry.set_help("jst_server_connections_total",
                      "Client connections accepted");
    registry.set_help("jst_server_queue_depth",
                      "In-flight (queued + running) requests");
    registry.set_help("jst_server_queue_ms",
                      "Admission-to-pickup wait per request");
    registry.set_help("jst_server_service_ms",
                      "Pickup-to-response service time per request");
  }
};

ServerMetrics& server_metrics() {
  static ServerMetrics* metrics = new ServerMetrics();  // outlives statics
  return *metrics;
}

// Writes the whole buffer, retrying on EINTR / partial writes. Returns
// false on any hard error (EPIPE when the peer vanished is the common
// one); MSG_NOSIGNAL keeps a dead peer from killing the daemon. The fd
// carries SO_SNDTIMEO (ServerConfig::write_timeout_ms), so a client that
// stops reading surfaces here as EAGAIN within the timeout instead of
// blocking the writer — and its write_mutex — forever.
bool write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EAGAIN/EWOULDBLOCK (send timeout) included
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

// Bounds every blocking send on `fd` to `timeout_ms` (0 = unbounded).
void set_send_timeout(int fd, std::size_t timeout_ms) {
  if (timeout_ms == 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

// One accepted client connection. The reader thread owns the read side;
// responses are written by pool workers under `write_mutex`. The fd is
// closed only by the reader thread, after every admitted request from
// this connection has been answered (`pending` reaching 0), so a pool
// worker can never write into a recycled descriptor.
struct Server::Connection {
  int fd = -1;
  std::thread reader;
  std::mutex write_mutex;
  std::mutex pending_mutex;
  std::condition_variable pending_zero;
  std::size_t pending = 0;
  bool stop_reading = false;  // set after a one-shot HTTP exchange
};

bool Server::should_shed(std::size_t queue_depth, std::size_t workers,
                         double p95_service_ms, double deadline_ms,
                         std::size_t max_queue_depth) {
  if (max_queue_depth > 0 && queue_depth >= max_queue_depth) return true;
  if (deadline_ms <= 0.0 || p95_service_ms <= 0.0 || queue_depth == 0) {
    return false;
  }
  const double lanes = static_cast<double>(workers == 0 ? 1 : workers);
  const double estimated_wait_ms =
      static_cast<double>(queue_depth) * p95_service_ms / lanes;
  return estimated_wait_ms > deadline_ms;
}

Server::Server(const analysis::AnalyzerService& service, ServerConfig config)
    : service_(&service),
      config_(std::move(config)),
      service_window_(config_.window_seconds),
      requests_window_(config_.window_seconds),
      shed_window_(config_.window_seconds),
      slow_exemplars_(config_.slow_exemplars) {
  if (config_.socket_path.empty()) {
    throw std::runtime_error("jstraced-server: socket_path is empty");
  }
  workers_ = support::resolve_threads(config_.workers);

  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("jstraced-server: socket path too long: " +
                             config_.socket_path);
  }
  std::memcpy(address.sun_path, config_.socket_path.c_str(),
              config_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("jstraced-server: socket(): ") +
                             std::strerror(errno));
  }
  ::unlink(config_.socket_path.c_str());  // stale file from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("jstraced-server: cannot listen on " +
                             config_.socket_path + ": " + reason);
  }
}

Server::~Server() { shutdown(); }

void Server::start() {
  if (started_.exchange(true)) return;
  // `workers_` real worker threads: the pool counts its caller as a lane,
  // and the reader threads that submit never analyze inline.
  pool_ = std::make_unique<support::ThreadPool>(workers_ + 1);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listening socket closed (shutdown) or hard error
    }
    set_send_timeout(fd, config_.write_timeout_ms);
    server_metrics().connections.add(1);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_accepted;
    }
    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->reader = std::thread([this, raw] { serve_connection(*raw); });
  }
}

void Server::serve_connection(Connection& connection) {
  std::string buffer;
  char chunk[64 * 1024];
  bool open = true;
  while (open && !connection.stop_reading) {
    const ssize_t n = ::recv(connection.fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error (including shutdown())
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t newline = buffer.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = buffer.substr(start, newline - start);
      start = newline + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handle_line(connection, line);
      if (connection.stop_reading) {
        open = false;
        break;
      }
    }
    buffer.erase(0, start);
  }
  // Every admitted request must be answered before the fd can be closed;
  // see the Connection invariant above.
  {
    std::unique_lock<std::mutex> lock(connection.pending_mutex);
    connection.pending_zero.wait(lock,
                                 [&] { return connection.pending == 0; });
  }
  std::lock_guard<std::mutex> lock(connection.write_mutex);
  ::close(connection.fd);
  connection.fd = -1;
}

void Server::handle_line(Connection& connection, const std::string& line) {
  // Raw "GET /metrics" → one-shot HTTP-style scrape (curl --unix-socket).
  if (line.rfind("GET ", 0) == 0) {
    serve_metrics_http(connection);
    return;
  }

  std::string parse_error;
  std::optional<support::JsonValue> document =
      support::parse_json(line, &parse_error);
  if (!document.has_value()) {
    analysis::AnalyzeResponse response;
    response.status = analysis::ResponseStatus::kInvalidRequest;
    response.error = "malformed JSON (" + parse_error + ")";
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_invalid;
    }
    respond(connection, response);
    return;
  }

  if (const support::JsonValue* op = document->find("op")) {
    const std::string& name = op->as_string();
    if (name != "ping" && name != "metrics" && name != "stats" &&
        name != "flight") {
      analysis::AnalyzeResponse response;
      response.status = analysis::ResponseStatus::kInvalidRequest;
      response.error = "unknown op '" + name + "'";
      respond(connection, response);
      return;
    }
    JsonWriter writer;
    writer.begin_object();
    writer.key("v");
    writer.value(static_cast<long long>(analysis::wire::kWireFormatVersion));
    writer.key("status");
    writer.value("ok");
    if (name == "ping") {
      writer.key("op");
      writer.value("ping");
    } else if (name == "stats") {
      writer.key("op");
      writer.value("stats");
      writer.key("stats");
      writer.raw(stats_json());
    } else if (name == "flight") {
      writer.key("op");
      writer.value("flight");
      writer.key("events");
      writer.raw(obs::FlightRecorder::global().dump_json_array());
    } else {
      const support::JsonValue* format = document->find("format");
      if (format != nullptr && format->as_string() == "prometheus") {
        writer.key("metrics_text");
        writer.value(obs::MetricsRegistry::global().to_prometheus());
      } else {
        writer.key("metrics");
        writer.raw(obs::MetricsRegistry::global().to_json());
      }
    }
    writer.end_object();
    write_line(connection, writer.str() + "\n");
    return;
  }

  std::string request_error;
  std::optional<analysis::AnalyzeRequest> request =
      analysis::wire::parse_analyze_request(*document, &request_error);
  if (!request.has_value()) {
    analysis::AnalyzeResponse response;
    response.status = analysis::ResponseStatus::kInvalidRequest;
    response.error = request_error;
    if (const support::JsonValue* id = document->find("id")) {
      response.id = id->as_string();
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_invalid;
    }
    respond(connection, response);
    return;
  }
  handle_request(connection, *std::move(request));
}

void Server::handle_request(Connection& connection,
                            analysis::AnalyzeRequest request) {
  // Every request gets a trace-correlation id: the client's (wire v2)
  // when supplied, else minted here at the boundary. Installed on this
  // reader thread so the admission decision's spans and flight events —
  // and, via ThreadPool::submit's context capture, everything the pool
  // worker does — carry it.
  if (request.request_id.empty()) {
    request.request_id = obs::generate_request_id();
  }
  obs::RequestScope rid_scope(request.request_id);
  requests_window_.add(1);

  // Process-wide cache discipline: an unspecified cache_mode inherits the
  // daemon's default; an explicit bypass/refresh on the request wins.
  if (request.cache_mode == CacheMode::kDefault) {
    request.cache_mode = config_.default_cache_mode;
  }

  analysis::AnalyzeResponse early;
  early.id = request.id;
  early.request_id = request.request_id;
  early.detail = request.detail;

  if (draining_.load(std::memory_order_relaxed)) {
    early.status = analysis::ResponseStatus::kDraining;
    early.error = "server is draining";
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_shed;
    }
    server_metrics().shed.add(1);
    shed_window_.add(1);
    obs::flight_record(obs::FlightEventKind::kShed, {}, "draining");
    respond(connection, early);
    return;
  }

  const ResourceLimits& limits =
      request.limits.has_value() ? *request.limits : config_.default_limits;

  // Resolve a content-hash reference against the registry before
  // admission, so an unresolvable request never occupies queue space.
  // Inline sources register under their hash on the way in — the hash
  // echoed in the response is immediately usable as a reference. A source
  // the effective limits would refuse anyway (max_source_bytes) is not
  // worth registry space.
  if (request.has_source) {
    register_source(analysis::content_hash(request.source), request.source,
                    limits.max_source_bytes);
  } else {
    if (!resolve_source(request.source_hash, request.source)) {
      early.status = analysis::ResponseStatus::kNotFound;
      early.source_hash = request.source_hash;
      early.error = "unknown source_hash '" + request.source_hash + "'";
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests_invalid;
      }
      respond(connection, early);
      return;
    }
    request.has_source = true;
  }

  // Admission control (header comment): hard cap on in-flight requests,
  // plus the queue-wait estimate against this request's deadline. Only
  // the verdict and the counter update happen under inflight_mutex_ —
  // respond() is a blocking send and the burst dump is file I/O, and a
  // slow client must never wedge every worker's inflight_ decrement (and
  // every other connection's admission) behind this lock.
  bool shed = false;
  std::size_t depth_at_verdict = 0;
  std::size_t depth_at_admission = 0;
  double p95 = 0.0;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    // The stale-admission fix: consult the sliding-window p95 (cumulative
    // only until the window warms), so a slow burst minutes ago cannot
    // shed today's fast traffic.
    p95 = admission_p95_ms();
    depth_at_verdict = inflight_;
    shed = should_shed(inflight_, workers_, p95, limits.deadline_ms,
                       config_.max_queue_depth);
    if (!shed) depth_at_admission = ++inflight_;
  }
  if (shed) {
    early.status = analysis::ResponseStatus::kOverloaded;
    early.queue_depth = depth_at_verdict;
    early.error = "overloaded: " + std::to_string(depth_at_verdict) +
                  " in flight, p95 " + std::to_string(p95) + " ms";
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      ++stats_.requests_shed;
    }
    server_metrics().shed.add(1);
    shed_window_.add(1);
    obs::flight_record(obs::FlightEventKind::kShed, {}, "overloaded",
                       static_cast<double>(depth_at_verdict), p95,
                       limits.deadline_ms);
    respond(connection, early);
    maybe_dump_flight_on_shed_burst();
    return;
  }
  obs::flight_record(obs::FlightEventKind::kAdmit, {}, "admitted",
                     static_cast<double>(depth_at_admission), p95,
                     limits.deadline_ms);
  server_metrics().queue_depth.set(static_cast<double>(depth_at_admission));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_admitted;
  }
  {
    std::lock_guard<std::mutex> lock(connection.pending_mutex);
    ++connection.pending;
  }

  const auto admitted_at = std::chrono::steady_clock::now();
  Connection* raw = &connection;
  pool_->submit([this, raw, request = std::move(request), admitted_at,
                 depth_at_admission]() mutable {
    process_request(*raw, request, admitted_at, depth_at_admission);
  });
}

void Server::process_request(
    Connection& connection, const analysis::AnalyzeRequest& request,
    std::chrono::steady_clock::time_point admitted_at,
    std::size_t depth_at_admission) {
  // Re-anchor the request context on the worker lane (submit's capture
  // already covers the common path; this keeps process_request correct
  // if it is ever invoked outside the pool).
  obs::RequestScope rid_scope(request.request_id);
  ServerMetrics& metrics = server_metrics();
  const double queue_ms = elapsed_ms(admitted_at);
  metrics.queue_ms.record(queue_ms);
  obs::flight_record(obs::FlightEventKind::kPickup, {}, nullptr, queue_ms,
                     static_cast<double>(depth_at_admission));

  analysis::AnalyzeResponse response;
  ResourceLimits limits =
      request.limits.has_value() ? *request.limits : config_.default_limits;
  const bool deadline_elapsed_in_queue =
      limits.deadline_ms > 0.0 && queue_ms >= limits.deadline_ms;
  if (deadline_elapsed_in_queue) {
    // The wait already consumed the whole deadline: shed instead of
    // running an analysis guaranteed to be answered late.
    response.status = analysis::ResponseStatus::kOverloaded;
    response.id = request.id;
    response.request_id = request.request_id;
    response.detail = request.detail;
    response.error = "deadline elapsed after " + std::to_string(queue_ms) +
                     " ms in queue";
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_shed;
    }
    metrics.shed.add(1);
    shed_window_.add(1);
    obs::flight_record(obs::FlightEventKind::kShed, {},
                       "deadline_elapsed_in_queue", queue_ms, 0.0,
                       limits.deadline_ms);
    maybe_dump_flight_on_shed_burst();
  } else {
    const auto picked_up = std::chrono::steady_clock::now();
    if (limits.deadline_ms > 0.0) {
      // The deadline is end-to-end: the analysis Budget gets whatever the
      // queue wait left over.
      limits.deadline_ms -= queue_ms;
      analysis::AnalyzeRequest governed = request;
      governed.limits = limits;
      response = service_->analyze(governed);
    } else {
      response = service_->analyze(request, limits);
    }
    if (config_.min_service_ms > 0.0) {
      const double remaining = config_.min_service_ms - elapsed_ms(picked_up);
      if (remaining > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(remaining));
      }
    }
    response.service_ms = elapsed_ms(picked_up);
    metrics.service_ms.record(response.service_ms);
    service_window_.record(response.service_ms);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      if (response.ok()) ++stats_.requests_served;
      else ++stats_.requests_invalid;
    }
    if (slow_exemplars_.offer(response.source_hash, request.request_id,
                              response.service_ms)) {
      obs::flight_record(obs::FlightEventKind::kSlowExemplar,
                         response.source_hash, nullptr,
                         response.service_ms);
    }
  }
  response.queue_ms = queue_ms;
  response.queue_depth = depth_at_admission;
  metrics.requests.add(1);
  obs::flight_record(obs::FlightEventKind::kRespond, response.source_hash,
                     to_string(response.status).data(), response.service_ms,
                     queue_ms);

  respond(connection, response);

  {
    std::lock_guard<std::mutex> lock(connection.pending_mutex);
    --connection.pending;
    if (connection.pending == 0) connection.pending_zero.notify_all();
  }
  std::size_t depth_now = 0;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    depth_now = --inflight_;
    if (inflight_ == 0) inflight_zero_.notify_all();
  }
  metrics.queue_depth.set(static_cast<double>(depth_now));
}

void Server::respond(Connection& connection,
                     const analysis::AnalyzeResponse& response) {
  const std::string line = analysis::wire::analyze_response_json(response);
  write_line(connection, line + "\n");
}

void Server::write_line(Connection& connection, const std::string& data) {
  std::lock_guard<std::mutex> lock(connection.write_mutex);
  if (connection.fd < 0) return;
  if (!write_all(connection.fd, data)) {
    // Write failed — the peer vanished, or stalled past the send timeout.
    // The response stream is no longer coherent, so drop the connection:
    // shutdown() fails the reader's recv(), the reader drains pending
    // responses (each failing fast the same way) and closes the fd.
    ::shutdown(connection.fd, SHUT_RDWR);
  }
}

void Server::register_source(const std::string& hash,
                             const std::string& source,
                             std::size_t max_entry_bytes) {
  if (config_.hash_registry_entries == 0 ||
      config_.hash_registry_bytes == 0) {
    return;
  }
  // Per-entry caps: a source the request's own limits would refuse, or
  // one bigger than the whole byte budget, never enters the registry.
  if (max_entry_bytes > 0 && source.size() > max_entry_bytes) return;
  if (source.size() > config_.hash_registry_bytes) return;

  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = registry_index_.find(hash);
  if (it != registry_index_.end()) {
    registry_lru_.splice(registry_lru_.begin(), registry_lru_, it->second);
    return;
  }
  // Evict least-recently-used entries until both budgets admit the new
  // source; the caps guarantee this terminates with room to spare.
  while (!registry_lru_.empty() &&
         (registry_index_.size() >= config_.hash_registry_entries ||
          registry_bytes_ + source.size() > config_.hash_registry_bytes)) {
    registry_bytes_ -= registry_lru_.back().second.size();
    registry_index_.erase(registry_lru_.back().first);
    registry_lru_.pop_back();
  }
  registry_lru_.emplace_front(hash, source);
  registry_bytes_ += source.size();
  registry_index_.emplace(hash, registry_lru_.begin());
}

bool Server::resolve_source(const std::string& hash, std::string& source) {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  const auto it = registry_index_.find(hash);
  if (it == registry_index_.end()) return false;
  registry_lru_.splice(registry_lru_.begin(), registry_lru_, it->second);
  source = it->second->second;
  return true;
}

void Server::serve_metrics_http(Connection& connection) {
  const std::string body = obs::MetricsRegistry::global().to_prometheus();
  std::string response =
      "HTTP/1.0 200 OK\r\n"
      "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n"
      "Connection: close\r\n\r\n" + body;
  {
    std::lock_guard<std::mutex> lock(connection.write_mutex);
    if (connection.fd >= 0) {
      if (write_all(connection.fd, response)) {
        ::shutdown(connection.fd, SHUT_WR);
      } else {
        ::shutdown(connection.fd, SHUT_RDWR);
      }
    }
  }
  connection.stop_reading = true;
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

double Server::admission_p95_ms() const {
  const obs::WindowSnapshot recent = service_window_.snapshot();
  if (recent.count >= config_.window_warm_min_count) return recent.p95;
  // Cold window (boot, or an idle gap aged everything out): since-boot
  // p95 is the best available estimate and is exact early on.
  return server_metrics().service_ms.p95();
}

std::string Server::stats_json() const {
  const obs::WindowSnapshot recent = service_window_.snapshot();
  const std::uint64_t recent_requests = requests_window_.sum();
  const std::uint64_t recent_shed = shed_window_.sum();
  const double window_s =
      static_cast<double>(service_window_.window_seconds());
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(inflight_mutex_);
    depth = inflight_;
  }
  ServerMetrics& metrics = server_metrics();

  JsonWriter writer;
  writer.begin_object();
  writer.key("window_seconds");
  writer.value(service_window_.window_seconds());
  writer.key("warm");
  writer.value(recent.count >= config_.window_warm_min_count);
  writer.key("queue_depth"); writer.value(depth);
  writer.key("workers"); writer.value(workers_);
  writer.key("admission_p95_ms"); writer.value(admission_p95_ms());
  writer.key("recent");
  writer.begin_object();
  writer.key("requests"); writer.value(recent_requests);
  writer.key("shed"); writer.value(recent_shed);
  writer.key("qps");
  writer.value(static_cast<double>(recent_requests) / window_s);
  writer.key("shed_rate");
  writer.value(recent_requests == 0
                   ? 0.0
                   : static_cast<double>(recent_shed) /
                         static_cast<double>(recent_requests));
  writer.key("served"); writer.value(recent.count);
  writer.key("service_p50_ms"); writer.value(recent.p50);
  writer.key("service_p95_ms"); writer.value(recent.p95);
  writer.key("service_p99_ms"); writer.value(recent.p99);
  writer.key("service_max_ms"); writer.value(recent.max);
  writer.end_object();
  writer.key("cumulative");
  writer.begin_object();
  writer.key("requests_total"); writer.value(metrics.requests.value());
  writer.key("shed_total"); writer.value(metrics.shed.value());
  writer.key("service_count"); writer.value(metrics.service_ms.count());
  writer.key("service_p95_ms"); writer.value(metrics.service_ms.p95());
  writer.end_object();
  writer.key("cache");
  if (const analysis::ResultCache* cache = service_->cache()) {
    const analysis::ResultCache::Counters counters = cache->counters();
    writer.begin_object();
    writer.key("mode");
    writer.value(jst::to_string(config_.default_cache_mode));
    writer.key("hits");
    writer.value(static_cast<std::size_t>(counters.hits));
    writer.key("misses");
    writer.value(static_cast<std::size_t>(counters.misses));
    writer.key("stores");
    writer.value(static_cast<std::size_t>(counters.stores));
    writer.key("evictions");
    writer.value(static_cast<std::size_t>(counters.evictions));
    writer.key("bypasses");
    writer.value(static_cast<std::size_t>(counters.bypasses));
    writer.key("entries"); writer.value(counters.entries);
    writer.key("bytes"); writer.value(counters.bytes);
    writer.key("disk_records"); writer.value(counters.disk_records);
    writer.end_object();
  } else {
    writer.null();
  }
  writer.key("slowest");
  writer.raw(slow_exemplars_.to_json());
  writer.end_object();
  return writer.str();
}

void Server::maybe_dump_flight_on_shed_burst() {
  if (config_.flight_dump_path.empty() ||
      config_.shed_burst_dump_threshold == 0) {
    return;
  }
  if (shed_window_.sum() < config_.shed_burst_dump_threshold) return;
  const std::uint64_t now_s = obs::window_now_s();
  std::uint64_t last = last_flight_dump_s_.load(std::memory_order_relaxed);
  if (last != kNeverDumped &&
      now_s - last < service_window_.window_seconds()) {
    return;  // already dumped for this burst
  }
  if (last_flight_dump_s_.compare_exchange_strong(
          last, now_s, std::memory_order_relaxed)) {
    obs::FlightRecorder::global().dump_to_file(config_.flight_dump_path);
  }
}

void Server::shutdown() {
  if (stopped_.exchange(true)) return;
  draining_.store(true, std::memory_order_relaxed);

  // Stop accepting: closing the listening socket fails the blocking
  // accept() and ends the accept loop.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain: every admitted request gets its response before any
  // connection is torn down. Requests read after this point are answered
  // kDraining by handle_request.
  {
    std::unique_lock<std::mutex> lock(inflight_mutex_);
    inflight_zero_.wait(lock, [this] { return inflight_ == 0; });
  }

  // Unblock readers stuck in recv(); they close their own fd after their
  // pending count (already zero) allows it.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (const std::unique_ptr<Connection>& connection : connections_) {
      std::lock_guard<std::mutex> write_lock(connection->write_mutex);
      if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (const std::unique_ptr<Connection>& connection : connections) {
    if (connection->reader.joinable()) connection->reader.join();
  }

  pool_.reset();  // drains any remaining (already answered) tasks
  ::unlink(config_.socket_path.c_str());
}

}  // namespace jst::server
