file(REMOVE_RECURSE
  "libjst_interp.a"
)
