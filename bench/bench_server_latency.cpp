// Serving-path latency under sustained load (DESIGN.md §13).
//
// Starts an in-process jstraced Server on a Unix socket, drives it with
// the closed-loop client load generator at increasing concurrency, and
// reports client-observed p50/p99 round-trip latency, achieved QPS, and
// shed rate per configuration. A final overload configuration (slow
// service floor, tiny queue, tight deadline) demonstrates admission
// control shedding instead of queueing to a timeout.
//
// Emits BENCH_server_latency.json (see bench_common.h) so the serving
// latency trajectory is recorded across PRs alongside the batch numbers.
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"
#include "support/strings.h"

int main() {
  using namespace jst;

  bench::print_header("Serving-path latency: jstraced-server round trips",
                      "service API (DESIGN.md §13); no paper counterpart");

  const std::string socket_path =
      "/tmp/jstraced_bench_" + std::to_string(::getpid()) + ".sock";
  const analysis::AnalyzerService service(bench::analyzer());

  // Request bodies: simulated Alexa-population scripts, the same
  // distribution the batch benches analyze.
  const auto samples = analysis::simulate_population(
      analysis::alexa_spec(), bench::scaled(48),
      strings::fnv1a("bench_server_latency"));
  std::vector<std::string> sources;
  sources.reserve(samples.size());
  for (const analysis::Sample& sample : samples) {
    sources.push_back(sample.source);
  }

  std::vector<bench::BenchRecord> records;

  // --- sustained load at increasing concurrency --------------------------
  {
    server::ServerConfig config;
    config.socket_path = socket_path;
    config.workers = 2;
    server::Server daemon(service, config);
    daemon.start();

    for (const std::size_t connections : {1, 2, 4, 8}) {
      server::LoadOptions load;
      load.connections = connections;
      load.requests_per_connection = bench::scaled(64);
      load.detail = analysis::OutputDetail::kStatus;
      load.sources = sources;
      const server::LoadReport report =
          server::run_load(socket_path, load);

      bench::BenchRecord record;
      record.config = "connections=" + std::to_string(connections);
      record.threads = daemon.workers();
      record.scripts = report.sent;
      record.wall_ms = report.wall_ms;
      record.scripts_per_second = report.achieved_qps;
      record.latency_p50_ms = report.latency_p50_ms;
      record.latency_p95_ms = report.latency_p95_ms;
      record.latency_p99_ms = report.latency_p99_ms;
      record.shed_rate = report.shed_rate();
      record.offered_qps = report.achieved_qps;
      // Server-side recent-window snapshot (queue depth, windowed p95,
      // slowest exemplars) rides along with the client-observed numbers.
      record.stats_json = daemon.stats_json();
      records.push_back(record);

      std::printf(
          "  %-16s p50 %8.2f ms  p99 %8.2f ms  %8.1f req/s  shed %5.1f%%  "
          "transport errors %llu\n",
          record.config.c_str(), report.latency_p50_ms, report.latency_p99_ms,
          report.achieved_qps, 100.0 * report.shed_rate(),
          static_cast<unsigned long long>(report.transport_errors));
    }
    daemon.shutdown();
  }

  // --- overload: offered rate beyond capacity ----------------------------
  // One slow worker (5 ms service floor), a 4-deep admission cap, and a
  // 25 ms deadline: eight closed-loop clients offer far more than one
  // lane serves, so admission control must shed — the row documents that
  // overload answers with kOverloaded instead of unbounded queueing.
  {
    server::ServerConfig config;
    config.socket_path = socket_path;
    config.workers = 1;
    config.max_queue_depth = 4;
    config.min_service_ms = 5.0;
    server::Server daemon(service, config);
    daemon.start();

    server::LoadOptions load;
    load.connections = 8;
    load.requests_per_connection = bench::scaled(32);
    load.deadline_ms = 25.0;
    load.detail = analysis::OutputDetail::kStatus;
    load.sources = sources;
    const server::LoadReport report = server::run_load(socket_path, load);

    bench::BenchRecord record;
    record.config = "overload(workers=1,depth=4,deadline=25ms)";
    record.threads = daemon.workers();
    record.scripts = report.sent;
    record.wall_ms = report.wall_ms;
    record.scripts_per_second = report.achieved_qps;
    record.latency_p50_ms = report.latency_p50_ms;
    record.latency_p95_ms = report.latency_p95_ms;
    record.latency_p99_ms = report.latency_p99_ms;
    record.shed_rate = report.shed_rate();
    record.offered_qps = report.achieved_qps;
    record.stats_json = daemon.stats_json();
    records.push_back(record);

    std::printf(
        "  %-16s p50 %8.2f ms  p99 %8.2f ms  %8.1f req/s  shed %5.1f%%\n",
        "overload", report.latency_p50_ms, report.latency_p99_ms,
        report.achieved_qps, 100.0 * report.shed_rate());
    bench::print_note(
        "overload row: shed rate > 0 is the design working — arrivals the "
        "deadline cannot absorb are answered kOverloaded immediately");
    daemon.shutdown();
  }

  bench::write_bench_json("server_latency", records);
  bench::print_footer();
  return 0;
}
