# Empty dependencies file for jst_features.
# This may be replaced when dependencies are built.
