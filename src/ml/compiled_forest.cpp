#include "ml/compiled_forest.h"

#include <algorithm>
#include <numeric>

#include "support/error.h"

namespace jst::ml {

CompiledForest CompiledForest::compile(const RandomForest& forest) {
  if (!forest.trained()) {
    throw ModelError("CompiledForest::compile: forest not trained");
  }
  CompiledForest out;
  out.feature_count_ = forest.feature_count();

  std::size_t total_nodes = 0;
  for (const DecisionTree& tree : forest.trees()) {
    total_nodes += tree.node_count();
  }
  out.feature_.reserve(total_nodes);
  out.threshold_.reserve(total_nodes);
  out.left_.reserve(total_nodes);
  out.right_.reserve(total_nodes);
  out.leaf_value_.reserve(total_nodes);
  out.roots_.reserve(forest.tree_count());

  for (const DecisionTree& tree : forest.trees()) {
    const std::span<const DecisionTree::TreeNode> nodes = tree.nodes();
    if (nodes.empty()) {
      throw ModelError("CompiledForest::compile: empty tree");
    }
    // The compact table stores feature indices and child offsets as
    // int16. Tree-local indices stay below nodes.size(), so offsets fit
    // whenever the tree has at most 32768 nodes; jstraced-trained trees
    // are orders of magnitude below either bound. Foreign models that
    // exceed it are rejected (callers fall back to the reference path).
    if (nodes.size() > 32768) {
      throw ModelError(
          "CompiledForest::compile: tree too large for compact node table");
    }
    const auto base = static_cast<std::int32_t>(out.feature_.size());
    out.roots_.push_back(static_cast<std::uint32_t>(base));
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const DecisionTree::TreeNode& node = nodes[i];
      const auto self = static_cast<std::int32_t>(i);
      if (node.feature > 32767) {
        throw ModelError(
            "CompiledForest::compile: feature index exceeds compact layout");
      }
      out.feature_.push_back(
          node.feature >= 0 ? static_cast<std::int16_t>(node.feature)
                            : std::int16_t{-1});
      out.threshold_.push_back(node.threshold);
      // Children are stored as offsets relative to the node itself; the
      // source indices are tree-local, so self-relative offsets survive
      // the concatenation unchanged. Leaves keep 0 (never followed).
      out.left_.push_back(
          node.feature >= 0 ? static_cast<std::int16_t>(node.left - self)
                            : std::int16_t{0});
      out.right_.push_back(
          node.feature >= 0 ? static_cast<std::int16_t>(node.right - self)
                            : std::int16_t{0});
      out.leaf_value_.push_back(node.value);
    }
  }
  return out;
}

double CompiledForest::predict_tree(std::uint32_t root,
                                    std::span<const float> row) const {
  const std::int16_t* feature = feature_.data();
  const float* threshold = threshold_.data();
  const std::int16_t* left = left_.data();
  const std::int16_t* right = right_.data();
  std::uint32_t index = root;
  std::int32_t f = feature[index];
  while (f >= 0) {
    const std::int32_t offset =
        row[static_cast<std::size_t>(f)] <= threshold[index] ? left[index]
                                                             : right[index];
    index += static_cast<std::uint32_t>(offset);
    f = feature[index];
  }
  return static_cast<double>(leaf_value_[index]);
}

double CompiledForest::predict_proba(std::span<const float> row) const {
  if (roots_.empty()) {
    throw ModelError("CompiledForest::predict before compile");
  }
  double total = 0.0;
  for (const std::uint32_t root : roots_) total += predict_tree(root, row);
  return total / static_cast<double>(roots_.size());
}

void CompiledForest::predict_batch(const Matrix& data,
                                   std::span<double> out) const {
  if (roots_.empty()) {
    throw ModelError("CompiledForest::predict before compile");
  }
  const std::size_t row_count = data.row_count();
  if (out.size() != row_count) {
    throw ModelError("CompiledForest::predict_batch: output size mismatch");
  }
  std::fill(out.begin(), out.end(), 0.0);
  // Tree blocks outermost: a block's node table stays cache-resident
  // while every row streams through it. Within a row the trees of a block
  // are visited in ascending order, and blocks advance in ascending
  // order, so each row accumulates leaf values in exactly the tree order
  // of the per-row path — keeping the double sum bit-identical.
  for (std::size_t block = 0; block < roots_.size(); block += kTreeBlock) {
    const std::size_t block_end = std::min(block + kTreeBlock, roots_.size());
    for (std::size_t i = 0; i < row_count; ++i) {
      const std::span<const float> row = (*data.rows)[i];
      double total = out[i];
      for (std::size_t t = block; t < block_end; ++t) {
        total += predict_tree(roots_[t], row);
      }
      out[i] = total;
    }
  }
  const double scale_count = static_cast<double>(roots_.size());
  for (double& value : out) value /= scale_count;
}

CompiledEnsemble CompiledEnsemble::compile(
    const MultiLabelClassifier& classifier) {
  if (classifier.label_count() == 0) {
    throw ModelError("CompiledEnsemble::compile: classifier not trained");
  }
  CompiledEnsemble out;
  out.chained_ = classifier.chained();
  out.chain_threshold_ = classifier.chain_threshold();
  const std::span<const RandomForest> forests = classifier.forests();
  out.forests_.reserve(forests.size());
  for (const RandomForest& forest : forests) {
    out.forests_.push_back(CompiledForest::compile(forest));
  }
  return out;
}

void CompiledEnsemble::predict_proba(std::span<const float> row,
                                     PredictScratch& scratch,
                                     std::vector<double>& out) const {
  if (forests_.empty()) {
    throw ModelError("CompiledEnsemble::predict before compile");
  }
  out.resize(forests_.size());
  if (!chained_) {
    for (std::size_t j = 0; j < forests_.size(); ++j) {
      out[j] = forests_[j].predict_proba(row);
    }
    return;
  }
  // Chain rule: position j sees the thresholded predictions of positions
  // [0, j-1] appended to the row — same bits ClassifierChain pushes.
  scratch.extended.assign(row.begin(), row.end());
  for (std::size_t j = 0; j < forests_.size(); ++j) {
    out[j] = forests_[j].predict_proba(scratch.extended);
    if (j + 1 < forests_.size()) {
      scratch.extended.push_back(out[j] >= chain_threshold_ ? 1.0f : 0.0f);
    }
  }
}

std::vector<double> CompiledEnsemble::predict_proba(
    std::span<const float> row) const {
  PredictScratch scratch;
  std::vector<double> out;
  predict_proba(row, scratch, out);
  return out;
}

void CompiledEnsemble::rank_labels(PredictScratch& scratch) const {
  const std::vector<double>& probabilities = scratch.proba;
  scratch.order.resize(probabilities.size());
  std::iota(scratch.order.begin(), scratch.order.end(), std::size_t{0});
  std::stable_sort(scratch.order.begin(), scratch.order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return probabilities[a] > probabilities[b];
                   });
}

void CompiledEnsemble::predict_set(std::span<const float> row, double threshold,
                                   PredictScratch& scratch,
                                   std::vector<std::size_t>& out) const {
  predict_proba(row, scratch, scratch.proba);
  out.clear();
  for (std::size_t i = 0; i < scratch.proba.size(); ++i) {
    if (scratch.proba[i] >= threshold) out.push_back(i);
  }
}

void CompiledEnsemble::predict_topk(std::span<const float> row, std::size_t k,
                                    PredictScratch& scratch,
                                    std::vector<std::size_t>& out) const {
  predict_proba(row, scratch, scratch.proba);
  rank_labels(scratch);
  const std::size_t take = std::min(k, scratch.order.size());
  out.assign(scratch.order.begin(),
             scratch.order.begin() + static_cast<std::ptrdiff_t>(take));
}

void CompiledEnsemble::predict_topk_thresholded(
    std::span<const float> row, std::size_t k, double threshold,
    PredictScratch& scratch, std::vector<std::size_t>& out) const {
  predict_proba(row, scratch, scratch.proba);
  rank_labels(scratch);
  out.clear();
  for (std::size_t i = 0; i < scratch.order.size() && out.size() < k; ++i) {
    const std::size_t label = scratch.order[i];
    if (scratch.proba[label] >= threshold) out.push_back(label);
  }
}

}  // namespace jst::ml
