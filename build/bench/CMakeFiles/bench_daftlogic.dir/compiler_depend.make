# Empty compiler generated dependencies file for bench_daftlogic.
# This may be replaced when dependencies are built.
