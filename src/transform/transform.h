// Source-to-source transformation tools (§II-B).
//
// Each of the ten monitored techniques is implemented as a configurable
// transformer, standing in for obfuscator.io / JSFuck / gnirts /
// custom-encoding / javascript-minifier / Google Closure. A Dean Edwards
// style packer (the Daft Logic obfuscator's engine) is provided separately
// as the "unseen tool" for the §III-E3 generalization experiment.
//
// `labels_produced()` mirrors the paper's observation that some tools
// always perform a technique in combination with others, giving single
// configurations up to three ground-truth labels.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.h"
#include "transform/technique.h"

namespace jst::transform {

// Applies a single technique. Throws ParseError if `source` fails to parse.
std::string apply_technique(Technique technique, std::string_view source,
                            Rng& rng);

// Applies techniques sequentially (the mixed-configuration generator of
// §III-E2).
std::string apply_techniques(std::span<const Technique> techniques,
                             std::string_view source, Rng& rng);

// Ground-truth labels a single configuration of the technique carries
// (primary label first).
std::vector<Technique> labels_produced(Technique technique);

// Individual transformers -----------------------------------------------

struct IdentifierObfuscationOptions {
  enum class Style {
    kAuto,   // pick one of the styles below at random per file
    kHex,    // _0x1a2b3c (obfuscator.io "hexadecimal")
    kShort,  // 1-2 random letters (packer-style)
    kAlnum,  // random alphanumeric of medium length
  };
  Style style = Style::kAuto;
};
std::string obfuscate_identifiers(
    std::string_view source, Rng& rng,
    const IdentifierObfuscationOptions& options = {});

struct StringObfuscationOptions {
  double split_probability = 0.5;     // split into concatenated chunks
  double hex_escape_probability = 0.4;  // force \xHH escapes
  double char_code_probability = 0.2;   // String.fromCharCode(...)
  std::size_t max_split_chunks = 4;
};
std::string obfuscate_strings(std::string_view source, Rng& rng,
                              const StringObfuscationOptions& options = {});

struct GlobalArrayOptions {
  std::size_t min_strings = 2;   // below this, leave the file unchanged
  bool encode_contents = true;   // hex-escape array entries (string obf)
  bool rotate = true;            // shift indices by a constant offset
};
std::string global_array_transform(std::string_view source, Rng& rng,
                                   const GlobalArrayOptions& options = {});

struct NoAlnumOptions {
  // Inputs longer than this are clipped before encoding: the output grows
  // ~150-1500x (JSFuck files in the wild are megabytes for small inputs),
  // so the default keeps generated datasets tractable while preserving
  // the technique's syntactic shape end-to-end.
  std::size_t max_source_bytes = 256;
};
std::string no_alnum_transform(std::string_view source,
                               const NoAlnumOptions& options = {});

struct DeadCodeOptions {
  double injection_rate = 0.35;  // expected injections per statement slot
  std::size_t max_injections = 200;
};
std::string inject_dead_code(std::string_view source, Rng& rng,
                             const DeadCodeOptions& options = {});

struct FlattenOptions {
  std::size_t min_statements = 3;  // only flatten lists at least this long
};
std::string flatten_control_flow(std::string_view source, Rng& rng,
                                 const FlattenOptions& options = {});

std::string add_self_defending(std::string_view source, Rng& rng);
std::string add_debug_protection(std::string_view source, Rng& rng);

struct MinifyOptions {
  bool rename_locals = true;
  bool advanced = false;  // constant folding, if->ternary, !0/!1, void 0
  std::size_t line_limit = 800;  // wrap long minified lines
};
std::string minify(std::string_view source, const MinifyOptions& options = {});

// --- unmonitored techniques (§II-A) -------------------------------------
// Not among the ten level-2 classes; they exist to validate the paper's
// claim that level 1 still flags such samples as transformed (§II-C).

// a.b -> a["b"] for a fraction of dot accesses.
std::string obfuscate_field_references(std::string_view source, Rng& rng,
                                       double rewrite_probability = 0.9);
// Integer literals -> equivalent arithmetic expressions.
std::string obfuscate_integers(std::string_view source, Rng& rng,
                               double rewrite_probability = 0.85);

// Dean Edwards p.a.c.k.e.r-style packing (base-62 keyword substitution
// wrapped in an eval(function(p,a,c,k,e,d){...}) bootstrap).
std::string pack(std::string_view source, Rng& rng);

// Labels the packer carries (cf. §III-E3: minification advanced and
// simple, identifier obfuscation, string obfuscation).
std::vector<Technique> packer_labels();

}  // namespace jst::transform
