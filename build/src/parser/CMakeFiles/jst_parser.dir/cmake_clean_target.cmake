file(REMOVE_RECURSE
  "libjst_parser.a"
)
