#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/request_context.h"
#include "obs/trace.h"

namespace jst::obs {
namespace {

void copy_token(char (&dst)[17], std::string_view src) {
  const std::size_t n = src.size() < 16 ? src.size() : 16;
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

std::string format_number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void append_event_json(std::string& out, const FlightEvent& event) {
  out += "{\"ts_us\":" + format_number(event.ts_us);
  out += ",\"tid\":" + std::to_string(event.tid);
  out += ",\"kind\":\"";
  out += flight_event_kind_name(event.kind);
  out += '"';
  if (event.rid[0] != '\0') {
    out += ",\"rid\":\"";
    out += event.rid;
    out += '"';
  }
  if (event.key[0] != '\0') {
    out += ",\"key\":\"";
    out += event.key;
    out += '"';
  }
  if (event.label != nullptr) {
    out += ",\"label\":\"";
    out += event.label;
    out += '"';
  }
  out += ",\"a\":" + format_number(event.a);
  out += ",\"b\":" + format_number(event.b);
  out += ",\"c\":" + format_number(event.c);
  out += "}\n";
}

}  // namespace

const char* flight_event_kind_name(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kAdmit: return "admit";
    case FlightEventKind::kShed: return "shed";
    case FlightEventKind::kPickup: return "pickup";
    case FlightEventKind::kRespond: return "respond";
    case FlightEventKind::kBudgetTrip: return "budget_trip";
    case FlightEventKind::kStage: return "stage";
    case FlightEventKind::kSlowExemplar: return "slow_exemplar";
  }
  return "unknown";
}

namespace {
std::atomic<std::uint64_t> g_next_recorder_id{1};
}  // namespace

FlightRecorder::FlightRecorder()
    : instance_id_(
          g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder::Ring& FlightRecorder::local_ring() {
  // One ring per (thread, recorder) pair: the cache is keyed by the
  // recorder's unique id, not a bare thread_local pointer, so a second
  // recorder instance never records into a ring registered elsewhere.
  struct Slot {
    std::uint64_t recorder_id;
    Ring* ring;
  };
  thread_local std::vector<Slot> slots;
  for (const Slot& slot : slots) {
    if (slot.recorder_id == instance_id_) return *slot.ring;
  }
  auto* fresh = new Ring();  // never freed; outlives the thread
  fresh->tid = trace_thread_id();
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings_.push_back(fresh);
  }
  slots.push_back(Slot{instance_id_, fresh});
  return *fresh;
}

void FlightRecorder::record(FlightEventKind kind, std::string_view rid,
                            std::string_view key, const char* label,
                            double a, double b, double c) {
  if (!enabled()) return;
  Ring& ring = local_ring();
  FlightEvent event;
  event.ts_us = trace_now_us();
  event.tid = ring.tid;
  event.kind = kind;
  copy_token(event.rid, rid.empty() ? current_request_id() : rid);
  copy_token(event.key, key);
  event.label = label;
  event.a = a;
  event.b = b;
  event.c = c;
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.events[ring.head % kRingCapacity] = event;
  ++ring.head;
}

std::vector<FlightEvent> FlightRecorder::collect_sorted() const {
  std::vector<FlightEvent> events;
  {
    std::lock_guard<std::mutex> rings_lock(rings_mutex_);
    for (Ring* ring : rings_) {
      std::lock_guard<std::mutex> lock(ring->mutex);
      const std::uint64_t live =
          ring->head < kRingCapacity ? ring->head : kRingCapacity;
      const std::uint64_t start = ring->head - live;
      for (std::uint64_t i = start; i < ring->head; ++i) {
        events.push_back(ring->events[i % kRingCapacity]);
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& lhs, const FlightEvent& rhs) {
                     return lhs.ts_us < rhs.ts_us;
                   });
  return events;
}

std::string FlightRecorder::dump_ndjson() const {
  const std::vector<FlightEvent> events = collect_sorted();
  std::string out;
  out.reserve(events.size() * 96);
  for (const FlightEvent& event : events) append_event_json(out, event);
  return out;
}

std::string FlightRecorder::dump_json_array() const {
  const std::vector<FlightEvent> events = collect_sorted();
  std::string out = "[";
  out.reserve(events.size() * 96 + 2);
  bool first = true;
  for (const FlightEvent& event : events) {
    if (!first) out += ',';
    first = false;
    append_event_json(out, event);
    out.pop_back();  // the newline append_event_json terminates with
  }
  out += ']';
  return out;
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << dump_ndjson();
  return static_cast<bool>(out);
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  for (Ring* ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    ring->head = 0;
  }
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never freed
  return *recorder;
}

void flight_record(FlightEventKind kind, std::string_view key,
                   const char* label, double a, double b, double c) {
  FlightRecorder::global().record(kind, current_request_id(), key, label, a,
                                  b, c);
}

SlowExemplars::SlowExemplars(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool SlowExemplars::offer(std::string_view source_hash, std::string_view rid,
                          double service_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    if (entry.source_hash == source_hash) {
      if (service_ms > entry.service_ms) {
        entry.service_ms = service_ms;
        entry.rid = std::string(rid);
        return true;
      }
      return false;
    }
  }
  if (entries_.size() < capacity_) {
    entries_.push_back(Entry{std::string(source_hash), std::string(rid),
                             service_ms});
    return true;
  }
  auto slowest_floor = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& lhs, const Entry& rhs) {
        return lhs.service_ms < rhs.service_ms;
      });
  if (service_ms > slowest_floor->service_ms) {
    *slowest_floor = Entry{std::string(source_hash), std::string(rid),
                           service_ms};
    return true;
  }
  return false;
}

std::vector<SlowExemplars::Entry> SlowExemplars::snapshot() const {
  std::vector<Entry> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(), [](const Entry& lhs, const Entry& rhs) {
    return lhs.service_ms > rhs.service_ms;
  });
  return out;
}

std::string SlowExemplars::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const Entry& entry : snapshot()) {
    if (!first) out += ',';
    first = false;
    out += "{\"source_hash\":\"" + entry.source_hash + "\"";
    out += ",\"rid\":\"" + entry.rid + "\"";
    out += ",\"service_ms\":" + format_number(entry.service_ms) + "}";
  }
  out += ']';
  return out;
}

}  // namespace jst::obs
