#include "support/stats.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace jst::stats {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
  if (values.empty()) return 0.0;
  const double m = mean(values);
  double total = 0.0;
  for (double v : values) total += (v - m) * (v - m);
  return total / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) {
  return std::sqrt(variance(values));
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double fraction = rank - static_cast<double>(lo);
  return sorted[lo] + fraction * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) { return percentile(values, 50); }

double min(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max(std::span<const double> values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double relative_stddev_percent(std::span<const double> values) {
  const double m = mean(values);
  if (m == 0.0) return 0.0;
  return 100.0 * stddev(values) / m;
}

double byte_entropy(std::span<const unsigned char> data) {
  if (data.empty()) return 0.0;
  std::array<std::size_t, 256> counts{};
  for (unsigned char byte : data) ++counts[byte];
  double entropy = 0.0;
  const auto total = static_cast<double>(data.size());
  for (std::size_t count : counts) {
    if (count == 0) continue;
    const double p = static_cast<double>(count) / total;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

void Accumulator::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Accumulator::variance() const {
  if (count_ == 0) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace jst::stats
