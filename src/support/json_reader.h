// Minimal recursive-descent JSON parser producing a small immutable DOM.
//
// The daemon's request path (DESIGN.md §13) speaks newline-delimited JSON
// over a Unix socket, so the repo needs a reader to mirror JsonWriter.
// Scope is deliberately small: strict RFC 8259 structure, doubles for all
// numbers, UTF-8 passed through verbatim, \uXXXX decoded for the BMP
// (surrogate pairs are rejected — request payloads are JS source, which
// the wire layer ships as plain UTF-8 strings). Parsing never throws:
// failures surface as a std::nullopt plus a position-carrying error
// string, which the server echoes back in kInvalidRequest responses.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jst::support {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; the value-returning forms default on kind mismatch so
  // callers can express "field absent or wrong type" in one expression.
  bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double as_number(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  const std::string& as_string() const;  // empty string on mismatch
  const std::vector<JsonValue>& as_array() const;    // empty on mismatch
  const std::map<std::string, JsonValue>& as_object() const;

  // Object member lookup; nullptr when this is not an object or the key is
  // absent (JSON null members return a non-null pointer to a null value).
  const JsonValue* find(std::string_view key) const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool value);
  static JsonValue make_number(double value);
  static JsonValue make_string(std::string value);
  static JsonValue make_array(std::vector<JsonValue> values);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Parses one complete JSON document (leading/trailing whitespace allowed,
// trailing garbage rejected). On failure returns std::nullopt and, when
// `error` is non-null, stores "offset N: reason".
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

// Serializes a DOM back to one compact JSON document. Semantically a
// parse inverse — parse_json(to_json(v)) reproduces v — though not a
// byte inverse: object members emit in the DOM's (sorted) key order,
// numbers in shortest-round-trip decimal, and the ±infinity that
// overflowing literals saturate to re-emits as ±1e999 (the idiom the
// metrics registry uses for unbounded bucket edges). This is how callers
// should extract an embedded sub-object from an envelope they parsed —
// never by substring arithmetic on the original text.
std::string to_json(const JsonValue& value);

}  // namespace jst::support
