file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_longitudinal_npm.dir/bench_fig8_longitudinal_npm.cpp.o"
  "CMakeFiles/bench_fig8_longitudinal_npm.dir/bench_fig8_longitudinal_npm.cpp.o.d"
  "bench_fig8_longitudinal_npm"
  "bench_fig8_longitudinal_npm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_longitudinal_npm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
