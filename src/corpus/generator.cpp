#include "corpus/generator.h"

#include <algorithm>

#include "codegen/codegen.h"
#include "corpus/vocab.h"
#include "support/strings.h"

namespace jst::corpus {

ProgramGenerator::ProgramGenerator(std::uint64_t seed) : rng_(seed) {}

void ProgramGenerator::push_scope() { scopes_.emplace_back(); }

void ProgramGenerator::pop_scope() { scopes_.pop_back(); }

std::string ProgramGenerator::declare(std::size_t name_words) {
  std::string name = camel_identifier(rng_, name_words);
  scopes_.back().push_back(name);
  return name;
}

bool ProgramGenerator::has_variables() const {
  for (const auto& scope : scopes_) {
    if (!scope.empty()) return true;
  }
  return false;
}

std::string ProgramGenerator::random_variable() {
  std::vector<const std::string*> visible;
  for (const auto& scope : scopes_) {
    for (const std::string& name : scope) visible.push_back(&name);
  }
  if (visible.empty() || rng_.bernoulli(0.12)) {
    return std::string(rng_.choice(global_names()));
  }
  return *visible[rng_.index(visible.size())];
}

// --- expressions -----------------------------------------------------

Node* ProgramGenerator::gen_string_literal() {
  switch (rng_.index(4)) {
    case 0: return ast_->make_string(std::string(rng_.choice(string_pool())));
    case 1: return ast_->make_string(std::string(rng_.choice(url_pool())));
    case 2: return ast_->make_string(camel_identifier(rng_, 1));
    default: {
      std::string sentence(rng_.choice(string_pool()));
      sentence += " ";
      sentence += rng_.choice(string_pool());
      return ast_->make_string(sentence);
    }
  }
}

Node* ProgramGenerator::gen_literal() {
  switch (rng_.index(8)) {
    case 0: case 1: case 2:
      return gen_string_literal();
    case 3:
      return ast_->make_number(static_cast<double>(rng_.uniform_int(0, 100)));
    case 4:
      return ast_->make_number(static_cast<double>(rng_.uniform_int(0, 10000)));
    case 5: {
      Node* literal = ast_->make_number(rng_.uniform(0.0, 10.0));
      literal->raw = ast_->intern(strings::format_double(literal->num_value, 3));
      return literal;
    }
    case 6:
      return ast_->make_bool(rng_.bernoulli(0.5));
    default:
      return rng_.bernoulli(0.5) ? ast_->make_null()
                                 : ast_->make_number(1.0);
  }
}

Node* ProgramGenerator::gen_reference() {
  return ast_->make_identifier(random_variable());
}

Node* ProgramGenerator::gen_member(int depth) {
  Node* base = rng_.bernoulli(0.75)
                   ? gen_reference()
                   : (depth > 0 ? gen_call(depth - 1) : gen_reference());
  const std::size_t links = 1 + rng_.index(2);
  for (std::size_t i = 0; i < links; ++i) {
    Node* member = ast_->make(NodeKind::kMemberExpression);
    if (rng_.bernoulli(0.07)) {
      member->flag_a = true;  // occasional bracket access in regular code
      Node* key = rng_.bernoulli(0.5)
                      ? static_cast<Node*>(ast_->make_string(
                            std::string(rng_.choice(property_names()))))
                      : ast_->make_number(
                            static_cast<double>(rng_.uniform_int(0, 4)));
      member->kids = {base, key};
    } else {
      member->kids = {base, ast_->make_identifier(std::string(
                                rng_.choice(property_names())))};
    }
    base = member;
  }
  return base;
}

Node* ProgramGenerator::gen_call(int depth) {
  Node* call = ast_->make(NodeKind::kCallExpression);
  Node* callee = nullptr;
  if (rng_.bernoulli(0.7)) {
    // method call obj.method(...)
    Node* member = ast_->make(NodeKind::kMemberExpression);
    member->kids = {gen_reference(), ast_->make_identifier(std::string(
                                         rng_.choice(method_names())))};
    callee = member;
  } else {
    callee = gen_reference();
  }
  call->kids = {callee};
  const std::size_t argument_count = rng_.index(3);
  for (std::size_t i = 0; i < argument_count; ++i) {
    call->kids.push_back(depth > 0 ? gen_expression(depth - 1)
                                   : gen_literal());
  }
  return call;
}

Node* ProgramGenerator::gen_binary(int depth) {
  static constexpr std::string_view kOps[] = {
      "+", "+", "-", "*", "===", "!==", "<", ">", "<=", ">=", "&&", "||",
  };
  const std::string op(kOps[rng_.index(std::size(kOps))]);
  Node* node = ast_->make(op == "&&" || op == "||"
                              ? NodeKind::kLogicalExpression
                              : NodeKind::kBinaryExpression);
  node->str_value = ast_->intern(op);
  Node* left = depth > 0 ? gen_expression(depth - 1) : gen_reference();
  Node* right = depth > 0 ? gen_expression(depth - 1) : gen_literal();
  node->kids = {left, right};
  return node;
}

Node* ProgramGenerator::gen_object_literal(int depth) {
  Node* object = ast_->make(NodeKind::kObjectExpression);
  const std::size_t property_count = 1 + rng_.index(5);
  for (std::size_t i = 0; i < property_count; ++i) {
    Node* property = ast_->make(NodeKind::kProperty);
    property->str_value = "init";
    Node* key = ast_->make_identifier(
        std::string(rng_.choice(property_names())));
    Node* value = depth > 0 ? gen_expression(depth - 1) : gen_literal();
    property->kids = {key, value};
    object->kids.push_back(property);
  }
  return object;
}

Node* ProgramGenerator::gen_array_literal(int depth) {
  Node* array = ast_->make(NodeKind::kArrayExpression);
  const std::size_t element_count = rng_.index(6);
  for (std::size_t i = 0; i < element_count; ++i) {
    array->kids.push_back(depth > 0 && rng_.bernoulli(0.3)
                              ? gen_expression(depth - 1)
                              : gen_literal());
  }
  return array;
}

Node* ProgramGenerator::gen_function_expression(int depth, bool arrow) {
  push_scope();
  std::vector<Node*> params;
  const std::size_t param_count = rng_.index(3);
  for (std::size_t i = 0; i < param_count; ++i) {
    params.push_back(ast_->make_identifier(declare(1)));
  }
  Node* node = nullptr;
  if (arrow) {
    node = ast_->make(NodeKind::kArrowFunctionExpression);
    if (rng_.bernoulli(0.45)) {
      node->flag_a = true;  // expression body
      node->kids = {depth > 0 ? gen_expression(depth - 1) : gen_literal()};
    } else {
      node->kids = {gen_block(depth, /*inside_function=*/true, 1, 3)};
    }
    for (Node* param : params) node->kids.push_back(param);
  } else {
    node = ast_->make(NodeKind::kFunctionExpression);
    node->kids = {nullptr, gen_block(depth, /*inside_function=*/true, 1, 4)};
    for (Node* param : params) node->kids.push_back(param);
  }
  pop_scope();
  return node;
}

Node* ProgramGenerator::gen_template_literal(int depth) {
  Node* node = ast_->make(NodeKind::kTemplateLiteral);
  Node* head = ast_->make(NodeKind::kTemplateElement);
  head->str_value =
      ast_->intern(std::string(rng_.choice(string_pool())) + " ");
  Node* tail = ast_->make(NodeKind::kTemplateElement);
  tail->str_value = rng_.bernoulli(0.5)
                        ? ast_->intern(std::string(" ") +
                                       std::string(rng_.choice(string_pool())))
                        : std::string_view();
  node->kids = {head, depth > 0 ? gen_expression(depth - 1) : gen_reference(),
                tail};
  return node;
}

Node* ProgramGenerator::gen_expression(int depth) {
  switch (rng_.index(12)) {
    case 0: case 1:
      return gen_literal();
    case 2: case 3:
      return gen_reference();
    case 4: case 5:
      return gen_member(depth);
    case 6: case 7:
      return gen_call(depth);
    case 8:
      return gen_binary(depth);
    case 9:
      return rng_.bernoulli(0.5) ? gen_object_literal(depth)
                                 : gen_array_literal(depth);
    case 10:
      if (rng_.bernoulli(0.35) && depth > 0) {
        Node* ternary = ast_->make(NodeKind::kConditionalExpression);
        ternary->kids = {gen_binary(depth - 1), gen_expression(depth - 1),
                         gen_literal()};
        return ternary;
      }
      return gen_function_expression(std::max(depth - 1, 0),
                                     rng_.bernoulli(0.5));
    default:
      if (rng_.bernoulli(0.2)) return gen_template_literal(depth);
      if (rng_.bernoulli(0.1)) {
        return ast_->make_regex("^[a-z]+$", rng_.bernoulli(0.5) ? "i" : "");
      }
      return gen_call(depth);
  }
}

// --- statements ------------------------------------------------------

Node* ProgramGenerator::gen_declaration(int depth) {
  Node* declaration = ast_->make(NodeKind::kVariableDeclaration);
  switch (rng_.index(3)) {
    case 0: declaration->str_value = "var"; break;
    case 1: declaration->str_value = "let"; break;
    default: declaration->str_value = "const"; break;
  }
  const std::size_t declarator_count = rng_.bernoulli(0.85) ? 1 : 2;
  const bool is_const = declaration->str_value == "const";
  for (std::size_t i = 0; i < declarator_count; ++i) {
    Node* declarator = ast_->make(NodeKind::kVariableDeclarator);
    // Generate the initializer before declaring the name so it cannot
    // reference itself; const always gets one.
    Node* init = (is_const || rng_.bernoulli(0.9)) ? gen_expression(depth)
                                                   : nullptr;
    Node* id = ast_->make_identifier(declare());
    declarator->kids = {id, init};
    declaration->kids.push_back(declarator);
  }
  return declaration;
}

Node* ProgramGenerator::gen_block(int depth, bool inside_function,
                                  std::size_t min_statements,
                                  std::size_t max_statements) {
  push_scope();
  Node* block = ast_->make(NodeKind::kBlockStatement);
  const std::size_t count =
      min_statements + rng_.index(max_statements - min_statements + 1);
  for (std::size_t i = 0; i < count; ++i) {
    block->kids.push_back(gen_statement(depth - 1, inside_function));
  }
  if (inside_function && rng_.bernoulli(0.4)) {
    Node* return_statement = ast_->make(NodeKind::kReturnStatement);
    return_statement->kids = {rng_.bernoulli(0.8)
                                  ? gen_expression(std::max(depth - 1, 0))
                                  : nullptr};
    block->kids.push_back(return_statement);
  }
  pop_scope();
  return block;
}

Node* ProgramGenerator::gen_if(int depth, bool inside_function) {
  Node* node = ast_->make(NodeKind::kIfStatement);
  Node* test = gen_binary(std::max(depth - 1, 0));
  Node* consequent = gen_block(depth, inside_function, 1, 3);
  Node* alternate = nullptr;
  if (rng_.bernoulli(0.4)) {
    alternate = rng_.bernoulli(0.25)
                    ? gen_if(std::max(depth - 1, 0), inside_function)
                    : gen_block(depth, inside_function, 1, 2);
  }
  node->kids = {test, consequent, alternate};
  return node;
}

Node* ProgramGenerator::gen_for(int depth, bool inside_function) {
  push_scope();
  // for (var i = 0; i < list.length; i++) { ... }
  const std::string counter = rng_.bernoulli(0.7) ? "i" : declare(1);
  scopes_.back().push_back(counter);
  Node* init_declarator = ast_->make(NodeKind::kVariableDeclarator);
  init_declarator->kids = {ast_->make_identifier(counter),
                           ast_->make_number(0.0)};
  Node* init = ast_->make(NodeKind::kVariableDeclaration);
  init->str_value = rng_.bernoulli(0.6) ? "var" : "let";
  init->kids = {init_declarator};

  Node* limit = ast_->make(NodeKind::kMemberExpression);
  limit->kids = {gen_reference(), ast_->make_identifier("length")};
  Node* test = ast_->make(NodeKind::kBinaryExpression);
  test->str_value = "<";
  test->kids = {ast_->make_identifier(counter), limit};

  Node* update = ast_->make(NodeKind::kUpdateExpression);
  update->str_value = "++";
  update->flag_a = false;
  update->kids = {ast_->make_identifier(counter)};

  Node* node = ast_->make(NodeKind::kForStatement);
  node->kids = {init, test, update, gen_block(depth, inside_function, 1, 3)};
  pop_scope();
  return node;
}

Node* ProgramGenerator::gen_for_of(int depth, bool inside_function) {
  push_scope();
  Node* left_declarator = ast_->make(NodeKind::kVariableDeclarator);
  left_declarator->kids = {ast_->make_identifier(declare(1)), nullptr};
  Node* left = ast_->make(NodeKind::kVariableDeclaration);
  left->str_value = rng_.bernoulli(0.5) ? "const" : "let";
  left->kids = {left_declarator};
  Node* node = ast_->make(NodeKind::kForOfStatement);
  node->kids = {left, gen_reference(), gen_block(depth, inside_function, 1, 3)};
  pop_scope();
  return node;
}

Node* ProgramGenerator::gen_while(int depth, bool inside_function) {
  Node* node = ast_->make(NodeKind::kWhileStatement);
  node->kids = {gen_binary(std::max(depth - 1, 0)),
                gen_block(depth, inside_function, 1, 2)};
  return node;
}

Node* ProgramGenerator::gen_switch(int depth, bool inside_function) {
  Node* node = ast_->make(NodeKind::kSwitchStatement);
  node->kids = {gen_reference()};
  const std::size_t case_count = 2 + rng_.index(3);
  for (std::size_t i = 0; i < case_count; ++i) {
    Node* switch_case = ast_->make(NodeKind::kSwitchCase);
    switch_case->kids = {gen_string_literal()};
    switch_case->kids.push_back(gen_statement(depth - 1, inside_function));
    Node* break_statement = ast_->make(NodeKind::kBreakStatement);
    break_statement->kids = {nullptr};
    switch_case->kids.push_back(break_statement);
    node->kids.push_back(switch_case);
  }
  Node* default_case = ast_->make(NodeKind::kSwitchCase);
  default_case->kids = {nullptr};
  default_case->kids.push_back(gen_statement(depth - 1, inside_function));
  node->kids.push_back(default_case);
  return node;
}

Node* ProgramGenerator::gen_try(int depth, bool inside_function) {
  Node* node = ast_->make(NodeKind::kTryStatement);
  Node* block = gen_block(depth, inside_function, 1, 3);
  Node* handler = ast_->make(NodeKind::kCatchClause);
  push_scope();
  scopes_.back().push_back("err");
  handler->kids = {ast_->make_identifier("err"),
                   gen_block(depth, inside_function, 1, 2)};
  pop_scope();
  node->kids = {block, handler, nullptr};
  return node;
}

Node* ProgramGenerator::gen_function_declaration(int depth) {
  Node* node = ast_->make(NodeKind::kFunctionDeclaration);
  const std::string name = camel_identifier(rng_, 2);
  scopes_.back().push_back(name);
  push_scope();
  std::vector<Node*> params;
  const std::size_t param_count = rng_.index(4);
  for (std::size_t i = 0; i < param_count; ++i) {
    params.push_back(ast_->make_identifier(declare(1)));
  }
  Node* body = gen_block(depth, /*inside_function=*/true, 2, 6);
  pop_scope();
  node->kids = {ast_->make_identifier(name), body};
  for (Node* param : params) node->kids.push_back(param);
  return node;
}

Node* ProgramGenerator::gen_class_declaration(int depth) {
  Node* node = ast_->make(NodeKind::kClassDeclaration);
  const std::string name = pascal_identifier(rng_, 2);
  scopes_.back().push_back(name);
  Node* body = ast_->make(NodeKind::kClassBody);
  const std::size_t method_count = 1 + rng_.index(3);
  // Constructor.
  {
    Node* method = ast_->make(NodeKind::kMethodDefinition);
    method->str_value = "constructor";
    push_scope();
    Node* param = ast_->make_identifier(declare(1));
    Node* function = ast_->make(NodeKind::kFunctionExpression);
    // this.<prop> = param;
    Node* block = ast_->make(NodeKind::kBlockStatement);
    Node* member = ast_->make(NodeKind::kMemberExpression);
    member->kids = {ast_->make(NodeKind::kThisExpression),
                    ast_->make_identifier(std::string(
                        rng_.choice(property_names())))};
    Node* assignment = ast_->make(NodeKind::kAssignmentExpression);
    assignment->str_value = "=";
    assignment->kids = {member, ast_->make_identifier(param->str_value)};
    Node* statement = ast_->make(NodeKind::kExpressionStatement);
    statement->kids = {assignment};
    block->kids = {statement};
    pop_scope();
    function->kids = {nullptr, block, param};
    method->kids = {ast_->make_identifier("constructor"), function};
    body->kids.push_back(method);
  }
  for (std::size_t i = 0; i < method_count; ++i) {
    Node* method = ast_->make(NodeKind::kMethodDefinition);
    method->str_value = "method";
    push_scope();
    Node* function = ast_->make(NodeKind::kFunctionExpression);
    function->kids = {nullptr,
                      gen_block(depth, /*inside_function=*/true, 1, 4)};
    pop_scope();
    method->kids = {ast_->make_identifier(camel_identifier(rng_, 2)),
                    function};
    body->kids.push_back(method);
  }
  node->kids = {ast_->make_identifier(name), nullptr, body};
  return node;
}

Node* ProgramGenerator::gen_statement(int depth, bool inside_function) {
  if (depth <= 0) {
    // Leaf statements only.
    Node* statement = ast_->make(NodeKind::kExpressionStatement);
    statement->kids = {rng_.bernoulli(0.6) ? gen_call(0) : gen_binary(0)};
    return statement;
  }
  switch (rng_.index(14)) {
    case 0: case 1: case 2:
      return gen_declaration(depth - 1);
    case 3: case 4: {
      Node* statement = ast_->make(NodeKind::kExpressionStatement);
      statement->kids = {gen_call(depth - 1)};
      return statement;
    }
    case 5: {
      // assignment
      Node* assignment = ast_->make(NodeKind::kAssignmentExpression);
      assignment->str_value = rng_.bernoulli(0.85) ? "=" : "+=";
      Node* target = rng_.bernoulli(0.5) && has_variables()
                         ? gen_reference()
                         : gen_member(0);
      assignment->kids = {target, gen_expression(depth - 1)};
      Node* statement = ast_->make(NodeKind::kExpressionStatement);
      statement->kids = {assignment};
      return statement;
    }
    case 6: case 7:
      return gen_if(depth, inside_function);
    case 8:
      return gen_for(depth, inside_function);
    case 9:
      return rng_.bernoulli(0.6) ? gen_for_of(depth, inside_function)
                                 : gen_while(depth, inside_function);
    case 10:
      return rng_.bernoulli(0.35) ? gen_switch(depth, inside_function)
                                  : gen_if(depth, inside_function);
    case 11:
      return rng_.bernoulli(0.4) ? gen_try(depth, inside_function)
                                 : gen_declaration(depth - 1);
    case 12:
      if (inside_function && rng_.bernoulli(0.5)) {
        Node* return_statement = ast_->make(NodeKind::kReturnStatement);
        return_statement->kids = {gen_expression(depth - 1)};
        return return_statement;
      }
      return gen_function_declaration(std::max(depth - 1, 1));
    default: {
      Node* statement = ast_->make(NodeKind::kExpressionStatement);
      statement->kids = {gen_expression(depth - 1)};
      return statement;
    }
  }
}

Node* ProgramGenerator::gen_top_level_item(const GeneratorOptions& options) {
  const int depth = 3;
  if (options.flavor == 2 && rng_.bernoulli(0.25)) {
    // var lib = require("name");
    Node* call = ast_->make(NodeKind::kCallExpression);
    call->kids = {ast_->make_identifier("require"),
                  ast_->make_string(camel_identifier(rng_, 1))};
    Node* declarator = ast_->make(NodeKind::kVariableDeclarator);
    declarator->kids = {ast_->make_identifier(declare(1)), call};
    Node* declaration = ast_->make(NodeKind::kVariableDeclaration);
    declaration->str_value = rng_.bernoulli(0.5) ? "const" : "var";
    declaration->kids = {declarator};
    return declaration;
  }
  if (options.flavor == 1 && rng_.bernoulli(0.2)) {
    // document.addEventListener("...", function () { ... });
    Node* member = ast_->make(NodeKind::kMemberExpression);
    member->kids = {ast_->make_identifier("document"),
                    ast_->make_identifier("addEventListener")};
    Node* call = ast_->make(NodeKind::kCallExpression);
    call->kids = {member, gen_string_literal(),
                  gen_function_expression(2, rng_.bernoulli(0.4))};
    Node* statement = ast_->make(NodeKind::kExpressionStatement);
    statement->kids = {call};
    return statement;
  }
  switch (rng_.index(8)) {
    case 0: case 1: case 2:
      return gen_function_declaration(depth);
    case 3:
      return options.allow_classes ? gen_class_declaration(depth)
                                   : gen_function_declaration(depth);
    case 4: case 5:
      return gen_declaration(depth);
    case 6: {
      // IIFE module pattern.
      Node* function = gen_function_expression(depth, /*arrow=*/false);
      Node* call = ast_->make(NodeKind::kCallExpression);
      call->kids = {function};
      Node* statement = ast_->make(NodeKind::kExpressionStatement);
      statement->kids = {call};
      return statement;
    }
    default:
      return gen_statement(depth, /*inside_function=*/false);
  }
}

std::string ProgramGenerator::inject_comments(const std::string& source,
                                              const GeneratorOptions& options) {
  std::vector<std::string> lines = strings::split(source, '\n');
  std::string out;
  out.reserve(source.size() + source.size() / 4);

  // File header comment.
  if (rng_.bernoulli(0.6)) {
    out += "/**\n * ";
    out += rng_.choice(comment_pool());
    out += "\n * ";
    out += rng_.choice(comment_pool());
    out += "\n */\n";
  }
  for (const std::string& line : lines) {
    if (rng_.bernoulli(options.comment_line_probability)) {
      // Match the line's indentation.
      std::size_t indent = 0;
      while (indent < line.size() && line[indent] == ' ') ++indent;
      out += line.substr(0, indent);
      out += "// ";
      out += rng_.choice(comment_pool());
      out += '\n';
    }
    if (rng_.bernoulli(options.blank_line_probability)) out += '\n';
    out += line;
    out += '\n';
  }
  return out;
}

std::string ProgramGenerator::generate(const GeneratorOptions& options) {
  Ast ast;
  ast_ = &ast;
  scopes_.clear();
  push_scope();

  Node* program = ast.make(NodeKind::kProgram);
  ast.set_root(program);

  std::string printed;
  std::size_t items = 0;
  // Keep appending top-level items until the printed source is big enough.
  while (items < options.max_top_level_items) {
    program->kids.push_back(gen_top_level_item(options));
    ++items;
    if (items >= 3) {
      printed = to_source(program);
      if (printed.size() >= options.min_bytes) break;
    }
  }
  if (printed.empty()) printed = to_source(program);

  pop_scope();
  ast_ = nullptr;
  return inject_comments(printed, options);
}

}  // namespace jst::corpus
