# Empty dependencies file for jst_lexer.
# This may be replaced when dependencies are built.
