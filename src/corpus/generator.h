// Synthetic "regular JavaScript" generator.
//
// Stands in for the paper's crawl of popular GitHub projects and JS
// libraries (§III-D1): grammar-driven construction of parseable,
// idiomatic, commented source with realistic identifier vocabulary,
// scope-respecting references, and three stylistic flavors (generic,
// browser, Node.js). The output passes the paper's eligibility filter
// (>=512 bytes, contains conditionals/functions/calls).
#pragma once

#include <string>

#include "ast/ast.h"
#include "support/rng.h"

namespace jst::corpus {

struct GeneratorOptions {
  std::size_t min_bytes = 768;
  std::size_t max_top_level_items = 60;
  double comment_line_probability = 0.12;
  double blank_line_probability = 0.14;
  bool allow_classes = true;
  // Stylistic flavor: 0 = generic library, 1 = browser (DOM APIs),
  // 2 = Node.js (require/module.exports).
  int flavor = 0;
};

class ProgramGenerator {
 public:
  explicit ProgramGenerator(std::uint64_t seed);

  // Generates one program. Deterministic for a given generator state.
  std::string generate(const GeneratorOptions& options = {});

  Rng& rng() { return rng_; }

 private:
  struct ScopeGuard;

  // --- scope ---
  void push_scope();
  void pop_scope();
  std::string declare(std::size_t name_words = 2);
  std::string random_variable();   // visible variable or a global object
  bool has_variables() const;

  // --- expressions ---
  Node* gen_expression(int depth);
  Node* gen_literal();
  Node* gen_string_literal();
  Node* gen_reference();
  Node* gen_member(int depth);
  Node* gen_call(int depth);
  Node* gen_binary(int depth);
  Node* gen_object_literal(int depth);
  Node* gen_array_literal(int depth);
  Node* gen_function_expression(int depth, bool arrow);
  Node* gen_template_literal(int depth);

  // --- statements ---
  Node* gen_statement(int depth, bool inside_function);
  Node* gen_declaration(int depth);
  Node* gen_if(int depth, bool inside_function);
  Node* gen_for(int depth, bool inside_function);
  Node* gen_for_of(int depth, bool inside_function);
  Node* gen_while(int depth, bool inside_function);
  Node* gen_switch(int depth, bool inside_function);
  Node* gen_try(int depth, bool inside_function);
  Node* gen_function_declaration(int depth);
  Node* gen_class_declaration(int depth);
  Node* gen_block(int depth, bool inside_function, std::size_t min_statements,
                  std::size_t max_statements);
  Node* gen_top_level_item(const GeneratorOptions& options);

  // --- post-processing ---
  std::string inject_comments(const std::string& source,
                              const GeneratorOptions& options);

  Rng rng_;
  Ast* ast_ = nullptr;  // valid during generate()
  std::vector<std::vector<std::string>> scopes_;
};

}  // namespace jst::corpus
