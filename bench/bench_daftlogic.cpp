// §III-E3 — generalization to an unseen tool: the Daft Logic obfuscator
// (Dean Edwards packer). Paper: level 1 flags 99.52% as transformed;
// level 2 (Top-4 @ 10%) reports minification advanced + simple, identifier
// obfuscation, and string obfuscation.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "transform/transform.h"

int main() {
  using namespace jst;
  using namespace jst::bench;

  const auto& model = analyzer();
  const std::size_t sample_count = scaled(80);
  const auto bases = held_out_regular(sample_count, 0xdaf7);
  Rng rng(0xdaf70b);

  std::size_t transformed = 0;
  std::vector<double> average_confidence(transform::kTechniqueCount, 0.0);
  for (const std::string& base : bases) {
    const std::string packed = transform::pack(base, rng);
    const auto report = model.analyze(packed);
    if (report.parse_failed()) continue;
    if (report.level1.transformed()) ++transformed;
    for (std::size_t i = 0; i < report.technique_confidence.size(); ++i) {
      average_confidence[i] += report.technique_confidence[i];
    }
  }
  for (double& confidence : average_confidence) {
    confidence /= static_cast<double>(bases.size());
  }

  print_header("Unseen tool: Dean Edwards packer (Daft Logic)",
               "section III-E3");
  print_row("level-1: packed files flagged transformed", 99.52,
            100.0 * static_cast<double>(transformed) /
                static_cast<double>(bases.size()));

  // Paper's level-2 readout: the Top-4 techniques (threshold 10%).
  std::vector<std::size_t> order(transform::kTechniqueCount);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return average_confidence[a] > average_confidence[b];
  });
  const auto expected = transform::packer_labels();
  std::printf("\nlevel-2 Top-4 over packed samples (by avg confidence):\n");
  std::printf("%-6s %-28s %12s %10s\n", "rank", "technique", "confidence",
              "expected");
  std::size_t expected_in_top4 = 0;
  for (std::size_t rank = 0; rank < 4; ++rank) {
    const auto technique = static_cast<transform::Technique>(order[rank]);
    const bool is_expected =
        std::find(expected.begin(), expected.end(), technique) !=
        expected.end();
    if (is_expected) ++expected_in_top4;
    std::printf("%-6zu %-28s %11.1f%% %10s\n", rank + 1,
                std::string(transform::technique_name(technique)).c_str(),
                100.0 * average_confidence[order[rank]],
                is_expected ? "yes" : "-");
  }
  print_row("expected techniques inside Top-4 (of 4)", 4.0,
            static_cast<double>(expected_in_top4), "");
  print_note("paper's Top-4 readout: minification advanced + simple, "
             "identifier obfuscation, string obfuscation");
  print_footer();
  return 0;
}
