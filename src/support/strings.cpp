#include "support/strings.h"

#include <array>
#include <cmath>
#include <cstdio>

#include "support/error.h"

namespace jst::strings {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool is_ascii_digit(char c) { return c >= '0' && c <= '9'; }

bool is_ascii_alpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool is_ascii_alnum(char c) { return is_ascii_digit(c) || is_ascii_alpha(c); }

bool is_hex_digit(char c) {
  return is_ascii_digit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

bool is_identifier(std::string_view text) {
  if (text.empty()) return false;
  const char first = text[0];
  if (!is_ascii_alpha(first) && first != '_' && first != '$') return false;
  for (std::size_t i = 1; i < text.size(); ++i) {
    const char c = text[i];
    if (!is_ascii_alnum(c) && c != '_' && c != '$') return false;
  }
  return true;
}

std::size_t count_lines(std::string_view text) {
  std::size_t lines = 1;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  return lines;
}

std::string escape_js_string(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\v': out += "\\v"; break;
      case '\0': out += "\\0"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string hex_escape_all(std::string_view text) {
  std::string out;
  out.reserve(text.size() * 4);
  for (char c : text) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "\\x%02x", static_cast<unsigned char>(c));
    out += buf;
  }
  return out;
}

std::string unicode_escape_all(std::string_view text) {
  std::string out;
  out.reserve(text.size() * 6);
  for (char c : text) {
    char buf[8];
    std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
    out += buf;
  }
  return out;
}

std::string format_double(double value, int max_precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", max_precision, value);
  std::string out(buf);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  return out;
}

std::string to_base_n(std::uint64_t value, unsigned base) {
  static constexpr char kDigits[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  if (base < 2 || base > 62) throw InvalidArgument("to_base_n: base out of range");
  if (value == 0) return "0";
  std::string out;
  while (value > 0) {
    out.insert(out.begin(), kDigits[value % base]);
    value /= base;
  }
  return out;
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

double alnum_ratio(std::string_view text) {
  if (text.empty()) return 0.0;
  std::size_t alnum = 0;
  for (char c : text) {
    if (is_ascii_alnum(c)) ++alnum;
  }
  return static_cast<double>(alnum) / static_cast<double>(text.size());
}

}  // namespace jst::strings
