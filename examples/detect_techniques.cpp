// CLI: classify JavaScript files from disk (or stdin).
//
//   $ ./detect_techniques file1.js [file2.js ...]
//   $ cat script.js | ./detect_techniques -
//
// Prints one JSON report per input, mirroring the paper's per-script
// output: status, level-1 probabilities, technique confidences, timing.
// All inputs are analyzed as one batch through AnalyzerService, so the
// run parallelizes across files (JST_THREADS controls the width).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/service.h"
#include "support/json_writer.h"

namespace {

std::string read_all(std::istream& in) {
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void report_json(const std::string& name,
                 const jst::analysis::ScriptOutcome& outcome) {
  using namespace jst;
  const analysis::ScriptReport& report = outcome.report;
  JsonWriter json;
  json.begin_object();
  json.key("file");
  json.value(name);
  json.key("status");
  json.value(analysis::to_string(outcome.status));
  if (!outcome.error_message.empty()) {
    json.key("error");
    json.value(outcome.error_message);
  }
  json.key("analyze_ms");
  json.value(outcome.timing.total_ms);
  if (!outcome.parse_failed()) {
    json.key("level1");
    json.begin_object();
    json.key("p_regular");
    json.value(report.level1.p_regular);
    json.key("p_minified");
    json.value(report.level1.p_minified);
    json.key("p_obfuscated");
    json.value(report.level1.p_obfuscated);
    json.key("transformed");
    json.value(report.level1.transformed());
    json.end_object();
    json.key("techniques");
    json.begin_array();
    for (transform::Technique technique : report.techniques) {
      json.begin_object();
      json.key("name");
      json.value(transform::technique_name(technique));
      json.key("confidence");
      json.value(report.technique_confidence[static_cast<std::size_t>(technique)]);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  std::printf("%s\n", json.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jst;

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.js>... ('-' reads from stdin)\n", argv[0]);
    return 2;
  }

  analysis::PipelineOptions options;
  options.training_regular_count = 80;
  options.per_technique_count = 16;
  analysis::TransformationAnalyzer analyzer(options);
  std::fprintf(stderr, "[detect] training detectors...\n");
  analyzer.train();
  const analysis::AnalyzerService service(analyzer);

  int failures = 0;
  std::vector<std::string> names;
  std::vector<std::string> sources;
  for (int i = 1; i < argc; ++i) {
    std::string source;
    if (std::string(argv[i]) == "-") {
      source = read_all(std::cin);
    } else {
      std::ifstream file(argv[i]);
      if (!file) {
        std::fprintf(stderr, "[detect] cannot open %s\n", argv[i]);
        ++failures;
        continue;
      }
      source = read_all(file);
    }
    names.push_back(argv[i]);
    sources.push_back(std::move(source));
  }

  const analysis::BatchResponse batch =
      service.analyze_batch(analysis::make_source_requests(sources));
  for (std::size_t i = 0; i < batch.responses.size(); ++i) {
    report_json(names[i], batch.responses[i].outcome);
  }
  std::fprintf(stderr,
               "[detect] %zu scripts in %.1f ms (%.1f scripts/s, %zu threads, "
               "%zu parse failures)\n",
               batch.stats.total, batch.stats.wall_ms,
               batch.stats.scripts_per_second, batch.stats.threads,
               batch.stats.parse_errors);
  return failures == 0 ? 0 : 1;
}
