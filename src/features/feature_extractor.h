// The complete vector space (§III-B): hashed AST 4-grams plus hand-picked
// features, each feature pinned to one consistent dimension.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "features/analysis_pipeline.h"
#include "features/handpicked.h"
#include "features/ngram.h"

namespace jst::features {

struct FeatureConfig {
  bool use_ngrams = true;
  bool use_handpicked = true;
  NgramConfig ngram;
  AnalysisOptions analysis;
};

// Total dimensionality under `config`.
std::size_t feature_dimension(const FeatureConfig& config);

// Names aligned with extract()'s output (hand-picked names, then
// "ngram4_<bucket>").
std::vector<std::string> feature_names(const FeatureConfig& config);

// Extracts the feature vector from an already-analyzed script.
std::vector<float> extract(const ScriptAnalysis& analysis,
                           const FeatureConfig& config);

// Parses + analyzes + extracts in one call. Throws ParseError.
std::vector<float> extract_from_source(std::string_view source,
                                       const FeatureConfig& config);

}  // namespace jst::features
