// Arena-backed parse front end (support/arena.h + lexer/parser/ast):
//
//  * Golden bit-identity: batch outcomes over the seed corpus match a
//    fixture captured on the pre-arena front end, at thread widths 1 and
//    4, governed and ungoverned. The fixture is timing-stripped NDJSON —
//    everything semantic (status, features, predictions, diagnostics)
//    must be byte-identical.
//  * Pooling correctness: a pooled-arena parse equals an owned-arena
//    parse; arena reuse leaves no stale payloads; node addresses are
//    stable across finalize(); clone() into a fresh Ast deep-copies
//    string payloads (survives the source arena's reset).
//  * Allocation-free steady state: after warm-up, repeated pooled parses
//    grow neither the arena's peak nor its capacity, and the
//    jst_arena_* metrics report reuse.
#include <gtest/gtest.h>

#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/pipeline.h"
#include "analysis/service.h"
#include "analysis/wild.h"
#include "ast/ast_json.h"
#include "ast/walk.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "support/rng.h"
#include "transform/transform.h"

namespace jst {
namespace {

// Same corpus as test_compiled: 16 deterministic regular scripts plus one
// transformed variant per technique.
std::vector<std::string> seed_corpus() {
  analysis::CorpusSpec spec;
  spec.regular_count = 16;
  spec.seed = 424242;
  std::vector<std::string> corpus = analysis::generate_regular_corpus(spec);
  Rng rng(99);
  std::size_t base = 0;
  for (const transform::Technique technique : transform::all_techniques()) {
    corpus.push_back(
        analysis::make_transformed_sample(corpus[base % 16], technique, rng)
            .source);
    ++base;
  }
  return corpus;
}

// Same options as test_compiled's shared analyzer (and the fixture
// capture tool): small but fully exercised forests.
const analysis::TransformationAnalyzer& shared_analyzer() {
  static analysis::TransformationAnalyzer* analyzer = [] {
    analysis::PipelineOptions options;
    options.training_regular_count = 32;
    options.per_technique_count = 6;
    options.detector.forest.tree_count = 6;
    options.detector.features.ngram.hash_dim = 64;
    options.seed = 20260806;
    auto* built = new analysis::TransformationAnalyzer(options);
    built->train();
    return built;
  }();
  return *analyzer;
}

// Wall-clock timings differ run to run; everything else must not. The
// fixture was normalized with the same expression.
std::string strip_timing(const std::string& outcome_json) {
  static const std::regex kTiming("\"timing\":\\{[^}]*\\},");
  return std::regex_replace(outcome_json, kTiming, "");
}

std::vector<std::string> golden_lines() {
  std::ifstream in(std::string(JST_TEST_DATA_DIR) +
                   "/frontend_golden.ndjson");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void expect_batch_matches_golden(std::size_t threads, bool governed) {
  const std::vector<std::string> golden = golden_lines();
  ASSERT_FALSE(golden.empty()) << "fixture missing";
  const analysis::AnalyzerService service(shared_analyzer());
  analysis::BatchOptions options;
  options.threads = threads;
  if (governed) options.limits = ResourceLimits::production();
  const analysis::BatchResponse result = service.analyze_batch(
      analysis::make_source_requests(seed_corpus()), options);
  ASSERT_EQ(result.responses.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(strip_timing(result.responses[i].outcome.to_json()), golden[i])
        << "script " << i << " threads=" << threads
        << " governed=" << governed;
  }
}

// --- golden bit-identity ---------------------------------------------------

TEST(FrontendGolden, BatchBitIdenticalSerial) {
  expect_batch_matches_golden(1, false);
}

TEST(FrontendGolden, BatchBitIdenticalFourThreads) {
  expect_batch_matches_golden(4, false);
}

TEST(FrontendGolden, BatchBitIdenticalGoverned) {
  expect_batch_matches_golden(1, true);
  expect_batch_matches_golden(4, true);
}

// --- pooled-arena parsing --------------------------------------------------

TEST(FrontendArena, PooledParseEqualsOwnedParse) {
  const std::vector<std::string> corpus = seed_corpus();
  support::Arena pool;
  for (const std::string& source : corpus) {
    const ParseResult owned = parse_program(source);
    const ParseResult pooled = parse_program(source, nullptr, &pool);
    EXPECT_EQ(ast_to_json(owned.ast.root()), ast_to_json(pooled.ast.root()));
    EXPECT_EQ(owned.tokens.size(), pooled.tokens.size());
    EXPECT_EQ(owned.token_stats.count, pooled.token_stats.count);
    EXPECT_EQ(owned.token_stats.raw_bytes, pooled.token_stats.raw_bytes);
    EXPECT_EQ(owned.comment_count, pooled.comment_count);
    EXPECT_EQ(owned.ast.node_count(), pooled.ast.node_count());
  }
}

TEST(FrontendArena, ReuseLeavesNoStalePayloads) {
  // Parse a script full of distinctive escaped payloads (cooked strings
  // live in the arena), then reuse the pool for different scripts; every
  // later parse must equal its owned-arena reference exactly.
  const std::string poison =
      "var a = \"\\x41\\u0042poison\\n\", b = `head${1 + 2}tail`;";
  const std::vector<std::string> corpus = seed_corpus();
  support::Arena pool;
  (void)parse_program(poison, nullptr, &pool);
  for (const std::string& source : corpus) {
    const ParseResult pooled = parse_program(source, nullptr, &pool);
    const ParseResult owned = parse_program(source);
    EXPECT_EQ(ast_to_json(pooled.ast.root()), ast_to_json(owned.ast.root()));
  }
  EXPECT_EQ(pool.epoch(), corpus.size() + 1);  // one reset per parse
}

TEST(FrontendArena, NodeAddressesStableAcrossFinalize) {
  support::Arena pool;
  ParseResult parsed = parse_program(
      "function f(a, b) { if (a) { return a + b; } return [a, b, a * b]; }",
      nullptr, &pool);
  std::vector<const Node*> before;
  walk_preorder(parsed.ast.root(),
                [&before](Node& node) { before.push_back(&node); });
  const std::size_t count = parsed.ast.finalize();  // re-finalize in place
  std::vector<const Node*> after;
  walk_preorder(parsed.ast.root(),
                [&after](Node& node) { after.push_back(&node); });
  EXPECT_EQ(count, before.size());
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]) << "node " << i << " moved";
    EXPECT_EQ(after[i]->id, static_cast<std::uint32_t>(i));
  }
}

TEST(FrontendArena, CloneIntoFreshArenaDeepCopiesPayloads) {
  support::Arena pool;
  const std::string source =
      "var greeting = \"\\x68ello \\u0077orld\"; var re = /a\\d+b/gi;";
  ParseResult parsed = parse_program(source, nullptr, &pool);
  const std::string reference = ast_to_json(parsed.ast.root());

  Ast fresh;  // owns a private arena
  Node* copy = fresh.clone(parsed.ast.root());
  fresh.set_root(copy);
  fresh.finalize();

  // Clobber the source arena: reset and fill it with a different script.
  // If clone() had shared payload views, the copy would now read bytes
  // from the replacement parse.
  (void)parse_program("var unrelated = 123456789; function g() {}", nullptr,
                      &pool);
  EXPECT_EQ(ast_to_json(fresh.root()), reference);
}

// --- allocation-free steady state ------------------------------------------

TEST(FrontendArena, SteadyStateStopsGrowingAndReportsReuse) {
  const analysis::TransformationAnalyzer& analyzer = shared_analyzer();
  const std::vector<std::string> corpus = seed_corpus();
  obs::Counter& reuses =
      obs::MetricsRegistry::global().counter("jst_arena_reuse_total");
  obs::Gauge& peak =
      obs::MetricsRegistry::global().gauge("jst_arena_peak_bytes");
  const std::uint64_t reuses_before = reuses.value();

  analysis::ScriptScratch scratch;
  // Warm-up pass: the pooled arena grows to the corpus high-water mark.
  for (const std::string& source : corpus) {
    (void)analyzer.analyze_outcome(source, ResourceLimits{}, scratch);
  }
  const std::size_t warm_peak = scratch.arena.peak_bytes();
  const std::size_t warm_capacity = scratch.arena.capacity_bytes();
  EXPECT_GT(warm_peak, 0u);

  // Steady state: two more passes reuse the warmed chunks — no growth in
  // either the per-script peak or the chunk capacity means the front end
  // performed no heap allocation for any of these scripts.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& source : corpus) {
      (void)analyzer.analyze_outcome(source, ResourceLimits{}, scratch);
    }
  }
  EXPECT_EQ(scratch.arena.peak_bytes(), warm_peak);
  EXPECT_EQ(scratch.arena.capacity_bytes(), warm_capacity);

  // Every script after the first reused the pooled arena, and the reuse
  // counter and peak gauge observed it.
  EXPECT_GE(reuses.value() - reuses_before, 3 * corpus.size() - 1);
  EXPECT_GE(peak.value(), static_cast<double>(warm_peak));
}

TEST(FrontendArena, ArenaMetricsExportedAtZero) {
  // Zero-export guarantee (same as jst_budget_* / jst_scratch_*): the
  // series exist in every export, even before any reuse happened.
  const std::string prometheus =
      obs::MetricsRegistry::global().to_prometheus();
  EXPECT_NE(prometheus.find("jst_arena_reuse_total"), std::string::npos);
  EXPECT_NE(prometheus.find("jst_arena_peak_bytes"), std::string::npos);
  EXPECT_NE(prometheus.find("jst_scratch_reuse_total"), std::string::npos);
  EXPECT_NE(prometheus.find("jst_scratch_peak_bytes"), std::string::npos);
}

}  // namespace
}  // namespace jst
