#include "analysis/service.h"

#include <algorithm>
#include <chrono>

#include "support/error.h"
#include "support/thread_pool.h"

namespace jst::analysis {

AnalyzerService::AnalyzerService(const TransformationAnalyzer& analyzer)
    : analyzer_(&analyzer) {
  if (!analyzer.trained()) {
    throw ModelError("AnalyzerService: analyzer is not trained");
  }
}

ScriptOutcome AnalyzerService::analyze_one(std::string_view source,
                                           std::size_t max_bytes) const {
  if (max_bytes > 0 && source.size() > max_bytes) {
    ScriptOutcome outcome;
    outcome.status = ScriptStatus::kIneligibleSize;
    outcome.report.status = outcome.status;
    outcome.error_message = "script exceeds batch max_bytes (" +
                            std::to_string(source.size()) + " > " +
                            std::to_string(max_bytes) + " bytes)";
    return outcome;
  }
  return analyzer_->analyze_outcome(source);
}

BatchResult AnalyzerService::analyze_batch(
    std::span<const std::string> sources, const BatchOptions& options) const {
  BatchResult result;
  result.outcomes.resize(sources.size());
  const std::size_t threads = options.threads == 0
                                  ? support::ThreadPool::default_parallelism()
                                  : options.threads;
  result.stats.threads = std::max<std::size_t>(threads, 1);

  const auto start = std::chrono::steady_clock::now();
  support::run_parallel(threads, sources.size(), [&](std::size_t i) {
    result.outcomes[i] = analyze_one(sources[i], options.max_bytes);
  });
  result.stats.wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  BatchStats& stats = result.stats;
  stats.total = result.outcomes.size();
  for (const ScriptOutcome& outcome : result.outcomes) {
    switch (outcome.status) {
      case ScriptStatus::kOk: ++stats.ok; break;
      case ScriptStatus::kParseError: ++stats.parse_errors; break;
      case ScriptStatus::kIneligibleSize: ++stats.ineligible_size; break;
      case ScriptStatus::kIneligibleAst: ++stats.ineligible_ast; break;
    }
    stats.static_analysis_ms += outcome.timing.static_analysis_ms;
    stats.features_ms += outcome.timing.features_ms;
    stats.inference_ms += outcome.timing.inference_ms;
    stats.max_script_ms = std::max(stats.max_script_ms,
                                   outcome.timing.total_ms);
  }
  if (stats.wall_ms > 0.0) {
    stats.scripts_per_second =
        1000.0 * static_cast<double>(stats.total) / stats.wall_ms;
  }
  return result;
}

}  // namespace jst::analysis
