file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_throughput.dir/bench_pipeline_throughput.cpp.o"
  "CMakeFiles/bench_pipeline_throughput.dir/bench_pipeline_throughput.cpp.o.d"
  "bench_pipeline_throughput"
  "bench_pipeline_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
