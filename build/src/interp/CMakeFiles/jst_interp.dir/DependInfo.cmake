
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/builtins.cpp" "src/interp/CMakeFiles/jst_interp.dir/builtins.cpp.o" "gcc" "src/interp/CMakeFiles/jst_interp.dir/builtins.cpp.o.d"
  "/root/repo/src/interp/interpreter.cpp" "src/interp/CMakeFiles/jst_interp.dir/interpreter.cpp.o" "gcc" "src/interp/CMakeFiles/jst_interp.dir/interpreter.cpp.o.d"
  "/root/repo/src/interp/value.cpp" "src/interp/CMakeFiles/jst_interp.dir/value.cpp.o" "gcc" "src/interp/CMakeFiles/jst_interp.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parser/CMakeFiles/jst_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/jst_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/jst_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jst_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
