// jstraced-snapshot: longitudinal snapshot-diff driver (DESIGN.md §15).
//
// Walks consecutive corpus snapshots — by default the 65 longitudinal
// month specs of analysis/longitudinal.h (2015-05 .. 2020-09), with a
// persistence model carrying most scripts byte-identical month to month
// the way the paper's §IV crawl observes — and analyzes each month
// through a cache-aware AnalyzerService. Repeat scripts resolve from the
// result cache, so after month 1 only content-new scripts reach the
// pipeline; carried-forward outcomes still merge into each month's
// BatchStats because a cache hit returns the full ScriptOutcome. One
// NDJSON trend row per month (transformed share, per-technique
// positives, cache traffic, BatchStats) reproduces the data behind the
// paper's Figures 5-8.
//
//   $ ./jstraced-snapshot                              # Alexa, 65 months
//   $ ./jstraced-snapshot --population npm --scripts 128 --out trend.ndjson
//   $ ./jstraced-snapshot --cache-dir /tmp/jstcache    # persist across runs
//   $ ./jstraced-snapshot --manifest corpora.txt       # real snapshots
//
// --manifest names a text file with one NDJSON corpus path per line
// (each file is one snapshot; every line is either a JSON string or an
// object with a "source" member). --verify asserts the snapshot-diff
// invariant — per-month cache misses equal content-new scripts — and
// requires --threads 1 (concurrent duplicate misses would be benign but
// break the exact count) plus a cold cache (the content-new set is
// per-process; a pre-warmed --cache-dir legitimately beats it).
// --require-hits fails the run when the cache never hit (the CI
// cold/warm smoke runs --verify on the cold pass, --require-hits on the
// warm one).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/longitudinal.h"
#include "analysis/pipeline.h"
#include "analysis/result_cache.h"
#include "analysis/service.h"
#include "analysis/wild.h"
#include "support/cache_flags.h"
#include "support/json_reader.h"
#include "support/json_writer.h"
#include "support/limits_flags.h"
#include "support/strings.h"
#include "transform/technique.h"

namespace {

using namespace jst;

struct SnapshotOptions {
  std::string population = "alexa";
  std::size_t months = analysis::kMonthCount;
  std::size_t scripts = 64;
  double persistence = 0.7;
  std::uint64_t seed = 0x5eed5a9;
  std::size_t threads = 0;
  std::string out;
  std::string manifest;
  bool verify = false;
  bool require_hits = false;
  std::size_t training_regular = 100;
  std::size_t per_technique = 20;
  support::CacheOptions cache;
  ResourceLimits limits;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: jstraced-snapshot [--population alexa|npm|malware] "
      "[--months N] [--scripts N] [--persistence P] [--seed N] "
      "[--threads N] [--out FILE] [--manifest FILE] [--verify] "
      "[--require-hits] [--training-regular N] [--per-technique N] %s %s\n",
      support::cache_flags_usage(), support::limits_flags_usage());
  return 2;
}

bool parse_count(const char* flag, const char* text, std::size_t& field) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "jstraced-snapshot: %s: invalid count '%s'\n", flag,
                 text);
    return false;
  }
  field = static_cast<std::size_t>(value);
  return true;
}

// One snapshot's sources from a manifest-listed NDJSON corpus file.
std::optional<std::vector<std::string>> load_corpus(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "jstraced-snapshot: cannot open corpus %s\n",
                 path.c_str());
    return std::nullopt;
  }
  std::vector<std::string> sources;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::string error;
    std::optional<support::JsonValue> document =
        support::parse_json(line, &error);
    if (!document.has_value()) {
      std::fprintf(stderr, "jstraced-snapshot: %s:%zu: %s\n", path.c_str(),
                   line_number, error.c_str());
      return std::nullopt;
    }
    if (document->is_string()) {
      sources.push_back(document->as_string());
      continue;
    }
    const support::JsonValue* source = document->find("source");
    if (source == nullptr || !source->is_string()) {
      std::fprintf(stderr,
                   "jstraced-snapshot: %s:%zu: expected a JSON string or an "
                   "object with a \"source\" member\n",
                   path.c_str(), line_number);
      return std::nullopt;
    }
    sources.push_back(source->as_string());
  }
  return sources;
}

}  // namespace

int main(int argc, char** argv) {
  SnapshotOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string flag_error;
    const char* flag = argv[i];
    if (std::strcmp(flag, "--population") == 0 && i + 1 < argc) {
      options.population = argv[++i];
      if (options.population != "alexa" && options.population != "npm" &&
          options.population != "malware") {
        std::fprintf(stderr,
                     "jstraced-snapshot: --population: expected alexa, npm, "
                     "or malware\n");
        return 2;
      }
    } else if (std::strcmp(flag, "--months") == 0 && i + 1 < argc) {
      if (!parse_count(flag, argv[++i], options.months)) return 2;
      if (options.months == 0 || options.months > analysis::kMonthCount) {
        std::fprintf(stderr, "jstraced-snapshot: --months: expected 1..%zu\n",
                     analysis::kMonthCount);
        return 2;
      }
    } else if (std::strcmp(flag, "--scripts") == 0 && i + 1 < argc) {
      if (!parse_count(flag, argv[++i], options.scripts)) return 2;
    } else if (std::strcmp(flag, "--persistence") == 0 && i + 1 < argc) {
      options.persistence = std::atof(argv[++i]);
      if (options.persistence < 0.0 || options.persistence > 1.0) {
        std::fprintf(stderr,
                     "jstraced-snapshot: --persistence: expected [0, 1]\n");
        return 2;
      }
    } else if (std::strcmp(flag, "--seed") == 0 && i + 1 < argc) {
      std::size_t seed = 0;
      if (!parse_count(flag, argv[++i], seed)) return 2;
      options.seed = seed;
    } else if (std::strcmp(flag, "--threads") == 0 && i + 1 < argc) {
      if (!parse_count(flag, argv[++i], options.threads)) return 2;
    } else if (std::strcmp(flag, "--out") == 0 && i + 1 < argc) {
      options.out = argv[++i];
    } else if (std::strcmp(flag, "--manifest") == 0 && i + 1 < argc) {
      options.manifest = argv[++i];
    } else if (std::strcmp(flag, "--verify") == 0) {
      options.verify = true;
    } else if (std::strcmp(flag, "--require-hits") == 0) {
      options.require_hits = true;
    } else if (std::strcmp(flag, "--training-regular") == 0 && i + 1 < argc) {
      if (!parse_count(flag, argv[++i], options.training_regular)) return 2;
    } else if (std::strcmp(flag, "--per-technique") == 0 && i + 1 < argc) {
      if (!parse_count(flag, argv[++i], options.per_technique)) return 2;
    } else if (support::consume_cache_flag(argc, argv, i, options.cache,
                                           flag_error) ||
               support::consume_limits_flag(argc, argv, i, options.limits,
                                            flag_error)) {
      if (!flag_error.empty()) {
        std::fprintf(stderr, "jstraced-snapshot: %s\n", flag_error.c_str());
        return 2;
      }
    } else {
      return usage();
    }
  }
  if (options.verify && options.threads != 1) {
    std::fprintf(stderr,
                 "jstraced-snapshot: --verify requires --threads 1 (exact "
                 "per-month miss accounting)\n");
    return 2;
  }

  // The snapshot differ is the cache's reason to exist, so one is always
  // attached unless the run explicitly bypasses caching.
  std::unique_ptr<analysis::ResultCache> cache;
  if (options.cache.mode != CacheMode::kBypass) {
    analysis::ResultCache::Config config;
    config.dir = options.cache.dir;
    config.max_bytes = options.cache.effective_bytes();
    cache = std::make_unique<analysis::ResultCache>(config);
    if (!cache->load_error().empty()) {
      std::fprintf(stderr, "jstraced-snapshot: cache: %s\n",
                   cache->load_error().c_str());
    }
  }

  analysis::PipelineOptions pipeline_options;
  pipeline_options.training_regular_count = options.training_regular;
  pipeline_options.per_technique_count = options.per_technique;
  analysis::TransformationAnalyzer analyzer(pipeline_options);
  std::fprintf(stderr, "[snapshot] training detectors...\n");
  analyzer.train();
  const analysis::AnalyzerService service(analyzer, cache.get());

  std::vector<std::string> manifest_paths;
  if (!options.manifest.empty()) {
    std::ifstream manifest(options.manifest);
    if (!manifest) {
      std::fprintf(stderr, "jstraced-snapshot: cannot open manifest %s\n",
                   options.manifest.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(manifest, line)) {
      if (!line.empty()) manifest_paths.push_back(line);
    }
    if (manifest_paths.empty()) {
      std::fprintf(stderr, "jstraced-snapshot: manifest %s lists no files\n",
                   options.manifest.c_str());
      return 1;
    }
    options.months = manifest_paths.size();
  }

  std::ofstream out_stream;
  if (!options.out.empty()) {
    out_stream.open(options.out);
    if (!out_stream) {
      std::fprintf(stderr, "jstraced-snapshot: cannot open %s\n",
                   options.out.c_str());
      return 1;
    }
  }
  std::ostream& out = options.out.empty()
                          ? static_cast<std::ostream&>(std::cout)
                          : out_stream;

  analysis::BatchOptions batch_options;
  batch_options.threads = options.threads;
  batch_options.limits = options.limits;

  const analysis::PopulationSpec malware_base = analysis::dnc_spec();
  const auto month_spec = [&](std::size_t month) {
    if (options.population == "npm") return analysis::npm_month_spec(month);
    if (options.population == "malware") {
      return analysis::malware_month_spec(malware_base, month);
    }
    return analysis::alexa_month_spec(month);
  };

  std::unordered_set<std::string> seen_hashes;
  std::vector<std::string> sources;
  std::uint64_t previous_hits = 0;
  std::uint64_t previous_misses = 0;
  std::uint64_t total_hits = 0;
  bool verify_failed = false;

  for (std::size_t month = 0; month < options.months; ++month) {
    std::string label;
    if (!manifest_paths.empty()) {
      label = manifest_paths[month];
      std::optional<std::vector<std::string>> corpus =
          load_corpus(manifest_paths[month]);
      if (!corpus.has_value()) return 1;
      sources = *std::move(corpus);
    } else {
      label = analysis::month_label(month);
      const analysis::PopulationSpec spec = month_spec(month);
      if (month == 0) {
        const auto samples = analysis::simulate_population(
            spec, options.scripts, options.seed);
        sources.clear();
        sources.reserve(samples.size());
        for (const analysis::Sample& sample : samples) {
          sources.push_back(sample.source);
        }
      } else {
        sources = analysis::evolve_snapshot(sources, spec,
                                            options.persistence,
                                            options.seed + month);
      }
    }

    // Content-new scripts this month: hashes never seen in any earlier
    // snapshot. This is the exact set the cache should re-analyze.
    std::size_t new_scripts = 0;
    for (const std::string& source : sources) {
      if (seen_hashes.insert(analysis::content_hash(source)).second) {
        ++new_scripts;
      }
    }

    const std::vector<analysis::AnalyzeRequest> requests =
        analysis::make_source_requests(sources, options.cache.mode);
    const analysis::BatchResponse batch =
        service.analyze_batch(requests, batch_options);

    std::uint64_t month_hits = 0;
    std::uint64_t month_misses = 0;
    if (cache) {
      const analysis::ResultCache::Counters counters = cache->counters();
      month_hits = counters.hits - previous_hits;
      month_misses = counters.misses - previous_misses;
      previous_hits = counters.hits;
      previous_misses = counters.misses;
      total_hits += month_hits;
    }

    // Trend aggregates over every outcome carrying predictions — cache
    // hits included, which is what "merges carried-forward outcomes"
    // means: month m's row reflects the full population, not just the
    // newly analyzed slice.
    std::size_t predicted = 0;
    std::size_t transformed = 0;
    std::vector<std::size_t> technique_positives(transform::kTechniqueCount,
                                                 0);
    for (const analysis::AnalyzeResponse& response : batch.responses) {
      if (!response.ok() || !response.outcome.has_predictions()) continue;
      ++predicted;
      if (!response.outcome.report.level1.transformed()) continue;
      ++transformed;
      for (const transform::Technique technique :
           response.outcome.report.techniques) {
        ++technique_positives[static_cast<std::size_t>(technique)];
      }
    }

    JsonWriter row;
    row.begin_object();
    row.key("month"); row.value(label);
    row.key("scripts"); row.value(sources.size());
    row.key("new_scripts"); row.value(new_scripts);
    row.key("carried"); row.value(sources.size() - new_scripts);
    row.key("transformed_share");
    row.value(predicted > 0 ? static_cast<double>(transformed) /
                                  static_cast<double>(predicted)
                            : 0.0);
    row.key("techniques");
    row.begin_object();
    for (const transform::Technique technique : transform::all_techniques()) {
      row.key(transform::technique_name(technique));
      row.value(technique_positives[static_cast<std::size_t>(technique)]);
    }
    row.end_object();
    row.key("cache");
    if (cache) {
      row.begin_object();
      row.key("hits"); row.value(static_cast<std::size_t>(month_hits));
      row.key("misses"); row.value(static_cast<std::size_t>(month_misses));
      row.end_object();
    } else {
      row.null();
    }
    row.key("stats");
    row.raw(batch.stats.to_json());
    row.end_object();
    out << row.str() << '\n';

    std::fprintf(stderr,
                 "[snapshot] %s: %zu scripts (%zu new), cache hits %llu, "
                 "misses %llu, wall %.1f ms\n",
                 label.c_str(), sources.size(), new_scripts,
                 static_cast<unsigned long long>(month_hits),
                 static_cast<unsigned long long>(month_misses),
                 batch.stats.wall_ms);

    // The snapshot-diff invariant: with a warm cache and serial workers,
    // the pipeline runs exactly once per content-new script.
    if (options.verify && cache &&
        options.cache.mode == CacheMode::kDefault &&
        month_misses != new_scripts) {
      std::fprintf(stderr,
                   "[snapshot] VERIFY FAILED %s: %llu misses != %zu "
                   "content-new scripts\n",
                   label.c_str(),
                   static_cast<unsigned long long>(month_misses),
                   new_scripts);
      verify_failed = true;
    }
  }

  if (cache) {
    const analysis::ResultCache::Counters counters = cache->counters();
    std::fprintf(stderr,
                 "[snapshot] cache totals: %llu hits, %llu misses, %llu "
                 "stores, %llu evictions (%zu memory entries, %zu disk "
                 "records)\n",
                 static_cast<unsigned long long>(counters.hits),
                 static_cast<unsigned long long>(counters.misses),
                 static_cast<unsigned long long>(counters.stores),
                 static_cast<unsigned long long>(counters.evictions),
                 counters.entries, counters.disk_records);
  }
  if (verify_failed) return 1;
  if (options.require_hits && total_hits == 0) {
    std::fprintf(stderr,
                 "[snapshot] --require-hits: cache never hit over %zu "
                 "month(s)\n",
                 options.months);
    return 1;
  }
  return 0;
}
