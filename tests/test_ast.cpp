#include <gtest/gtest.h>

#include "ast/ast.h"
#include "ast/walk.h"
#include "parser/parser.h"

namespace jst {
namespace {

TEST(Ast, NodeKindNamesAreEsprimaCompatible) {
  EXPECT_EQ(node_kind_name(NodeKind::kProgram), "Program");
  EXPECT_EQ(node_kind_name(NodeKind::kVariableDeclaration),
            "VariableDeclaration");
  EXPECT_EQ(node_kind_name(NodeKind::kArrowFunctionExpression),
            "ArrowFunctionExpression");
  EXPECT_EQ(node_kind_name(NodeKind::kConditionalExpression),
            "ConditionalExpression");
  EXPECT_EQ(node_kind_name(NodeKind::kTaggedTemplateExpression),
            "TaggedTemplateExpression");
}

TEST(Ast, FactoryHelpers) {
  Ast ast;
  Node* id = ast.make_identifier("x");
  EXPECT_EQ(id->kind, NodeKind::kIdentifier);
  EXPECT_EQ(id->str_value, "x");

  Node* str = ast.make_string("hi");
  EXPECT_EQ(str->lit_kind, LiteralKind::kString);

  Node* num = ast.make_number(3.5);
  EXPECT_DOUBLE_EQ(num->num_value, 3.5);

  Node* truthy = ast.make_bool(true);
  EXPECT_EQ(truthy->lit_kind, LiteralKind::kBoolean);
  EXPECT_DOUBLE_EQ(truthy->num_value, 1.0);

  Node* null_node = ast.make_null();
  EXPECT_EQ(null_node->lit_kind, LiteralKind::kNull);

  Node* regex = ast.make_regex("a+", "gi");
  EXPECT_EQ(regex->lit_kind, LiteralKind::kRegExp);
  EXPECT_EQ(regex->raw, "gi");

  EXPECT_EQ(ast.allocated(), 6u);
}

TEST(Ast, ClassifierPredicates) {
  const ParseResult result = parse_program(
      "if (a) {} for (;;) {} var f = () => 1; function g() {}");
  std::size_t statements = 0;
  std::size_t functions = 0;
  std::size_t loops = 0;
  walk_preorder(static_cast<const Node*>(result.ast.root()),
                [&](const Node& node) {
                  if (node.is_statement()) ++statements;
                  if (node.is_function()) ++functions;
                  if (node.is_loop()) ++loops;
                });
  EXPECT_GE(statements, 4u);
  EXPECT_EQ(functions, 2u);
  EXPECT_EQ(loops, 1u);
}

TEST(Ast, FinalizeAssignsPreorderIds) {
  const ParseResult result = parse_program("var a = f(1) + 2;");
  std::uint32_t previous = 0;
  bool first = true;
  walk_preorder(static_cast<const Node*>(result.ast.root()),
                [&](const Node& node) {
                  if (!first) {
                    EXPECT_GT(node.id, previous);
                  }
                  previous = node.id;
                  first = false;
                });
  EXPECT_EQ(result.ast.root()->id, 0u);
}

TEST(Ast, FinalizeCountsReachableOnly) {
  Ast ast;
  Node* root = ast.make(NodeKind::kProgram);
  Node* statement = ast.make(NodeKind::kEmptyStatement);
  root->kids.push_back(statement);
  ast.make(NodeKind::kEmptyStatement);  // detached
  ast.set_root(root);
  EXPECT_EQ(ast.finalize(), 2u);
  EXPECT_EQ(ast.node_count(), 2u);
  EXPECT_EQ(ast.allocated(), 3u);
}

TEST(Ast, CloneIsDeepAndDetached) {
  ParseResult result = parse_program("var a = [1, 'two', f(3)];");
  Ast& ast = result.ast;
  Node* original = ast.root()->kids[0];
  Node* copy = ast.clone(original);
  ASSERT_NE(copy, original);
  EXPECT_EQ(copy->kind, original->kind);
  EXPECT_EQ(copy->kids.size(), original->kids.size());
  // Mutating the copy leaves the original untouched.
  copy->kids[0]->kids[0]->str_value = "renamed";
  EXPECT_EQ(original->kids[0]->kids[0]->str_value, "a");
}

TEST(Ast, CloneHandlesNullSlots) {
  ParseResult result = parse_program("if (a) b();");
  Node* if_statement = result.ast.root()->kids[0];
  ASSERT_EQ(if_statement->kids.size(), 3u);
  ASSERT_EQ(if_statement->kids[2], nullptr);
  Node* copy = result.ast.clone(if_statement);
  EXPECT_EQ(copy->kids[2], nullptr);
}

TEST(Walk, PreorderVisitsAllNodes) {
  const ParseResult result = parse_program("f(a, b + c);");
  std::size_t visited = 0;
  walk_preorder(static_cast<const Node*>(result.ast.root()),
                [&](const Node&) { ++visited; });
  EXPECT_EQ(visited, result.ast.node_count());
}

TEST(Walk, PostorderChildrenBeforeParents) {
  ParseResult result = parse_program("x = a + b;");
  std::vector<NodeKind> order;
  walk_postorder(result.ast.root(),
                 [&](Node& node) { order.push_back(node.kind); });
  // BinaryExpression must come after its identifier children and before
  // the assignment / statement / program wrappers.
  const auto position = [&](NodeKind kind) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == kind) return i;
    }
    return order.size();
  };
  EXPECT_LT(position(NodeKind::kBinaryExpression),
            position(NodeKind::kAssignmentExpression));
  EXPECT_EQ(order.back(), NodeKind::kProgram);
}

TEST(Walk, PreorderKindsMatchesNodeCount) {
  const ParseResult result = parse_program("function f() { return 1; }");
  EXPECT_EQ(preorder_kinds(result.ast.root()).size(), result.ast.node_count());
}

TEST(Walk, DepthAndBreadth) {
  const ParseResult narrow = parse_program("x = y;");
  const ParseResult wide = parse_program("f(1, 2, 3, 4, 5, 6, 7, 8);");
  EXPECT_GT(tree_breadth(wide.ast.root()), tree_breadth(narrow.ast.root()));
}

TEST(Walk, DepthOfNestedBlocks) {
  const ParseResult flat = parse_program("a();");
  const ParseResult nested = parse_program("{ { { a(); } } }");
  EXPECT_GT(tree_depth(nested.ast.root()), tree_depth(flat.ast.root()));
}

TEST(Walk, CountNodesOnNull) {
  EXPECT_EQ(count_nodes(nullptr), 0u);
  EXPECT_EQ(tree_depth(nullptr), 0u);
  EXPECT_EQ(tree_breadth(nullptr), 0u);
  EXPECT_TRUE(preorder_kinds(nullptr).empty());
}

TEST(Walk, CollectKindFindsEveryInstance) {
  ParseResult result = parse_program("a.b; c.d; e['f'];");
  EXPECT_EQ(collect_kind(result.ast.root(), NodeKind::kMemberExpression).size(),
            3u);
  EXPECT_TRUE(
      collect_kind(result.ast.root(), NodeKind::kClassDeclaration).empty());
}

TEST(Ast, MoveSemantics) {
  ParseResult result = parse_program("var q = 1;");
  const std::size_t count = result.ast.node_count();
  Ast moved = std::move(result.ast);
  EXPECT_EQ(moved.node_count(), count);
  ASSERT_NE(moved.root(), nullptr);
  EXPECT_EQ(moved.root()->kind, NodeKind::kProgram);
}

}  // namespace
}  // namespace jst
