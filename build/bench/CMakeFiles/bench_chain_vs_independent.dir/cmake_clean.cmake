file(REMOVE_RECURSE
  "CMakeFiles/bench_chain_vs_independent.dir/bench_chain_vs_independent.cpp.o"
  "CMakeFiles/bench_chain_vs_independent.dir/bench_chain_vs_independent.cpp.o.d"
  "bench_chain_vs_independent"
  "bench_chain_vs_independent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chain_vs_independent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
