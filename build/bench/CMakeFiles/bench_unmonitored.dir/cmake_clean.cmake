file(REMOVE_RECURSE
  "CMakeFiles/bench_unmonitored.dir/bench_unmonitored.cpp.o"
  "CMakeFiles/bench_unmonitored.dir/bench_unmonitored.cpp.o.d"
  "bench_unmonitored"
  "bench_unmonitored.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unmonitored.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
