#include "obs/request_context.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>

namespace jst::obs {
namespace {

// Thread-local id slot. A fixed buffer (not std::string) so reads during
// thread teardown and from signal-adjacent paths never allocate.
thread_local char t_request_id[kRequestIdLength + 1] = {0};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t process_seed() {
  static const std::uint64_t kSeed = [] {
    std::random_device rd;
    const std::uint64_t entropy =
        (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    const std::uint64_t clock = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return splitmix64(entropy ^ clock);
  }();
  return kSeed;
}

}  // namespace

std::string_view current_request_id() { return t_request_id; }

std::string generate_request_id() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t value = splitmix64(
      process_seed() + counter.fetch_add(1, std::memory_order_relaxed));
  char buffer[kRequestIdLength + 1];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buffer, kRequestIdLength);
}

bool is_valid_request_id(std::string_view id) {
  if (id.size() != kRequestIdLength) return false;
  for (char c : id) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

RequestScope::RequestScope(std::string_view id) {
  std::memcpy(saved_, t_request_id, sizeof(saved_));
  const std::size_t n = id.size() < kRequestIdLength ? id.size()
                                                     : kRequestIdLength;
  std::memcpy(t_request_id, id.data(), n);
  t_request_id[n] = '\0';
}

RequestScope::~RequestScope() {
  std::memcpy(t_request_id, saved_, sizeof(saved_));
}

}  // namespace jst::obs
