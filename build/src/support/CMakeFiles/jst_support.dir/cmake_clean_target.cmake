file(REMOVE_RECURSE
  "libjst_support.a"
)
