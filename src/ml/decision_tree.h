// CART binary decision tree with probability estimates.
//
// Replaces the scikit-learn tree the paper builds on. Splits minimize Gini
// impurity; leaves store the positive-class fraction of their training
// samples, so predict() yields calibrated-ish probabilities that the
// forest averages.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "support/rng.h"

namespace jst::ml {

// Row-major dense feature matrix view.
struct Matrix {
  const std::vector<std::vector<float>>* rows = nullptr;
  std::size_t row_count() const { return rows == nullptr ? 0 : rows->size(); }
  std::size_t column_count() const {
    return row_count() == 0 ? 0 : (*rows)[0].size();
  }
  float at(std::size_t row, std::size_t column) const {
    return (*rows)[row][column];
  }
};

// How fit() produces the per-feature sorted (value, label) sequence a
// split scan consumes. Both strategies yield byte-for-byte identical
// fitted trees (asserted by test_ml's serialization-hash test): the
// presorted filter emits exactly the sequence gather+sort would, so the
// choice is purely a performance knob.
//   kGather    — per node: gather the node's pairs and std::sort them
//                (the historical code path; O(n log n) per feature).
//   kPresorted — per tree: lazily sort each feature's bootstrap column
//                once, then per node filter that ordering through a
//                multiplicity count array (O(N) walk, no re-sorting).
//   kAuto      — presorted filter for nodes holding a large share of the
//                tree's samples (where the O(N) walk is cheaper than
//                re-sorting), gather+sort for small deep nodes.
enum class SplitFinder : std::uint8_t {
  kAuto,
  kGather,
  kPresorted,
};

struct TreeParams {
  std::size_t max_depth = 24;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 1;
  // Number of feature candidates per split; 0 = sqrt(feature count).
  std::size_t max_features = 0;
  SplitFinder split_finder = SplitFinder::kAuto;
};

// Serialization encoding for trained models (see analysis/model_io.h for
// the header that sits in front of detector-level streams). Text is the
// historical human-readable format and stays loadable forever; binary is
// the fast path for forest-sized models (fixed-width little-endian node
// records instead of decimal round-trips). Loaders auto-detect from the
// per-component magic, so either encoding reads back transparently.
enum class ModelEncoding : std::uint8_t {
  kText,
  kBinary,
};

class DecisionTree {
 public:
  // One node of the fitted tree. Kept public (it is plain data) so the
  // compiled inference fast path (compiled_forest.h) can flatten the
  // node table without re-walking predictions through this class.
  struct TreeNode {
    std::int32_t feature = -1;       // -1 for leaves
    float threshold = 0.0f;          // go left when value <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    float value = 0.0f;              // leaf: positive-class probability
    float importance = 0.0f;         // weighted impurity decrease
  };

  // Fits on the samples selected by `indices` (bootstrap subset).
  void fit(const Matrix& data, std::span<const std::uint8_t> labels,
           std::span<const std::size_t> indices, const TreeParams& params,
           Rng& rng);

  // Probability of the positive class.
  double predict(std::span<const float> row) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const { return depth_; }
  std::size_t feature_count() const { return feature_count_; }

  // Fitted node table (root = index 0; internal nodes precede their
  // subtrees). Read-only view for flattening/inspection.
  std::span<const TreeNode> nodes() const { return nodes_; }

  // Accumulates impurity-decrease feature importances into `out`
  // (size = feature count).
  void add_feature_importance(std::vector<double>& out) const;

  // Text serialization (whitespace-separated; version-checked by the
  // forest wrapper).
  void save(std::ostream& out) const;
  void load(std::istream& in);

  // Binary serialization: raw little-endian node records (much faster
  // than the decimal text round-trip for forest-sized models). Framed by
  // the forest wrapper's versioned magic; throws ModelError on
  // truncation.
  void save_binary(std::ostream& out) const;
  void load_binary(std::istream& in);

 private:
  // Per-fit scratch for split finding (freed when fit returns). The
  // presorted columns are computed lazily — a feature pays its one-time
  // O(N log N) sort only when the auto/presorted policy first consults it.
  struct SplitScratch {
    // Per feature: the tree's bootstrap row ids (one entry per slot,
    // duplicates included) ordered by (feature value, label). Empty until
    // first use.
    std::vector<std::vector<std::uint32_t>> sorted_slots;
    // Row-id multiplicity workspace for the presorted filter; all zeros
    // between uses (each walk consumes exactly what it planted).
    std::vector<std::uint32_t> counts;
    // The bootstrap multiset fit() was called with (rows, slot order).
    std::vector<std::uint32_t> bootstrap;
  };

  std::int32_t build(const Matrix& data, std::span<const std::uint8_t> labels,
                     std::vector<std::size_t>& indices, std::size_t begin,
                     std::size_t end, std::size_t depth,
                     const TreeParams& params, Rng& rng,
                     SplitScratch& scratch);

  std::vector<TreeNode> nodes_;
  std::size_t depth_ = 0;
  std::size_t feature_count_ = 0;
};

}  // namespace jst::ml
