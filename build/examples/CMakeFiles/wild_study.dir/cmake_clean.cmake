file(REMOVE_RECURSE
  "CMakeFiles/wild_study.dir/wild_study.cpp.o"
  "CMakeFiles/wild_study.dir/wild_study.cpp.o.d"
  "wild_study"
  "wild_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wild_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
