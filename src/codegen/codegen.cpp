#include "codegen/codegen.h"

#include <cmath>
#include <cstdio>

#include "support/error.h"
#include "support/strings.h"

// codegen depends on support/strings for escape helpers.

namespace jst {
namespace {

// Expression precedence levels (higher binds tighter).
enum Precedence : int {
  kPrecSequence = 0,
  kPrecAssignment = 1,
  kPrecConditional = 2,
  kPrecNullish = 3,
  kPrecLogicalOr = 4,
  kPrecLogicalAnd = 5,
  kPrecBitOr = 6,
  kPrecBitXor = 7,
  kPrecBitAnd = 8,
  kPrecEquality = 9,
  kPrecRelational = 10,
  kPrecShift = 11,
  kPrecAdditive = 12,
  kPrecMultiplicative = 13,
  kPrecExponent = 14,
  kPrecUnary = 15,
  kPrecPostfix = 16,
  kPrecNewNoArgs = 17,
  kPrecCallMember = 18,
  kPrecPrimary = 19,
};

int binary_op_precedence(std::string_view op) {
  if (op == "??") return kPrecNullish;
  if (op == "||") return kPrecLogicalOr;
  if (op == "&&") return kPrecLogicalAnd;
  if (op == "|") return kPrecBitOr;
  if (op == "^") return kPrecBitXor;
  if (op == "&") return kPrecBitAnd;
  if (op == "==" || op == "!=" || op == "===" || op == "!==") {
    return kPrecEquality;
  }
  if (op == "<" || op == ">" || op == "<=" || op == ">=" || op == "in" ||
      op == "instanceof") {
    return kPrecRelational;
  }
  if (op == "<<" || op == ">>" || op == ">>>") return kPrecShift;
  if (op == "+" || op == "-") return kPrecAdditive;
  if (op == "*" || op == "/" || op == "%") return kPrecMultiplicative;
  if (op == "**") return kPrecExponent;
  return kPrecPrimary;
}

int expression_precedence(const Node& node) {
  switch (node.kind) {
    case NodeKind::kSequenceExpression: return kPrecSequence;
    case NodeKind::kAssignmentExpression:
    case NodeKind::kArrowFunctionExpression:
    case NodeKind::kYieldExpression:
      return kPrecAssignment;
    case NodeKind::kConditionalExpression: return kPrecConditional;
    case NodeKind::kBinaryExpression:
    case NodeKind::kLogicalExpression:
      return binary_op_precedence(node.str_value);
    case NodeKind::kUnaryExpression:
    case NodeKind::kAwaitExpression:
      return kPrecUnary;
    case NodeKind::kUpdateExpression:
      return node.flag_a ? kPrecUnary : kPrecPostfix;
    case NodeKind::kNewExpression:
      return node.kids.size() > 1 ? kPrecCallMember : kPrecNewNoArgs;
    case NodeKind::kCallExpression:
    case NodeKind::kMemberExpression:
    case NodeKind::kTaggedTemplateExpression:
      return kPrecCallMember;
    default:
      return kPrecPrimary;
  }
}

bool is_identifier_char(char c) {
  return strings::is_ascii_alnum(c) || c == '_' || c == '$';
}

// Does an expression's leftmost token open with one of the forms that are
// illegal at the start of an ExpressionStatement?
bool starts_with_curly_or_function(const Node& node) {
  switch (node.kind) {
    case NodeKind::kObjectExpression:
    case NodeKind::kFunctionExpression:
    case NodeKind::kClassExpression:
      return true;
    case NodeKind::kMemberExpression:
    case NodeKind::kCallExpression:
    case NodeKind::kTaggedTemplateExpression:
      return node.kids.empty() ? false
                               : starts_with_curly_or_function(*node.kids[0]);
    case NodeKind::kBinaryExpression:
    case NodeKind::kLogicalExpression:
    case NodeKind::kAssignmentExpression:
    case NodeKind::kConditionalExpression:
    case NodeKind::kSequenceExpression:
      return node.kids.empty() || node.kids[0] == nullptr
                 ? false
                 : starts_with_curly_or_function(*node.kids[0]);
    case NodeKind::kUpdateExpression:
      return !node.flag_a && !node.kids.empty() &&
             starts_with_curly_or_function(*node.kids[0]);
    default:
      return false;
  }
}

class Printer {
 public:
  explicit Printer(const CodegenOptions& options) : options_(options) {}

  std::string take() { return std::move(out_); }

  void emit_program(const Node& node) {
    for (const Node* statement : node.kids) {
      emit_statement(*statement);
    }
  }

  void emit_any(const Node& node) {
    if (node.is_statement() || node.kind == NodeKind::kProgram) {
      if (node.kind == NodeKind::kProgram) {
        emit_program(node);
      } else {
        emit_statement(node);
      }
    } else {
      emit_expression(node, kPrecSequence);
    }
  }

 private:
  // --- low-level writer ---
  void raw(std::string_view text) {
    out_ += text;
    column_ += text.size();
  }

  // Writes `text`, inserting a separating space if gluing would fuse tokens
  // (identifier chars, or `+ +` / `- -` sequences).
  void token(std::string_view text) {
    if (!out_.empty() && !text.empty()) {
      const char last = out_.back();
      const char first = text.front();
      const bool fuse_ident = is_identifier_char(last) && is_identifier_char(first);
      const bool fuse_sign =
          (last == '+' && first == '+') || (last == '-' && first == '-');
      if (fuse_ident || fuse_sign) raw(" ");
    }
    raw(text);
  }

  void space() {
    if (!options_.minify) raw(" ");
  }

  void newline() {
    if (options_.minify) {
      if (options_.minified_line_limit > 0 &&
          column_ >= options_.minified_line_limit && !out_.empty() &&
          out_.back() == ';') {
        out_ += '\n';
        column_ = 0;
      }
      return;
    }
    out_ += '\n';
    column_ = 0;
    for (int i = 0; i < indent_ * options_.indent_width; ++i) {
      out_ += ' ';
      ++column_;
    }
  }

  void open_brace() {
    token("{");
    ++indent_;
    newline();
  }

  void close_brace() {
    --indent_;
    // Remove the indentation of an empty line before '}'.
    trim_trailing_indent();
    newline_before_close();
    token("}");
  }

  void trim_trailing_indent() {
    while (!out_.empty() && out_.back() == ' ') {
      out_.pop_back();
      if (column_ > 0) --column_;
    }
  }

  void newline_before_close() {
    if (options_.minify) return;
    if (!out_.empty() && out_.back() != '\n') {
      out_ += '\n';
      column_ = 0;
    }
    for (int i = 0; i < indent_ * options_.indent_width; ++i) {
      out_ += ' ';
      ++column_;
    }
  }

  // --- statements ---
  void emit_statement(const Node& node) {
    switch (node.kind) {
      case NodeKind::kExpressionStatement: {
        const Node& expression = *node.kids[0];
        if (starts_with_curly_or_function(expression)) {
          token("(");
          emit_expression(expression, kPrecSequence);
          token(")");
        } else {
          emit_expression(expression, kPrecSequence);
        }
        token(";");
        newline();
        break;
      }
      case NodeKind::kBlockStatement:
        emit_block(node);
        newline();
        break;
      case NodeKind::kVariableDeclaration:
        emit_variable_declaration(node);
        token(";");
        newline();
        break;
      case NodeKind::kFunctionDeclaration:
        emit_function(node, /*is_declaration=*/true);
        newline();
        break;
      case NodeKind::kClassDeclaration:
        emit_class(node);
        newline();
        break;
      case NodeKind::kReturnStatement:
        token("return");
        if (node.kid(0) != nullptr) {
          space_or_sep();
          emit_expression(*node.kids[0], kPrecSequence);
        }
        token(";");
        newline();
        break;
      case NodeKind::kIfStatement: {
        token("if");
        space();
        token("(");
        emit_expression(*node.kids[0], kPrecSequence);
        token(")");
        emit_nested_statement(*node.kids[1]);
        if (node.kid(2) != nullptr) {
          before_keyword_after_block();
          token("else");
          if (node.kids[2]->kind == NodeKind::kIfStatement) {
            raw(" ");
            emit_statement(*node.kids[2]);
          } else {
            emit_nested_statement(*node.kids[2]);
            newline();
          }
        } else {
          newline();
        }
        break;
      }
      case NodeKind::kForStatement: {
        token("for");
        space();
        token("(");
        if (node.kid(0) != nullptr) {
          if (node.kids[0]->kind == NodeKind::kVariableDeclaration) {
            emit_variable_declaration(*node.kids[0]);
          } else {
            emit_expression(*node.kids[0], kPrecSequence);
          }
        }
        token(";");
        if (node.kid(1) != nullptr) {
          space();
          emit_expression(*node.kids[1], kPrecSequence);
        }
        token(";");
        if (node.kid(2) != nullptr) {
          space();
          emit_expression(*node.kids[2], kPrecSequence);
        }
        token(")");
        emit_nested_statement(*node.kids[3]);
        newline();
        break;
      }
      case NodeKind::kForInStatement:
      case NodeKind::kForOfStatement: {
        token("for");
        space();
        token("(");
        if (node.kids[0]->kind == NodeKind::kVariableDeclaration) {
          emit_variable_declaration(*node.kids[0]);
        } else {
          emit_expression(*node.kids[0], kPrecCallMember);
        }
        token(node.kind == NodeKind::kForInStatement ? "in" : "of");
        emit_expression(*node.kids[1], kPrecAssignment);
        token(")");
        emit_nested_statement(*node.kids[2]);
        newline();
        break;
      }
      case NodeKind::kWhileStatement:
        token("while");
        space();
        token("(");
        emit_expression(*node.kids[0], kPrecSequence);
        token(")");
        emit_nested_statement(*node.kids[1]);
        newline();
        break;
      case NodeKind::kDoWhileStatement:
        token("do");
        emit_nested_statement(*node.kids[0]);
        before_keyword_after_block();
        token("while");
        space();
        token("(");
        emit_expression(*node.kids[1], kPrecSequence);
        token(")");
        token(";");
        newline();
        break;
      case NodeKind::kSwitchStatement: {
        token("switch");
        space();
        token("(");
        emit_expression(*node.kids[0], kPrecSequence);
        token(")");
        space();
        open_brace();
        for (std::size_t i = 1; i < node.kids.size(); ++i) {
          const Node& switch_case = *node.kids[i];
          if (switch_case.kid(0) != nullptr) {
            token("case");
            space_or_sep();
            emit_expression(*switch_case.kids[0], kPrecSequence);
            token(":");
          } else {
            token("default");
            token(":");
          }
          newline();
          ++indent_;
          for (std::size_t j = 1; j < switch_case.kids.size(); ++j) {
            if (!options_.minify && j == 1) {
              trim_trailing_indent();
              newline_before_close();
            }
            emit_statement(*switch_case.kids[j]);
          }
          --indent_;
          if (!options_.minify) {
            trim_trailing_indent();
            newline_before_close();
          }
        }
        close_brace();
        newline();
        break;
      }
      case NodeKind::kBreakStatement:
      case NodeKind::kContinueStatement:
        token(node.kind == NodeKind::kBreakStatement ? "break" : "continue");
        if (node.kid(0) != nullptr) {
          raw(" ");
          token(node.kids[0]->str_value);
        }
        token(";");
        newline();
        break;
      case NodeKind::kThrowStatement:
        token("throw");
        raw(" ");
        emit_expression(*node.kids[0], kPrecSequence);
        token(";");
        newline();
        break;
      case NodeKind::kTryStatement:
        token("try");
        space();
        emit_block(*node.kids[0]);
        if (node.kid(1) != nullptr) {
          const Node& handler = *node.kids[1];
          before_keyword_after_block();
          token("catch");
          if (handler.kid(0) != nullptr) {
            space();
            token("(");
            emit_binding(*handler.kids[0]);
            token(")");
          }
          space();
          emit_block(*handler.kids[1]);
        }
        if (node.kid(2) != nullptr) {
          before_keyword_after_block();
          token("finally");
          space();
          emit_block(*node.kids[2]);
        }
        newline();
        break;
      case NodeKind::kLabeledStatement:
        token(node.kids[0]->str_value);
        token(":");
        space();
        emit_statement(*node.kids[1]);
        break;
      case NodeKind::kEmptyStatement:
        token(";");
        newline();
        break;
      case NodeKind::kDebuggerStatement:
        token("debugger");
        token(";");
        newline();
        break;
      case NodeKind::kWithStatement:
        token("with");
        space();
        token("(");
        emit_expression(*node.kids[0], kPrecSequence);
        token(")");
        emit_nested_statement(*node.kids[1]);
        newline();
        break;
      default:
        throw InvalidArgument("emit_statement: not a statement: " +
                              std::string(node_kind_name(node.kind)));
    }
  }

  // Emits the body of if/for/while — block inline, single statement
  // indented on its own line (pretty) or inline (minified).
  void emit_nested_statement(const Node& body) {
    if (body.kind == NodeKind::kBlockStatement) {
      space();
      emit_block(body);
      return;
    }
    if (options_.minify) {
      emit_statement(body);
      return;
    }
    ++indent_;
    newline();
    emit_statement(body);
    --indent_;
    trim_trailing_indent();
    newline_before_close();
  }

  // After emitting a block or nested statement, `else`/`while`/`catch`
  // keywords follow; in pretty mode they sit on the same line as '}'.
  void before_keyword_after_block() {
    if (options_.minify) return;
    // Drop the trailing newline+indent so the keyword hugs the brace.
    while (!out_.empty() && (out_.back() == ' ' || out_.back() == '\n')) {
      out_.pop_back();
    }
    out_ += ' ';
    column_ = 0;
  }

  void space_or_sep() {
    if (options_.minify) {
      raw(" ");
    } else {
      raw(" ");
    }
  }

  void emit_block(const Node& block) {
    if (block.kids.empty()) {
      token("{");
      token("}");
      return;
    }
    open_brace();
    for (const Node* statement : block.kids) emit_statement(*statement);
    close_brace();
  }

  void emit_variable_declaration(const Node& node) {
    token(node.str_value);  // var / let / const
    raw(" ");
    for (std::size_t i = 0; i < node.kids.size(); ++i) {
      if (i > 0) {
        token(",");
        space();
      }
      const Node& declarator = *node.kids[i];
      emit_binding(*declarator.kids[0]);
      if (declarator.kid(1) != nullptr) {
        space();
        token("=");
        space();
        emit_expression(*declarator.kids[1], kPrecAssignment);
      }
    }
  }

  void emit_binding(const Node& node) {
    switch (node.kind) {
      case NodeKind::kIdentifier:
        token(node.str_value);
        break;
      case NodeKind::kArrayPattern: {
        token("[");
        for (std::size_t i = 0; i < node.kids.size(); ++i) {
          if (i > 0) {
            token(",");
            space();
          }
          if (node.kids[i] != nullptr) emit_binding(*node.kids[i]);
        }
        token("]");
        break;
      }
      case NodeKind::kObjectPattern: {
        token("{");
        for (std::size_t i = 0; i < node.kids.size(); ++i) {
          if (i > 0) {
            token(",");
            space();
          }
          const Node& property = *node.kids[i];
          if (property.kind == NodeKind::kRestElement) {
            token("...");
            emit_binding(*property.kids[0]);
            continue;
          }
          const Node* shorthand_value = property.kid(1);
          const bool shorthand_still_valid =
              property.flag_b && shorthand_value != nullptr &&
              ((shorthand_value->kind == NodeKind::kIdentifier &&
                shorthand_value->str_value == property.kids[0]->str_value) ||
               (shorthand_value->kind == NodeKind::kAssignmentPattern &&
                shorthand_value->kid(0) != nullptr &&
                shorthand_value->kids[0]->kind == NodeKind::kIdentifier &&
                shorthand_value->kids[0]->str_value ==
                    property.kids[0]->str_value));
          if (shorthand_still_valid) {
            emit_binding(*property.kids[1]);  // shorthand
          } else {
            emit_property_key(*property.kids[0], property.flag_a);
            token(":");
            space();
            emit_binding(*property.kids[1]);
          }
        }
        token("}");
        break;
      }
      case NodeKind::kAssignmentPattern:
        emit_binding(*node.kids[0]);
        space();
        token("=");
        space();
        emit_expression(*node.kids[1], kPrecAssignment);
        break;
      case NodeKind::kRestElement:
        token("...");
        emit_binding(*node.kids[0]);
        break;
      default:
        // Assignment targets in for-in heads etc. can be expressions.
        emit_expression(node, kPrecCallMember);
    }
  }

  void emit_property_key(const Node& key, bool computed) {
    if (computed) {
      token("[");
      emit_expression(key, kPrecAssignment);
      token("]");
      return;
    }
    if (key.kind == NodeKind::kIdentifier) {
      token(key.str_value);
    } else {
      emit_expression(key, kPrecPrimary);
    }
  }

  void emit_function(const Node& node, bool is_declaration) {
    if (node.flag_c) {
      token("async");
      raw(" ");
    }
    token("function");
    if (node.flag_b) token("*");
    if (node.kid(0) != nullptr) {
      raw(" ");
      token(node.kids[0]->str_value);
    }
    emit_params(node, /*first_param_index=*/2);
    space();
    emit_block(*node.kids[1]);
    (void)is_declaration;
  }

  void emit_params(const Node& function_node, std::size_t first_param_index) {
    token("(");
    for (std::size_t i = first_param_index; i < function_node.kids.size();
         ++i) {
      if (i > first_param_index) {
        token(",");
        space();
      }
      emit_binding(*function_node.kids[i]);
    }
    token(")");
  }

  void emit_class(const Node& node) {
    token("class");
    if (node.kid(0) != nullptr) {
      raw(" ");
      token(node.kids[0]->str_value);
    }
    if (node.kid(1) != nullptr) {
      raw(" ");
      token("extends");
      raw(" ");
      emit_expression(*node.kids[1], kPrecCallMember);
    }
    space();
    const Node& body = *node.kids[2];
    if (body.kids.empty()) {
      token("{");
      token("}");
      return;
    }
    open_brace();
    for (const Node* method_node : body.kids) {
      const Node& method = *method_node;
      const Node& function = *method.kids[1];
      if (method.flag_b) {
        token("static");
        raw(" ");
      }
      if (function.flag_c) {
        token("async");
        raw(" ");
      }
      if (function.flag_b) token("*");
      if (method.str_value == "get" || method.str_value == "set") {
        token(method.str_value);
        raw(" ");
      }
      emit_property_key(*method.kids[0], method.flag_a);
      emit_params(function, /*first_param_index=*/2);
      space();
      emit_block(*function.kids[1]);
      newline();
    }
    close_brace();
  }

  // --- expressions ---
  void emit_expression(const Node& node, int min_precedence) {
    const int precedence = expression_precedence(node);
    const bool needs_parens = precedence < min_precedence;
    if (needs_parens) token("(");
    emit_expression_inner(node);
    if (needs_parens) token(")");
  }

  void emit_expression_inner(const Node& node) {
    switch (node.kind) {
      case NodeKind::kIdentifier:
        token(node.str_value);
        break;
      case NodeKind::kLiteral:
        emit_literal(node);
        break;
      case NodeKind::kThisExpression:
        token("this");
        break;
      case NodeKind::kSuper:
        token("super");
        break;
      case NodeKind::kTemplateLiteral:
        emit_template(node);
        break;
      case NodeKind::kTaggedTemplateExpression:
        emit_expression(*node.kids[0], kPrecCallMember);
        emit_template(*node.kids[1]);
        break;
      case NodeKind::kArrayExpression: {
        token("[");
        for (std::size_t i = 0; i < node.kids.size(); ++i) {
          if (i > 0) {
            token(",");
            space();
          }
          if (node.kids[i] == nullptr) continue;  // elision
          emit_expression(*node.kids[i], kPrecAssignment);
        }
        token("]");
        break;
      }
      case NodeKind::kObjectExpression: {
        token("{");
        if (!options_.minify && node.kids.size() > 2) {
          ++indent_;
          newline();
        }
        for (std::size_t i = 0; i < node.kids.size(); ++i) {
          if (i > 0) {
            token(",");
            if (!options_.minify && node.kids.size() > 2) {
              newline();
            } else {
              space();
            }
          }
          emit_property(*node.kids[i]);
        }
        if (!options_.minify && node.kids.size() > 2) {
          --indent_;
          newline();
        }
        token("}");
        break;
      }
      case NodeKind::kFunctionExpression:
        emit_function(node, /*is_declaration=*/false);
        break;
      case NodeKind::kArrowFunctionExpression: {
        if (node.flag_c) {
          token("async");
          raw(" ");
        }
        const bool single_plain_param =
            node.kids.size() == 2 && node.kids[1] != nullptr &&
            node.kids[1]->kind == NodeKind::kIdentifier;
        if (single_plain_param && options_.minify) {
          token(node.kids[1]->str_value);
        } else {
          emit_params(node, /*first_param_index=*/1);
        }
        space();
        token("=>");
        space();
        const Node& body = *node.kids[0];
        if (node.flag_a) {
          // Expression body; object literals must be parenthesized.
          if (starts_with_curly_or_function(body)) {
            token("(");
            emit_expression(body, kPrecSequence);
            token(")");
          } else {
            emit_expression(body, kPrecAssignment);
          }
        } else {
          emit_block(body);
        }
        break;
      }
      case NodeKind::kClassExpression:
        emit_class(node);
        break;
      case NodeKind::kSequenceExpression: {
        for (std::size_t i = 0; i < node.kids.size(); ++i) {
          if (i > 0) {
            token(",");
            space();
          }
          emit_expression(*node.kids[i], kPrecAssignment);
        }
        break;
      }
      case NodeKind::kUnaryExpression: {
        token(node.str_value);
        if (node.str_value.size() > 2) raw(" ");  // typeof / void / delete
        emit_expression(*node.kids[0], kPrecUnary);
        break;
      }
      case NodeKind::kAwaitExpression:
        token("await");
        raw(" ");
        emit_expression(*node.kids[0], kPrecUnary);
        break;
      case NodeKind::kYieldExpression:
        token("yield");
        if (node.flag_a) token("*");
        if (node.kid(0) != nullptr) {
          raw(" ");
          emit_expression(*node.kids[0], kPrecAssignment);
        }
        break;
      case NodeKind::kUpdateExpression:
        if (node.flag_a) {
          token(node.str_value);
          emit_expression(*node.kids[0], kPrecUnary);
        } else {
          emit_expression(*node.kids[0], kPrecPostfix);
          token(node.str_value);
        }
        break;
      case NodeKind::kBinaryExpression:
      case NodeKind::kLogicalExpression: {
        const int precedence = binary_op_precedence(node.str_value);
        const bool right_assoc = node.str_value == "**";
        emit_expression(*node.kids[0],
                        right_assoc ? precedence + 1 : precedence);
        space();
        token(node.str_value);
        if (node.str_value == "in" || node.str_value == "instanceof") {
          raw(" ");
        } else {
          space();
        }
        emit_expression(*node.kids[1],
                        right_assoc ? precedence : precedence + 1);
        break;
      }
      case NodeKind::kAssignmentExpression:
        if (node.kids[0]->kind == NodeKind::kObjectPattern ||
            node.kids[0]->kind == NodeKind::kArrayPattern) {
          emit_binding(*node.kids[0]);
        } else {
          emit_expression(*node.kids[0], kPrecCallMember);
        }
        space();
        token(node.str_value);
        space();
        emit_expression(*node.kids[1], kPrecAssignment);
        break;
      case NodeKind::kConditionalExpression:
        emit_expression(*node.kids[0], kPrecConditional + 1);
        space();
        token("?");
        space();
        emit_expression(*node.kids[1], kPrecAssignment);
        space();
        token(":");
        space();
        emit_expression(*node.kids[2], kPrecAssignment);
        break;
      case NodeKind::kCallExpression: {
        emit_expression(*node.kids[0], kPrecCallMember);
        token("(");
        for (std::size_t i = 1; i < node.kids.size(); ++i) {
          if (i > 1) {
            token(",");
            space();
          }
          emit_expression(*node.kids[i], kPrecAssignment);
        }
        token(")");
        break;
      }
      case NodeKind::kNewExpression: {
        token("new");
        raw(" ");
        emit_expression(*node.kids[0], kPrecCallMember);
        token("(");
        for (std::size_t i = 1; i < node.kids.size(); ++i) {
          if (i > 1) {
            token(",");
            space();
          }
          emit_expression(*node.kids[i], kPrecAssignment);
        }
        token(")");
        break;
      }
      case NodeKind::kMemberExpression: {
        const Node& object = *node.kids[0];
        // `new X().y` needs the call-member precedence; plain numbers need
        // parens before '.' (1..toString() vs (1).toString()).
        const bool number_object =
            object.kind == NodeKind::kLiteral &&
            object.lit_kind == LiteralKind::kNumber;
        if (number_object && !node.flag_a) {
          token("(");
          emit_expression_inner(object);
          token(")");
        } else {
          emit_expression(object, kPrecCallMember);
        }
        if (node.flag_a) {
          token("[");
          emit_expression(*node.kids[1], kPrecSequence);
          token("]");
        } else {
          token(".");
          token(node.kids[1]->str_value);
        }
        break;
      }
      case NodeKind::kSpreadElement:
        token("...");
        emit_expression(*node.kids[0], kPrecAssignment);
        break;
      case NodeKind::kRestElement:
        token("...");
        emit_binding(*node.kids[0]);
        break;
      case NodeKind::kAssignmentPattern:
        emit_binding(node);
        break;
      case NodeKind::kArrayPattern:
      case NodeKind::kObjectPattern:
        emit_binding(node);
        break;
      case NodeKind::kProperty:
        emit_property(node);
        break;
      default:
        throw InvalidArgument("emit_expression: unsupported node: " +
                              std::string(node_kind_name(node.kind)));
    }
  }

  void emit_property(const Node& node) {
    if (node.kind == NodeKind::kSpreadElement) {
      token("...");
      emit_expression(*node.kids[0], kPrecAssignment);
      return;
    }
    const Node& key = *node.kids[0];
    const Node& value = *node.kids[1];
    if (node.str_value == "get" || node.str_value == "set") {
      token(node.str_value);
      raw(" ");
      emit_property_key(key, node.flag_a);
      emit_params(value, /*first_param_index=*/2);
      space();
      emit_block(*value.kids[1]);
      return;
    }
    if (value.kind == NodeKind::kFunctionExpression && !node.flag_b &&
        value.kid(0) == nullptr && node.str_value == "init" &&
        value.parent == &node) {
      // Heuristic: printed as method shorthand only when built that way is
      // indistinguishable; print the explicit key:function form for clarity.
    }
    if (node.flag_b && !node.flag_a &&
        key.kind == NodeKind::kIdentifier &&
        value.kind == NodeKind::kIdentifier &&
        key.str_value == value.str_value) {
      // Shorthand {a} — only while key and value still agree (renaming
      // transformers may have renamed the value binding).
      emit_expression(value, kPrecAssignment);
      return;
    }
    emit_property_key(key, node.flag_a);
    token(":");
    space();
    emit_expression(value, kPrecAssignment);
  }

  void emit_literal(const Node& node) {
    switch (node.lit_kind) {
      case LiteralKind::kString: {
        // Transformer-forced escape modes: flag_a = hex-escape every
        // character (\xHH), flag_b = unicode-escape (\uHHHH).
        if (node.flag_a || node.flag_b) {
          const std::string escaped =
              node.flag_a ? strings::hex_escape_all(node.str_value)
                          : strings::unicode_escape_all(node.str_value);
          raw("\"");
          raw(escaped);
          raw("\"");
          break;
        }
        const char quote = options_.single_quotes ? '\'' : '"';
        raw(std::string(1, quote));
        for (char c : node.str_value) {
          switch (c) {
            case '\'':
              raw(quote == '\'' ? "\\'" : "'");
              break;
            case '"':
              raw(quote == '"' ? "\\\"" : "\"");
              break;
            case '\\': raw("\\\\"); break;
            case '\n': raw("\\n"); break;
            case '\r': raw("\\r"); break;
            case '\t': raw("\\t"); break;
            case '\b': raw("\\b"); break;
            case '\f': raw("\\f"); break;
            case '\v': raw("\\v"); break;
            case '\0': raw("\\x00"); break;
            default:
              if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\x%02x",
                              static_cast<unsigned char>(c));
                raw(buf);
              } else {
                raw(std::string(1, c));
              }
          }
        }
        raw(std::string(1, quote));
        column_ += node.str_value.size() + 2;
        break;
      }
      case LiteralKind::kNumber: {
        if (!node.raw.empty()) {
          token(node.raw);
        } else if (node.num_value == std::floor(node.num_value) &&
                   std::abs(node.num_value) < 1e15) {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%.0f", node.num_value);
          token(buf);
        } else {
          char buf[64];
          std::snprintf(buf, sizeof buf, "%.17g", node.num_value);
          token(buf);
        }
        break;
      }
      case LiteralKind::kBoolean:
        token(node.num_value != 0.0 ? "true" : "false");
        break;
      case LiteralKind::kNull:
        token("null");
        break;
      case LiteralKind::kRegExp:
        token("/" + std::string(node.str_value) + "/" + std::string(node.raw));
        break;
    }
  }

  void emit_template(const Node& node) {
    raw("`");
    // Children interleave TemplateElement and expression nodes.
    for (const Node* kid : node.kids) {
      if (kid->kind == NodeKind::kTemplateElement) {
        raw(kid->str_value);
      } else {
        raw("${");
        emit_expression(*kid, kPrecSequence);
        raw("}");
      }
    }
    raw("`");
  }

  const CodegenOptions& options_;
  std::string out_;
  std::size_t column_ = 0;
  int indent_ = 0;
};

}  // namespace jst::(anonymous)

std::string generate(const Node* root, const CodegenOptions& options) {
  if (root == nullptr) return "";
  Printer printer(options);
  printer.emit_any(*root);
  std::string out = printer.take();
  // Normalize: strip trailing blank space, ensure single trailing newline in
  // pretty mode.
  while (!out.empty() && (out.back() == ' ' || out.back() == '\n')) {
    out.pop_back();
  }
  if (!options.minify && !out.empty()) out += '\n';
  return out;
}

std::string to_source(const Node* root) { return generate(root, {}); }

std::string to_minified_source(const Node* root) {
  CodegenOptions options;
  options.minify = true;
  return generate(root, options);
}

}  // namespace jst
