#include "analysis/wire.h"

#include <utility>

#include "obs/request_context.h"
#include "transform/technique.h"

namespace jst::analysis::wire {
namespace {

bool parse_output_detail(std::string_view text, OutputDetail& detail) {
  if (text == "status") detail = OutputDetail::kStatus;
  else if (text == "summary") detail = OutputDetail::kSummary;
  else if (text == "full") detail = OutputDetail::kFull;
  else return false;
  return true;
}

bool parse_response_status(std::string_view text, ResponseStatus& status) {
  if (text == "ok") status = ResponseStatus::kOk;
  else if (text == "invalid_request") status = ResponseStatus::kInvalidRequest;
  else if (text == "not_found") status = ResponseStatus::kNotFound;
  else if (text == "overloaded") status = ResponseStatus::kOverloaded;
  else if (text == "draining") status = ResponseStatus::kDraining;
  else return false;
  return true;
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// Reads an optional non-negative count field into `field`; false + error
// on a wrong type or a negative/fractional value.
bool read_size_field(const support::JsonValue& value, const char* name,
                     std::size_t& field, std::string* error) {
  if (!value.is_number() || value.as_number() < 0.0) {
    set_error(error, std::string("limits.") + name +
                         ": expected a non-negative number");
    return false;
  }
  field = static_cast<std::size_t>(value.as_number());
  return true;
}

}  // namespace

void write_resource_limits(JsonWriter& writer, const ResourceLimits& limits) {
  writer.begin_object();
  if (limits.max_source_bytes > 0) {
    writer.key("max_source_bytes");
    writer.value(limits.max_source_bytes);
  }
  if (limits.max_tokens > 0) {
    writer.key("max_tokens");
    writer.value(limits.max_tokens);
  }
  if (limits.max_ast_nodes > 0) {
    writer.key("max_ast_nodes");
    writer.value(limits.max_ast_nodes);
  }
  if (limits.max_ast_depth > 0) {
    writer.key("max_ast_depth");
    writer.value(limits.max_ast_depth);
  }
  if (limits.max_dataflow_edges > 0) {
    writer.key("max_dataflow_edges");
    writer.value(limits.max_dataflow_edges);
  }
  if (limits.deadline_ms > 0.0) {
    writer.key("deadline_ms");
    writer.value(limits.deadline_ms);
  }
  writer.end_object();
}

void write_script_outcome(JsonWriter& writer, const ScriptOutcome& outcome,
                          OutputDetail detail) {
  writer.begin_object();
  writer.key("status"); writer.value(to_string(outcome.status));
  if (detail == OutputDetail::kStatus) {
    writer.end_object();
    return;
  }
  writer.key("degraded"); writer.value(outcome.degraded());
  if (!outcome.error_message.empty()) {
    writer.key("error"); writer.value(outcome.error_message);
  }
  writer.key("timing");
  writer.begin_object();
  writer.key("total_ms"); writer.value(outcome.timing.total_ms);
  writer.key("static_analysis_ms");
  writer.value(outcome.timing.static_analysis_ms);
  writer.key("features_ms"); writer.value(outcome.timing.features_ms);
  writer.key("inference_ms"); writer.value(outcome.timing.inference_ms);
  writer.end_object();
  writer.key("budget");
  if (outcome.budget.has_value()) {
    writer.begin_object();
    writer.key("kind"); writer.value(jst::to_string(outcome.budget->kind));
    writer.key("limit"); writer.value(outcome.budget->limit);
    writer.key("observed"); writer.value(outcome.budget->observed);
    writer.key("stage"); writer.value(outcome.budget->stage);
    writer.end_object();
  } else {
    writer.null();
  }
  if (!outcome.skipped_stages.empty()) {
    writer.key("skipped_stages");
    writer.begin_array();
    for (const std::string& stage : outcome.skipped_stages) {
      writer.value(stage);
    }
    writer.end_array();
  }
  if (detail == OutputDetail::kSummary) {
    writer.end_object();
    return;
  }
  if (!outcome.partial_features.empty()) {
    writer.key("partial_features");
    writer.begin_array();
    for (const float value : outcome.partial_features) {
      writer.value(static_cast<double>(value));
    }
    writer.end_array();
  }
  writer.key("report");
  if (outcome.has_predictions()) {
    writer.begin_object();
    writer.key("p_regular"); writer.value(outcome.report.level1.p_regular);
    writer.key("p_minified"); writer.value(outcome.report.level1.p_minified);
    writer.key("p_obfuscated");
    writer.value(outcome.report.level1.p_obfuscated);
    writer.key("transformed");
    writer.value(outcome.report.level1.transformed());
    writer.key("technique_confidence");
    writer.begin_array();
    for (const double confidence : outcome.report.technique_confidence) {
      writer.value(confidence);
    }
    writer.end_array();
    writer.key("techniques");
    writer.begin_array();
    for (const transform::Technique technique : outcome.report.techniques) {
      writer.value(transform::technique_name(technique));
    }
    writer.end_array();
    writer.end_object();
  } else {
    writer.null();
  }
  writer.end_object();
}

void write_batch_stats(JsonWriter& writer, const BatchStats& stats) {
  writer.begin_object();
  writer.key("total"); writer.value(stats.total);
  writer.key("ok"); writer.value(stats.ok);
  writer.key("parse_errors"); writer.value(stats.parse_errors);
  writer.key("ineligible_size"); writer.value(stats.ineligible_size);
  writer.key("ineligible_ast"); writer.value(stats.ineligible_ast);
  writer.key("budget_tokens"); writer.value(stats.budget_tokens);
  writer.key("budget_ast_nodes"); writer.value(stats.budget_ast_nodes);
  writer.key("budget_depth"); writer.value(stats.budget_depth);
  writer.key("budget_dataflow"); writer.value(stats.budget_dataflow);
  writer.key("deadline_exceeded"); writer.value(stats.deadline_exceeded);
  writer.key("degraded"); writer.value(stats.degraded);
  writer.key("budget_tripped"); writer.value(stats.budget_tripped());
  writer.key("threads"); writer.value(stats.threads);
  writer.key("wall_ms"); writer.value(stats.wall_ms);
  writer.key("scripts_per_second"); writer.value(stats.scripts_per_second);
  writer.key("parse_failure_rate"); writer.value(stats.parse_failure_rate());
  writer.key("static_analysis_ms"); writer.value(stats.static_analysis_ms);
  writer.key("features_ms"); writer.value(stats.features_ms);
  writer.key("inference_ms"); writer.value(stats.inference_ms);
  writer.key("total_script_ms"); writer.value(stats.total_script_ms);
  writer.key("p50_script_ms"); writer.value(stats.p50_script_ms);
  writer.key("p95_script_ms"); writer.value(stats.p95_script_ms);
  writer.key("p99_script_ms"); writer.value(stats.p99_script_ms);
  writer.key("max_script_ms"); writer.value(stats.max_script_ms);
  writer.end_object();
}

std::string script_outcome_json(const ScriptOutcome& outcome,
                                OutputDetail detail) {
  JsonWriter writer;
  write_script_outcome(writer, outcome, detail);
  return writer.str();
}

std::string batch_stats_json(const BatchStats& stats) {
  JsonWriter writer;
  write_batch_stats(writer, stats);
  return writer.str();
}

std::string analyze_request_json(const AnalyzeRequest& request) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("v"); writer.value(static_cast<long long>(kWireFormatVersion));
  if (!request.id.empty()) {
    writer.key("id"); writer.value(request.id);
  }
  if (!request.request_id.empty()) {
    writer.key("request_id"); writer.value(request.request_id);
  }
  writer.key("detail"); writer.value(to_string(request.detail));
  if (request.cache_mode != CacheMode::kDefault) {
    writer.key("cache_mode");
    writer.value(jst::to_string(request.cache_mode));
  }
  if (request.limits.has_value()) {
    writer.key("limits");
    write_resource_limits(writer, *request.limits);
  }
  if (!request.source_hash.empty()) {
    writer.key("source_hash"); writer.value(request.source_hash);
  }
  if (request.has_source) {
    writer.key("source"); writer.value(request.source);
  }
  writer.end_object();
  return writer.str();
}

std::string analyze_response_json(const AnalyzeResponse& response) {
  JsonWriter writer;
  writer.begin_object();
  writer.key("v"); writer.value(static_cast<long long>(kWireFormatVersion));
  if (!response.id.empty()) {
    writer.key("id"); writer.value(response.id);
  }
  if (!response.request_id.empty()) {
    writer.key("request_id"); writer.value(response.request_id);
  }
  writer.key("status"); writer.value(to_string(response.status));
  if (!response.source_hash.empty()) {
    writer.key("source_hash"); writer.value(response.source_hash);
  }
  writer.key("queue_ms"); writer.value(response.queue_ms);
  writer.key("service_ms"); writer.value(response.service_ms);
  writer.key("queue_depth"); writer.value(response.queue_depth);
  if (response.cache != CacheState::kNone) {
    writer.key("cache"); writer.value(to_string(response.cache));
    writer.key("cache_lookup_ms"); writer.value(response.cache_lookup_ms);
  }
  if (response.status == ResponseStatus::kOk) {
    writer.key("outcome_status");
    writer.value(to_string(response.outcome.status));
    if (response.detail != OutputDetail::kStatus) {
      writer.key("outcome");
      write_script_outcome(writer, response.outcome, response.detail);
    }
  } else {
    writer.key("error"); writer.value(response.error);
  }
  writer.end_object();
  return writer.str();
}

bool parse_resource_limits(const support::JsonValue& value,
                           ResourceLimits& limits, std::string* error) {
  if (!value.is_object()) {
    set_error(error, "limits: expected an object");
    return false;
  }
  ResourceLimits parsed;
  if (const support::JsonValue* production = value.find("production")) {
    if (!production->is_bool()) {
      set_error(error, "limits.production: expected a boolean");
      return false;
    }
    if (production->as_bool()) parsed = ResourceLimits::production();
  }
  for (const auto& [key, member] : value.as_object()) {
    if (key == "production") continue;
    if (key == "max_source_bytes") {
      if (!read_size_field(member, key.c_str(), parsed.max_source_bytes,
                           error)) {
        return false;
      }
    } else if (key == "max_tokens") {
      if (!read_size_field(member, key.c_str(), parsed.max_tokens, error)) {
        return false;
      }
    } else if (key == "max_ast_nodes") {
      if (!read_size_field(member, key.c_str(), parsed.max_ast_nodes, error)) {
        return false;
      }
    } else if (key == "max_ast_depth") {
      if (!read_size_field(member, key.c_str(), parsed.max_ast_depth, error)) {
        return false;
      }
    } else if (key == "max_dataflow_edges") {
      if (!read_size_field(member, key.c_str(), parsed.max_dataflow_edges,
                           error)) {
        return false;
      }
    } else if (key == "deadline_ms") {
      if (!member.is_number() || member.as_number() < 0.0) {
        set_error(error, "limits.deadline_ms: expected a non-negative number");
        return false;
      }
      parsed.deadline_ms = member.as_number();
    } else {
      set_error(error, "limits: unknown field '" + key + "'");
      return false;
    }
  }
  limits = parsed;
  return true;
}

std::optional<AnalyzeRequest> parse_analyze_request(std::string_view line,
                                                    std::string* error) {
  std::string parse_error;
  std::optional<support::JsonValue> document =
      support::parse_json(line, &parse_error);
  if (!document.has_value()) {
    set_error(error, "malformed JSON (" + parse_error + ")");
    return std::nullopt;
  }
  return parse_analyze_request(*document, error);
}

std::optional<AnalyzeRequest> parse_analyze_request(
    const support::JsonValue& document, std::string* error) {
  if (!document.is_object()) {
    set_error(error, "request must be a JSON object");
    return std::nullopt;
  }

  // Resolve the pinned version first (object iteration is key-sorted, so
  // "v" would otherwise be seen after the fields it gates).
  std::uint32_t version = kWireFormatVersion;
  if (const support::JsonValue* pinned = document.find("v")) {
    const bool integral =
        pinned->is_number() &&
        pinned->as_number() ==
            static_cast<double>(static_cast<std::uint32_t>(
                pinned->as_number()));
    if (!integral || pinned->as_number() < 1.0 ||
        pinned->as_number() > static_cast<double>(kWireFormatVersion)) {
      set_error(error, "unsupported wire version (expected 1.." +
                           std::to_string(kWireFormatVersion) + ")");
      return std::nullopt;
    }
    version = static_cast<std::uint32_t>(pinned->as_number());
  }

  AnalyzeRequest request;
  for (const auto& [key, member] : document.as_object()) {
    if (key == "v") {
      continue;  // handled above
    } else if (key == "request_id") {
      if (version < kWireRequestIdVersion) {
        set_error(error, "request_id requires wire v" +
                             std::to_string(kWireRequestIdVersion) +
                             " (request pins v" + std::to_string(version) +
                             ")");
        return std::nullopt;
      }
      if (!member.is_string() ||
          !obs::is_valid_request_id(member.as_string())) {
        set_error(error,
                  "request_id: expected 16 lowercase hex characters");
        return std::nullopt;
      }
      request.request_id = member.as_string();
    } else if (key == "cache_mode") {
      if (version < kWireCacheVersion) {
        set_error(error, "cache_mode requires wire v" +
                             std::to_string(kWireCacheVersion) +
                             " (request pins v" + std::to_string(version) +
                             ")");
        return std::nullopt;
      }
      if (!member.is_string() ||
          !parse_cache_mode(member.as_string(), request.cache_mode)) {
        set_error(error,
                  "cache_mode: expected \"default\", \"bypass\", or "
                  "\"refresh\"");
        return std::nullopt;
      }
    } else if (key == "id") {
      if (!member.is_string()) {
        set_error(error, "id: expected a string");
        return std::nullopt;
      }
      request.id = member.as_string();
    } else if (key == "source") {
      if (!member.is_string()) {
        set_error(error, "source: expected a string");
        return std::nullopt;
      }
      request.source = member.as_string();
      request.has_source = true;
    } else if (key == "source_hash") {
      if (!member.is_string()) {
        set_error(error, "source_hash: expected a string");
        return std::nullopt;
      }
      request.source_hash = member.as_string();
    } else if (key == "detail") {
      if (!member.is_string() ||
          !parse_output_detail(member.as_string(), request.detail)) {
        set_error(error,
                  "detail: expected \"status\", \"summary\", or \"full\"");
        return std::nullopt;
      }
    } else if (key == "limits") {
      ResourceLimits limits;
      if (!parse_resource_limits(member, limits, error)) return std::nullopt;
      request.limits = limits;
    } else {
      set_error(error, "unknown field '" + key + "'");
      return std::nullopt;
    }
  }
  if (!request.has_source && request.source_hash.empty()) {
    set_error(error, "request carries neither source nor source_hash");
    return std::nullopt;
  }
  return request;
}

std::optional<ParsedResponse> parse_analyze_response(std::string_view line,
                                                     std::string* error) {
  std::string parse_error;
  std::optional<support::JsonValue> document =
      support::parse_json(line, &parse_error);
  if (!document.has_value()) {
    set_error(error, "malformed JSON (" + parse_error + ")");
    return std::nullopt;
  }
  if (!document->is_object()) {
    set_error(error, "response must be a JSON object");
    return std::nullopt;
  }

  ParsedResponse response;
  const support::JsonValue* version = document->find("v");
  if (version != nullptr && version->is_number()) {
    response.version = static_cast<std::uint32_t>(version->as_number());
  }
  const support::JsonValue* status = document->find("status");
  if (status == nullptr || !status->is_string() ||
      !parse_response_status(status->as_string(), response.status)) {
    set_error(error, "missing or unknown response status");
    return std::nullopt;
  }
  if (const support::JsonValue* id = document->find("id")) {
    response.id = id->as_string();
  }
  if (const support::JsonValue* rid = document->find("request_id")) {
    response.request_id = rid->as_string();
  }
  if (const support::JsonValue* hash = document->find("source_hash")) {
    response.source_hash = hash->as_string();
  }
  if (const support::JsonValue* message = document->find("error")) {
    response.error = message->as_string();
  }
  if (const support::JsonValue* value = document->find("queue_ms")) {
    response.queue_ms = value->as_number();
  }
  if (const support::JsonValue* value = document->find("service_ms")) {
    response.service_ms = value->as_number();
  }
  if (const support::JsonValue* value = document->find("queue_depth")) {
    response.queue_depth = static_cast<std::size_t>(value->as_number());
  }
  if (const support::JsonValue* value = document->find("cache")) {
    response.cache = value->as_string();
  }
  if (const support::JsonValue* value = document->find("cache_lookup_ms")) {
    response.cache_lookup_ms = value->as_number();
  }
  if (const support::JsonValue* value = document->find("outcome_status")) {
    response.outcome_status = value->as_string();
  }
  if (const support::JsonValue* outcome = document->find("outcome")) {
    response.outcome = *outcome;
  }
  return response;
}

}  // namespace jst::analysis::wire
